//! Analytical model of the backend matrix engine (paper Sec. VI, Fig. 15).
//!
//! The three variation-contributing kernels — registration's projection,
//! VIO's Kalman gain, and SLAM's marginalization — decompose into five
//! shared building blocks (Table I): multiplication, decomposition,
//! inverse, transpose and forward/backward substitution. The engine
//! executes blocks of the operands on a `B×B` systolic array ("the compute
//! units have to support computations for only a block"), with two
//! structural optimizations from Sec. VI-A: the symmetric innovation
//! matrix `S` costs half, and the marginalization `A_mm` inverse reduces
//! to reciprocals plus one small 6×6 inversion.

use crate::platform::Platform;

/// The five building blocks of paper Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatrixOp {
    /// Dense multiply `m×k · k×n`. `symmetric_output` halves the work
    /// (e.g. `H·P·Hᵀ`).
    Multiply {
        /// Rows of the left operand.
        m: usize,
        /// Shared (inner) dimension.
        k: usize,
        /// Columns of the right operand.
        n: usize,
        /// Whether only one triangle must be computed.
        symmetric_output: bool,
    },
    /// Cholesky-style decomposition of an `n×n` matrix.
    Decompose {
        /// Matrix dimension.
        n: usize,
    },
    /// Inverse of an `n×n` matrix. `structured` models the specialized
    /// marginalization path (diagonal block + 6×6 core).
    Inverse {
        /// Matrix dimension.
        n: usize,
        /// Use the reciprocal + 6×6 specialization.
        structured: bool,
    },
    /// Transpose of an `m×n` matrix.
    Transpose {
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
    },
    /// Forward/backward substitution on an `n×n` triangular system with
    /// `rhs` right-hand sides.
    Substitution {
        /// Triangular dimension.
        n: usize,
        /// Number of right-hand-side columns.
        rhs: usize,
    },
}

impl MatrixOp {
    /// Cycle cost on a `block × block` compute array.
    pub fn cycles(&self, block: usize) -> f64 {
        let b2 = (block * block) as f64;
        let fill = 2.0 * block as f64; // array fill/drain per pass
        match *self {
            MatrixOp::Multiply {
                m,
                k,
                n,
                symmetric_output,
            } => {
                let macs = (m * k * n) as f64 * if symmetric_output { 0.5 } else { 1.0 };
                macs / b2 + fill
            }
            // Cholesky has a sequential dependency chain along the
            // diagonal: n³/3 MACs at ~half array efficiency.
            MatrixOp::Decompose { n } => (n * n * n) as f64 / 3.0 / (b2 * 0.5) + fill,
            MatrixOp::Inverse { n, structured } => {
                if structured {
                    // Reciprocal per diagonal entry + a fixed 6×6 core +
                    // the coupling products.
                    n as f64 + 220.0
                } else {
                    (n * n * n) as f64 / (b2 * 0.5) + fill
                }
            }
            MatrixOp::Transpose { m, n } => (m * n) as f64 / block as f64 + fill,
            // Triangular solves: n²/2 MACs per RHS, sequential chain.
            MatrixOp::Substitution { n, rhs } => {
                (n * n * rhs) as f64 / 2.0 / (b2 * 0.5) + fill
            }
        }
    }

    /// The Table I row this op belongs to.
    pub fn block_name(&self) -> &'static str {
        match self {
            MatrixOp::Multiply { .. } => "Matrix Multiplication",
            MatrixOp::Decompose { .. } => "Matrix Decomposition",
            MatrixOp::Inverse { .. } => "Matrix Inverse",
            MatrixOp::Transpose { .. } => "Matrix Transpose",
            MatrixOp::Substitution { .. } => "Fwd./Bwd. Substitution",
        }
    }
}

/// The three offloadable backend kernels (paper Sec. VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKernelKind {
    /// Registration: camera-model projection `C(3×4) · X(4×M)`.
    Projection,
    /// VIO: Kalman gain `S·K = P·Hᵀ` (Eq. 1).
    KalmanGain,
    /// SLAM: Schur-complement marginalization
    /// `A_rr − A_rm·A_mm⁻¹·A_mr` (Fig. 15).
    Marginalization,
}

impl BackendKernelKind {
    /// All three kernels.
    pub const ALL: [BackendKernelKind; 3] = [
        BackendKernelKind::Projection,
        BackendKernelKind::KalmanGain,
        BackendKernelKind::Marginalization,
    ];

    /// Paper display name.
    pub fn paper_name(self) -> &'static str {
        match self {
            BackendKernelKind::Projection => "Projection",
            BackendKernelKind::KalmanGain => "Kalman Gain",
            BackendKernelKind::Marginalization => "Marginalization",
        }
    }
}

/// Problem dimensions for one kernel invocation.
#[derive(Debug, Clone, Copy)]
pub enum KernelDims {
    /// `M` map points to project.
    Projection {
        /// Number of homogeneous points (columns of `X`).
        map_points: usize,
    },
    /// Measurement rows and state dimension.
    KalmanGain {
        /// Rows of `H` (2× the key points used, post-compression).
        rows: usize,
        /// Error-state dimension (15 + 6 × window).
        state: usize,
    },
    /// Marginalized block structure.
    Marginalization {
        /// Landmarks being marginalized (the diagonal `A` block is
        /// `3k × 3k`).
        landmarks: usize,
        /// Remaining (kept) pose dimensions.
        remaining: usize,
    },
}

impl KernelDims {
    /// Which kernel these dimensions describe.
    pub fn kind(&self) -> BackendKernelKind {
        match self {
            KernelDims::Projection { .. } => BackendKernelKind::Projection,
            KernelDims::KalmanGain { .. } => BackendKernelKind::KalmanGain,
            KernelDims::Marginalization { .. } => BackendKernelKind::Marginalization,
        }
    }

    /// The scalar workload size the scheduler regresses on (map points /
    /// measurement rows / feature points — paper Fig. 16).
    pub fn size(&self) -> usize {
        match *self {
            KernelDims::Projection { map_points } => map_points,
            KernelDims::KalmanGain { rows, .. } => rows,
            KernelDims::Marginalization { landmarks, .. } => landmarks,
        }
    }

    /// Decomposes the kernel into Table I building blocks.
    pub fn decompose(&self) -> Vec<MatrixOp> {
        match *self {
            // Projection: C(3×4) · X(4×M) — one multiply (plus the
            // transpose of the point array into homogeneous columns).
            KernelDims::Projection { map_points } => vec![
                MatrixOp::Transpose { m: map_points, n: 4 },
                MatrixOp::Multiply {
                    m: 3,
                    k: 4,
                    n: map_points,
                    symmetric_output: false,
                },
            ],
            // Kalman gain (Eq. 1): S = H·P·Hᵀ + R (symmetric), then solve
            // S·K' = (P·Hᵀ)' via decomposition + fwd/bwd substitution.
            KernelDims::KalmanGain { rows, state } => vec![
                MatrixOp::Transpose { m: rows, n: state },
                MatrixOp::Multiply {
                    m: state,
                    k: state,
                    n: rows,
                    symmetric_output: false,
                }, // P·Hᵀ
                MatrixOp::Multiply {
                    m: rows,
                    k: state,
                    n: rows,
                    symmetric_output: true,
                }, // H·(P·Hᵀ), symmetric S
                MatrixOp::Decompose { n: rows },
                MatrixOp::Substitution { n: rows, rhs: state },
                MatrixOp::Substitution { n: rows, rhs: state },
            ],
            // Marginalization: A_mm⁻¹ (structured), A_rm·A_mm⁻¹,
            // (A_rm·A_mm⁻¹)·A_mr (symmetric), subtract — all five blocks
            // appear across the sequence (Table I row "Marginalization").
            KernelDims::Marginalization {
                landmarks,
                remaining,
            } => {
                let m = 3 * landmarks + 6;
                vec![
                    MatrixOp::Inverse {
                        n: m,
                        structured: true,
                    },
                    MatrixOp::Transpose { m, n: remaining },
                    MatrixOp::Multiply {
                        m: remaining,
                        k: m,
                        n: m,
                        symmetric_output: false,
                    }, // A_rm·A_mm⁻¹
                    MatrixOp::Multiply {
                        m: remaining,
                        k: m,
                        n: remaining,
                        symmetric_output: true,
                    }, // ·A_mr
                    MatrixOp::Decompose { n: remaining },
                    MatrixOp::Substitution {
                        n: remaining,
                        rhs: 1,
                    },
                ]
            }
        }
    }

    /// Bytes moved to/from the accelerator for this invocation (the DMA
    /// cost the runtime scheduler weighs, Sec. VI-B).
    pub fn transfer_bytes(&self) -> usize {
        match *self {
            KernelDims::Projection { map_points } => {
                // X in (4×M doubles) + projected pixels out (2×M).
                map_points * 4 * 8 + map_points * 2 * 8
            }
            KernelDims::KalmanGain { rows, state } => {
                // H (rows×state), P (state×state, symmetric → half), R
                // diag, K out (state×rows).
                rows * state * 8 + state * state * 4 + rows * 8 + state * rows * 8
            }
            KernelDims::Marginalization {
                landmarks,
                remaining,
            } => {
                let m = 3 * landmarks + 6;
                // A_mm (structured: diagonal + 6×6 + coupling), A_rm,
                // A_rr in; prior out.
                m * 8 + 36 * 8 + m * remaining * 8 * 2 + remaining * remaining * 8
            }
        }
    }
}

/// The backend accelerator instance.
#[derive(Debug, Clone, Copy)]
pub struct BackendEngine {
    platform: Platform,
}

impl BackendEngine {
    /// Creates an engine on the given platform.
    pub fn new(platform: Platform) -> Self {
        BackendEngine { platform }
    }

    /// The platform this engine models.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Compute-only latency (seconds) of one kernel invocation.
    pub fn compute_time(&self, dims: &KernelDims) -> f64 {
        let cycles: f64 = dims
            .decompose()
            .iter()
            .map(|op| op.cycles(self.platform.matrix_block))
            .sum();
        cycles * self.platform.cycle_time()
    }

    /// End-to-end offload latency: host→FPGA DMA + compute + FPGA→host DMA
    /// (the paper's three-transfers-per-frame protocol, Sec. VII-A).
    pub fn offload_time(&self, dims: &KernelDims) -> f64 {
        self.offload_time_via(dims, self.platform.bus.transfer_time(dims.transfer_bytes()))
    }

    /// Offload latency with the data movement priced over an arbitrary
    /// channel: `transfer_s` replaces the on-board bus's transfer time
    /// (e.g. a wireless link's `LinkState::transfer_time`). The
    /// summation order is identical to [`offload_time`], so pricing over
    /// a link that mirrors the platform bus is bit-equal to the direct
    /// path.
    ///
    /// [`offload_time`]: BackendEngine::offload_time
    pub fn offload_time_via(&self, dims: &KernelDims, transfer_s: f64) -> f64 {
        self.platform.offload_overhead_s + transfer_s + self.compute_time(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn table1_block_membership() {
        // Paper Table I: projection uses multiplication + transpose;
        // Kalman gain adds decomposition + substitution; marginalization
        // uses all five.
        let names = |dims: KernelDims| -> std::collections::HashSet<&'static str> {
            dims.decompose().iter().map(|op| op.block_name()).collect()
        };
        let proj = names(KernelDims::Projection { map_points: 100 });
        assert!(proj.contains("Matrix Multiplication"));
        assert!(!proj.contains("Matrix Inverse"));
        assert!(!proj.contains("Matrix Decomposition"));

        let kg = names(KernelDims::KalmanGain { rows: 60, state: 100 });
        assert!(kg.contains("Matrix Multiplication"));
        assert!(kg.contains("Matrix Decomposition"));
        assert!(kg.contains("Fwd./Bwd. Substitution"));
        assert!(kg.contains("Matrix Transpose"));
        assert!(!kg.contains("Matrix Inverse"));

        let marg = names(KernelDims::Marginalization {
            landmarks: 30,
            remaining: 30,
        });
        assert_eq!(marg.len(), 5, "marginalization uses all five blocks");
    }

    #[test]
    fn projection_scales_linearly() {
        let e = BackendEngine::new(Platform::edx_car());
        let t1 = e.compute_time(&KernelDims::Projection { map_points: 1000 });
        let t2 = e.compute_time(&KernelDims::Projection { map_points: 2000 });
        let ratio = t2 / t1;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn kalman_gain_grows_superlinearly_in_rows() {
        let e = BackendEngine::new(Platform::edx_car());
        let t1 = e.compute_time(&KernelDims::KalmanGain { rows: 50, state: 195 });
        let t2 = e.compute_time(&KernelDims::KalmanGain { rows: 100, state: 195 });
        assert!(t2 / t1 > 1.9, "ratio {}", t2 / t1);
    }

    #[test]
    fn structured_inverse_beats_general() {
        let structured = MatrixOp::Inverse {
            n: 96,
            structured: true,
        };
        let general = MatrixOp::Inverse {
            n: 96,
            structured: false,
        };
        assert!(structured.cycles(16) * 20.0 < general.cycles(16));
    }

    #[test]
    fn symmetric_multiply_halves_cycles() {
        let full = MatrixOp::Multiply {
            m: 64,
            k: 64,
            n: 64,
            symmetric_output: false,
        };
        let half = MatrixOp::Multiply {
            m: 64,
            k: 64,
            n: 64,
            symmetric_output: true,
        };
        assert!(half.cycles(16) < full.cycles(16) * 0.6);
    }

    #[test]
    fn small_kernels_are_transfer_dominated() {
        // Paper Sec. VI-B: offloading tiny marginalizations is not worth
        // it; the model must show transfer dominating compute there.
        let e = BackendEngine::new(Platform::edx_drone());
        let dims = KernelDims::Marginalization {
            landmarks: 2,
            remaining: 12,
        };
        let compute = e.compute_time(&dims);
        let total = e.offload_time(&dims);
        assert!(total - compute > compute, "transfer should dominate");
    }

    #[test]
    fn car_engine_is_faster_than_drone() {
        let dims = KernelDims::KalmanGain { rows: 120, state: 195 };
        let car = BackendEngine::new(Platform::edx_car()).compute_time(&dims);
        let drone = BackendEngine::new(Platform::edx_drone()).compute_time(&dims);
        assert!(car < drone, "car {car} vs drone {drone}");
    }

    #[test]
    fn sizes_match_figure16_axes() {
        assert_eq!(KernelDims::Projection { map_points: 500 }.size(), 500);
        assert_eq!(KernelDims::KalmanGain { rows: 80, state: 99 }.size(), 80);
        assert_eq!(
            KernelDims::Marginalization {
                landmarks: 44,
                remaining: 30
            }
            .size(),
            44
        );
    }
}
