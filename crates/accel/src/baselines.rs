//! CPU/GPU/DSP baseline models behind paper Table III.
//!
//! The paper compares EDX-CAR against seven software configurations. We
//! measure our own multi-core-equivalent implementation directly; the
//! other baselines are modeled as documented latency transforms of that
//! measurement, with factors taken from the paper's analysis: ROS adds
//! inter-process messaging overhead per frame ("known to incur non-trivial
//! overheads", Sec. IV-A — their framework is ~4 % faster plus IPC);
//! single-core forgoes the multi-core/SIMD speedup; mobile GPUs pay a
//! ~40 ms launch/setup cost per frame and handle the sparse backend poorly
//! (Sec. VII-H); the DSP sits between CPU and GPU.

/// The software baselines of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Single core, with ROS inter-process plumbing.
    SingleCoreRos,
    /// Single core, ROS removed.
    SingleCore,
    /// Four cores + SIMD, with ROS.
    MultiCoreRos,
    /// Four cores + SIMD, no ROS — the paper's (and our) reference.
    MultiCore,
    /// Adreno 530 mobile GPU + CPU.
    AdrenoGpu,
    /// Hexagon 680 DSP + CPU.
    HexagonDsp,
    /// Maxwell mobile GPU + CPU.
    MaxwellGpu,
}

impl Baseline {
    /// All baselines in Table III order.
    pub const ALL: [Baseline; 7] = [
        Baseline::SingleCoreRos,
        Baseline::SingleCore,
        Baseline::MultiCoreRos,
        Baseline::MultiCore,
        Baseline::AdrenoGpu,
        Baseline::HexagonDsp,
        Baseline::MaxwellGpu,
    ];

    /// Display name matching the paper's table.
    pub fn paper_name(self) -> &'static str {
        match self {
            Baseline::SingleCoreRos => "Single-core w/ ROS",
            Baseline::SingleCore => "Single-core w/o ROS",
            Baseline::MultiCoreRos => "Multi-core w/ ROS",
            Baseline::MultiCore => "Multi-core w/o ROS (Our baseline)",
            Baseline::AdrenoGpu => "Adreno 530 mobile GPU + CPU",
            Baseline::HexagonDsp => "Hexagon 680 DSP + CPU",
            Baseline::MaxwellGpu => "Maxwell mobile GPU + CPU",
        }
    }
}

/// Latency model of one baseline relative to the measured multi-core
/// reference.
#[derive(Debug, Clone, Copy)]
pub struct BaselineModel {
    /// Multiplier on compute time.
    pub compute_factor: f64,
    /// Fixed per-frame overhead (seconds): IPC for ROS, kernel
    /// launch/setup for the GPUs.
    pub fixed_overhead_s: f64,
}

impl BaselineModel {
    /// The model for one baseline.
    pub fn for_baseline(b: Baseline) -> BaselineModel {
        match b {
            // Four cores + SIMD buy ≈1.57× over single core on this
            // pipeline (frontend parallelizes, backend's sparse solves
            // do not).
            Baseline::SingleCoreRos => BaselineModel {
                compute_factor: 1.57,
                fixed_overhead_s: 0.010,
            },
            Baseline::SingleCore => BaselineModel {
                compute_factor: 1.57,
                fixed_overhead_s: 0.0,
            },
            Baseline::MultiCoreRos => BaselineModel {
                compute_factor: 1.0,
                fixed_overhead_s: 0.010,
            },
            Baseline::MultiCore => BaselineModel {
                compute_factor: 1.0,
                fixed_overhead_s: 0.0,
            },
            // Mobile GPU: vision kernels offload but sparse backend
            // regresses; 40 ms launch/setup per frame (Sec. VII-H).
            Baseline::AdrenoGpu => BaselineModel {
                compute_factor: 1.7,
                fixed_overhead_s: 0.040,
            },
            Baseline::HexagonDsp => BaselineModel {
                compute_factor: 1.15,
                fixed_overhead_s: 0.005,
            },
            Baseline::MaxwellGpu => BaselineModel {
                compute_factor: 1.0,
                fixed_overhead_s: 0.020,
            },
        }
    }

    /// Frame latency of this baseline given the measured multi-core frame
    /// latency.
    pub fn frame_latency(&self, multicore_seconds: f64) -> f64 {
        multicore_seconds * self.compute_factor + self.fixed_overhead_s
    }
}

/// Computes the Table III speedup column: `baseline latency / eudoxus
/// latency` for each baseline, given the measured multi-core frame time
/// and the accelerated frame time.
pub fn table3_speedups(multicore_seconds: f64, eudoxus_seconds: f64) -> Vec<(Baseline, f64)> {
    Baseline::ALL
        .iter()
        .map(|&b| {
            let lat = BaselineModel::for_baseline(b).frame_latency(multicore_seconds);
            (b, lat / eudoxus_seconds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper_table3() {
        // Paper Table III speedups over each baseline: single-core w/ ROS
        // (3.5) > single-core (3.3) > DSP (2.5) ≥ multi-core w/ ROS (2.2)
        // > our baseline (2.1); Adreno is the slowest baseline (4.4).
        let rows = table3_speedups(0.105, 0.050);
        let get = |b: Baseline| rows.iter().find(|(x, _)| *x == b).unwrap().1;
        assert!(get(Baseline::SingleCoreRos) > get(Baseline::SingleCore));
        assert!(get(Baseline::SingleCore) > get(Baseline::MultiCoreRos));
        assert!(get(Baseline::MultiCoreRos) > get(Baseline::MultiCore));
        assert!(get(Baseline::AdrenoGpu) > get(Baseline::SingleCoreRos));
        assert!(get(Baseline::HexagonDsp) > get(Baseline::MultiCore));
        assert!(get(Baseline::MaxwellGpu) > get(Baseline::MultiCore));
    }

    #[test]
    fn reference_speedup_is_identity_factor() {
        let rows = table3_speedups(0.1, 0.1);
        let ours = rows
            .iter()
            .find(|(b, _)| *b == Baseline::MultiCore)
            .unwrap()
            .1;
        assert!((ours - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_overhead_dominates_at_small_frames() {
        // For short frames the 40 ms launch cost makes the GPU far worse
        // than the CPU (the paper's explanation for GPUs losing).
        let cpu = BaselineModel::for_baseline(Baseline::MultiCore).frame_latency(0.03);
        let gpu = BaselineModel::for_baseline(Baseline::AdrenoGpu).frame_latency(0.03);
        assert!(gpu > cpu * 2.0);
    }

    #[test]
    fn paper_names_are_stable() {
        assert_eq!(
            Baseline::MultiCore.paper_name(),
            "Multi-core w/o ROS (Our baseline)"
        );
        assert_eq!(Baseline::ALL.len(), 7);
    }
}
