//! Per-frame energy model (paper Fig. 19).
//!
//! Baseline (CPU-only) frames burn host busy power for the whole frame.
//! Accelerated frames split the time between FPGA blocks (static +
//! dynamic power) and the residual host-side backend work; the host idles
//! (at a fraction of busy power) while the FPGA runs. The paper reports
//! 1.9 J → 0.5 J per frame on EDX-CAR (−73.7 %) and 0.8 J → 0.4 J on
//! EDX-DRONE (−47.4 %), the drone saving less because FPGA static power
//! stands out once dynamic power is small (Sec. VII-C).

use crate::platform::Platform;

/// Energy accounting for one frame (joules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameEnergy {
    /// Host CPU energy.
    pub host_j: f64,
    /// FPGA static energy (entire frame period — the fabric is powered
    /// regardless).
    pub fpga_static_j: f64,
    /// FPGA dynamic energy (only while blocks are active).
    pub fpga_dynamic_j: f64,
}

impl FrameEnergy {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.host_j + self.fpga_static_j + self.fpga_dynamic_j
    }
}

/// The platform energy model.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    platform: Platform,
    /// Host idle power as a fraction of busy power.
    idle_fraction: f64,
}

impl EnergyModel {
    /// Creates the model for a platform.
    pub fn new(platform: Platform) -> Self {
        EnergyModel {
            platform,
            idle_fraction: 0.1,
        }
    }

    /// Energy of a CPU-only (baseline) frame of the given latency.
    pub fn baseline_frame(&self, frame_seconds: f64) -> FrameEnergy {
        FrameEnergy {
            host_j: self.platform.host_power_w * frame_seconds,
            fpga_static_j: 0.0,
            fpga_dynamic_j: 0.0,
        }
    }

    /// Energy of an accelerated frame: `fpga_seconds` on the fabric,
    /// `host_seconds` of remaining software, over a total frame period of
    /// `frame_seconds`.
    pub fn accelerated_frame(
        &self,
        frame_seconds: f64,
        fpga_seconds: f64,
        host_seconds: f64,
    ) -> FrameEnergy {
        let host_busy = self.platform.host_power_w * host_seconds;
        let host_idle =
            self.platform.host_power_w * self.idle_fraction * (frame_seconds - host_seconds).max(0.0);
        FrameEnergy {
            host_j: host_busy + host_idle,
            fpga_static_j: self.platform.static_power_w * frame_seconds,
            fpga_dynamic_j: self.platform.dynamic_power_w * fpga_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn acceleration_saves_energy_at_paper_scale() {
        // Car: baseline ≈ 105 ms/frame all-CPU vs accelerated ≈ 50 ms
        // (frontend on FPGA ~40 ms, host backend ~10 ms).
        let m = EnergyModel::new(Platform::edx_car());
        let base = m.baseline_frame(0.105);
        let accel = m.accelerated_frame(0.050, 0.040, 0.010);
        let saving = 1.0 - accel.total() / base.total();
        assert!(
            (0.40..0.85).contains(&saving),
            "saving {saving} (base {} J, accel {} J)",
            base.total(),
            accel.total()
        );
    }

    #[test]
    fn drone_saving_is_smaller_than_car() {
        // Paper Sec. VII-C: the drone's saving (47 %) is below the car's
        // (74 %) because static power dominates.
        let car = EnergyModel::new(Platform::edx_car());
        let car_saving = 1.0
            - car.accelerated_frame(0.050, 0.040, 0.010).total()
                / car.baseline_frame(0.105).total();
        let drone = EnergyModel::new(Platform::edx_drone());
        let drone_saving = 1.0
            - drone.accelerated_frame(0.045, 0.035, 0.010).total()
                / drone.baseline_frame(0.143).total();
        assert!(car_saving > drone_saving, "car {car_saving} drone {drone_saving}");
        assert!(drone_saving > 0.2, "drone still saves: {drone_saving}");
    }

    #[test]
    fn static_power_accrues_for_whole_frame() {
        let drone = Platform::edx_drone();
        let m = EnergyModel::new(drone);
        let e = m.accelerated_frame(0.1, 0.01, 0.01);
        assert!((e.fpga_static_j - drone.static_power_w * 0.1).abs() < 1e-12);
        assert!((e.fpga_dynamic_j - drone.dynamic_power_w * 0.01).abs() < 1e-12);
    }

    #[test]
    fn baseline_scales_linearly_with_time() {
        let m = EnergyModel::new(Platform::edx_car());
        let e1 = m.baseline_frame(0.05).total();
        let e2 = m.baseline_frame(0.10).total();
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
    }
}
