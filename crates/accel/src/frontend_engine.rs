//! Analytical latency/throughput model of the frontend accelerator
//! (paper Sec. V).
//!
//! Task graph (Fig. 12): the critical path is FD → FC → MO → DR; temporal
//! matching (DC → LSS) runs off the left image only and "is usually over
//! 10× lower than SM latency", so it hides behind the critical path. The
//! feature-extraction hardware is time-shared between the left and right
//! streams (its resource cost would otherwise double, Sec. V-B), and the
//! FE and SM stages can be pipelined, lifting throughput to
//! `1 / max(FE, SM)` while leaving single-frame latency at `FE + SM`.

use crate::platform::Platform;
use crate::workload::FrameWorkload;

/// Cycle-cost constants of the frontend tasks. Defaults are calibrated so
/// the EDX-CAR instance lands near the paper's reported operating points
/// (frontend ≈ 40 ms unpipelined, SM-bound, ~2× over the CPU baseline).
#[derive(Debug, Clone, Copy)]
pub struct FrontendCosts {
    /// Cycles per feature for descriptor calculation (orientation + 256
    /// comparisons, pipelined).
    pub fc_per_feature: f64,
    /// Cycles per candidate comparison in matching optimization (256-bit
    /// XOR + popcount per cycle).
    pub mo_per_candidate: f64,
    /// Cycles per disparity step of block refinement (9×9 SAD with row
    /// parallelism).
    pub dr_per_step: f64,
    /// Cycles per track per pyramid iteration of DC+LSS.
    ///
    /// Calibration note (PR 3): the CPU reference this models against is
    /// now the *batched* SoA solve (lane-parallel LSS micro-kernel, see
    /// `eudoxus_frontend::klt`), which measures ≈35 µs per track for a
    /// full 3-level pyramidal solve on 640×480 frames — roughly
    /// [`MEASURED_CPU_US_PER_TRACK_ITERATION`] per track-iteration
    /// (`BENCH_throughput.json`, `frontend_kernels` bench). At EDX-CAR's
    /// 200 MHz fabric, 900 cycles ≈ 4.5 µs per track-iteration: the
    /// modeled DC+LSS block no longer races the optimized CPU on raw
    /// latency (it is within ~2× of it) — consistent with the paper's
    /// Sec. V design point that TM merely needs to hide under SM on the
    /// pipelined critical path, where the accelerator's win is
    /// energy-per-frame, not TM speed.
    pub tm_per_track: f64,
}

/// Measured per-track-iteration cost (µs) of the batched CPU DC+LSS
/// solve: ≈35 µs per 3-level track ÷ ~12 LSS iterations across levels,
/// measured on the desktop reference (`frontend_kernels::klt_track_300_
/// points_cached_pyramids`, PR 3). Pins the [`FrontendCosts::tm_per_track`]
/// calibration to the CPU implementation it is compared against.
pub const MEASURED_CPU_US_PER_TRACK_ITERATION: f64 = 3.0;

impl Default for FrontendCosts {
    fn default() -> Self {
        FrontendCosts {
            fc_per_feature: 1800.0,
            mo_per_candidate: 1.1,
            dr_per_step: 120.0,
            tm_per_track: 900.0,
        }
    }
}

/// Latency breakdown of one frame through the frontend accelerator.
#[derive(Debug, Clone, Copy)]
pub struct FrontendLatency {
    /// Feature extraction (both images, time-shared hardware), seconds.
    pub feature_extraction: f64,
    /// Stereo matching (MO + DR), seconds.
    pub stereo_matching: f64,
    /// Temporal matching (DC + LSS), seconds — runs in parallel with SM.
    pub temporal_matching: f64,
    /// Output DMA to the backend/host, seconds.
    pub output_transfer: f64,
}

impl FrontendLatency {
    /// Single-frame latency: FE + SM on the critical path (TM hides under
    /// SM, which is ≥ 10× longer), plus the output transfer.
    pub fn total(&self) -> f64 {
        self.feature_extraction + self.stereo_matching.max(self.temporal_matching)
            + self.output_transfer
    }

    /// Frame period with FE↔SM pipelining: the slowest stage bounds
    /// throughput.
    pub fn pipelined_period(&self) -> f64 {
        self.feature_extraction
            .max(self.stereo_matching.max(self.temporal_matching))
            .max(self.output_transfer)
    }

    /// Throughput without pipelining (1 / total latency).
    pub fn unpipelined_fps(&self) -> f64 {
        1.0 / self.total()
    }

    /// Throughput with pipelining.
    pub fn pipelined_fps(&self) -> f64 {
        1.0 / self.pipelined_period()
    }
}

/// The frontend accelerator instance.
#[derive(Debug, Clone, Copy)]
pub struct FrontendEngine {
    platform: Platform,
    costs: FrontendCosts,
}

impl FrontendEngine {
    /// Creates an engine on the given platform with default calibration.
    pub fn new(platform: Platform) -> Self {
        FrontendEngine {
            platform,
            costs: FrontendCosts::default(),
        }
    }

    /// Overrides the cost calibration.
    pub fn with_costs(mut self, costs: FrontendCosts) -> Self {
        self.costs = costs;
        self
    }

    /// The platform this engine models.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Latency model for one frame of the given workload.
    pub fn latency(&self, w: &FrameWorkload) -> FrontendLatency {
        let cy = self.platform.cycle_time();
        let ppc = self.platform.pixels_per_cycle as f64;

        // FD and IF stream the image in parallel (same stencil stream);
        // FC is per detected feature. The FE hardware is time-shared
        // between the two camera streams → serialize left + right.
        let fe_image_left = w.pixels as f64 / ppc + self.costs.fc_per_feature * w.keypoints_left as f64;
        let fe_image_right =
            w.pixels as f64 / ppc + self.costs.fc_per_feature * w.keypoints_right as f64;
        let fe_cycles = fe_image_left + fe_image_right;

        // MO: every left feature scans candidates in its epipolar band
        // (≈ right features / rows × band ≈ a constant fraction; model as
        // full right set for an upper bound the paper's band search also
        // has).
        let mo_cycles =
            self.costs.mo_per_candidate * (w.keypoints_left as f64) * (w.keypoints_right as f64).max(1.0).sqrt() * 8.0;
        // DR: per accepted match, sweep the disparity refinement window.
        let dr_cycles = self.costs.dr_per_step
            * (w.stereo_matches as f64)
            * (w.disparity_range as f64);
        // Temporal matching on the left stream.
        let tm_cycles = self.costs.tm_per_track * w.tracks as f64;

        FrontendLatency {
            feature_extraction: fe_cycles * cy,
            stereo_matching: (mo_cycles + dr_cycles) * cy,
            temporal_matching: tm_cycles * cy,
            output_transfer: self.platform.bus.transfer_time(w.correspondence_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn car_latency() -> FrontendLatency {
        FrontendEngine::new(Platform::edx_car())
            .latency(&FrameWorkload::typical(1280, 720))
    }

    #[test]
    fn stereo_matching_dominates() {
        // Paper Sec. V-B: SM latency is roughly 2–3× the FE latency, and
        // TM is far below SM.
        let l = car_latency();
        let ratio = l.stereo_matching / l.feature_extraction;
        assert!((1.5..4.0).contains(&ratio), "SM/FE ratio {ratio}");
        assert!(l.temporal_matching * 5.0 < l.stereo_matching);
    }

    #[test]
    fn pipelining_raises_throughput_not_latency() {
        let l = car_latency();
        assert!(l.pipelined_fps() > l.unpipelined_fps());
        // Pipelined period is bounded by the slowest stage.
        assert!((l.pipelined_period() - l.stereo_matching).abs() < 1e-12);
    }

    #[test]
    fn car_lands_near_paper_operating_point() {
        // Paper Sec. VII-D: accelerated frontend latency ≈ 42.7 ms,
        // pipelined frontend throughput ≈ 44 FPS, unpipelined ≈ 26 FPS.
        let l = car_latency();
        let total_ms = l.total() * 1e3;
        assert!(
            (20.0..70.0).contains(&total_ms),
            "frontend latency {total_ms} ms"
        );
        assert!(
            (20.0..70.0).contains(&l.pipelined_fps()),
            "pipelined {} FPS",
            l.pipelined_fps()
        );
    }

    #[test]
    fn drone_is_faster_despite_slower_clock() {
        // 3× fewer pixels at 0.75× the clock: drone frontend latency is
        // lower (paper Sec. VII-D).
        let car = car_latency();
        let drone = FrontendEngine::new(Platform::edx_drone())
            .latency(&FrameWorkload::typical(640, 480));
        assert!(drone.total() < car.total());
    }

    #[test]
    fn latency_scales_with_features() {
        let engine = FrontendEngine::new(Platform::edx_car());
        let mut light = FrameWorkload::typical(1280, 720);
        light.keypoints_left = 50;
        light.keypoints_right = 50;
        light.stereo_matches = 30;
        let heavy = FrameWorkload::typical(1280, 720);
        assert!(engine.latency(&light).total() < engine.latency(&heavy).total());
    }

    #[test]
    fn tm_calibration_tracks_the_measured_cpu_solve() {
        // `tm_per_track` models cycles per track-iteration; after the
        // batched CPU solve (PR 3) the measured CPU cost is ~3 µs per
        // track-iteration. The model must stay the same order of
        // magnitude — within [0.5×, 5×] — or its commentary (and the
        // paper-alignment claims built on it) has drifted from the
        // implementation it is calibrated against.
        let costs = FrontendCosts::default();
        let car = Platform::edx_car();
        let modeled_us = costs.tm_per_track * car.cycle_time() * 1e6;
        let ratio = modeled_us / MEASURED_CPU_US_PER_TRACK_ITERATION;
        assert!(
            (0.5..5.0).contains(&ratio),
            "modeled {modeled_us:.2} us/track-iteration vs measured \
             {MEASURED_CPU_US_PER_TRACK_ITERATION:.2} (ratio {ratio:.2})"
        );
        // And TM must still hide under SM at the frontend's track cap
        // (420 live tracks, `FrontendConfig::tuning.max_tracks`).
        let engine = FrontendEngine::new(car);
        let mut w = FrameWorkload::typical(1280, 720);
        w.tracks = 420;
        let l = engine.latency(&w);
        assert!(
            l.temporal_matching < l.stereo_matching,
            "TM {} s exceeds SM {} s at 420 tracks",
            l.temporal_matching,
            l.stereo_matching
        );
    }

    #[test]
    fn output_transfer_is_negligible() {
        // 2–3 KB over PCIe must be microseconds — far below compute.
        let l = car_latency();
        assert!(l.output_transfer < 1e-4);
        assert!(l.output_transfer < l.total() / 100.0);
    }
}
