//! Analytical model of the Eudoxus FPGA accelerator.
//!
//! The paper prototypes Eudoxus on two FPGAs — a Virtex-7 board for the
//! self-driving car (EDX-CAR) and a Zynq Ultrascale+ for drones
//! (EDX-DRONE) — neither of which is available here, so this crate
//! implements the substitution DESIGN.md §1 documents: a calibrated,
//! cycle-based analytical model of the architecture in paper Secs. V–VI.
//! The *structural* claims are all modeled explicitly:
//!
//! * [`frontend_engine`] — the frontend task pipeline (FD/IF/FC → MO/DR,
//!   DC/LSS), with feature-extraction hardware time-shared between the two
//!   camera streams and optional FE↔SM pipelining (Sec. V-B);
//! * [`stencil`] — stencil-buffer sizing and the replication-vs-sharing
//!   trade-off of Fig. 14 (Sec. V-C);
//! * [`backend_engine`] — the five matrix building blocks of Table I and
//!   Fig. 15, with blocked execution, the symmetric-S optimization and the
//!   specialized `A_mm` inversion (Sec. VI-A);
//! * [`scheduler`] — the regression-based runtime offload scheduler
//!   (Sec. VI-B);
//! * [`resources`] — LUT/FF/DSP/BRAM accounting with and without sharing
//!   (Table II);
//! * [`energy`] — per-frame energy (Fig. 19);
//! * [`baselines`] — the CPU/GPU/DSP comparison models behind Table III;
//! * [`platform`] — the EDX-CAR and EDX-DRONE configurations.
//!
//! # An executable in-loop model
//!
//! These models are not replay-only artifacts: `eudoxus-core` makes
//! them *executable per frame, in the serving loop*. Its
//! `ExecutionEngine` seam (see `eudoxus_core::engine`) wraps this
//! crate's [`FrontendEngine`], [`BackendEngine`], [`EnergyModel`] and
//! [`Platform`] into engines a `LocalizationSession` consults on every
//! pushed frame — `ModeledAccelEngine` for a live EDX-CAR/EDX-DRONE
//! latency + energy estimate, and `ScheduledEngine` for the paper's
//! per-kernel offload decision ([`RuntimeScheduler`] + the offload
//! policy) made inside `push`. The post-hoc replay executor
//! (`eudoxus_core::Executor::replay`) delegates to the same per-frame
//! code path, so in-loop reports and replayed runs of the same log are
//! exactly equal; `cargo run --release --example offload_decision`
//! shows the scheduler deciding live, frame by frame.
//!
//! # The bus is just a link
//!
//! Since the communication-adaptive offload work, the host↔accelerator
//! interconnect is one instance of the general channel model in
//! `eudoxus-link`: [`platform::BusModel::transfer_time`] delegates to
//! the equivalent `StaticLink` (`BusModel::as_link()`), pricing a
//! transfer with the identical `latency + bytes / bandwidth` arithmetic
//! bit for bit — the pinned `bus_and_static_link_price_bit_equal` test
//! keeps EDX-CAR/EDX-DRONE modeling unchanged. For engines that move
//! kernel data over some *other* channel (a wireless uplink to an edge
//! server), [`BackendEngine::offload_time_via`] prices the same
//! three-round-trip protocol over an externally supplied transfer time,
//! and [`RuntimeScheduler::decide_with_accel_ms`] makes the offload
//! call against it (`f64::INFINITY` forces CPU — a lost frame).
//! `eudoxus_core::ScheduledEngine::with_link` wires both to a live
//! `LinkModel` and adds the deadline fallback.

pub mod backend_engine;
pub mod baselines;
pub mod energy;
pub mod frontend_engine;
pub mod memory;
pub mod platform;
pub mod resources;
pub mod scheduler;
pub mod stencil;
pub mod workload;

pub use backend_engine::{BackendEngine, BackendKernelKind, KernelDims, MatrixOp};
pub use baselines::{Baseline, BaselineModel};
pub use energy::{EnergyModel, FrameEnergy};
pub use frontend_engine::{
    FrontendEngine, FrontendLatency, MEASURED_CPU_US_PER_TRACK_ITERATION,
};
pub use memory::MemoryReport;
pub use platform::{Platform, PlatformKind};
pub use resources::{ResourceReport, ResourceVector};
pub use scheduler::{OffloadDecision, RuntimeScheduler, TrainingSample};
pub use stencil::{SbPlan, SbStrategy, StencilConsumer};
pub use workload::FrameWorkload;
