//! On-chip memory budgeting: stencil buffers, FIFOs and scratchpads.
//!
//! The frontend provisions "different on-chip memory structures to suit
//! different data reuse patterns" (paper Sec. V-C): stencil buffers for
//! convolution-style reuse, FIFOs for sequential feature lists, and
//! scratchpads (SPM) for irregular accesses such as matching. The backend
//! engine stores whole operand matrices in SPMs (Sec. VI-A). On EDX-CAR
//! the paper reports ≈3.6 MB of SPM against ≈0.4 MB of SB (Sec. VII-D).

use crate::platform::Platform;
use crate::stencil::{frontend_consumers, plan_stencil_buffers, SbPlan};

/// Byte budget of every on-chip memory class.
#[derive(Debug, Clone, Copy)]
pub struct MemoryReport {
    /// Stencil buffers (both camera streams), bytes.
    pub sb_bytes: usize,
    /// FIFOs (feature/descriptor queues), bytes.
    pub fifo_bytes: usize,
    /// Scratchpads (descriptor stores, matching tables, matrix operands),
    /// bytes.
    pub spm_bytes: usize,
    /// The stencil plan behind `sb_bytes`.
    pub sb_plan: SbPlan,
}

impl MemoryReport {
    /// Total on-chip bytes.
    pub fn total(&self) -> usize {
        self.sb_bytes + self.fifo_bytes + self.spm_bytes
    }
}

/// MSCKF state storage: the paper reports 1.2 MB for window 30 (state
/// vector, covariance, Jacobian, Kalman gain; Sec. VII-B).
pub fn msckf_storage_bytes(window: usize) -> usize {
    let n = 15 + 6 * window;
    let rows = 2 * 40 * 3; // stacked measurement rows before compression
    let state_vec = (16 + 7 * window) * 8;
    let cov = n * n * 8;
    let jacobian = rows * n * 8;
    let gain = n * rows * 8;
    state_vec + cov + jacobian + gain
}

/// Budgets the on-chip memories for a platform.
pub fn memory_report(platform: &Platform) -> MemoryReport {
    let (w, _h) = platform.resolution;
    let pixels = platform.pixels();
    let consumers = frontend_consumers(w, pixels);
    let plan = plan_stencil_buffers(&consumers, w as usize, 1, pixels);
    // Two camera streams.
    let sb_bytes = plan.bytes * 2;

    // FIFOs: detected key points (x, y, response = 12 B) and descriptors
    // (32 B) for both images, double-buffered.
    let max_features = 512;
    let fifo_bytes = 2 * 2 * max_features * (12 + 32);

    // SPMs: matching tables (features × candidate metadata), the LF(t−1)
    // buffer for temporal matching, and the backend matrix operands.
    let matching_spm = max_features * max_features / 8 + max_features * 64;
    let prev_frame_features = max_features * (12 + 32);
    let state_dim = 15 + 6 * 30;
    let matrix_spm = 3 * state_dim * state_dim * 8; // S, P·Hᵀ, K operands
    let block = platform.matrix_block;
    let engine_buffers = 4 * block * block * 8;
    // Image-patch SPM for DR block matching around candidate positions.
    let patch_spm = max_features * 24 * 24;
    let spm_bytes = matching_spm + prev_frame_features + matrix_spm + engine_buffers + patch_spm
        + msckf_storage_bytes(30) / 2; // half the MSCKF set resident at once

    MemoryReport {
        sb_bytes,
        fifo_bytes,
        spm_bytes,
        sb_plan: plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn spm_dominates_sb_as_in_paper() {
        // Paper Sec. VII-D: "SPM consumes about 3.6 MB while SB consumes
        // 0.4 MB" on EDX-CAR.
        let m = memory_report(&Platform::edx_car());
        assert!(m.spm_bytes > 5 * m.sb_bytes, "spm {} sb {}", m.spm_bytes, m.sb_bytes);
        let spm_mb = m.spm_bytes as f64 / 1e6;
        assert!((1.5..6.0).contains(&spm_mb), "spm {spm_mb} MB");
        let sb_kb = m.sb_bytes as f64 / 1e3;
        assert!((10.0..800.0).contains(&sb_kb), "sb {sb_kb} KB");
    }

    #[test]
    fn msckf_storage_matches_paper() {
        // Paper Sec. VII-B: ≈1.2 MB for window 30.
        let mb = msckf_storage_bytes(30) as f64 / 1e6;
        assert!((0.6..1.6).contains(&mb), "msckf storage {mb} MB");
    }

    #[test]
    fn drone_needs_less_memory() {
        let car = memory_report(&Platform::edx_car());
        let drone = memory_report(&Platform::edx_drone());
        assert!(drone.sb_bytes < car.sb_bytes);
        assert!(drone.total() <= car.total());
    }

    #[test]
    fn totals_are_consistent() {
        let m = memory_report(&Platform::edx_drone());
        assert_eq!(m.total(), m.sb_bytes + m.fifo_bytes + m.spm_bytes);
    }
}
