//! Platform configurations for the two FPGA prototypes.

use eudoxus_link::StaticLink;

/// Which prototype (paper Sec. VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// EDX-CAR: Virtex-7 XC7V690T + four-core Kaby Lake host over PCIe 3.0.
    EdxCar,
    /// EDX-DRONE: Zynq Ultrascale+ ZU9CG (quad A53 + FPGA on one chip,
    /// AXI4 interconnect).
    EdxDrone,
}

/// Host↔accelerator interconnect model.
#[derive(Debug, Clone, Copy)]
pub struct BusModel {
    /// Sustained bandwidth (bytes/second).
    pub bandwidth: f64,
    /// Per-transfer latency (seconds).
    pub latency: f64,
}

impl BusModel {
    /// Time to move `bytes` across the bus. Delegates to the
    /// equivalent [`StaticLink`]: the on-board bus is the degenerate
    /// communication channel (constant, lossless), and both price a
    /// transfer with the identical `latency + bytes / bandwidth`
    /// expression — bit for bit.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.as_link().transfer_time_s(bytes)
    }

    /// This bus viewed as a communication link (for engines that treat
    /// PCIe/AXI as just another channel).
    pub fn as_link(&self) -> StaticLink {
        StaticLink::new(self.bandwidth, self.latency)
    }
}

/// One accelerator platform instance.
#[derive(Debug, Clone, Copy)]
pub struct Platform {
    /// Which prototype this is.
    pub kind: PlatformKind,
    /// FPGA fabric clock (Hz).
    pub clock_hz: f64,
    /// Host link (paper: PCIe 3.0 at 7.9 GB/s for the car, AXI4 at
    /// 1.2 GB/s for the drone).
    pub bus: BusModel,
    /// Input resolution (width, height).
    pub resolution: (u32, u32),
    /// Matrix-engine block edge (the car instance "uses a larger matrix
    /// multiplication/decomposition unit", Sec. VII-A).
    pub matrix_block: usize,
    /// Pixels the FD/IF pipelines consume per cycle.
    pub pixels_per_cycle: usize,
    /// FPGA static power (W).
    pub static_power_w: f64,
    /// FPGA dynamic power at full activity (W).
    pub dynamic_power_w: f64,
    /// Host CPU busy power for the software portions (W).
    pub host_power_w: f64,
    /// Per-offload driver/doorbell overhead (seconds) for backend kernel
    /// offloads — the three host↔FPGA round trips per frame the paper
    /// describes go through the OS driver, unlike the frontend's streaming
    /// DMA.
    pub offload_overhead_s: f64,
}

impl Platform {
    /// The self-driving-car prototype.
    pub fn edx_car() -> Platform {
        Platform {
            kind: PlatformKind::EdxCar,
            clock_hz: 200e6,
            bus: BusModel {
                bandwidth: 7.9e9,
                latency: 8e-6,
            },
            resolution: (1280, 720),
            matrix_block: 16,
            pixels_per_cycle: 2,
            static_power_w: 3.0,
            dynamic_power_w: 9.0,
            host_power_w: 18.0,
            offload_overhead_s: 3e-4,
        }
    }

    /// The drone prototype.
    pub fn edx_drone() -> Platform {
        Platform {
            kind: PlatformKind::EdxDrone,
            clock_hz: 150e6,
            bus: BusModel {
                bandwidth: 1.2e9,
                latency: 3e-6,
            },
            resolution: (640, 480),
            matrix_block: 8,
            pixels_per_cycle: 2,
            static_power_w: 4.0,
            dynamic_power_w: 3.5,
            host_power_w: 6.0,
            offload_overhead_s: 2e-4,
        }
    }

    /// Pixels per frame at this platform's resolution.
    pub fn pixels(&self) -> usize {
        (self.resolution.0 as usize) * (self.resolution.1 as usize)
    }

    /// Seconds per fabric cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eudoxus_link::LinkModel;

    #[test]
    fn car_outmuscles_drone() {
        let car = Platform::edx_car();
        let drone = Platform::edx_drone();
        assert!(car.clock_hz > drone.clock_hz);
        assert!(car.bus.bandwidth > drone.bus.bandwidth);
        assert!(car.matrix_block > drone.matrix_block);
        assert!(car.pixels() > drone.pixels());
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let bus = Platform::edx_car().bus;
        let small = bus.transfer_time(1024);
        let big = bus.transfer_time(1024 * 1024);
        assert!(big > small);
        // 1 MiB over 7.9 GB/s ≈ 0.13 ms.
        assert!((big - 8e-6 - 1048576.0 / 7.9e9).abs() < 1e-12);
    }

    #[test]
    fn bus_and_static_link_price_bit_equal() {
        // The dedupe contract: `BusModel::transfer_time` and the
        // `StaticLink` it converts into must agree to the last bit on
        // both prototypes' buses, for any payload size.
        for platform in [Platform::edx_car(), Platform::edx_drone()] {
            let bus = platform.bus;
            let link = bus.as_link();
            for bytes in [0usize, 1, 8, 465, 1024, 93_600, 1 << 20, (1 << 27) + 3] {
                let direct = (bus.latency + bytes as f64 / bus.bandwidth).to_bits();
                assert_eq!(bus.transfer_time(bytes).to_bits(), direct);
                assert_eq!(link.transfer_time_s(bytes).to_bits(), direct);
                assert_eq!(link.transfer_time(bytes).unwrap().to_bits(), direct);
            }
        }
    }

    #[test]
    fn resolutions_match_paper() {
        assert_eq!(Platform::edx_car().resolution, (1280, 720));
        assert_eq!(Platform::edx_drone().resolution, (640, 480));
    }
}
