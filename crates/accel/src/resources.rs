//! FPGA resource accounting (paper Table II).
//!
//! Per-block LUT/FF/DSP/BRAM costs, calibrated so the shared design lands
//! near the paper's reported totals, plus the "N.S." (no-sharing)
//! hypothetical: instantiating the frontend per mode and dedicated
//! backend logic per kernel "would more than double" every resource and
//! exceed both boards (Sec. VII-B).

use crate::platform::{Platform, PlatformKind};

/// One resource vector: LUTs, flip-flops, DSP slices, BRAM megabytes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVector {
    /// Look-up tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// DSP slices.
    pub dsp: f64,
    /// Block RAM, in megabytes.
    pub bram_mb: f64,
}

impl ResourceVector {
    /// Element-wise sum.
    pub fn plus(self, o: ResourceVector) -> ResourceVector {
        ResourceVector {
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            dsp: self.dsp + o.dsp,
            bram_mb: self.bram_mb + o.bram_mb,
        }
    }

    /// Element-wise scale.
    pub fn times(self, s: f64) -> ResourceVector {
        ResourceVector {
            lut: self.lut * s,
            ff: self.ff * s,
            dsp: self.dsp * s,
            bram_mb: self.bram_mb * s,
        }
    }
}

/// Board capacity.
#[derive(Debug, Clone, Copy)]
pub struct BoardCapacity {
    /// Board display name.
    pub name: &'static str,
    /// Available resources.
    pub available: ResourceVector,
}

/// Capacity of the platform's FPGA (Virtex-7 XC7V690T / Zynq ZU9CG).
pub fn board_capacity(kind: PlatformKind) -> BoardCapacity {
    match kind {
        PlatformKind::EdxCar => BoardCapacity {
            name: "Virtex-7",
            available: ResourceVector {
                lut: 433_200.0,
                ff: 866_400.0,
                dsp: 3_600.0,
                bram_mb: 6.6, // 52.9 Mb of BRAM
            },
        },
        PlatformKind::EdxDrone => BoardCapacity {
            name: "Zynq",
            available: ResourceVector {
                lut: 274_080.0,
                ff: 548_160.0,
                dsp: 2_520.0,
                bram_mb: 4.0, // 32.1 Mb of BRAM
            },
        },
    }
}

/// Per-block costs for a platform (the car instance uses larger matrix
/// units and buffers for its higher resolution, Sec. VII-A).
fn block_costs(platform: &Platform) -> BlockCosts {
    let scale = if platform.kind == PlatformKind::EdxCar {
        1.0
    } else {
        0.66
    };
    BlockCosts {
        feature_extraction: ResourceVector {
            lut: 195_000.0,
            ff: 99_000.0,
            dsp: 690.0,
            bram_mb: 2.45,
        }
        .times(scale),
        stereo_matching: ResourceVector {
            lut: 62_000.0,
            ff: 33_000.0,
            dsp: 190.0,
            bram_mb: 0.85,
        }
        .times(scale),
        temporal_matching: ResourceVector {
            lut: 35_000.0,
            ff: 17_000.0,
            dsp: 150.0,
            bram_mb: 0.38,
        }
        .times(scale),
        // The five-block matrix engine, including its SPMs.
        backend_engine: ResourceVector {
            lut: 48_000.0,
            ff: 78_000.0,
            dsp: 230.0,
            bram_mb: 1.22,
        }
        .times(scale),
        // DMA, sensor interfaces, control.
        misc: ResourceVector {
            lut: 11_000.0,
            ff: 12_500.0,
            dsp: 24.0,
            bram_mb: 0.1,
        },
    }
}

/// Costs of the major design blocks.
#[derive(Debug, Clone, Copy)]
pub struct BlockCosts {
    /// FD + IF + FC (time-shared between both cameras).
    pub feature_extraction: ResourceVector,
    /// MO + DR.
    pub stereo_matching: ResourceVector,
    /// DC + LSS.
    pub temporal_matching: ResourceVector,
    /// The five-building-block matrix engine.
    pub backend_engine: ResourceVector,
    /// Interconnect/control overhead.
    pub misc: ResourceVector,
}

/// A Table II row: the design's usage, board utilization percentages, and
/// the hypothetical no-sharing usage.
#[derive(Debug, Clone, Copy)]
pub struct ResourceReport {
    /// Shared (actual) design.
    pub shared: ResourceVector,
    /// Utilization of the board by the shared design (fractions 0–1).
    pub utilization: ResourceVector,
    /// No-sharing hypothetical (the "N.S." columns).
    pub no_sharing: ResourceVector,
    /// Frontend share of total used LUTs (the paper reports ~83 %).
    pub frontend_lut_fraction: f64,
}

/// Builds the Table II row for a platform.
pub fn resource_report(platform: &Platform) -> ResourceReport {
    let costs = block_costs(platform);
    let frontend = costs
        .feature_extraction
        .plus(costs.stereo_matching)
        .plus(costs.temporal_matching);
    let shared = frontend.plus(costs.backend_engine).plus(costs.misc);

    // No sharing: each of the three modes instantiates its own frontend
    // (the FE block additionally duplicated per camera stream since
    // time-multiplexing is a sharing technique too), and each backend
    // kernel gets dedicated logic instead of the shared five-block engine.
    let frontend_ns = costs
        .feature_extraction
        .times(2.0) // no L/R time-sharing
        .plus(costs.stereo_matching)
        .plus(costs.temporal_matching)
        .times(3.0); // one per mode
    let backend_ns = costs.backend_engine.times(2.6); // dedicated per-kernel logic
    let no_sharing = frontend_ns.plus(backend_ns).plus(costs.misc);

    let cap = board_capacity(platform.kind).available;
    ResourceReport {
        shared,
        utilization: ResourceVector {
            lut: shared.lut / cap.lut,
            ff: shared.ff / cap.ff,
            dsp: shared.dsp / cap.dsp,
            bram_mb: shared.bram_mb / cap.bram_mb,
        },
        no_sharing,
        frontend_lut_fraction: frontend.lut / shared.lut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn shared_design_fits_both_boards() {
        for p in [Platform::edx_car(), Platform::edx_drone()] {
            let r = resource_report(&p);
            assert!(r.utilization.lut < 1.0, "{:?} LUT {}", p.kind, r.utilization.lut);
            assert!(r.utilization.ff < 1.0);
            assert!(r.utilization.dsp < 1.0);
            assert!(r.utilization.bram_mb < 1.0);
        }
    }

    #[test]
    fn no_sharing_exceeds_the_boards() {
        // Paper Sec. VII-B: "resource consumption of all types would more
        // than double, exceeding the available resources".
        for p in [Platform::edx_car(), Platform::edx_drone()] {
            let r = resource_report(&p);
            let cap = board_capacity(p.kind).available;
            assert!(r.no_sharing.lut > r.shared.lut * 2.0);
            assert!(r.no_sharing.ff > r.shared.ff * 2.0);
            assert!(r.no_sharing.dsp > r.shared.dsp * 2.0);
            assert!(r.no_sharing.bram_mb > r.shared.bram_mb * 2.0);
            assert!(r.no_sharing.lut > cap.lut, "{:?} must not fit", p.kind);
        }
    }

    #[test]
    fn frontend_dominates_lut_usage() {
        // Paper Sec. VII-B: frontend ≈ 83 % of used LUTs, and feature
        // extraction over two-thirds of the frontend.
        let r = resource_report(&Platform::edx_car());
        assert!(
            (0.7..0.95).contains(&r.frontend_lut_fraction),
            "frontend share {}",
            r.frontend_lut_fraction
        );
    }

    #[test]
    fn car_totals_near_paper_table2() {
        // Paper Table II: EDX-CAR ≈ 350 671 LUT, 239 347 FF, 1 284 DSP,
        // 5.0 MB BRAM. The calibration should land within ~15 %.
        let r = resource_report(&Platform::edx_car());
        assert!((r.shared.lut - 350_671.0).abs() / 350_671.0 < 0.15, "lut {}", r.shared.lut);
        assert!((r.shared.ff - 239_347.0).abs() / 239_347.0 < 0.15, "ff {}", r.shared.ff);
        assert!((r.shared.dsp - 1_284.0).abs() / 1_284.0 < 0.15, "dsp {}", r.shared.dsp);
        assert!((r.shared.bram_mb - 5.0).abs() / 5.0 < 0.15, "bram {}", r.shared.bram_mb);
    }

    #[test]
    fn drone_uses_less_than_car() {
        let car = resource_report(&Platform::edx_car());
        let drone = resource_report(&Platform::edx_drone());
        assert!(drone.shared.lut < car.shared.lut);
        assert!(drone.shared.bram_mb < car.shared.bram_mb);
    }
}
