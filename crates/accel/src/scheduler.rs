//! The runtime offload scheduler (paper Sec. VI-B).
//!
//! "Offloading backend kernels to the backend accelerator is not always
//! beneficial due to the overhead of data transfer, especially when the
//! size of the matrix involved in a kernel is small." The scheduler
//! predicts each kernel's CPU time from its workload size using regression
//! models fit offline — linear for projection, quadratic for Kalman gain
//! and marginalization — and offloads only when the accelerator (compute +
//! DMA) would be faster.
//!
//! A trained scheduler runs *in the serving loop*: install it into a
//! live session via `eudoxus_core`'s `ScheduledEngine`
//! (`SessionBuilder::engine(ScheduledEngine::new(platform, scheduler))`)
//! and [`decide`](RuntimeScheduler::decide) places every offloadable
//! kernel of every pushed frame.

use crate::backend_engine::{BackendEngine, BackendKernelKind, KernelDims};
use eudoxus_math::{PolyFit, PolyModel};
use std::collections::HashMap;

/// A per-kernel CPU-latency predictor: a polynomial fit when the training
/// sizes span a range, or a constant (mean) when they do not — a
/// degenerate design (e.g. a fixed-size map) otherwise has no regression.
#[derive(Debug, Clone)]
enum KernelModel {
    Fit(PolyFit),
    Constant(f64),
}

impl KernelModel {
    fn predict(&self, size: f64) -> f64 {
        match self {
            KernelModel::Fit(f) => f.predict(size).max(0.0),
            KernelModel::Constant(c) => *c,
        }
    }
}

/// One offline profiling sample: a kernel ran on the CPU at a given
/// workload size.
#[derive(Debug, Clone, Copy)]
pub struct TrainingSample {
    /// Which kernel.
    pub kind: BackendKernelKind,
    /// Workload size (Fig. 16 x-axes).
    pub size: usize,
    /// Measured CPU latency (milliseconds).
    pub cpu_millis: f64,
}

/// Where a kernel invocation should run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OffloadDecision {
    /// Run on the host CPU; carries the predicted CPU milliseconds.
    Cpu {
        /// Predicted CPU time (ms).
        predicted_cpu_ms: f64,
        /// Estimated accelerator time (ms).
        accel_ms: f64,
    },
    /// Offload to the accelerator; same fields.
    Accelerator {
        /// Predicted CPU time (ms).
        predicted_cpu_ms: f64,
        /// Estimated accelerator time (ms).
        accel_ms: f64,
    },
}

impl OffloadDecision {
    /// True when the decision is to offload.
    pub fn is_offload(&self) -> bool {
        matches!(self, OffloadDecision::Accelerator { .. })
    }
}

/// The trained scheduler.
///
/// # Example
///
/// ```
/// use eudoxus_accel::{BackendKernelKind, RuntimeScheduler, TrainingSample};
///
/// let samples: Vec<TrainingSample> = (1..40)
///     .map(|i| TrainingSample {
///         kind: BackendKernelKind::Projection,
///         size: i * 100,
///         cpu_millis: 0.5 + 0.002 * (i * 100) as f64,
///     })
///     .collect();
/// let sched = RuntimeScheduler::train(&samples).unwrap();
/// assert!(sched.r_squared(BackendKernelKind::Projection).unwrap() > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeScheduler {
    fits: HashMap<BackendKernelKind, KernelModel>,
}

impl RuntimeScheduler {
    /// The paper's model order per kernel: linear for projection,
    /// quadratic for the other two.
    pub fn model_for(kind: BackendKernelKind) -> PolyModel {
        match kind {
            BackendKernelKind::Projection => PolyModel::Linear,
            BackendKernelKind::KalmanGain | BackendKernelKind::Marginalization => {
                PolyModel::Quadratic
            }
        }
    }

    /// Fits the per-kernel regressions from profiling samples. Kernels
    /// with too few samples are simply absent (decisions fall back to
    /// CPU).
    ///
    /// Returns `None` when no kernel had enough samples.
    pub fn train(samples: &[TrainingSample]) -> Option<RuntimeScheduler> {
        let mut fits = HashMap::new();
        for kind in BackendKernelKind::ALL {
            let xs: Vec<f64> = samples
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.size as f64)
                .collect();
            let ys: Vec<f64> = samples
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.cpu_millis)
                .collect();
            let model = Self::model_for(kind);
            if xs.is_empty() {
                continue;
            }
            let mut distinct = xs.clone();
            distinct.sort_by(f64::total_cmp);
            distinct.dedup();
            if xs.len() > model.degree() + 2 && distinct.len() > model.degree() {
                if let Ok(fit) = PolyFit::fit(model, &xs, &ys) {
                    fits.insert(kind, KernelModel::Fit(fit));
                    continue;
                }
            }
            // Degenerate sizes: fall back to the mean latency.
            let mean = ys.iter().sum::<f64>() / ys.len() as f64;
            fits.insert(kind, KernelModel::Constant(mean));
        }
        if fits.is_empty() {
            None
        } else {
            Some(RuntimeScheduler { fits })
        }
    }

    /// `R²` of the fitted model for a kernel (paper Sec. VII-F reports
    /// 0.83 / 0.82 / 0.98). `None` for untrained kernels or constant
    /// (degenerate-size) fallbacks.
    pub fn r_squared(&self, kind: BackendKernelKind) -> Option<f64> {
        match self.fits.get(&kind) {
            Some(KernelModel::Fit(f)) => Some(f.r_squared()),
            _ => None,
        }
    }

    /// Predicted CPU milliseconds for a kernel at `size`.
    pub fn predict_cpu_ms(&self, kind: BackendKernelKind, size: usize) -> Option<f64> {
        self.fits.get(&kind).map(|f| f.predict(size as f64))
    }

    /// Decides where to run one invocation: offload iff the accelerator's
    /// offload time beats the predicted CPU time.
    pub fn decide(&self, engine: &BackendEngine, dims: &KernelDims) -> OffloadDecision {
        self.decide_with_accel_ms(dims.kind(), dims.size(), engine.offload_time(dims) * 1e3)
    }

    /// The same comparison with the accelerator side priced externally:
    /// callers that move kernel data over a modeled link (rather than the
    /// platform bus) compute `accel_ms` themselves and only need the
    /// CPU-prediction half of the decision. Pass `f64::INFINITY` to force
    /// CPU (e.g. the link dropped the frame).
    pub fn decide_with_accel_ms(
        &self,
        kind: BackendKernelKind,
        size: usize,
        accel_ms: f64,
    ) -> OffloadDecision {
        match self.predict_cpu_ms(kind, size) {
            Some(predicted_cpu_ms) if accel_ms < predicted_cpu_ms => {
                OffloadDecision::Accelerator {
                    predicted_cpu_ms,
                    accel_ms,
                }
            }
            Some(predicted_cpu_ms) => OffloadDecision::Cpu {
                predicted_cpu_ms,
                accel_ms,
            },
            // Untrained kernel: be conservative, stay on the CPU.
            None => OffloadDecision::Cpu {
                predicted_cpu_ms: f64::MAX,
                accel_ms,
            },
        }
    }

    /// The oracle's choice for the same invocation, given the *actual* CPU
    /// time: the faster side, always correct (paper Sec. VII-F compares
    /// against exactly this oracle).
    pub fn oracle_decide(
        engine: &BackendEngine,
        dims: &KernelDims,
        actual_cpu_ms: f64,
    ) -> OffloadDecision {
        let accel_ms = engine.offload_time(dims) * 1e3;
        if accel_ms < actual_cpu_ms {
            OffloadDecision::Accelerator {
                predicted_cpu_ms: actual_cpu_ms,
                accel_ms,
            }
        } else {
            OffloadDecision::Cpu {
                predicted_cpu_ms: actual_cpu_ms,
                accel_ms,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn quadratic_samples(kind: BackendKernelKind, a: f64, b: f64, c: f64) -> Vec<TrainingSample> {
        (1..50)
            .map(|i| {
                let x = (i * 5) as f64;
                TrainingSample {
                    kind,
                    size: x as usize,
                    cpu_millis: a + b * x + c * x * x,
                }
            })
            .collect()
    }

    #[test]
    fn trains_all_three_kernels() {
        let mut samples = quadratic_samples(BackendKernelKind::Projection, 0.2, 0.01, 0.0);
        samples.extend(quadratic_samples(BackendKernelKind::KalmanGain, 0.1, 0.0, 2e-4));
        samples.extend(quadratic_samples(
            BackendKernelKind::Marginalization,
            0.3,
            0.0,
            5e-4,
        ));
        let sched = RuntimeScheduler::train(&samples).unwrap();
        for kind in BackendKernelKind::ALL {
            assert!(
                sched.r_squared(kind).unwrap() > 0.99,
                "{kind:?}: {:?}",
                sched.r_squared(kind)
            );
        }
    }

    #[test]
    fn big_kernels_offload_small_ones_do_not() {
        // CPU model: projection takes 0.02 ms per point.
        let samples = quadratic_samples(BackendKernelKind::Projection, 0.0, 0.02, 0.0);
        let sched = RuntimeScheduler::train(&samples).unwrap();
        let engine = BackendEngine::new(Platform::edx_drone());
        let small = sched.decide(&engine, &KernelDims::Projection { map_points: 10 });
        let big = sched.decide(&engine, &KernelDims::Projection { map_points: 20_000 });
        assert!(!small.is_offload(), "{small:?}");
        assert!(big.is_offload(), "{big:?}");
    }

    #[test]
    fn oracle_always_picks_faster_side() {
        let engine = BackendEngine::new(Platform::edx_car());
        let dims = KernelDims::KalmanGain { rows: 100, state: 195 };
        let accel_ms = engine.offload_time(&dims) * 1e3;
        let slow_cpu = RuntimeScheduler::oracle_decide(&engine, &dims, accel_ms * 10.0);
        assert!(slow_cpu.is_offload());
        let fast_cpu = RuntimeScheduler::oracle_decide(&engine, &dims, accel_ms / 10.0);
        assert!(!fast_cpu.is_offload());
    }

    #[test]
    fn untrained_kernel_stays_on_cpu() {
        let samples = quadratic_samples(BackendKernelKind::Projection, 0.0, 0.02, 0.0);
        let sched = RuntimeScheduler::train(&samples).unwrap();
        let engine = BackendEngine::new(Platform::edx_car());
        let d = sched.decide(
            &engine,
            &KernelDims::Marginalization {
                landmarks: 50,
                remaining: 30,
            },
        );
        assert!(!d.is_offload());
    }

    #[test]
    fn too_few_samples_fall_back_to_constant_model() {
        let samples = vec![TrainingSample {
            kind: BackendKernelKind::Projection,
            size: 10,
            cpu_millis: 1.0,
        }];
        let sched = RuntimeScheduler::train(&samples).expect("constant fallback");
        // No regression quality to report, but predictions still work.
        assert!(sched.r_squared(BackendKernelKind::Projection).is_none());
        assert_eq!(
            sched.predict_cpu_ms(BackendKernelKind::Projection, 500),
            Some(1.0)
        );
        assert!(RuntimeScheduler::train(&[]).is_none());
    }

    #[test]
    fn scheduler_agrees_with_oracle_on_clean_data() {
        // With noise-free training data, scheduler and oracle must agree
        // everywhere (paper: < 0.001% difference from oracle).
        let engine = BackendEngine::new(Platform::edx_drone());
        let samples = quadratic_samples(BackendKernelKind::Projection, 0.05, 0.015, 0.0);
        let sched = RuntimeScheduler::train(&samples).unwrap();
        let mut disagreements = 0;
        for mp in (10..30_000).step_by(500) {
            let dims = KernelDims::Projection { map_points: mp };
            let actual = 0.05 + 0.015 * mp as f64;
            let s = sched.decide(&engine, &dims).is_offload();
            let o = RuntimeScheduler::oracle_decide(&engine, &dims, actual).is_offload();
            if s != o {
                disagreements += 1;
            }
        }
        assert!(disagreements <= 1, "{disagreements} disagreements");
    }
}
