//! Stencil-buffer sizing and the replication optimization (Figs. 13–14).
//!
//! A stencil buffer (SB) feeds one or more stencil consumers from a pixel
//! stream. If consumers are far apart in the pipeline, sharing one SB
//! forces every pixel to stay buffered from its production until the *last*
//! consumption: `size = max(C_i) − P`. Re-reading the pixel from DRAM for
//! the late consumer ("replication") shrinks on-chip storage to
//! `Σ (C_i − P_i)` where each `P_i` is a fresh read — the paper's Fig. 14
//! trade-off, which saves ~9 MB on EDX-CAR (Sec. VII-D) at the cost of
//! extra DRAM traffic.

/// One stencil consumer attached to a pixel stream.
#[derive(Debug, Clone, Copy)]
pub struct StencilConsumer {
    /// Display name (e.g. "IF", "FD", "DR").
    pub name: &'static str,
    /// Stencil window rows (a `rows × cols` window needs `rows` lines
    /// buffered).
    pub rows: usize,
    /// Pipeline delay, in cycles, between a pixel's production and this
    /// consumer reading it.
    pub delay_cycles: usize,
}

/// Buffering strategy chosen by [`plan_stencil_buffers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbStrategy {
    /// One SB shared by all consumers (classic line buffer).
    Shared,
    /// One SB per consumer; the stream is re-read from DRAM for late
    /// consumers.
    Replicated,
}

/// Sizing outcome.
#[derive(Debug, Clone, Copy)]
pub struct SbPlan {
    /// The cheaper strategy.
    pub strategy: SbStrategy,
    /// On-chip bytes under the chosen strategy.
    pub bytes: usize,
    /// On-chip bytes the rejected strategy would need.
    pub rejected_bytes: usize,
    /// Extra DRAM reads per frame the chosen strategy incurs (0 for
    /// shared).
    pub extra_dram_reads: usize,
}

/// Bytes a shared SB needs: every pixel lives from production to the last
/// consumption (each consumer's delay already covers filling its own
/// window, so the retention time is the maximum delay).
fn shared_bytes(consumers: &[StencilConsumer], line_width: usize, bytes_per_px: usize) -> usize {
    let max_delay = consumers.iter().map(|c| c.delay_cycles).max().unwrap_or(0);
    let max_rows = consumers.iter().map(|c| c.rows).max().unwrap_or(0);
    max_delay.max(max_rows * line_width) * bytes_per_px
}

/// Bytes under replication: each consumer holds only its own window,
/// reading the stream at its own time.
fn replicated_bytes(consumers: &[StencilConsumer], line_width: usize, bytes_per_px: usize) -> usize {
    consumers
        .iter()
        .map(|c| c.rows * line_width * bytes_per_px)
        .sum()
}

/// Chooses between sharing one SB and replicating per consumer
/// (Fig. 14's "when `P2 > C1`, replicating pixels requires less memory").
///
/// `pixels_per_frame` sizes the DRAM re-read cost.
pub fn plan_stencil_buffers(
    consumers: &[StencilConsumer],
    line_width: usize,
    bytes_per_px: usize,
    pixels_per_frame: usize,
) -> SbPlan {
    let shared = shared_bytes(consumers, line_width, bytes_per_px);
    let replicated = replicated_bytes(consumers, line_width, bytes_per_px);
    if replicated < shared {
        SbPlan {
            strategy: SbStrategy::Replicated,
            bytes: replicated,
            rejected_bytes: shared,
            extra_dram_reads: pixels_per_frame * consumers.len().saturating_sub(1),
        }
    } else {
        SbPlan {
            strategy: SbStrategy::Shared,
            bytes: shared,
            rejected_bytes: replicated,
            extra_dram_reads: 0,
        }
    }
}

/// The frontend's SB consumer set for a given image width: IF (5×5
/// Gaussian) and FD (7×7 FAST footprint) read the stream immediately;
/// DR's block matching re-reads the raw image millions of cycles later
/// (after detection, description and matching optimization complete —
/// paper Sec. V-C: "DR is millions of cycles later than IF and FD in the
/// pipeline").
pub fn frontend_consumers(width: u32, pixels: usize) -> Vec<StencilConsumer> {
    vec![
        StencilConsumer {
            name: "IF",
            rows: 5,
            delay_cycles: 5 * width as usize,
        },
        StencilConsumer {
            name: "FD",
            rows: 7,
            delay_cycles: 7 * width as usize,
        },
        StencilConsumer {
            name: "DR",
            rows: 9,
            // The whole image plus matching must complete first: ≳ 3M
            // cycles on the car configuration (paper Sec. VII-D).
            delay_cycles: pixels * 7 / 2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_consumers_share() {
        // Two windows consuming within a few lines: sharing wins.
        let consumers = [
            StencilConsumer {
                name: "A",
                rows: 3,
                delay_cycles: 3 * 640,
            },
            StencilConsumer {
                name: "B",
                rows: 5,
                delay_cycles: 5 * 640,
            },
        ];
        let plan = plan_stencil_buffers(&consumers, 640, 1, 640 * 480);
        assert_eq!(plan.strategy, SbStrategy::Shared);
        assert_eq!(plan.extra_dram_reads, 0);
        assert!(plan.bytes <= plan.rejected_bytes);
    }

    #[test]
    fn distant_consumer_forces_replication() {
        let consumers = frontend_consumers(1280, 1280 * 720);
        let plan = plan_stencil_buffers(&consumers, 1280, 1, 1280 * 720);
        assert_eq!(plan.strategy, SbStrategy::Replicated);
        assert!(plan.extra_dram_reads > 0);
        assert!(plan.bytes < plan.rejected_bytes / 10);
    }

    #[test]
    fn car_savings_match_paper_scale() {
        // Paper Sec. VII-D: without the optimization the SB size would
        // grow by about 9 MB; with it, SBs stay far below 1 MB.
        let pixels = 1280 * 720;
        let consumers = frontend_consumers(1280, pixels);
        // Two camera streams.
        let plan = plan_stencil_buffers(&consumers, 1280, 1, pixels);
        let saved = 2 * (plan.rejected_bytes - plan.bytes);
        assert!(
            (5_000_000..12_000_000).contains(&saved),
            "saved {saved} bytes"
        );
        assert!(2 * plan.bytes < 600_000, "SB bytes {}", 2 * plan.bytes);
    }

    #[test]
    fn single_consumer_prefers_sharing() {
        let consumers = [StencilConsumer {
            name: "only",
            rows: 3,
            delay_cycles: 3 * 320,
        }];
        let plan = plan_stencil_buffers(&consumers, 320, 1, 320 * 240);
        assert_eq!(plan.strategy, SbStrategy::Shared);
    }

    #[test]
    fn empty_consumer_list() {
        let plan = plan_stencil_buffers(&[], 640, 1, 0);
        assert_eq!(plan.bytes, 0);
    }
}
