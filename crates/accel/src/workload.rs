//! Per-frame workload descriptors consumed by the analytical models.

/// The quantities that determine one frame's accelerator latency. Produced
/// from the real frontend's counters (`eudoxus_frontend::FrameStats`) by
/// the unified pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameWorkload {
    /// Pixels per camera image.
    pub pixels: usize,
    /// FAST detections in the left image.
    pub keypoints_left: usize,
    /// FAST detections in the right image.
    pub keypoints_right: usize,
    /// Accepted stereo matches (drives DR).
    pub stereo_matches: usize,
    /// Temporal tracks processed by DC/LSS.
    pub tracks: usize,
    /// Disparity search range in pixels (drives the DR block-matching
    /// window sweep).
    pub disparity_range: usize,
}

impl FrameWorkload {
    /// A representative workload for the given resolution (used by
    /// resource sizing, which is workload-independent, and by tests).
    pub fn typical(width: u32, height: u32) -> FrameWorkload {
        FrameWorkload {
            pixels: (width as usize) * (height as usize),
            keypoints_left: 350,
            keypoints_right: 350,
            stereo_matches: 260,
            tracks: 300,
            disparity_range: if width >= 1280 { 200 } else { 100 },
        }
    }

    /// Bytes of correspondence data shipped to the backend per frame (the
    /// paper measures 2–3 KB, Sec. V-A).
    pub fn correspondence_bytes(&self) -> usize {
        // 8 bytes per temporal match (two f32 coords) + 4 bytes disparity
        // per spatial match.
        self.tracks * 8 + self.stereo_matches * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_scales_with_resolution() {
        let car = FrameWorkload::typical(1280, 720);
        let drone = FrameWorkload::typical(640, 480);
        assert!(car.pixels > drone.pixels);
        assert!(car.disparity_range > drone.disparity_range);
    }

    #[test]
    fn correspondence_payload_matches_paper_scale() {
        let w = FrameWorkload::typical(1280, 720);
        let kb = w.correspondence_bytes() as f64 / 1024.0;
        assert!((2.0..4.0).contains(&kb), "payload {kb} KB");
    }
}
