//! Property-based tests on the accelerator models: sizing optimality,
//! latency monotonicity, and scheduler consistency.

use eudoxus_accel::backend_engine::{BackendEngine, KernelDims};
use eudoxus_accel::platform::Platform;
use eudoxus_accel::scheduler::{RuntimeScheduler, TrainingSample};
use eudoxus_accel::stencil::{plan_stencil_buffers, StencilConsumer};
use eudoxus_accel::workload::FrameWorkload;
use eudoxus_accel::{BackendKernelKind, FrontendEngine};
use proptest::prelude::*;

fn consumers() -> impl Strategy<Value = Vec<StencilConsumer>> {
    proptest::collection::vec(
        (1usize..12, 0usize..4_000_000).prop_map(|(rows, delay)| StencilConsumer {
            name: "c",
            rows,
            delay_cycles: delay + rows * 640, // delay covers the window fill
        }),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stencil_plan_picks_smaller_strategy(cs in consumers()) {
        let plan = plan_stencil_buffers(&cs, 640, 1, 640 * 480);
        prop_assert!(plan.bytes <= plan.rejected_bytes);
        // Sharing never incurs extra DRAM traffic; replication's extra
        // traffic is one stream re-read per additional consumer.
        match plan.strategy {
            eudoxus_accel::SbStrategy::Shared => prop_assert_eq!(plan.extra_dram_reads, 0),
            eudoxus_accel::SbStrategy::Replicated => {
                prop_assert_eq!(plan.extra_dram_reads, (cs.len() - 1) * 640 * 480)
            }
        }
    }

    #[test]
    fn frontend_latency_is_monotone_in_workload(
        kp in 50usize..800,
        extra in 1usize..300,
    ) {
        let engine = FrontendEngine::new(Platform::edx_drone());
        let mut small = FrameWorkload::typical(640, 480);
        small.keypoints_left = kp;
        small.keypoints_right = kp;
        let mut large = small;
        large.keypoints_left += extra;
        large.keypoints_right += extra;
        large.stereo_matches += extra / 2;
        prop_assert!(engine.latency(&small).total() <= engine.latency(&large).total());
    }

    #[test]
    fn kernel_compute_time_is_monotone_in_size(
        rows in 10usize..200,
        extra in 1usize..100,
    ) {
        let engine = BackendEngine::new(Platform::edx_car());
        let t1 = engine.compute_time(&KernelDims::KalmanGain { rows, state: 195 });
        let t2 = engine.compute_time(&KernelDims::KalmanGain { rows: rows + extra, state: 195 });
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn offload_time_always_exceeds_compute_time(m in 1usize..50_000) {
        let engine = BackendEngine::new(Platform::edx_drone());
        let dims = KernelDims::Projection { map_points: m };
        prop_assert!(engine.offload_time(&dims) > engine.compute_time(&dims));
    }

    #[test]
    fn scheduler_decision_is_threshold_monotone(
        slope in 0.001f64..0.1,
        intercept in 0.0f64..1.0,
    ) {
        // With a monotone CPU model, once the scheduler offloads at size s
        // it must offload at every larger size (projection: linear model,
        // accel time also monotone but flatter).
        let samples: Vec<TrainingSample> = (1..60)
            .map(|i| {
                let size = i * 200;
                TrainingSample {
                    kind: BackendKernelKind::Projection,
                    size,
                    cpu_millis: intercept + slope * size as f64,
                }
            })
            .collect();
        let Some(sched) = RuntimeScheduler::train(&samples) else {
            return Ok(());
        };
        let engine = BackendEngine::new(Platform::edx_drone());
        let mut seen_offload = false;
        for size in (100..20_000).step_by(500) {
            let d = sched
                .decide(&engine, &KernelDims::Projection { map_points: size })
                .is_offload();
            if seen_offload {
                prop_assert!(d, "offload decision reversed at size {size}");
            }
            seen_offload |= d;
        }
    }

    #[test]
    fn oracle_never_loses(actual_cpu_ms in 0.0f64..100.0, rows in 10usize..300) {
        let engine = BackendEngine::new(Platform::edx_car());
        let dims = KernelDims::KalmanGain { rows, state: 195 };
        let accel_ms = engine.offload_time(&dims) * 1e3;
        let decision = RuntimeScheduler::oracle_decide(&engine, &dims, actual_cpu_ms);
        let chosen = if decision.is_offload() { accel_ms } else { actual_cpu_ms };
        prop_assert!(chosen <= accel_ms.min(actual_cpu_ms) + 1e-12);
    }
}
