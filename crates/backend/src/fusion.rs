//! Loosely-coupled GPS fusion (the "Fusion" block of paper Fig. 4).
//!
//! "It fuses the GPS signals with the pose information generated from the
//! filtering block, essentially correcting the cumulative drift introduced
//! in filtering. We use a loosely-coupled approach \[88\], where the GPS
//! positions are integrated through a simple EKF" (paper Sec. IV-A).
//! Each accepted fix becomes a 3-row position measurement applied to the
//! MSCKF's position sub-state; an innovation gate rejects multipath
//! outliers (Sec. II notes GPS "could be unreliable even outdoor when the
//! multi-path problem occurs").

use crate::kernels::{Kernel, KernelTimer};
use crate::msckf::Msckf;
use crate::types::GpsFix;

/// GPS fusion parameters.
#[derive(Debug, Clone, Copy)]
pub struct GpsFusionConfig {
    /// Reject fixes whose innovation exceeds `gate · (σ_fix + σ_filter)`.
    pub gate: f64,
    /// Floor on the measurement σ (meters) — receivers over-report
    /// confidence.
    pub sigma_floor: f64,
}

impl Default for GpsFusionConfig {
    fn default() -> Self {
        GpsFusionConfig {
            gate: 4.0,
            sigma_floor: 0.4,
        }
    }
}

/// Fuses GPS fixes into the VIO filter.
///
/// # Example
///
/// ```
/// use eudoxus_backend::{GpsFusion, GpsFusionConfig};
///
/// let fusion = GpsFusion::new(GpsFusionConfig::default());
/// assert_eq!(fusion.config().gate, 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GpsFusion {
    cfg: GpsFusionConfig,
}

impl GpsFusion {
    /// Creates a fusion stage.
    pub fn new(cfg: GpsFusionConfig) -> Self {
        GpsFusion { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &GpsFusionConfig {
        &self.cfg
    }

    /// Applies every gated fix as a position update on the filter; returns
    /// how many fixes were accepted. Timing lands on the `Fusion` kernel.
    pub fn fuse(&self, filter: &mut Msckf, fixes: &[GpsFix], timer: &mut KernelTimer) -> usize {
        if fixes.is_empty() || !filter.is_initialized() {
            return 0;
        }
        timer.time(Kernel::GpsFusion, fixes.len(), || {
            let mut accepted = 0;
            for fix in fixes {
                let Some(pose) = filter.pose() else { break };
                let innovation = (fix.position - pose.translation).norm();
                let filter_sigma = filter.position_sigma().norm();
                let sigma = fix.sigma.max(self.cfg.sigma_floor);
                if innovation > self.cfg.gate * (sigma + filter_sigma) {
                    continue; // multipath / outlier
                }
                filter.update_position(fix.position, sigma);
                accepted += 1;
            }
            accepted
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msckf::MsckfConfig;
    use eudoxus_geometry::{Pose, Vec3};

    fn drifted_filter() -> Msckf {
        let mut f = Msckf::new(MsckfConfig::default());
        f.initialize(Pose::identity(), Vec3::zero(), 0.0);
        // Grow uncertainty so updates have headroom.
        let readings: Vec<crate::types::ImuReading> = (1..=400)
            .map(|i| crate::types::ImuReading {
                t: i as f64 * 0.005,
                gyro: Vec3::zero(),
                accel: Vec3::new(0.0, 0.0, 9.80665),
            })
            .collect();
        f.propagate(&readings);
        f
    }

    #[test]
    fn good_fixes_are_fused() {
        let mut f = drifted_filter();
        let fusion = GpsFusion::new(GpsFusionConfig::default());
        let mut timer = KernelTimer::new();
        let fixes = [GpsFix {
            t: 2.0,
            position: Vec3::new(0.5, 0.0, 0.0),
            sigma: 0.5,
        }];
        let n = fusion.fuse(&mut f, &fixes, &mut timer);
        assert_eq!(n, 1);
        assert!(f.pose().unwrap().translation.x > 1e-4);
        assert_eq!(timer.samples().len(), 1);
        assert_eq!(timer.samples()[0].kernel, Kernel::GpsFusion);
    }

    #[test]
    fn multipath_fix_is_gated_out() {
        let mut f = drifted_filter();
        let fusion = GpsFusion::new(GpsFusionConfig::default());
        let mut timer = KernelTimer::new();
        // 50 m excursion with small claimed sigma: way past the gate.
        let fixes = [GpsFix {
            t: 2.0,
            position: Vec3::new(50.0, 0.0, 0.0),
            sigma: 0.5,
        }];
        let n = fusion.fuse(&mut f, &fixes, &mut timer);
        assert_eq!(n, 0);
        assert!(f.pose().unwrap().translation.norm() < 1e-6);
    }

    #[test]
    fn uninitialized_filter_is_untouched() {
        let mut f = Msckf::new(MsckfConfig::default());
        let fusion = GpsFusion::new(GpsFusionConfig::default());
        let mut timer = KernelTimer::new();
        let fixes = [GpsFix {
            t: 0.0,
            position: Vec3::zero(),
            sigma: 1.0,
        }];
        assert_eq!(fusion.fuse(&mut f, &fixes, &mut timer), 0);
    }

    #[test]
    fn repeated_fixes_converge_position() {
        let mut f = drifted_filter();
        let fusion = GpsFusion::new(GpsFusionConfig::default());
        let mut timer = KernelTimer::new();
        let target = Vec3::new(1.0, -0.5, 0.2);
        for i in 0..20 {
            let fixes = [GpsFix {
                t: 2.0 + i as f64 * 0.1,
                position: target,
                sigma: 0.5,
            }];
            fusion.fuse(&mut f, &fixes, &mut timer);
        }
        let err = (f.pose().unwrap().translation - target).norm();
        assert!(err < 0.25, "converged to {:?}", f.pose().unwrap().translation);
    }
}
