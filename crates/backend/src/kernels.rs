//! Per-kernel timing instrumentation.
//!
//! The paper's characterization attributes backend latency to named kernels
//! (Figs. 6–8) and correlates each kernel's latency with the size of the
//! matrices it manipulates (Fig. 16). [`KernelSample`] records exactly
//! those two quantities per invocation.

use std::fmt;
use std::time::Instant;

/// Backend kernels, named as in the paper's breakdown figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    // --- VIO mode (Fig. 7) ---
    /// IMU state/covariance propagation ("IMU Proc.").
    ImuIntegration,
    /// Measurement Jacobian construction ("Jacobian").
    Jacobian,
    /// Innovation covariance `S = H·P·Hᵀ + R` ("Cov.").
    Covariance,
    /// Solving `S·K = (P·Hᵀ)ᵀ` ("Kalman Gain") — decomposition +
    /// forward/backward substitution.
    KalmanGain,
    /// Measurement compression ("QR").
    QrCompression,
    /// Loosely-coupled GPS EKF ("Fusion").
    GpsFusion,
    // --- Registration mode (Fig. 6) ---
    /// Camera-model projection of map points ("Projection").
    Projection,
    /// Descriptor matching against the map ("Match").
    MapMatch,
    /// Pose-only Gauss–Newton ("PoseOpt.").
    PoseOptimization,
    /// Pose/track bookkeeping and BoW update ("Update").
    MapUpdate,
    // --- SLAM mode (Fig. 8) ---
    /// Levenberg–Marquardt bundle-adjustment iterations ("Solver").
    Solver,
    /// Schur-complement marginalization of old keyframes
    /// ("Marginalization").
    Marginalization,
    /// Landmark initialization, keyframe and loop-closure bookkeeping
    /// ("Init."/"Others").
    SlamInit,
}

impl Kernel {
    /// The paper's display name for this kernel.
    pub fn paper_name(self) -> &'static str {
        match self {
            Kernel::ImuIntegration => "IMU Proc.",
            Kernel::Jacobian => "Jacobian",
            Kernel::Covariance => "Cov.",
            Kernel::KalmanGain => "Kalman Gain",
            Kernel::QrCompression => "QR",
            Kernel::GpsFusion => "Fusion",
            Kernel::Projection => "Projection",
            Kernel::MapMatch => "Match",
            Kernel::PoseOptimization => "PoseOpt.",
            Kernel::MapUpdate => "Update",
            Kernel::Solver => "Solver",
            Kernel::Marginalization => "Marginalization",
            Kernel::SlamInit => "Init.",
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// One timed kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSample {
    /// Which kernel ran.
    pub kernel: Kernel,
    /// Wall-clock time (milliseconds).
    pub millis: f64,
    /// Workload size — the quantity the paper correlates latency against
    /// (map points for projection, feature rows for Kalman gain, feature
    /// count for marginalization; Fig. 16).
    pub size: usize,
}

/// Collects [`KernelSample`]s during one backend frame.
#[derive(Debug, Default)]
pub struct KernelTimer {
    samples: Vec<KernelSample>,
}

impl KernelTimer {
    /// Creates an empty collector.
    pub fn new() -> Self {
        KernelTimer::default()
    }

    /// Times `f`, attributing its wall-clock cost to `kernel` with the
    /// given workload `size`.
    pub fn time<T>(&mut self, kernel: Kernel, size: usize, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.samples.push(KernelSample {
            kernel,
            millis: t0.elapsed().as_secs_f64() * 1e3,
            size,
        });
        out
    }

    /// Adds an externally measured sample.
    pub fn push(&mut self, sample: KernelSample) {
        self.samples.push(sample);
    }

    /// All samples recorded so far, in execution order.
    pub fn samples(&self) -> &[KernelSample] {
        &self.samples
    }

    /// Consumes the timer, returning its samples.
    pub fn into_samples(self) -> Vec<KernelSample> {
        self.samples
    }

    /// Total milliseconds attributed to `kernel`.
    pub fn total_for(&self, kernel: Kernel) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.kernel == kernel)
            .map(|s| s.millis)
            .sum()
    }

    /// Total milliseconds across all kernels.
    pub fn total(&self) -> f64 {
        self.samples.iter().map(|s| s.millis).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_attributes_to_kernel() {
        let mut t = KernelTimer::new();
        let v = t.time(Kernel::Projection, 100, || 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(t.samples().len(), 1);
        assert_eq!(t.samples()[0].kernel, Kernel::Projection);
        assert_eq!(t.samples()[0].size, 100);
        assert!(t.samples()[0].millis >= 0.0);
    }

    #[test]
    fn totals_aggregate_per_kernel() {
        let mut t = KernelTimer::new();
        t.push(KernelSample {
            kernel: Kernel::Solver,
            millis: 2.0,
            size: 1,
        });
        t.push(KernelSample {
            kernel: Kernel::Solver,
            millis: 3.0,
            size: 2,
        });
        t.push(KernelSample {
            kernel: Kernel::Marginalization,
            millis: 5.0,
            size: 3,
        });
        assert_eq!(t.total_for(Kernel::Solver), 5.0);
        assert_eq!(t.total(), 10.0);
    }

    #[test]
    fn paper_names_match_figures() {
        assert_eq!(Kernel::KalmanGain.paper_name(), "Kalman Gain");
        assert_eq!(Kernel::Marginalization.to_string(), "Marginalization");
        assert_eq!(Kernel::Projection.paper_name(), "Projection");
    }
}
