//! The Eudoxus optimization backend: localization from visual
//! correspondences.
//!
//! The unified framework's backend (paper Fig. 4) "calculates the 6 DoF
//! pose from the visual correspondences generated in the frontend" and
//! "is dynamically configured to execute in one of the three modes":
//!
//! * **VIO** ([`msckf`] + [`fusion`]) — MSCKF sliding-window Kalman
//!   filtering over IMU and feature tracks, with loosely-coupled GPS fusion
//!   correcting drift outdoors.
//! * **SLAM** ([`slam`]) — keyframe bundle adjustment solved by
//!   Levenberg–Marquardt, marginalization of old keyframes via Schur
//!   complement, and bag-of-words loop closure; can persist its map.
//! * **Registration** ([`registration`]) — localization against a
//!   pre-built map: BoW place recognition, descriptor matching, camera-model
//!   projection of map points, and pose-only optimization.
//!
//! Every estimator implements the [`Backend`] trait — a streaming
//! interface (`begin_segment` / `step` / `reset`) advertising its
//! [`BackendMode`] — so the pipeline dispatches frames through a registry
//! of `Box<dyn Backend>` and third parties can plug a custom
//! implementation into any of the three estimator families.
//! Each step reports per-kernel timings ([`kernels`]) with workload sizes,
//! which feed the paper's characterization figures (Figs. 6–11, 16) and
//! the runtime scheduler's regression models (Sec. VI-B).

pub mod fusion;
pub mod kernels;
pub mod map;
pub mod msckf;
pub mod pose_opt;
pub mod registration;
pub mod slam;
pub mod types;
pub mod vio;

pub use fusion::{GpsFusion, GpsFusionConfig};
pub use kernels::{Kernel, KernelSample, KernelTimer};
pub use map::{MapKeyframe, MapPoint, WorldMap};
pub use msckf::{Msckf, MsckfConfig};
pub use pose_opt::{optimize_pose, PoseObservation, PoseOptConfig, PoseOptResult};
pub use registration::{Registration, RegistrationConfig};
pub use slam::{Slam, SlamConfig};
pub use eudoxus_geometry::PoseAnchor;
pub use types::{Backend, BackendEstimate, BackendInput, BackendMode, GpsFix, ImuReading};
pub use vio::{Vio, VioConfig};
