//! Persistent world maps.
//!
//! The SLAM mapping block's output "could be optionally persisted offline
//! and later used in the registration mode" (paper Sec. IV-A). A map is a
//! set of 3-D points with ORB descriptors plus the keyframes that observed
//! them; persistence uses a small self-contained binary format so no
//! serialization dependency is needed.

use eudoxus_frontend::OrbDescriptor;
use eudoxus_geometry::{Pose, Vec3};
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes identifying the map file format.
const MAGIC: &[u8; 8] = b"EUDOXMAP";

/// One landmark in the map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapPoint {
    /// Stable identifier (track id at mapping time).
    pub id: u64,
    /// World position (meters).
    pub position: Vec3,
    /// Representative ORB descriptor.
    pub descriptor: OrbDescriptor,
}

/// One keyframe snapshot in the map.
#[derive(Debug, Clone, PartialEq)]
pub struct MapKeyframe {
    /// Keyframe identifier.
    pub id: u64,
    /// Body pose at capture.
    pub pose: Pose,
    /// Ids of the map points observed from this keyframe.
    pub point_ids: Vec<u64>,
}

/// A persisted map: what SLAM produces and registration consumes.
///
/// # Example
///
/// ```
/// use eudoxus_backend::WorldMap;
///
/// let map = WorldMap::default();
/// assert!(map.points.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldMap {
    /// All landmarks.
    pub points: Vec<MapPoint>,
    /// All keyframes.
    pub keyframes: Vec<MapKeyframe>,
}

impl WorldMap {
    /// Looks up a point by id (linear scan; maps are query-once data).
    pub fn point(&self, id: u64) -> Option<&MapPoint> {
        self.points.iter().find(|p| p.id == id)
    }

    /// Serializes to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.points.len() as u64).to_le_bytes())?;
        for p in &self.points {
            w.write_all(&p.id.to_le_bytes())?;
            for v in [p.position.x, p.position.y, p.position.z] {
                w.write_all(&v.to_le_bytes())?;
            }
            for word in p.descriptor.words() {
                w.write_all(&word.to_le_bytes())?;
            }
        }
        w.write_all(&(self.keyframes.len() as u64).to_le_bytes())?;
        for k in &self.keyframes {
            w.write_all(&k.id.to_le_bytes())?;
            let q = k.pose.rotation;
            for v in [
                q.w,
                q.x,
                q.y,
                q.z,
                k.pose.translation.x,
                k.pose.translation.y,
                k.pose.translation.z,
            ] {
                w.write_all(&v.to_le_bytes())?;
            }
            w.write_all(&(k.point_ids.len() as u64).to_le_bytes())?;
            for pid in &k.point_ids {
                w.write_all(&pid.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes from a reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic header and propagates reader
    /// failures.
    pub fn read_from(r: &mut impl Read) -> io::Result<WorldMap> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a eudoxus map file",
            ));
        }
        let read_u64 = |r: &mut dyn Read| -> io::Result<u64> {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            Ok(u64::from_le_bytes(b))
        };
        let read_f64 = |r: &mut dyn Read| -> io::Result<f64> {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            Ok(f64::from_le_bytes(b))
        };
        let n_points = read_u64(r)? as usize;
        let mut points = Vec::with_capacity(n_points.min(1 << 24));
        for _ in 0..n_points {
            let id = read_u64(r)?;
            let position = Vec3::new(read_f64(r)?, read_f64(r)?, read_f64(r)?);
            let words = [read_u64(r)?, read_u64(r)?, read_u64(r)?, read_u64(r)?];
            points.push(MapPoint {
                id,
                position,
                descriptor: OrbDescriptor::from_words(words),
            });
        }
        let n_kf = read_u64(r)? as usize;
        let mut keyframes = Vec::with_capacity(n_kf.min(1 << 20));
        for _ in 0..n_kf {
            let id = read_u64(r)?;
            let q = eudoxus_geometry::Quaternion::new(
                read_f64(r)?,
                read_f64(r)?,
                read_f64(r)?,
                read_f64(r)?,
            );
            let t = Vec3::new(read_f64(r)?, read_f64(r)?, read_f64(r)?);
            let n_ids = read_u64(r)? as usize;
            let mut point_ids = Vec::with_capacity(n_ids.min(1 << 20));
            for _ in 0..n_ids {
                point_ids.push(read_u64(r)?);
            }
            keyframes.push(MapKeyframe {
                id,
                pose: Pose::new(q, t),
                point_ids,
            });
        }
        Ok(WorldMap { points, keyframes })
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.write_to(&mut f)
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and format errors.
    pub fn load(path: impl AsRef<Path>) -> io::Result<WorldMap> {
        let mut f = std::fs::File::open(path)?;
        WorldMap::read_from(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eudoxus_geometry::Quaternion;

    fn sample_map() -> WorldMap {
        let mut d1 = OrbDescriptor::zero();
        d1.set_bit(5);
        d1.set_bit(100);
        WorldMap {
            points: vec![
                MapPoint {
                    id: 1,
                    position: Vec3::new(1.0, 2.0, 3.0),
                    descriptor: d1,
                },
                MapPoint {
                    id: 9,
                    position: Vec3::new(-0.5, 0.25, 8.0),
                    descriptor: OrbDescriptor::zero(),
                },
            ],
            keyframes: vec![MapKeyframe {
                id: 0,
                pose: Pose::new(
                    Quaternion::from_axis_angle(Vec3::unit_z(), 0.3),
                    Vec3::new(4.0, 5.0, 6.0),
                ),
                point_ids: vec![1, 9],
            }],
        }
    }

    #[test]
    fn roundtrip_through_buffer() {
        let map = sample_map();
        let mut buf = Vec::new();
        map.write_to(&mut buf).unwrap();
        let loaded = WorldMap::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.points.len(), 2);
        assert_eq!(loaded.keyframes.len(), 1);
        assert_eq!(loaded.points[0].descriptor, map.points[0].descriptor);
        assert!((loaded.keyframes[0].pose.translation - map.keyframes[0].pose.translation).norm() < 1e-12);
        assert!(loaded.keyframes[0]
            .pose
            .rotation
            .angle_to(map.keyframes[0].pose.rotation) < 1e-9);
    }

    #[test]
    fn roundtrip_through_file() {
        let map = sample_map();
        let path = std::env::temp_dir().join("eudoxus_map_test.bin");
        map.save(&path).unwrap();
        let loaded = WorldMap::load(&path).unwrap();
        assert_eq!(loaded.points, map.points);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOTAMAP!\0\0\0\0";
        let err = WorldMap::read_from(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn point_lookup() {
        let map = sample_map();
        assert!(map.point(9).is_some());
        assert!(map.point(7).is_none());
    }
}
