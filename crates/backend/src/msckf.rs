//! Multi-State Constraint Kalman Filter (MSCKF) — the VIO filtering block.
//!
//! "We use MSCKF \[64\], a Kalman Filter framework that keeps a sliding
//! window of past observations rather than just the most recent past"
//! (paper Sec. IV-A). The filter maintains the IMU state
//! `(q, b_g, v, b_a, p)` plus a window of up to 30 cloned camera poses
//! (the paper's window size, Sec. VII-B); feature tracks spanning the
//! window produce multi-state constraints that update the filter without
//! putting landmarks in the state.
//!
//! Error-state convention: attitude error `δθ` is in the *world* frame
//! (`R = exp(δθ)·R̂`); the error vector is
//! `[δθ, δb_g, δv, δb_a, δp | δθ_c1, δp_c1 | …]`.

use crate::kernels::{Kernel, KernelTimer};
use crate::types::ImuReading;
use eudoxus_geometry::{
    triangulate_multi_view, Mat3, PinholeCamera, Pose, Quaternion, Vec2, Vec3,
};
use eudoxus_math::{Cholesky, Matrix, Qr, Vector};
use std::collections::HashMap;

/// Gravity vector in the world frame (z up).
const GRAVITY: Vec3 = Vec3::new(0.0, 0.0, -9.80665);

/// Size of the IMU (body) error-state block.
const BODY_DIM: usize = 15;
/// Error-state size of one camera clone.
const CLONE_DIM: usize = 6;

// Offsets within the body error block.
const THETA: usize = 0;
const BG: usize = 3;
const VEL: usize = 6;
const BA: usize = 9;
const POS: usize = 12;

/// MSCKF tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct MsckfConfig {
    /// Maximum camera clones kept in the sliding window (paper: 30).
    pub max_clones: usize,
    /// Pixel measurement noise σ.
    pub sigma_px: f64,
    /// Gyro white noise σ (rad/s/√Hz equivalent per-sample).
    pub gyro_noise: f64,
    /// Accel white noise σ.
    pub accel_noise: f64,
    /// Gyro bias random-walk σ.
    pub gyro_bias_noise: f64,
    /// Accel bias random-walk σ.
    pub accel_bias_noise: f64,
    /// Minimum track length for an update.
    pub min_track_length: usize,
    /// Cap on features folded into one update (bounds worst-case latency).
    pub max_update_features: usize,
    /// Per-observation residual gate (pixels) — rejects mistracks.
    pub residual_gate_px: f64,
}

impl Default for MsckfConfig {
    fn default() -> Self {
        MsckfConfig {
            max_clones: 30,
            sigma_px: 1.5,
            gyro_noise: 2e-3,
            accel_noise: 2e-2,
            gyro_bias_noise: 2e-5,
            accel_bias_noise: 2e-4,
            min_track_length: 3,
            max_update_features: 40,
            residual_gate_px: 8.0,
        }
    }
}

/// One camera clone (pose snapshot at a past frame).
#[derive(Debug, Clone, Copy)]
struct CloneState {
    id: u64,
    rotation: Quaternion,
    position: Vec3,
}

/// One stored feature observation.
#[derive(Debug, Clone, Copy)]
struct TrackObs {
    clone_id: u64,
    pixel: Vec2,
}

/// The MSCKF filter.
///
/// # Example
///
/// ```
/// use eudoxus_backend::{Msckf, MsckfConfig};
/// use eudoxus_geometry::{Pose, Vec3};
///
/// let mut filter = Msckf::new(MsckfConfig::default());
/// filter.initialize(Pose::identity(), Vec3::zero(), 0.0);
/// assert!(filter.pose().is_some());
/// ```
#[derive(Debug)]
pub struct Msckf {
    cfg: MsckfConfig,
    // Nominal state.
    rotation: Quaternion,
    position: Vec3,
    velocity: Vec3,
    gyro_bias: Vec3,
    accel_bias: Vec3,
    clones: Vec<CloneState>,
    /// Error-state covariance, `(15 + 6·len(clones))²`.
    cov: Matrix,
    /// Live feature tracks: id → observations in window order.
    tracks: HashMap<u64, Vec<TrackObs>>,
    last_imu_t: f64,
    next_clone_id: u64,
    initialized: bool,
}

impl Msckf {
    /// Creates an uninitialized filter.
    pub fn new(cfg: MsckfConfig) -> Self {
        Msckf {
            cfg,
            rotation: Quaternion::identity(),
            position: Vec3::zero(),
            velocity: Vec3::zero(),
            gyro_bias: Vec3::zero(),
            accel_bias: Vec3::zero(),
            clones: Vec::new(),
            cov: Matrix::zeros(BODY_DIM, BODY_DIM),
            tracks: HashMap::new(),
            last_imu_t: 0.0,
            next_clone_id: 0,
            initialized: false,
        }
    }

    /// Initializes the filter at a known pose and velocity.
    pub fn initialize(&mut self, pose: Pose, velocity: Vec3, t: f64) {
        self.rotation = pose.rotation;
        self.position = pose.translation;
        self.velocity = velocity;
        self.gyro_bias = Vec3::zero();
        self.accel_bias = Vec3::zero();
        self.clones.clear();
        self.tracks.clear();
        self.last_imu_t = t;
        // Initial uncertainty: small pose, modest velocity/bias.
        let mut p = Matrix::zeros(BODY_DIM, BODY_DIM);
        for i in 0..3 {
            p[(THETA + i, THETA + i)] = 1e-4;
            p[(BG + i, BG + i)] = 1e-4;
            p[(VEL + i, VEL + i)] = 1e-2;
            p[(BA + i, BA + i)] = 1e-2;
            p[(POS + i, POS + i)] = 1e-4;
        }
        self.cov = p;
        self.initialized = true;
    }

    /// Whether [`Msckf::initialize`] has run.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Clears all state back to uninitialized.
    pub fn reset(&mut self) {
        *self = Msckf::new(self.cfg);
    }

    /// Current body pose estimate.
    pub fn pose(&self) -> Option<Pose> {
        self.initialized
            .then(|| Pose::new(self.rotation, self.position))
    }

    /// Current velocity estimate.
    pub fn velocity(&self) -> Vec3 {
        self.velocity
    }

    /// Number of camera clones in the window.
    pub fn window_len(&self) -> usize {
        self.clones.len()
    }

    /// Total error-state dimension.
    fn state_dim(&self) -> usize {
        BODY_DIM + CLONE_DIM * self.clones.len()
    }

    /// Error-state offset of clone `k` in window order.
    fn clone_offset(&self, k: usize) -> usize {
        BODY_DIM + CLONE_DIM * k
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    /// Propagates the nominal state and covariance through IMU readings.
    pub fn propagate(&mut self, readings: &[ImuReading]) {
        for r in readings {
            let dt = (r.t - self.last_imu_t).clamp(1e-5, 0.1);
            self.propagate_one(r, dt);
            self.last_imu_t = r.t;
        }
    }

    fn propagate_one(&mut self, r: &ImuReading, dt: f64) {
        let omega = r.gyro - self.gyro_bias;
        let accel = r.accel - self.accel_bias;
        let rot = self.rotation.to_matrix();
        let a_world = rot * accel + GRAVITY;

        // Nominal state (first-order with midpoint position).
        let v_old = self.velocity;
        self.velocity += a_world * dt;
        self.position += (v_old + self.velocity) * (0.5 * dt);
        self.rotation = self.rotation * Quaternion::from_rotation_vector(omega * dt);
        self.rotation.renormalize();

        // Error-state transition Φ = I + F·dt (+ ½F²dt² on the dominant
        // chain δθ→δv→δp).
        let mut phi = Matrix::identity(BODY_DIM);
        // δθ̇ = -R̂ δbg
        for i in 0..3 {
            for j in 0..3 {
                phi[(THETA + i, BG + j)] = -rot.m[i][j] * dt;
            }
        }
        // δv̇ = -hat(R̂·â)·δθ − R̂·δba
        let a_hat = Mat3::hat(rot * accel);
        for i in 0..3 {
            for j in 0..3 {
                phi[(VEL + i, THETA + j)] = -a_hat.m[i][j] * dt;
                phi[(VEL + i, BA + j)] = -rot.m[i][j] * dt;
            }
        }
        // δṗ = δv, with second-order δp ← δp + δv dt + ½(δv̇)dt².
        for i in 0..3 {
            phi[(POS + i, VEL + i)] = dt;
            for j in 0..3 {
                phi[(POS + i, THETA + j)] = -0.5 * a_hat.m[i][j] * dt * dt;
                phi[(POS + i, BA + j)] = -0.5 * rot.m[i][j] * dt * dt;
            }
        }

        // Blockwise covariance propagation:
        //   P_bb ← Φ P_bb Φᵀ + Q,  P_bc ← Φ P_bc (clone blocks untouched).
        let n = self.state_dim();
        let p_bb = self.cov.block(0, 0, BODY_DIM, BODY_DIM).expect("body block");
        let new_bb = phi
            .matmul(&p_bb)
            .and_then(|m| m.matmul(&phi.transpose()))
            .expect("body covariance product");
        self.cov.set_block(0, 0, &new_bb).expect("body block fits");
        if n > BODY_DIM {
            let p_bc = self
                .cov
                .block(0, BODY_DIM, BODY_DIM, n - BODY_DIM)
                .expect("cross block");
            let new_bc = phi.matmul(&p_bc).expect("cross product");
            self.cov.set_block(0, BODY_DIM, &new_bc).expect("cross fits");
            self.cov
                .set_block(BODY_DIM, 0, &new_bc.transpose())
                .expect("cross fits");
        }
        // Additive process noise.
        let qg = self.cfg.gyro_noise * self.cfg.gyro_noise * dt;
        let qa = self.cfg.accel_noise * self.cfg.accel_noise * dt;
        let qbg = self.cfg.gyro_bias_noise * self.cfg.gyro_bias_noise * dt;
        let qba = self.cfg.accel_bias_noise * self.cfg.accel_bias_noise * dt;
        for i in 0..3 {
            self.cov[(THETA + i, THETA + i)] += qg;
            self.cov[(BG + i, BG + i)] += qbg;
            self.cov[(VEL + i, VEL + i)] += qa;
            self.cov[(BA + i, BA + i)] += qba;
            self.cov[(POS + i, POS + i)] += qa * dt * dt / 3.0;
        }
        self.cov.symmetrize();
    }

    // ------------------------------------------------------------------
    // Clone management
    // ------------------------------------------------------------------

    /// Clones the current pose into the sliding window, growing the
    /// covariance, and returns the clone id.
    pub fn augment_clone(&mut self) -> u64 {
        let id = self.next_clone_id;
        self.next_clone_id += 1;
        let n = self.state_dim();
        // P_new = [P, P·Jᵀ; J·P, J·P·Jᵀ] with J picking (δθ, δp) rows.
        let mut grown = Matrix::zeros(n + CLONE_DIM, n + CLONE_DIM);
        grown
            .set_block(0, 0, &self.cov)
            .expect("existing covariance fits");
        // J·P: rows THETA..THETA+3 and POS..POS+3 of P.
        let mut jp = Matrix::zeros(CLONE_DIM, n);
        for j in 0..n {
            for i in 0..3 {
                jp[(i, j)] = self.cov[(THETA + i, j)];
                jp[(3 + i, j)] = self.cov[(POS + i, j)];
            }
        }
        grown.set_block(n, 0, &jp).expect("jp fits");
        grown.set_block(0, n, &jp.transpose()).expect("pj fits");
        // J·P·Jᵀ.
        let mut jpj = Matrix::zeros(CLONE_DIM, CLONE_DIM);
        for i in 0..CLONE_DIM {
            let src_i = if i < 3 { THETA + i } else { POS + i - 3 };
            for j in 0..CLONE_DIM {
                let src_j = if j < 3 { THETA + j } else { POS + j - 3 };
                jpj[(i, j)] = self.cov[(src_i, src_j)];
            }
        }
        grown.set_block(n, n, &jpj).expect("jpj fits");
        self.cov = grown;
        self.clones.push(CloneState {
            id,
            rotation: self.rotation,
            position: self.position,
        });
        id
    }

    /// Records one feature observation against a clone.
    pub fn record_observation(&mut self, track_id: u64, clone_id: u64, pixel: Vec2) {
        self.tracks
            .entry(track_id)
            .or_default()
            .push(TrackObs { clone_id, pixel });
    }

    // ------------------------------------------------------------------
    // Measurement update
    // ------------------------------------------------------------------

    /// Runs the visual measurement update for one frame.
    ///
    /// `current_track_ids` are the tracks observed this frame (tracks *not*
    /// in this set are complete and get used up); the update also fires for
    /// the oldest clones when the window is full. Timing is recorded into
    /// `timer` under the paper's kernel names.
    pub fn update_from_tracks(
        &mut self,
        camera: &PinholeCamera,
        current_track_ids: &std::collections::HashSet<u64>,
        timer: &mut KernelTimer,
    ) {
        if !self.initialized {
            return;
        }
        // Select completed tracks.
        let mut candidates: Vec<u64> = self
            .tracks
            .iter()
            .filter(|(id, obs)| {
                !current_track_ids.contains(id) && obs.len() >= self.cfg.min_track_length
            })
            .map(|(&id, _)| id)
            .collect();
        // If the window is full, also consume tracks touching the clones
        // about to be pruned.
        let window_full = self.clones.len() >= self.cfg.max_clones;
        if window_full {
            let prune_ids: Vec<u64> = self
                .clones
                .iter()
                .take(self.cfg.max_clones / 3)
                .map(|c| c.id)
                .collect();
            for (&tid, obs) in &self.tracks {
                if obs.len() >= self.cfg.min_track_length
                    && obs.iter().any(|o| prune_ids.contains(&o.clone_id))
                    && !candidates.contains(&tid)
                {
                    candidates.push(tid);
                }
            }
        }
        candidates.sort_unstable();
        candidates.truncate(self.cfg.max_update_features);

        if !candidates.is_empty() {
            self.feature_update(camera, &candidates, timer);
        }
        // Drop consumed tracks.
        for id in &candidates {
            self.tracks.remove(id);
        }
        // Prune clones once the window is full.
        if window_full {
            self.prune_oldest_clones(self.cfg.max_clones / 3);
        }
        // Drop tracks that reference clones no longer in the window.
        let live: std::collections::HashSet<u64> = self.clones.iter().map(|c| c.id).collect();
        self.tracks.retain(|_, obs| {
            obs.retain(|o| live.contains(&o.clone_id));
            !obs.is_empty()
        });
    }

    /// Builds the stacked measurement model for the chosen features and
    /// applies the EKF update.
    fn feature_update(&mut self, camera: &PinholeCamera, feature_ids: &[u64], timer: &mut KernelTimer) {
        let n = self.state_dim();
        // [Jacobian] triangulation + per-feature Jacobians with nullspace
        // projection.
        let (h_all, r_all) = timer.time(Kernel::Jacobian, feature_ids.len(), || {
            let mut h_rows: Vec<Matrix> = Vec::new();
            let mut r_rows: Vec<f64> = Vec::new();
            for &fid in feature_ids {
                let Some(obs) = self.tracks.get(&fid) else { continue };
                // Gather (pose, pixel) pairs for observations whose clones
                // are still in the window.
                let mut pairs: Vec<(Pose, Vec2, usize)> = Vec::new();
                for o in obs {
                    if let Some(k) = self.clones.iter().position(|c| c.id == o.clone_id) {
                        pairs.push((
                            Pose::new(self.clones[k].rotation, self.clones[k].position),
                            o.pixel,
                            k,
                        ));
                    }
                }
                if pairs.len() < self.cfg.min_track_length {
                    continue;
                }
                let tri_input: Vec<(Pose, Vec2)> = pairs.iter().map(|&(p, z, _)| (p, z)).collect();
                let Ok(p_f) = triangulate_multi_view(camera, &tri_input) else {
                    continue;
                };
                let m = pairs.len();
                let mut h_x = Matrix::zeros(2 * m, n);
                let mut h_f = Matrix::zeros(2 * m, 3);
                let mut resid = Vector::zeros(2 * m);
                let mut ok = true;
                for (row, (pose, z, k)) in pairs.iter().enumerate() {
                    let p_cam = pose.inverse_transform(p_f);
                    if p_cam.z <= 0.05 {
                        ok = false;
                        break;
                    }
                    let Some(pred) = camera.project(p_cam) else {
                        ok = false;
                        break;
                    };
                    let r = *z - pred;
                    if r.norm() > self.cfg.residual_gate_px {
                        ok = false;
                        break;
                    }
                    resid[2 * row] = r.x;
                    resid[2 * row + 1] = r.y;
                    let j_pi = camera.projection_jacobian(p_cam);
                    let rot_t = pose.rotation.conjugate().to_matrix();
                    // H_f = Jπ · R̂ᵀ
                    let jf = mat2x3_mul(&j_pi, &rot_t);
                    // H_θ = Jπ · R̂ᵀ · hat(p_f − p_clone)
                    let jtheta = mat2x3_mul3(&jf, &Mat3::hat(p_f - pose.translation));
                    let off = self.clone_offset(*k);
                    for c in 0..3 {
                        h_f[(2 * row, c)] = jf[0][c];
                        h_f[(2 * row + 1, c)] = jf[1][c];
                        h_x[(2 * row, off + c)] = jtheta[0][c];
                        h_x[(2 * row + 1, off + c)] = jtheta[1][c];
                        h_x[(2 * row, off + 3 + c)] = -jf[0][c];
                        h_x[(2 * row + 1, off + 3 + c)] = -jf[1][c];
                    }
                }
                if !ok || 2 * m <= 3 {
                    continue;
                }
                // Nullspace projection: drop the 3 rows spanned by H_f.
                let Ok(qr) = Qr::factor(&h_f) else { continue };
                let mut projected = Matrix::zeros(2 * m - 3, n + 1);
                // Apply Qᵀ column-by-column to [H_x | r], keep rows 3…
                for col in 0..n {
                    let v = qr.qt_mul(&h_x.col(col));
                    for row in 3..2 * m {
                        projected[(row - 3, col)] = v[row];
                    }
                }
                let v = qr.qt_mul(&resid);
                for row in 3..2 * m {
                    projected[(row - 3, n)] = v[row];
                }
                for row in 0..2 * m - 3 {
                    let mut hrow = Matrix::zeros(1, n);
                    for col in 0..n {
                        hrow[(0, col)] = projected[(row, col)];
                    }
                    h_rows.push(hrow);
                    r_rows.push(projected[(row, n)]);
                }
            }
            if h_rows.is_empty() {
                (Matrix::zeros(0, n), Vector::zeros(0))
            } else {
                let mut h = Matrix::zeros(h_rows.len(), n);
                for (i, row) in h_rows.iter().enumerate() {
                    h.set_block(i, 0, row).expect("row fits");
                }
                (h, Vector::from_vec(r_rows))
            }
        });

        if h_all.rows() == 0 {
            return;
        }

        // [QR] measurement compression when over-determined.
        let (h_used, r_used) = timer.time(Kernel::QrCompression, h_all.rows(), || {
            if h_all.rows() > n {
                match Qr::factor(&h_all) {
                    Ok(qr) => {
                        let r_mat = qr.r();
                        let qtr = qr.qt_mul(&r_all);
                        (r_mat, qtr.segment(0, n))
                    }
                    Err(_) => (h_all.clone(), r_all.clone()),
                }
            } else {
                (h_all.clone(), r_all.clone())
            }
        });

        let rows = h_used.rows();
        // [Cov] innovation covariance S = H P Hᵀ + σ²I and P·Hᵀ.
        let (s, pht) = timer.time(Kernel::Covariance, rows, || {
            let pht = self
                .cov
                .matmul(&h_used.transpose())
                .expect("P·Hᵀ dimensions");
            let mut s = h_used.matmul(&pht).expect("H·P·Hᵀ dimensions");
            let sigma2 = self.cfg.sigma_px * self.cfg.sigma_px;
            s.add_diag(sigma2);
            s.symmetrize();
            (s, pht)
        });

        // [Kalman Gain] solve S·Kᵀ = (P·Hᵀ)ᵀ via Cholesky + substitution.
        let gain = timer.time(Kernel::KalmanGain, rows, || {
            Cholesky::factor(&s)
                .and_then(|ch| ch.solve_matrix(&pht.transpose()))
                .map(|kt| kt.transpose())
        });
        let Ok(k) = gain else { return };

        // State correction δx = K·r.
        let dx = k.matvec(&r_used);
        self.apply_correction(&dx);
        // Covariance: P ← (I − K·H)·P, then symmetrize.
        let kh = k.matmul(&h_used).expect("K·H dimensions");
        let mut ikh = Matrix::identity(n);
        ikh -= &kh;
        self.cov = ikh.matmul(&self.cov).expect("covariance update");
        self.cov.symmetrize();
    }

    /// Applies an error-state correction to the nominal state.
    fn apply_correction(&mut self, dx: &Vector) {
        let dtheta = Vec3::new(dx[THETA], dx[THETA + 1], dx[THETA + 2]);
        self.rotation = Quaternion::from_rotation_vector(dtheta) * self.rotation;
        self.gyro_bias += Vec3::new(dx[BG], dx[BG + 1], dx[BG + 2]);
        self.velocity += Vec3::new(dx[VEL], dx[VEL + 1], dx[VEL + 2]);
        self.accel_bias += Vec3::new(dx[BA], dx[BA + 1], dx[BA + 2]);
        self.position += Vec3::new(dx[POS], dx[POS + 1], dx[POS + 2]);
        for (k, clone) in self.clones.iter_mut().enumerate() {
            let off = BODY_DIM + CLONE_DIM * k;
            let dth = Vec3::new(dx[off], dx[off + 1], dx[off + 2]);
            clone.rotation = Quaternion::from_rotation_vector(dth) * clone.rotation;
            clone.position += Vec3::new(dx[off + 3], dx[off + 4], dx[off + 5]);
        }
    }

    /// Direct position measurement update (the loosely-coupled GPS fusion
    /// path — paper's "Fusion" block, a small EKF step on the position
    /// sub-state).
    pub fn update_position(&mut self, measured: Vec3, sigma: f64) {
        if !self.initialized {
            return;
        }
        let n = self.state_dim();
        // H picks the position block.
        let mut h = Matrix::zeros(3, n);
        for i in 0..3 {
            h[(i, POS + i)] = 1.0;
        }
        let r = Vector::from_slice(&[
            measured.x - self.position.x,
            measured.y - self.position.y,
            measured.z - self.position.z,
        ]);
        let pht = self.cov.matmul(&h.transpose()).expect("P·Hᵀ");
        let mut s = h.matmul(&pht).expect("H·P·Hᵀ");
        s.add_diag(sigma * sigma);
        let Ok(ch) = Cholesky::factor(&s) else { return };
        let Ok(kt) = ch.solve_matrix(&pht.transpose()) else {
            return;
        };
        let k = kt.transpose();
        let dx = k.matvec(&r);
        self.apply_correction(&dx);
        let kh = k.matmul(&h).expect("K·H");
        let mut ikh = Matrix::identity(n);
        ikh -= &kh;
        self.cov = ikh.matmul(&self.cov).expect("covariance update");
        self.cov.symmetrize();
    }

    /// Removes the `count` oldest clones (and their covariance
    /// rows/columns).
    fn prune_oldest_clones(&mut self, count: usize) {
        let count = count.min(self.clones.len());
        if count == 0 {
            return;
        }
        let n = self.state_dim();
        let keep: Vec<usize> = (0..BODY_DIM)
            .chain((BODY_DIM + CLONE_DIM * count)..n)
            .collect();
        let mut shrunk = Matrix::zeros(keep.len(), keep.len());
        for (i, &si) in keep.iter().enumerate() {
            for (j, &sj) in keep.iter().enumerate() {
                shrunk[(i, j)] = self.cov[(si, sj)];
            }
        }
        self.cov = shrunk;
        self.clones.drain(0..count);
    }

    /// Position 1-σ bounds from the covariance diagonal (meters).
    pub fn position_sigma(&self) -> Vec3 {
        Vec3::new(
            self.cov[(POS, POS)].max(0.0).sqrt(),
            self.cov[(POS + 1, POS + 1)].max(0.0).sqrt(),
            self.cov[(POS + 2, POS + 2)].max(0.0).sqrt(),
        )
    }

    /// Number of live feature tracks buffered in the window.
    pub fn live_track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Clone ids currently in the window, oldest first (for tests).
    pub fn window_clone_ids(&self) -> Vec<u64> {
        self.clones.iter().map(|c| c.id).collect()
    }

    /// Sum of per-track observation counts (sizes the Jacobian workload).
    pub fn buffered_observation_count(&self) -> usize {
        self.tracks.values().map(|v| v.len()).sum()
    }
}

/// `(2×3) · (3×3)` helper on array Jacobians.
fn mat2x3_mul(j: &[[f64; 3]; 2], m: &Mat3) -> [[f64; 3]; 2] {
    let mut out = [[0.0; 3]; 2];
    for r in 0..2 {
        for c in 0..3 {
            out[r][c] = (0..3).map(|k| j[r][k] * m.m[k][c]).sum();
        }
    }
    out
}

/// Same as [`mat2x3_mul`] for the second factor in the chain.
fn mat2x3_mul3(j: &[[f64; 3]; 2], m: &Mat3) -> [[f64; 3]; 2] {
    mat2x3_mul(j, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelTimer;
    use eudoxus_geometry::PinholeCamera;

    fn camera() -> PinholeCamera {
        PinholeCamera::centered(450.0, 640, 480)
    }

    /// Ideal IMU for a body at rest: zero gyro, specific force −gravity in
    /// body frame (identity attitude ⇒ +9.80665 on z... body y is down
    /// only for heading attitudes; identity here means body = world).
    fn rest_reading(t: f64) -> ImuReading {
        ImuReading {
            t,
            gyro: Vec3::zero(),
            accel: Vec3::new(0.0, 0.0, 9.80665),
        }
    }

    #[test]
    fn stationary_propagation_stays_put() {
        let mut f = Msckf::new(MsckfConfig::default());
        f.initialize(Pose::identity(), Vec3::zero(), 0.0);
        let readings: Vec<ImuReading> = (1..=200).map(|i| rest_reading(i as f64 * 0.005)).collect();
        f.propagate(&readings);
        let pose = f.pose().unwrap();
        assert!(pose.translation.norm() < 1e-6, "drifted {}", pose.translation);
        assert!(f.velocity().norm() < 1e-6);
    }

    #[test]
    fn constant_acceleration_integrates_correctly() {
        let mut f = Msckf::new(MsckfConfig::default());
        f.initialize(Pose::identity(), Vec3::zero(), 0.0);
        // 1 m/s² along world x for 1 s ⇒ p = 0.5 m, v = 1 m/s.
        let readings: Vec<ImuReading> = (1..=200)
            .map(|i| ImuReading {
                t: i as f64 * 0.005,
                gyro: Vec3::zero(),
                accel: Vec3::new(1.0, 0.0, 9.80665),
            })
            .collect();
        f.propagate(&readings);
        assert!((f.pose().unwrap().translation.x - 0.5).abs() < 1e-3);
        assert!((f.velocity().x - 1.0).abs() < 1e-3);
    }

    #[test]
    fn covariance_grows_during_dead_reckoning() {
        let mut f = Msckf::new(MsckfConfig::default());
        f.initialize(Pose::identity(), Vec3::zero(), 0.0);
        let s0 = f.position_sigma().norm();
        let readings: Vec<ImuReading> = (1..=400).map(|i| rest_reading(i as f64 * 0.005)).collect();
        f.propagate(&readings);
        assert!(f.position_sigma().norm() > s0);
    }

    #[test]
    fn augmentation_grows_window_and_covariance() {
        let mut f = Msckf::new(MsckfConfig::default());
        f.initialize(Pose::identity(), Vec3::zero(), 0.0);
        assert_eq!(f.window_len(), 0);
        let id0 = f.augment_clone();
        let id1 = f.augment_clone();
        assert_eq!(f.window_len(), 2);
        assert_ne!(id0, id1);
        assert_eq!(f.cov.shape(), (27, 27));
        // Clone covariance mirrors body pose covariance.
        assert!((f.cov[(15, 15)] - f.cov[(0, 0)]).abs() < 1e-12);
        assert!((f.cov[(18, 18)] - f.cov[(12, 12)]).abs() < 1e-12);
    }

    #[test]
    fn position_update_pulls_toward_measurement() {
        let mut f = Msckf::new(MsckfConfig::default());
        f.initialize(Pose::identity(), Vec3::zero(), 0.0);
        // Let position uncertainty grow first.
        let readings: Vec<ImuReading> = (1..=200).map(|i| rest_reading(i as f64 * 0.005)).collect();
        f.propagate(&readings);
        let before = f.pose().unwrap().translation;
        f.update_position(Vec3::new(1.0, 0.0, 0.0), 0.5);
        let after = f.pose().unwrap().translation;
        assert!(after.x > before.x + 1e-4, "no pull: {} → {}", before.x, after.x);
        assert!(after.x < 1.0, "overshoot: {}", after.x);
    }

    /// Full visual-update loop on perfect synthetic data: a camera moving
    /// along x observing fixed landmarks; the update must keep drift far
    /// below dead reckoning with biased IMU.
    #[test]
    fn visual_updates_bound_drift() {
        let cam = camera();
        let landmarks: Vec<Vec3> = (0..40)
            .map(|i| {
                Vec3::new(
                    (i % 8) as f64 * 1.2 - 4.0,
                    ((i / 8) % 5) as f64 * 1.0 - 2.0,
                    6.0 + (i % 3) as f64,
                )
            })
            .collect();
        let dt_frame = 0.1;
        let imu_dt = 0.005;
        let gyro_bias = Vec3::new(0.002, -0.001, 0.0015);

        let run = |with_vision: bool| -> f64 {
            let mut f = Msckf::new(MsckfConfig {
                max_clones: 8,
                ..MsckfConfig::default()
            });
            f.initialize(Pose::identity(), Vec3::new(0.5, 0.0, 0.0), 0.0);
            let mut timer = KernelTimer::new();
            for frame in 1..=30u64 {
                let t0 = (frame - 1) as f64 * dt_frame;
                // True motion: constant velocity 0.5 m/s along x.
                let readings: Vec<ImuReading> = (1..=20)
                    .map(|i| ImuReading {
                        t: t0 + i as f64 * imu_dt,
                        gyro: gyro_bias, // pure bias, no true rotation
                        accel: Vec3::new(0.0, 0.0, 9.80665),
                    })
                    .collect();
                f.propagate(&readings);
                let clone_id = f.augment_clone();
                let true_pos = Vec3::new(0.5 * (t0 + dt_frame), 0.0, 0.0);
                let true_pose = Pose::new(Quaternion::identity(), true_pos);
                let mut seen = std::collections::HashSet::new();
                if with_vision {
                    for (li, lm) in landmarks.iter().enumerate() {
                        if let Some(px) = cam.project_in_bounds(true_pose.inverse_transform(*lm)) {
                            f.record_observation(li as u64, clone_id, px);
                            seen.insert(li as u64);
                        }
                    }
                }
                f.update_from_tracks(&cam, &seen, &mut timer);
            }
            let true_final = Vec3::new(0.5 * 30.0 * dt_frame, 0.0, 0.0);
            (f.pose().unwrap().translation - true_final).norm()
        };

        let drift_without = run(false);
        let drift_with = run(true);
        assert!(
            drift_with < drift_without * 0.5,
            "vision {drift_with:.3} m vs dead-reckoning {drift_without:.3} m"
        );
        assert!(drift_with < 0.3, "vision drift too large: {drift_with:.3} m");
    }

    #[test]
    fn window_is_bounded_and_prunes_oldest() {
        let cam = camera();
        let mut f = Msckf::new(MsckfConfig {
            max_clones: 6,
            ..MsckfConfig::default()
        });
        f.initialize(Pose::identity(), Vec3::zero(), 0.0);
        let mut timer = KernelTimer::new();
        for i in 0..20 {
            let readings = [rest_reading(i as f64 * 0.1 + 0.05)];
            f.propagate(&readings);
            f.augment_clone();
            f.update_from_tracks(&cam, &std::collections::HashSet::new(), &mut timer);
        }
        assert!(f.window_len() <= 6, "window {}", f.window_len());
        let ids = f.window_clone_ids();
        // Oldest ids must have been pruned.
        assert!(ids[0] > 0);
        for w in ids.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn kernel_timings_are_recorded() {
        let cam = camera();
        let mut f = Msckf::new(MsckfConfig {
            max_clones: 5,
            min_track_length: 3,
            ..MsckfConfig::default()
        });
        // Constant velocity 0.5 m/s along x gives the parallax
        // triangulation needs.
        f.initialize(Pose::identity(), Vec3::new(0.5, 0.0, 0.0), 0.0);
        let mut timer = KernelTimer::new();
        let lms: Vec<Vec3> = (0..10)
            .map(|i| Vec3::new(i as f64 * 0.5 - 2.0, 0.3, 5.0))
            .collect();
        for frame in 1..=5u64 {
            let t0 = (frame - 1) as f64 * 0.1;
            let readings: Vec<ImuReading> = (1..=20)
                .map(|i| rest_reading(t0 + i as f64 * 0.005))
                .collect();
            f.propagate(&readings);
            let cid = f.augment_clone();
            let true_pose = Pose::new(
                Quaternion::identity(),
                Vec3::new(0.5 * frame as f64 * 0.1, 0.0, 0.0),
            );
            let mut seen = std::collections::HashSet::new();
            if frame <= 4 {
                for (li, lm) in lms.iter().enumerate() {
                    if let Some(px) = cam.project_in_bounds(true_pose.inverse_transform(*lm)) {
                        f.record_observation(li as u64, cid, px);
                        seen.insert(li as u64);
                    }
                }
            }
            f.update_from_tracks(&cam, &seen, &mut timer);
        }
        // After the tracks end (frame 5), the update must have fired.
        let kinds: std::collections::HashSet<_> =
            timer.samples().iter().map(|s| s.kernel).collect();
        assert!(kinds.contains(&Kernel::Jacobian), "kinds: {kinds:?}");
        assert!(kinds.contains(&Kernel::Covariance), "kinds: {kinds:?}");
        assert!(kinds.contains(&Kernel::KalmanGain), "kinds: {kinds:?}");
    }

    #[test]
    fn reset_clears_initialization() {
        let mut f = Msckf::new(MsckfConfig::default());
        f.initialize(Pose::identity(), Vec3::zero(), 0.0);
        f.augment_clone();
        f.reset();
        assert!(!f.is_initialized());
        assert_eq!(f.window_len(), 0);
    }
}
