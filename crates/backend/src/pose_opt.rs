//! Pose-only Gauss–Newton optimization on 2D–3D correspondences.
//!
//! Shared by the registration mode ("PoseOpt." in paper Fig. 6) and the
//! SLAM tracking block: given matched world points and their pixel
//! observations, refine the 6-DoF camera pose by minimizing reprojection
//! error with a robust (Huber) weight.

use eudoxus_geometry::{Mat3, PinholeCamera, Pose, Quaternion, Vec2, Vec3};
use eudoxus_math::{Matrix, Vector};

/// One 2D–3D correspondence.
#[derive(Debug, Clone, Copy)]
pub struct PoseObservation {
    /// World-frame point.
    pub world: Vec3,
    /// Observed pixel.
    pub pixel: Vec2,
}

/// Result of [`optimize_pose`].
#[derive(Debug, Clone, Copy)]
pub struct PoseOptResult {
    /// Refined pose.
    pub pose: Pose,
    /// Iterations executed.
    pub iterations: usize,
    /// Final mean reprojection error over inliers (pixels).
    pub mean_error_px: f64,
    /// Number of observations within the Huber band at convergence.
    pub inliers: usize,
}

/// Gauss–Newton settings.
#[derive(Debug, Clone, Copy)]
pub struct PoseOptConfig {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Stop when the update norm falls below this.
    pub epsilon: f64,
    /// Huber threshold (pixels).
    pub huber_px: f64,
    /// Hard outlier gate (pixels): residuals beyond this are ignored
    /// entirely (wrong associations can be hundreds of pixels off).
    pub outlier_gate_px: f64,
}

impl Default for PoseOptConfig {
    fn default() -> Self {
        PoseOptConfig {
            max_iterations: 10,
            epsilon: 1e-7,
            huber_px: 4.0,
            outlier_gate_px: 12.0,
        }
    }
}

/// Refines `initial` so the world points project onto their pixels.
///
/// Returns `None` when fewer than 4 observations are usable (pose would be
/// under-constrained).
pub fn optimize_pose(
    camera: &PinholeCamera,
    initial: Pose,
    observations: &[PoseObservation],
    cfg: &PoseOptConfig,
) -> Option<PoseOptResult> {
    if observations.len() < 4 {
        return None;
    }
    let mut pose = initial;
    let mut iterations = 0;
    for it in 0..cfg.max_iterations {
        iterations = it + 1;
        // Accumulate the 6×6 normal equations over world-frame pose
        // perturbation [δθ, δp].
        let mut h = Matrix::zeros(6, 6);
        let mut g = Vector::zeros(6);
        let mut used = 0usize;
        // A coarse initialization can push every residual past the gate;
        // count the gated survivors first and disable the gate when it
        // would starve the solve (Huber still bounds outlier influence).
        let gated_survivors = observations
            .iter()
            .filter(|obs| {
                let p_cam = pose.inverse_transform(obs.world);
                p_cam.z > 0.05
                    && camera
                        .project(p_cam)
                        .is_some_and(|pred| (obs.pixel - pred).norm() <= cfg.outlier_gate_px)
            })
            .count();
        let gate = if gated_survivors >= 4 {
            cfg.outlier_gate_px
        } else {
            f64::INFINITY
        };
        for obs in observations {
            let p_cam = pose.inverse_transform(obs.world);
            if p_cam.z <= 0.05 {
                continue;
            }
            let Some(pred) = camera.project(p_cam) else { continue };
            let r = obs.pixel - pred;
            let e = r.norm();
            if e > gate {
                continue; // gated outlier
            }
            // Huber weight.
            let w = if e <= cfg.huber_px { 1.0 } else { cfg.huber_px / e };
            // ∂h/∂δθ = Jπ·Rᵀ·hat(p_w − t); ∂h/∂δp = −Jπ·Rᵀ.
            let j_pi = camera.projection_jacobian(p_cam);
            let rot_t = pose.rotation.conjugate().to_matrix();
            let jf = mul2x3(&j_pi, &rot_t);
            let jtheta = mul2x3(&jf, &Mat3::hat(obs.world - pose.translation));
            // Residual jacobian J = ∂r/∂x = −∂h/∂x.
            let mut jrow = [[0.0f64; 6]; 2];
            for c in 0..3 {
                jrow[0][c] = -jtheta[0][c];
                jrow[1][c] = -jtheta[1][c];
                jrow[0][3 + c] = jf[0][c];
                jrow[1][3 + c] = jf[1][c];
            }
            let rv = [r.x, r.y];
            for a in 0..6 {
                for b in 0..6 {
                    h[(a, b)] += w * (jrow[0][a] * jrow[0][b] + jrow[1][a] * jrow[1][b]);
                }
                g[a] += w * (jrow[0][a] * rv[0] + jrow[1][a] * rv[1]);
            }
            used += 1;
        }
        if used < 4 {
            return None;
        }
        h.add_diag(1e-8);
        // GN step: (JᵀJ)δ = −Jᵀr.
        let step = h.solve_spd(&(-&g)).ok()?;
        let dtheta = Vec3::new(step[0], step[1], step[2]);
        let dp = Vec3::new(step[3], step[4], step[5]);
        pose = Pose::new(
            Quaternion::from_rotation_vector(dtheta) * pose.rotation,
            pose.translation + dp,
        );
        if step.norm() < cfg.epsilon {
            break;
        }
    }
    // Final statistics.
    let mut err_sum = 0.0;
    let mut inliers = 0usize;
    for obs in observations {
        let p_cam = pose.inverse_transform(obs.world);
        if p_cam.z <= 0.05 {
            continue;
        }
        if let Some(pred) = camera.project(p_cam) {
            let e = (obs.pixel - pred).norm();
            if e <= cfg.huber_px {
                inliers += 1;
                err_sum += e;
            }
        }
    }
    Some(PoseOptResult {
        pose,
        iterations,
        mean_error_px: if inliers > 0 { err_sum / inliers as f64 } else { f64::MAX },
        inliers,
    })
}

fn mul2x3(j: &[[f64; 3]; 2], m: &Mat3) -> [[f64; 3]; 2] {
    let mut out = [[0.0; 3]; 2];
    for r in 0..2 {
        for c in 0..3 {
            out[r][c] = (0..3).map(|k| j[r][k] * m.m[k][c]).sum();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera() -> PinholeCamera {
        PinholeCamera::centered(500.0, 640, 480)
    }

    fn scene() -> Vec<Vec3> {
        (0..24)
            .map(|i| {
                Vec3::new(
                    (i % 6) as f64 * 0.8 - 2.0,
                    ((i / 6) % 4) as f64 * 0.7 - 1.0,
                    4.0 + (i % 5) as f64 * 0.9,
                )
            })
            .collect()
    }

    fn observe(cam: &PinholeCamera, pose: Pose, points: &[Vec3]) -> Vec<PoseObservation> {
        points
            .iter()
            .filter_map(|&w| {
                cam.project_in_bounds(pose.inverse_transform(w))
                    .map(|pixel| PoseObservation { world: w, pixel })
            })
            .collect()
    }

    #[test]
    fn recovers_perturbed_pose() {
        let cam = camera();
        let truth = Pose::from_rotation_vector(Vec3::new(0.02, -0.05, 0.1), Vec3::new(0.4, -0.2, 0.1));
        let obs = observe(&cam, truth, &scene());
        assert!(obs.len() >= 10);
        let init = Pose::from_rotation_vector(Vec3::new(0.0, 0.0, 0.05), Vec3::new(0.2, 0.0, 0.0));
        let result = optimize_pose(&cam, init, &obs, &PoseOptConfig::default()).unwrap();
        assert!(result.pose.translation_distance(truth) < 1e-4, "t err {}", result.pose.translation_distance(truth));
        assert!(result.pose.rotation_distance(truth) < 1e-5);
        assert!(result.mean_error_px < 1e-3);
    }

    #[test]
    fn robust_to_outliers() {
        let cam = camera();
        let truth = Pose::new(Quaternion::identity(), Vec3::new(0.1, 0.1, 0.0));
        let mut obs = observe(&cam, truth, &scene());
        // Corrupt 20% with gross errors.
        let n_bad = obs.len() / 5;
        for o in obs.iter_mut().take(n_bad) {
            o.pixel = o.pixel + Vec2::new(60.0, -40.0);
        }
        let result =
            optimize_pose(&cam, Pose::identity(), &obs, &PoseOptConfig::default()).unwrap();
        assert!(
            result.pose.translation_distance(truth) < 0.05,
            "t err {}",
            result.pose.translation_distance(truth)
        );
        assert!(result.inliers >= obs.len() - n_bad - 2);
    }

    #[test]
    fn too_few_observations_rejected() {
        let cam = camera();
        let obs = vec![
            PoseObservation {
                world: Vec3::new(0.0, 0.0, 5.0),
                pixel: Vec2::new(320.0, 240.0),
            };
            3
        ];
        assert!(optimize_pose(&cam, Pose::identity(), &obs, &PoseOptConfig::default()).is_none());
    }

    #[test]
    fn exact_initial_pose_converges_immediately() {
        let cam = camera();
        let truth = Pose::new(Quaternion::identity(), Vec3::new(0.3, 0.0, -0.1));
        let obs = observe(&cam, truth, &scene());
        let result = optimize_pose(&cam, truth, &obs, &PoseOptConfig::default()).unwrap();
        assert!(result.iterations <= 2);
        assert!(result.pose.translation_distance(truth) < 1e-9);
    }
}
