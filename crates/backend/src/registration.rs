//! The registration backend mode: localization against a given map.
//!
//! "It calculates the 6 DoF pose against a given map … using the
//! bag-of-words framework" (paper Sec. III). Per frame the mode runs the
//! four kernels of paper Fig. 6: **Update** (BoW bookkeeping and — when
//! lost — global relocalization), **Projection** (the camera-model
//! projection of all map points, a `3×4 · 4×M` matrix multiply whose
//! latency scales with the number of map points, Fig. 16a), **Match**
//! (descriptor association), and **PoseOpt.** (pose-only Gauss–Newton).

use crate::kernels::{Kernel, KernelTimer};
use crate::map::WorldMap;
use crate::pose_opt::{optimize_pose, PoseObservation, PoseOptConfig};
use crate::types::{Backend, BackendEstimate, BackendInput, BackendMode};
use eudoxus_geometry::{Pose, PoseAnchor, Vec2};
use eudoxus_vocab::{KeyframeDatabase, Vocabulary, VocabularyConfig};

/// Registration tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct RegistrationConfig {
    /// Max descriptor Hamming distance for a 2D–3D match.
    pub max_hamming: u32,
    /// Pixel search radius around a projected map point.
    pub match_radius_px: f64,
    /// Pose optimizer settings.
    pub pose_opt: PoseOptConfig,
    /// Minimum accepted matches to stay "tracking".
    pub min_matches: usize,
    /// Maximum mean reprojection error of pose-opt inliers for the frame
    /// to count as tracking (rejects coincidental matches against a wrong
    /// map).
    pub max_mean_error_px: f64,
    /// Vocabulary shape for the relocalization database.
    pub vocab: VocabularyConfig,
}

impl Default for RegistrationConfig {
    fn default() -> Self {
        RegistrationConfig {
            max_hamming: 50,
            match_radius_px: 30.0,
            pose_opt: PoseOptConfig::default(),
            min_matches: 8,
            max_mean_error_px: 2.5,
            vocab: VocabularyConfig::default(),
        }
    }
}

/// The registration backend.
///
/// # Example
///
/// ```
/// use eudoxus_backend::{Backend, BackendMode, Registration, RegistrationConfig, WorldMap};
///
/// let reg = Registration::new(WorldMap::default(), RegistrationConfig::default());
/// assert_eq!(reg.mode(), BackendMode::Registration);
/// assert_eq!(reg.name(), "registration");
/// ```
#[derive(Debug)]
pub struct Registration {
    cfg: RegistrationConfig,
    map: WorldMap,
    vocab: Option<Vocabulary>,
    db: KeyframeDatabase,
    pose: Option<Pose>,
    motion: Pose,
    relocalizations: usize,
}

impl Registration {
    /// Creates a registration backend over a persisted map, training the
    /// relocalization vocabulary from the map's descriptors.
    pub fn new(map: WorldMap, cfg: RegistrationConfig) -> Self {
        let (vocab, db) = if map.points.is_empty() {
            (None, KeyframeDatabase::new())
        } else {
            let corpus: Vec<_> = map.points.iter().map(|p| p.descriptor).collect();
            let mut vocab = Vocabulary::train(&corpus, &cfg.vocab, 23);
            // One document per keyframe: descriptors of its observed points.
            let docs: Vec<Vec<_>> = map
                .keyframes
                .iter()
                .map(|k| {
                    k.point_ids
                        .iter()
                        .filter_map(|pid| map.point(*pid).map(|p| p.descriptor))
                        .collect()
                })
                .collect();
            vocab.reweight_idf(&docs);
            let mut db = KeyframeDatabase::new();
            for (kf, doc) in map.keyframes.iter().zip(&docs) {
                db.insert(kf.id, vocab.bow(doc));
            }
            (Some(vocab), db)
        };
        Registration {
            cfg,
            map,
            vocab,
            db,
            pose: None,
            motion: Pose::identity(),
            relocalizations: 0,
        }
    }

    /// The map being localized against.
    pub fn map(&self) -> &WorldMap {
        &self.map
    }

    /// How many global relocalizations (BoW queries after being lost) have
    /// fired.
    pub fn relocalizations(&self) -> usize {
        self.relocalizations
    }

    /// BoW global relocalization: the best-matching keyframe's pose.
    fn relocalize(&mut self, descriptors: &[eudoxus_frontend::OrbDescriptor]) -> Option<Pose> {
        let vocab = self.vocab.as_ref()?;
        let bow = vocab.bow(descriptors);
        let hits = self.db.query(&bow, 1);
        let hit = hits.first()?;
        let kf = self.map.keyframes.iter().find(|k| k.id == hit.doc_id)?;
        self.relocalizations += 1;
        Some(kf.pose)
    }
}

impl Backend for Registration {
    fn mode(&self) -> BackendMode {
        BackendMode::Registration
    }

    fn begin_segment(&mut self, _anchor: Option<PoseAnchor>) {
        // Registration localizes globally against its map (BoW
        // relocalization), so a segment anchor carries no information it
        // needs — matching the pre-streaming pipeline, which never
        // anchored this mode.
        self.reset();
    }

    fn step(&mut self, input: &BackendInput<'_>) -> BackendEstimate {
        let mut timer = KernelTimer::new();
        let camera = input.rig.camera;

        // [Update] BoW bookkeeping + relocalization when lost.
        let descriptors: Vec<_> = input.observations.iter().map(|o| o.descriptor).collect();
        let predicted = timer.time(Kernel::MapUpdate, descriptors.len(), || {
            match self.pose {
                Some(p) => Some(p * self.motion),
                None => self.relocalize(&descriptors),
            }
        });
        let Some(predicted) = predicted else {
            return BackendEstimate {
                pose: Pose::identity(),
                kernels: timer.into_samples(),
                tracking: false,
            };
        };

        // [Projection] project every map point through the predicted pose —
        // the `C · X` kernel over all M map points.
        let visible: Vec<(usize, Vec2)> = timer.time(
            Kernel::Projection,
            self.map.points.len(),
            || {
                self.map
                    .points
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| {
                        camera
                            .project_in_bounds(predicted.inverse_transform(p.position))
                            .map(|px| (i, px))
                    })
                    .collect()
            },
        );

        // [Match] associate observations to projected map points.
        let matches: Vec<PoseObservation> = timer.time(
            Kernel::MapMatch,
            input.observations.len(),
            || {
                let r2 = self.cfg.match_radius_px * self.cfg.match_radius_px;
                let mut out = Vec::new();
                let mut used = vec![false; self.map.points.len()];
                for o in input.observations {
                    let opx = Vec2::new(o.x as f64, o.y as f64);
                    let mut best: Option<(usize, u32)> = None;
                    for &(pi, ppx) in &visible {
                        if used[pi] {
                            continue;
                        }
                        let d = ppx - opx;
                        if d.norm_squared() > r2 {
                            continue;
                        }
                        let h = o.descriptor.hamming(&self.map.points[pi].descriptor);
                        if h <= self.cfg.max_hamming && best.is_none_or(|(_, bh)| h < bh) {
                            best = Some((pi, h));
                        }
                    }
                    if let Some((pi, _)) = best {
                        used[pi] = true;
                        out.push(PoseObservation {
                            world: self.map.points[pi].position,
                            pixel: opx,
                        });
                    }
                }
                out
            },
        );

        // [PoseOpt.] pose-only Gauss–Newton on the accepted matches.
        let optimized = timer.time(Kernel::PoseOptimization, matches.len(), || {
            optimize_pose(&camera, predicted, &matches, &self.cfg.pose_opt)
        });

        let tracking = matches.len() >= self.cfg.min_matches
            && optimized.is_some_and(|r| {
                r.inliers >= self.cfg.min_matches && r.mean_error_px <= self.cfg.max_mean_error_px
            });
        let new_pose = optimized.map_or(predicted, |r| r.pose);
        if tracking {
            if let Some(prev) = self.pose {
                self.motion = prev.between(new_pose);
            }
            self.pose = Some(new_pose);
        } else {
            // Lost: force relocalization next frame.
            self.pose = None;
            self.motion = Pose::identity();
        }

        BackendEstimate {
            pose: new_pose,
            kernels: timer.into_samples(),
            tracking,
        }
    }

    fn reset(&mut self) {
        self.pose = None;
        self.motion = Pose::identity();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{MapKeyframe, MapPoint};
    use eudoxus_frontend::{Observation, OrbDescriptor};
    use eudoxus_geometry::{PinholeCamera, StereoRig, Vec3};

    fn rig() -> StereoRig {
        StereoRig::new(PinholeCamera::centered(450.0, 640, 480), 0.11)
    }

    fn descriptor_for(i: usize) -> OrbDescriptor {
        let mut d = OrbDescriptor::zero();
        for b in 0..10 {
            d.set_bit((i * 37 + b * 11) % 256);
        }
        d
    }

    fn synthetic_map() -> (WorldMap, Vec<Vec3>) {
        let positions: Vec<Vec3> = (0..50)
            .map(|i| {
                Vec3::new(
                    (i % 10) as f64 * 0.8 - 3.5,
                    ((i / 10) % 5) as f64 * 0.7 - 1.4,
                    5.0 + (i % 3) as f64,
                )
            })
            .collect();
        let points: Vec<MapPoint> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| MapPoint {
                id: i as u64,
                position: p,
                descriptor: descriptor_for(i),
            })
            .collect();
        let keyframes = vec![MapKeyframe {
            id: 0,
            pose: Pose::identity(),
            point_ids: (0..50).collect(),
        }];
        (WorldMap { points, keyframes }, positions)
    }

    fn observations_at(rig: &StereoRig, pose: Pose, positions: &[Vec3]) -> Vec<Observation> {
        positions
            .iter()
            .enumerate()
            .filter_map(|(i, lm)| {
                rig.camera
                    .project_in_bounds(pose.inverse_transform(*lm))
                    .map(|px| Observation {
                        track_id: i as u64,
                        x: px.x as f32,
                        y: px.y as f32,
                        disparity: None,
                        descriptor: descriptor_for(i),
                    })
            })
            .collect()
    }

    #[test]
    fn localizes_against_map() {
        let rig = rig();
        let (map, positions) = synthetic_map();
        let mut reg = Registration::new(map, RegistrationConfig::default());
        let mut worst = 0.0f64;
        for frame in 0..8 {
            let truth = Pose::new(Default::default(), Vec3::new(0.1 * frame as f64, 0.02 * frame as f64, 0.0));
            let obs = observations_at(&rig, truth, &positions);
            let report = reg.step(&BackendInput {
                t: frame as f64 * 0.1,
                observations: &obs,
                imu: &[],
                gps: &[],
                rig,
            });
            assert!(report.tracking, "lost at frame {frame}");
            worst = worst.max(report.pose.translation_distance(truth));
        }
        assert!(worst < 0.03, "worst error {worst}");
        // First frame required a relocalization (no prior pose).
        assert_eq!(reg.relocalizations(), 1);
    }

    #[test]
    fn kernel_set_matches_figure6() {
        let rig = rig();
        let (map, positions) = synthetic_map();
        let mut reg = Registration::new(map, RegistrationConfig::default());
        let obs = observations_at(&rig, Pose::identity(), &positions);
        let report = reg.step(&BackendInput {
            t: 0.0,
            observations: &obs,
            imu: &[],
            gps: &[],
            rig,
        });
        let kinds: Vec<Kernel> = report.kernels.iter().map(|k| k.kernel).collect();
        assert!(kinds.contains(&Kernel::MapUpdate));
        assert!(kinds.contains(&Kernel::Projection));
        assert!(kinds.contains(&Kernel::MapMatch));
        assert!(kinds.contains(&Kernel::PoseOptimization));
        // Projection size is the map size (the M in C·X).
        let proj = report
            .kernels
            .iter()
            .find(|k| k.kernel == Kernel::Projection)
            .unwrap();
        assert_eq!(proj.size, 50);
    }

    #[test]
    fn relocalizes_after_losing_track() {
        let rig = rig();
        let (map, positions) = synthetic_map();
        let mut reg = Registration::new(map, RegistrationConfig::default());
        let truth = Pose::identity();
        let obs = observations_at(&rig, truth, &positions);
        assert!(reg
            .step(&BackendInput {
                t: 0.0,
                observations: &obs,
                imu: &[],
                gps: &[],
                rig,
            })
            .tracking);
        // A frame with garbage observations loses tracking.
        let garbage: Vec<Observation> = (0..20)
            .map(|i| Observation {
                track_id: 1000 + i,
                x: 10.0 + i as f32,
                y: 10.0,
                disparity: None,
                descriptor: OrbDescriptor::from_words([u64::MAX; 4]),
            })
            .collect();
        let lost = reg.step(&BackendInput {
            t: 0.1,
            observations: &garbage,
            imu: &[],
            gps: &[],
            rig,
        });
        assert!(!lost.tracking);
        // Good observations again: BoW relocalization recovers the pose.
        let recovered = reg.step(&BackendInput {
            t: 0.2,
            observations: &obs,
            imu: &[],
            gps: &[],
            rig,
        });
        assert!(recovered.tracking);
        assert!(recovered.pose.translation_distance(truth) < 0.05);
        assert!(reg.relocalizations() >= 2);
    }

    #[test]
    fn empty_map_never_tracks() {
        let rig = rig();
        let mut reg = Registration::new(WorldMap::default(), RegistrationConfig::default());
        let report = reg.step(&BackendInput {
            t: 0.0,
            observations: &[],
            imu: &[],
            gps: &[],
            rig,
        });
        assert!(!report.tracking);
    }
}
