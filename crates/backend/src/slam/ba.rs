//! Bundle adjustment by Levenberg–Marquardt with Schur elimination, plus
//! keyframe marginalization.
//!
//! The SLAM mapping block solves "a non-linear optimization problem, which
//! minimizes the projection errors from 2D features to 3D points in the
//! map … using the Levenberg–Marquardt method" (paper Sec. IV-A). The
//! landmark block of the Hessian is 3×3 block-diagonal, so each iteration
//! eliminates landmarks by Schur complement and solves only the reduced
//! pose system — the same structure the paper's marginalization kernel
//! exploits in hardware (Fig. 15: `A_rr − A_rm·A_mm⁻¹·A_mr`).

use eudoxus_geometry::{Mat3, PinholeCamera, Pose, Quaternion, Vec2, Vec3};
use eudoxus_math::{schur_complement, Matrix, Vector};

/// One reprojection measurement inside a [`BaProblem`].
#[derive(Debug, Clone, Copy)]
pub struct BaObservation {
    /// Index into [`BaProblem::poses`].
    pub kf: usize,
    /// Index into [`BaProblem::landmarks`].
    pub landmark: usize,
    /// Observed pixel (left camera).
    pub pixel: Vec2,
    /// Observed stereo disparity, when the frontend matched the feature
    /// across the pair. Disparity rows anchor the metric scale that pure
    /// monocular reprojection leaves weakly observable over short window
    /// baselines.
    pub disparity: Option<f64>,
}

/// A local bundle-adjustment problem.
#[derive(Debug, Clone)]
pub struct BaProblem {
    /// Camera intrinsics.
    pub camera: PinholeCamera,
    /// Stereo baseline (meters) for disparity residuals.
    pub baseline: f64,
    /// Keyframe poses (body == camera frame).
    pub poses: Vec<Pose>,
    /// `fixed[i]` freezes pose `i` (gauge anchoring).
    pub fixed: Vec<bool>,
    /// Landmark world positions.
    pub landmarks: Vec<Vec3>,
    /// All reprojection measurements.
    pub observations: Vec<BaObservation>,
}

/// Levenberg–Marquardt settings.
#[derive(Debug, Clone, Copy)]
pub struct LmConfig {
    /// Maximum accepted iterations.
    pub max_iterations: usize,
    /// Initial damping λ.
    pub initial_lambda: f64,
    /// Convergence threshold on relative cost decrease.
    pub epsilon: f64,
    /// Huber threshold (pixels) — mistracked features must not drag the
    /// quadratic cost (the real frontend has a heavy outlier tail).
    pub huber_px: f64,
    /// Hard outlier gate (pixels): residuals beyond this contribute a
    /// constant cost and zero gradient (wrong stereo matches can be
    /// hundreds of pixels off and would otherwise steer the solve).
    pub outlier_gate_px: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            max_iterations: 8,
            initial_lambda: 1e-3,
            epsilon: 1e-6,
            huber_px: 2.5,
            outlier_gate_px: 25.0,
        }
    }
}

/// Outcome of [`solve_lm`].
#[derive(Debug, Clone, Copy)]
pub struct LmResult {
    /// Iterations that produced an accepted step.
    pub iterations: usize,
    /// Total squared reprojection error before optimization (px²).
    pub initial_cost: f64,
    /// Total squared reprojection error after (px²).
    pub final_cost: f64,
    /// Rows of the reduced (pose) system — the matrix size the
    /// accelerator's Solver kernel sees.
    pub reduced_dim: usize,
}

/// A Gaussian prior on a subset of poses produced by marginalization:
/// cost `½·eᵀ·H·e` with `e` the stacked `[δθ, δp]` of each pose relative
/// to its linearization point.
#[derive(Debug, Clone)]
pub struct PosePrior {
    /// Pose indices (into the consumer's window) this prior constrains.
    pub kf_indices: Vec<usize>,
    /// Information matrix (`6m × 6m`).
    pub information: Matrix,
    /// Linearization poses, one per constrained index.
    pub linearization: Vec<Pose>,
}

/// Minimal 6-vector `[log(R·R₀ᵀ), t − t₀]` of a pose relative to its
/// linearization point (world-frame convention, matching the BA
/// perturbation).
fn pose_error(pose: Pose, lin: Pose) -> [f64; 6] {
    let dr = eudoxus_geometry::log_so3((pose.rotation * lin.rotation.conjugate()).to_matrix());
    let dt = pose.translation - lin.translation;
    [dr.x, dr.y, dr.z, dt.x, dt.y, dt.z]
}

/// Huber ρ(e) for residual magnitude `e`: quadratic inside `k`, linear
/// outside.
fn huber_rho(e: f64, k: f64) -> f64 {
    if e <= k {
        e * e
    } else {
        k * (2.0 * e - k)
    }
}

/// Total robust reprojection cost of the problem (Huber, px²-equivalent).
/// Observations behind the camera contribute a fixed large penalty.
pub fn total_cost(p: &BaProblem) -> f64 {
    let cfg = LmConfig::default();
    total_cost_with(p, cfg.huber_px, cfg.outlier_gate_px)
}

/// [`total_cost`] with explicit Huber threshold and outlier gate.
pub fn total_cost_with(p: &BaProblem, huber_px: f64, gate_px: f64) -> f64 {
    let mut cost = 0.0;
    for o in &p.observations {
        let p_cam = p.poses[o.kf].inverse_transform(p.landmarks[o.landmark]);
        match p.camera.project(p_cam) {
            Some(pred) if p_cam.z > 0.05 => {
                let r = o.pixel - pred;
                // Beyond the gate the cost saturates: the observation is
                // an outlier and must neither pull the solution nor reward
                // configurations that merely shrink its error.
                cost += huber_rho(r.norm().min(gate_px), huber_px);
                if let Some(d) = o.disparity {
                    let pred_d = p.camera.fx * p.baseline / p_cam.z;
                    cost += huber_rho((d - pred_d).abs().min(gate_px), huber_px);
                }
            }
            _ => cost += huber_rho(gate_px, huber_px),
        }
    }
    cost
}

/// Solves the problem in place. Returns statistics; on unrecoverable
/// numerical failure the problem is left at its best-so-far state.
pub fn solve_lm(p: &mut BaProblem, cfg: &LmConfig, prior: Option<&PosePrior>) -> LmResult {
    // Slot assignment for free poses.
    let slots: Vec<Option<usize>> = {
        let mut next = 0usize;
        p.fixed
            .iter()
            .map(|&f| {
                if f {
                    None
                } else {
                    let s = next;
                    next += 1;
                    Some(s)
                }
            })
            .collect()
    };
    let n_free = slots.iter().flatten().count();
    let n_lm = p.landmarks.len();
    let np = 6 * n_free;
    let initial_cost = total_cost_with(p, cfg.huber_px, cfg.outlier_gate_px);
    let mut result = LmResult {
        iterations: 0,
        initial_cost,
        final_cost: initial_cost,
        reduced_dim: np,
    };
    if np == 0 || n_lm == 0 || p.observations.is_empty() {
        return result;
    }

    let mut lambda = cfg.initial_lambda;
    let mut cost = initial_cost;
    for _ in 0..cfg.max_iterations {
        // ---- Linearize: accumulate H_pp, H_pl, H_ll, gradients. ----
        let mut h_pp = Matrix::zeros(np, np);
        let mut g_p = Vector::zeros(np);
        let mut h_ll: Vec<Mat3> = vec![Mat3::zero(); n_lm];
        let mut g_l: Vec<Vec3> = vec![Vec3::zero(); n_lm];
        // Sparse pose-landmark coupling: (slot, lm) → 6×3 block. BTreeMap
        // rather than HashMap: the Schur reduction below iterates this map
        // accumulating floats, and a deterministic order keeps whole runs
        // bit-reproducible (HashMap order varies per instance).
        let mut h_pl: std::collections::BTreeMap<(usize, usize), [[f64; 3]; 6]> =
            std::collections::BTreeMap::new();

        for o in &p.observations {
            let pose = p.poses[o.kf];
            let lm = p.landmarks[o.landmark];
            let p_cam = pose.inverse_transform(lm);
            if p_cam.z <= 0.05 {
                continue;
            }
            let Some(pred) = p.camera.project(p_cam) else { continue };
            let raw_r = [o.pixel.x - pred.x, o.pixel.y - pred.y];
            let e = (raw_r[0] * raw_r[0] + raw_r[1] * raw_r[1]).sqrt();
            if e > cfg.outlier_gate_px {
                continue; // gated outlier: zero gradient/Hessian
            }
            let w = if e <= cfg.huber_px { 1.0 } else { cfg.huber_px / e };
            let r = [raw_r[0], raw_r[1]];
            let j_pi = p.camera.projection_jacobian(p_cam);
            let rot_t = pose.rotation.conjugate().to_matrix();
            // ∂h/∂landmark = Jπ·Rᵀ; residual jacobian J_l = −that.
            let jh_l = mul2x3(&j_pi, &rot_t);
            // ∂h/∂δθ = Jπ·Rᵀ·hat(l − t) ; ∂h/∂δp = −Jπ·Rᵀ.
            let jh_th = mul2x3_m(&jh_l, &Mat3::hat(lm - pose.translation));
            // Landmark gradient/Hessian (J_l = −jh_l).
            for a in 0..3 {
                for b in 0..3 {
                    h_ll[o.landmark].m[a][b] +=
                        w * (jh_l[0][a] * jh_l[0][b] + jh_l[1][a] * jh_l[1][b]);
                }
            }
            // g_l = J_lᵀ r = −jh_lᵀ r.
            let gl = Vec3::new(
                -w * (jh_l[0][0] * r[0] + jh_l[1][0] * r[1]),
                -w * (jh_l[0][1] * r[0] + jh_l[1][1] * r[1]),
                -w * (jh_l[0][2] * r[0] + jh_l[1][2] * r[1]),
            );
            g_l[o.landmark] += gl;

            if let Some(slot) = slots[o.kf] {
                // Pose residual jacobian J_p = [−jh_th | +jh_l].
                let mut jp = [[0.0f64; 6]; 2];
                for c in 0..3 {
                    jp[0][c] = -jh_th[0][c];
                    jp[1][c] = -jh_th[1][c];
                    jp[0][3 + c] = jh_l[0][c];
                    jp[1][3 + c] = jh_l[1][c];
                }
                let base = 6 * slot;
                for a in 0..6 {
                    for b in 0..6 {
                        h_pp[(base + a, base + b)] +=
                            w * (jp[0][a] * jp[0][b] + jp[1][a] * jp[1][b]);
                    }
                    g_p[base + a] += w * (jp[0][a] * r[0] + jp[1][a] * r[1]);
                }
                // Coupling block J_pᵀ J_l (6×3), J_l = −jh_l.
                let entry = h_pl.entry((slot, o.landmark)).or_insert([[0.0; 3]; 6]);
                for a in 0..6 {
                    for b in 0..3 {
                        entry[a][b] +=
                            w * (jp[0][a] * (-jh_l[0][b]) + jp[1][a] * (-jh_l[1][b]));
                    }
                }
            }

            // Disparity (stereo) residual row: d = fx·B/z depends on the
            // camera-frame depth only.
            if let Some(d_obs) = o.disparity {
                let pred_d = p.camera.fx * p.baseline / p_cam.z;
                let r_d = d_obs - pred_d;
                if r_d.abs() <= cfg.outlier_gate_px {
                    let w_d = if r_d.abs() <= cfg.huber_px {
                        1.0
                    } else {
                        cfg.huber_px / r_d.abs()
                    };
                    // ∂d/∂p_cam = (0, 0, −fx·B/z²); chain through
                    // p_cam = Rᵀ(l − t).
                    let dd_dz = -p.camera.fx * p.baseline / (p_cam.z * p_cam.z);
                    let rot_t = pose.rotation.conjugate().to_matrix();
                    // ∂h_d/∂landmark = dd_dz · (Rᵀ row 2).
                    let jl_d = [
                        dd_dz * rot_t.m[2][0],
                        dd_dz * rot_t.m[2][1],
                        dd_dz * rot_t.m[2][2],
                    ];
                    // Landmark terms (J = −jh).
                    for a in 0..3 {
                        for b in 0..3 {
                            h_ll[o.landmark].m[a][b] += w_d * jl_d[a] * jl_d[b];
                        }
                    }
                    g_l[o.landmark] += Vec3::new(
                        -w_d * jl_d[0] * r_d,
                        -w_d * jl_d[1] * r_d,
                        -w_d * jl_d[2] * r_d,
                    );
                    if let Some(slot) = slots[o.kf] {
                        // ∂h_d/∂δθ = dd_dz · (Rᵀ·hat(l−t)) row 2;
                        // ∂h_d/∂δp = −jl_d.
                        let hat = Mat3::hat(lm - pose.translation);
                        let mut jth_d = [0.0f64; 3];
                        for c in 0..3 {
                            jth_d[c] = (0..3)
                                .map(|k| dd_dz * rot_t.m[2][k] * hat.m[k][c])
                                .sum();
                        }
                        let mut jp_d = [0.0f64; 6];
                        for c in 0..3 {
                            jp_d[c] = -jth_d[c];
                            jp_d[3 + c] = jl_d[c];
                        }
                        let base = 6 * slot;
                        for a in 0..6 {
                            for b in 0..6 {
                                h_pp[(base + a, base + b)] += w_d * jp_d[a] * jp_d[b];
                            }
                            g_p[base + a] += w_d * jp_d[a] * r_d;
                        }
                        let entry =
                            h_pl.entry((slot, o.landmark)).or_insert([[0.0; 3]; 6]);
                        for a in 0..6 {
                            for b in 0..3 {
                                entry[a][b] += w_d * jp_d[a] * (-jl_d[b]);
                            }
                        }
                    }
                }
            }
        }

        // Marginalization prior contribution.
        if let Some(prior) = prior {
            let m = prior.kf_indices.len();
            // e = stacked pose errors; gradient += H·e, Hessian += H.
            let mut e = Vector::zeros(6 * m);
            for (bi, (&kf, lin)) in prior
                .kf_indices
                .iter()
                .zip(&prior.linearization)
                .enumerate()
            {
                if kf >= p.poses.len() {
                    continue;
                }
                let pe = pose_error(p.poses[kf], *lin);
                for c in 0..6 {
                    e[6 * bi + c] = pe[c];
                }
            }
            let he = prior.information.matvec(&e);
            for (bi, &kf) in prior.kf_indices.iter().enumerate() {
                let Some(Some(slot)) = slots.get(kf) else { continue };
                let base = 6 * slot;
                for a in 0..6 {
                    g_p[base + a] += he[6 * bi + a];
                    for (bj, &kf2) in prior.kf_indices.iter().enumerate() {
                        let Some(Some(slot2)) = slots.get(kf2) else { continue };
                        let base2 = 6 * slot2;
                        for b in 0..6 {
                            h_pp[(base + a, base2 + b)] +=
                                prior.information[(6 * bi + a, 6 * bj + b)];
                        }
                    }
                }
            }
        }

        // ---- Try LM steps with increasing damping. ----
        let mut accepted = false;
        for _try in 0..4 {
            // Damped landmark inverses.
            let mut ll_inv: Vec<Mat3> = Vec::with_capacity(n_lm);
            let mut ok = true;
            for h in &h_ll {
                let mut d = *h;
                for i in 0..3 {
                    d.m[i][i] += lambda + 1e-9;
                }
                match d.inverse() {
                    Some(inv) => ll_inv.push(inv),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                lambda *= 4.0;
                continue;
            }
            // Reduced system S = H_pp + λI − Σ H_pl·H_ll⁻¹·H_lp,
            // rhs = −g_p + Σ H_pl·H_ll⁻¹·g_l.
            let mut s = h_pp.clone();
            s.add_diag(lambda);
            let mut rhs = -&g_p;
            for (&(slot, lm), blk) in &h_pl {
                let inv = ll_inv[lm];
                // W = H_pl·H_ll⁻¹ (6×3).
                let mut w = [[0.0f64; 3]; 6];
                for a in 0..6 {
                    for b in 0..3 {
                        w[a][b] = (0..3).map(|k| blk[a][k] * inv.m[k][b]).sum();
                    }
                }
                // S block (slot, slot2) -= W·H_lpᵀ for every slot2 sharing lm.
                for (&(slot2, lm2), blk2) in &h_pl {
                    if lm2 != lm {
                        continue;
                    }
                    let base = 6 * slot;
                    let base2 = 6 * slot2;
                    for a in 0..6 {
                        for b in 0..6 {
                            let upd: f64 = (0..3).map(|k| w[a][k] * blk2[b][k]).sum();
                            s[(base + a, base2 + b)] -= upd;
                        }
                    }
                }
                // rhs += W·g_l.
                let base = 6 * slot;
                let gl = g_l[lm];
                for a in 0..6 {
                    rhs[base + a] += w[a][0] * gl.x + w[a][1] * gl.y + w[a][2] * gl.z;
                }
            }
            let Ok(dp) = s.solve_spd(&rhs).or_else(|_| s.solve(&rhs)) else {
                lambda *= 4.0;
                continue;
            };
            // Back-substitute landmarks: δl = H_ll⁻¹(−g_l − H_lp·δp).
            let mut dl: Vec<Vec3> = vec![Vec3::zero(); n_lm];
            let mut rhs_l: Vec<Vec3> = g_l.iter().map(|g| -*g).collect();
            for (&(slot, lm), blk) in &h_pl {
                let base = 6 * slot;
                let mut acc = Vec3::zero();
                for b in 0..3 {
                    let v: f64 = (0..6).map(|a| blk[a][b] * dp[base + a]).sum();
                    match b {
                        0 => acc.x = v,
                        1 => acc.y = v,
                        _ => acc.z = v,
                    }
                }
                rhs_l[lm] -= acc;
            }
            for lm in 0..n_lm {
                dl[lm] = ll_inv[lm] * rhs_l[lm];
            }
            // Apply tentatively.
            let saved_poses = p.poses.clone();
            let saved_lms = p.landmarks.clone();
            for (kf, slot) in slots.iter().enumerate() {
                let Some(slot) = slot else { continue };
                let base = 6 * slot;
                let dth = Vec3::new(dp[base], dp[base + 1], dp[base + 2]);
                let dt = Vec3::new(dp[base + 3], dp[base + 4], dp[base + 5]);
                p.poses[kf] = Pose::new(
                    Quaternion::from_rotation_vector(dth) * p.poses[kf].rotation,
                    p.poses[kf].translation + dt,
                );
            }
            for (lm, d) in dl.iter().enumerate() {
                p.landmarks[lm] += *d;
            }
            let new_cost = total_cost_with(p, cfg.huber_px, cfg.outlier_gate_px);
            if new_cost < cost {
                cost = new_cost;
                lambda = (lambda / 3.0).max(1e-9);
                accepted = true;
                result.iterations += 1;
                break;
            }
            // Reject: restore and raise damping.
            p.poses = saved_poses;
            p.landmarks = saved_lms;
            lambda *= 4.0;
        }
        if !accepted {
            break;
        }
        if (result.final_cost - cost).abs() / cost.max(1e-12) < cfg.epsilon {
            result.final_cost = cost;
            break;
        }
        result.final_cost = cost;
    }
    result.final_cost = cost;
    result
}

/// Marginalizes one keyframe: builds the joint Hessian over
/// `[exclusive landmarks | marginalized pose | remaining poses]` from the
/// observations touching the marginalized state, Schur-complements the
/// first block out (the paper's `A_rr − A_rm·A_mm⁻¹·A_mr`, Fig. 15), and
/// returns a [`PosePrior`] on the remaining poses.
///
/// `marg_kf` and `remaining` index into `poses`. `exclusive_landmarks`
/// lists landmark indices observed *only* by the marginalized keyframe
/// among the window. Returns `None` when the marginalized block is not
/// invertible (e.g. no observations).
///
/// The returned `matrix_dim` is the dimension of the marginalized block —
/// the size the accelerator's marginalization kernel operates on
/// (Fig. 16c correlates it with feature count).
pub fn marginalize_keyframe(
    camera: &PinholeCamera,
    poses: &[Pose],
    landmarks: &[Vec3],
    observations: &[BaObservation],
    marg_kf: usize,
    exclusive_landmarks: &[usize],
    remaining: &[usize],
) -> Option<(PosePrior, usize)> {
    let k = exclusive_landmarks.len();
    let m = remaining.len();
    if m == 0 {
        return None;
    }
    let dim_m = 3 * k + 6; // marginalized block: landmarks + pose
    let dim_r = 6 * m;
    let n = dim_m + dim_r;
    let lm_slot = |lm: usize| -> Option<usize> {
        exclusive_landmarks.iter().position(|&l| l == lm)
    };
    let kf_slot = |kf: usize| -> Option<usize> {
        if kf == marg_kf {
            Some(3 * k) // the pose block right after landmarks
        } else {
            remaining.iter().position(|&r| r == kf).map(|i| dim_m + 6 * i)
        }
    };

    let mut h = Matrix::zeros(n, n);
    let mut involved_obs = 0usize;
    for o in observations {
        let touches = o.kf == marg_kf || lm_slot(o.landmark).is_some();
        if !touches {
            continue;
        }
        let Some(pose_base) = kf_slot(o.kf) else { continue };
        let pose = poses[o.kf];
        let lm = landmarks[o.landmark];
        let p_cam = pose.inverse_transform(lm);
        if p_cam.z <= 0.05 || camera.project(p_cam).is_none() {
            continue;
        }
        involved_obs += 1;
        let j_pi = camera.projection_jacobian(p_cam);
        let rot_t = pose.rotation.conjugate().to_matrix();
        let jh_l = mul2x3(&j_pi, &rot_t);
        let jh_th = mul2x3_m(&jh_l, &Mat3::hat(lm - pose.translation));
        // Row jacobian over [landmark(3)? | pose(6)] in global coords.
        // J entries: landmark block (if exclusive) and pose block.
        let mut cols: Vec<(usize, [f64; 2])> = Vec::with_capacity(9);
        if let Some(ls) = lm_slot(o.landmark) {
            for c in 0..3 {
                cols.push((3 * ls + c, [-jh_l[0][c], -jh_l[1][c]]));
            }
        }
        for c in 0..3 {
            cols.push((pose_base + c, [jh_th[0][c], jh_th[1][c]]));
            cols.push((pose_base + 3 + c, [-jh_l[0][c], -jh_l[1][c]]));
        }
        for &(ci, jv_i) in &cols {
            for &(cj, jv_j) in &cols {
                h[(ci, cj)] += jv_i[0] * jv_j[0] + jv_i[1] * jv_j[1];
            }
        }
    }
    if involved_obs < 3 {
        return None;
    }
    // Regularize the marginalized block so the Schur complement exists
    // even for weakly observed landmarks.
    for i in 0..dim_m {
        h[(i, i)] += 1e-6;
    }
    let a_mm = h.block(0, 0, dim_m, dim_m).ok()?;
    let a_mr = h.block(0, dim_m, dim_m, dim_r).ok()?;
    let a_rm = h.block(dim_m, 0, dim_r, dim_m).ok()?;
    let a_rr = h.block(dim_m, dim_m, dim_r, dim_r).ok()?;
    let mut prior_h = schur_complement(&a_mm, &a_mr, &a_rm, &a_rr).ok()?;
    prior_h.symmetrize();
    Some((
        PosePrior {
            kf_indices: remaining.to_vec(),
            information: prior_h,
            linearization: remaining.iter().map(|&i| poses[i]).collect(),
        },
        dim_m,
    ))
}

fn mul2x3(j: &[[f64; 3]; 2], m: &Mat3) -> [[f64; 3]; 2] {
    let mut out = [[0.0; 3]; 2];
    for r in 0..2 {
        for c in 0..3 {
            out[r][c] = (0..3).map(|k| j[r][k] * m.m[k][c]).sum();
        }
    }
    out
}

fn mul2x3_m(j: &[[f64; 3]; 2], m: &Mat3) -> [[f64; 3]; 2] {
    mul2x3(j, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera() -> PinholeCamera {
        PinholeCamera::centered(480.0, 640, 480)
    }

    /// Builds a 3-keyframe problem with perfect observations, then
    /// perturbs poses/landmarks.
    fn perturbed_problem() -> (BaProblem, Vec<Pose>, Vec<Vec3>) {
        let cam = camera();
        let true_poses: Vec<Pose> = (0..3)
            .map(|i| {
                Pose::from_rotation_vector(
                    Vec3::new(0.0, 0.02 * i as f64, 0.0),
                    Vec3::new(0.4 * i as f64, 0.05 * i as f64, 0.0),
                )
            })
            .collect();
        let true_lms: Vec<Vec3> = (0..30)
            .map(|i| {
                Vec3::new(
                    (i % 6) as f64 * 0.8 - 2.0,
                    ((i / 6) % 5) as f64 * 0.6 - 1.2,
                    5.0 + (i % 4) as f64 * 0.8,
                )
            })
            .collect();
        let mut observations = Vec::new();
        for (ki, pose) in true_poses.iter().enumerate() {
            for (li, lm) in true_lms.iter().enumerate() {
                if let Some(px) = cam.project_in_bounds(pose.inverse_transform(*lm)) {
                    observations.push(BaObservation {
                        kf: ki,
                        landmark: li,
                        pixel: px,
                        disparity: None,
                    });
                }
            }
        }
        // Perturb all but the first pose, and every landmark.
        let poses: Vec<Pose> = true_poses
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if i == 0 {
                    *p
                } else {
                    p.perturb_global(
                        Vec3::new(0.01, -0.008, 0.012) * i as f64,
                        Vec3::new(0.05, -0.04, 0.03) * i as f64,
                    )
                }
            })
            .collect();
        let landmarks: Vec<Vec3> = true_lms
            .iter()
            .enumerate()
            .map(|(i, l)| *l + Vec3::new(0.03, -0.02, 0.04) * ((i % 3) as f64 - 1.0))
            .collect();
        (
            BaProblem {
                camera: cam,
                baseline: 0.12,
                poses,
                fixed: vec![true, false, false],
                landmarks,
                observations,
            },
            true_poses,
            true_lms,
        )
    }

    #[test]
    fn lm_reduces_cost_dramatically() {
        let (mut p, true_poses, _) = perturbed_problem();
        // Extra iterations: observations that start beyond the outlier
        // gate re-enter gradually as the inliers pull the poses in.
        let cfg = LmConfig {
            max_iterations: 40,
            ..LmConfig::default()
        };
        let result = solve_lm(&mut p, &cfg, None);
        assert!(result.initial_cost > 100.0, "initial {}", result.initial_cost);
        assert!(
            result.final_cost < result.initial_cost * 5e-3,
            "cost {} → {}",
            result.initial_cost,
            result.final_cost
        );
        // Optimized poses near truth.
        for (opt, truth) in p.poses.iter().zip(&true_poses) {
            assert!(opt.translation_distance(*truth) < 5e-3);
            assert!(opt.rotation_distance(*truth) < 5e-3);
        }
    }

    #[test]
    fn fixed_pose_never_moves() {
        let (mut p, _, _) = perturbed_problem();
        let anchor = p.poses[0];
        solve_lm(&mut p, &LmConfig::default(), None);
        assert_eq!(p.poses[0], anchor);
    }

    #[test]
    fn empty_problem_is_noop() {
        let mut p = BaProblem {
            camera: camera(),
            baseline: 0.12,
            poses: vec![Pose::identity()],
            fixed: vec![false],
            landmarks: vec![],
            observations: vec![],
        };
        let r = solve_lm(&mut p, &LmConfig::default(), None);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn prior_anchors_poses() {
        // Without observations, a strong prior must keep the pose at its
        // linearization point even though BA would otherwise drift it.
        let (mut p, _, _) = perturbed_problem();
        let lin = p.poses[1];
        let prior = PosePrior {
            kf_indices: vec![1],
            information: Matrix::from_diag(&[1e8; 6]),
            linearization: vec![lin],
        };
        solve_lm(&mut p, &LmConfig::default(), Some(&prior));
        assert!(
            p.poses[1].translation_distance(lin) < 2e-3,
            "prior ignored: moved {}",
            p.poses[1].translation_distance(lin)
        );
    }

    #[test]
    fn marginalization_produces_psd_prior() {
        let (p, _, _) = perturbed_problem();
        // Landmarks observed by all kfs → none exclusive; use a subset
        // artificially as exclusive to exercise the path.
        let exclusive: Vec<usize> = (0..5).collect();
        let (prior, dim) = marginalize_keyframe(
            &p.camera,
            &p.poses,
            &p.landmarks,
            &p.observations,
            0,
            &exclusive,
            &[1, 2],
        )
        .expect("marginalization succeeds");
        assert_eq!(dim, 3 * 5 + 6);
        assert_eq!(prior.information.shape(), (12, 12));
        // PSD check: x'Hx ≥ 0 for a few vectors.
        for s in 0..5 {
            let x = Vector::from_iter((0..12).map(|i| ((i * 7 + s * 3) as f64 * 0.37).sin()));
            let q = x.dot(&prior.information.matvec(&x));
            assert!(q > -1e-6, "not PSD: {q}");
        }
    }

    #[test]
    fn marginalization_with_no_remaining_fails() {
        let (p, _, _) = perturbed_problem();
        assert!(marginalize_keyframe(
            &p.camera,
            &p.poses,
            &p.landmarks,
            &p.observations,
            0,
            &[],
            &[],
        )
        .is_none());
    }
}
