//! Loop-closure support: rigid alignment of matched point sets.
//!
//! When the bag-of-words database recognizes a previously mapped place,
//! SLAM "closes the loop" (paper Sec. III) by estimating the rigid
//! transform between the drifted current map and the original one. The
//! estimator is Horn's closed-form quaternion method; the dominant
//! eigenvector of the 4×4 profile matrix is found by shifted power
//! iteration (no external eigensolver needed).

use eudoxus_geometry::{Pose, Quaternion, Vec3};

/// Estimates the rigid transform `T` minimizing `Σ‖to_i − T·from_i‖²`.
///
/// Returns `None` for fewer than 3 pairs or degenerate geometry.
///
/// # Example
///
/// ```
/// use eudoxus_backend::slam::align_point_sets;
/// use eudoxus_geometry::{Pose, Vec3};
///
/// let from = vec![
///     Vec3::new(0.0, 0.0, 0.0),
///     Vec3::new(1.0, 0.0, 0.0),
///     Vec3::new(0.0, 1.0, 0.0),
///     Vec3::new(0.0, 0.0, 1.0),
/// ];
/// let truth = Pose::from_rotation_vector(Vec3::new(0.0, 0.0, 0.2), Vec3::new(1.0, -0.5, 0.3));
/// let to: Vec<Vec3> = from.iter().map(|&p| truth.transform(p)).collect();
/// let t = align_point_sets(&from, &to).unwrap();
/// assert!(t.translation_distance(truth) < 1e-9);
/// ```
pub fn align_point_sets(from: &[Vec3], to: &[Vec3]) -> Option<Pose> {
    if from.len() < 3 || from.len() != to.len() {
        return None;
    }
    let n = from.len() as f64;
    let c_from = from.iter().fold(Vec3::zero(), |a, &b| a + b) / n;
    let c_to = to.iter().fold(Vec3::zero(), |a, &b| a + b) / n;

    // Cross-covariance M = Σ (from − c_from)·(to − c_to)ᵀ.
    let mut m = [[0.0f64; 3]; 3];
    for (f, t) in from.iter().zip(to) {
        let a = *f - c_from;
        let b = *t - c_to;
        let av = [a.x, a.y, a.z];
        let bv = [b.x, b.y, b.z];
        for i in 0..3 {
            for j in 0..3 {
                m[i][j] += av[i] * bv[j];
            }
        }
    }
    // Horn's N matrix (symmetric 4×4) whose dominant eigenvector is the
    // optimal quaternion (w, x, y, z).
    let tr = m[0][0] + m[1][1] + m[2][2];
    let n4 = [
        [
            tr,
            m[1][2] - m[2][1],
            m[2][0] - m[0][2],
            m[0][1] - m[1][0],
        ],
        [
            m[1][2] - m[2][1],
            m[0][0] - m[1][1] - m[2][2],
            m[0][1] + m[1][0],
            m[2][0] + m[0][2],
        ],
        [
            m[2][0] - m[0][2],
            m[0][1] + m[1][0],
            m[1][1] - m[0][0] - m[2][2],
            m[1][2] + m[2][1],
        ],
        [
            m[0][1] - m[1][0],
            m[2][0] + m[0][2],
            m[1][2] + m[2][1],
            m[2][2] - m[0][0] - m[1][1],
        ],
    ];
    // Shift to make the dominant eigenvalue the largest in magnitude.
    let shift: f64 = n4
        .iter()
        .map(|row| row.iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
        + 1.0;
    let mut v = [1.0f64, 0.1, 0.1, 0.1];
    for _ in 0..64 {
        let mut nv = [0.0f64; 4];
        for i in 0..4 {
            nv[i] = shift * v[i] + (0..4).map(|j| n4[i][j] * v[j]).sum::<f64>();
        }
        let norm = nv.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return None;
        }
        for i in 0..4 {
            v[i] = nv[i] / norm;
        }
    }
    let q = Quaternion::new(v[0], v[1], v[2], v[3]);
    let t = c_to - q.rotate(c_from);
    Some(Pose::new(q, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Vec<Vec3> {
        (0..12)
            .map(|i| {
                Vec3::new(
                    ((i * 7) % 5) as f64 - 2.0,
                    ((i * 3) % 4) as f64 - 1.5,
                    ((i * 11) % 6) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn recovers_random_rigid_transform() {
        let from = cloud();
        let truth = Pose::from_rotation_vector(Vec3::new(0.3, -0.2, 0.5), Vec3::new(2.0, -1.0, 0.7));
        let to: Vec<Vec3> = from.iter().map(|&p| truth.transform(p)).collect();
        let est = align_point_sets(&from, &to).unwrap();
        assert!(est.translation_distance(truth) < 1e-9);
        assert!(est.rotation_distance(truth) < 1e-9);
    }

    #[test]
    fn identity_for_identical_sets() {
        let pts = cloud();
        let est = align_point_sets(&pts, &pts).unwrap();
        assert!(est.translation.norm() < 1e-9);
        assert!(est.rotation.angle_to(Quaternion::identity()) < 1e-9);
    }

    #[test]
    fn tolerates_small_noise() {
        let from = cloud();
        let truth = Pose::from_rotation_vector(Vec3::new(0.0, 0.1, 0.0), Vec3::new(0.5, 0.0, 0.0));
        let to: Vec<Vec3> = from
            .iter()
            .enumerate()
            .map(|(i, &p)| truth.transform(p) + Vec3::new(0.01, -0.01, 0.005) * ((i % 3) as f64 - 1.0))
            .collect();
        let est = align_point_sets(&from, &to).unwrap();
        assert!(est.translation_distance(truth) < 0.05);
        assert!(est.rotation_distance(truth) < 0.02);
    }

    #[test]
    fn too_few_points_rejected() {
        let a = vec![Vec3::zero(), Vec3::unit_x()];
        assert!(align_point_sets(&a, &a).is_none());
        let b = cloud();
        assert!(align_point_sets(&b[..3], &b[..4]).is_none());
    }
}
