//! The SLAM backend mode: simultaneous localization and mapping.
//!
//! "It uses the feature correspondences from the frontend along with the
//! IMU measurements to calculate the pose and the 3D map … solved using the
//! Levenberg–Marquardt method. In the end, the generated map could be
//! optionally persisted offline and later used in the registration mode"
//! (paper Sec. IV-A). Tracking runs every frame against the latest map;
//! mapping (bundle adjustment, [`ba`]) runs per keyframe; old keyframes are
//! marginalized by Schur complement; loop closure ([`loopclose`]) corrects
//! accumulated drift through the bag-of-words database.

pub mod ba;
pub mod loopclose;

pub use ba::{
    marginalize_keyframe, solve_lm, BaObservation, BaProblem, LmConfig, LmResult, PosePrior,
};
pub use loopclose::align_point_sets;

use crate::kernels::{Kernel, KernelTimer};
use crate::map::{MapKeyframe, MapPoint, WorldMap};
use crate::pose_opt::{optimize_pose, PoseObservation, PoseOptConfig};
use crate::types::{Backend, BackendEstimate, BackendInput, BackendMode};
use eudoxus_frontend::OrbDescriptor;
use eudoxus_geometry::{Pose, Vec2, Vec3};
use eudoxus_vocab::{KeyframeDatabase, Vocabulary, VocabularyConfig};
use std::collections::{HashMap, VecDeque};

/// SLAM tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct SlamConfig {
    /// A keyframe is created every this many frames.
    pub keyframe_interval: usize,
    /// Keyframes kept in the local bundle-adjustment window.
    pub window_size: usize,
    /// Levenberg–Marquardt settings for mapping.
    pub lm: LmConfig,
    /// Pose-only tracking settings.
    pub pose_opt: PoseOptConfig,
    /// Minimum BoW score to consider a loop candidate.
    pub loop_min_score: f64,
    /// Minimum keyframe-id gap for loop candidates (rejects neighbors).
    pub loop_min_gap: u64,
    /// Max descriptor Hamming distance for loop-point matching.
    pub loop_max_hamming: u32,
    /// Descriptors accumulated before the vocabulary trains.
    pub vocab_train_min: usize,
}

impl Default for SlamConfig {
    fn default() -> Self {
        SlamConfig {
            keyframe_interval: 3,
            window_size: 6,
            lm: LmConfig::default(),
            pose_opt: PoseOptConfig::default(),
            loop_min_score: 0.55,
            loop_min_gap: 15,
            loop_max_hamming: 45,
            vocab_train_min: 600,
        }
    }
}

/// A mapped landmark.
#[derive(Debug, Clone, Copy)]
struct LandmarkData {
    position: Vec3,
    descriptor: OrbDescriptor,
}

/// One keyframe in the window or archive.
#[derive(Debug, Clone)]
struct KeyframeData {
    id: u64,
    pose: Pose,
    /// `(track_id, pixel, disparity)` observations of mapped landmarks.
    obs: Vec<(u64, Vec2, Option<f64>)>,
    descriptors: Vec<OrbDescriptor>,
}

/// The SLAM backend.
///
/// # Example
///
/// ```
/// use eudoxus_backend::{Backend, BackendMode, Slam, SlamConfig};
///
/// let mut slam = Slam::new(SlamConfig::default());
/// assert_eq!(slam.mode(), BackendMode::Slam);
/// assert_eq!(slam.name(), "slam");
/// ```
#[derive(Debug)]
pub struct Slam {
    cfg: SlamConfig,
    frame_count: u64,
    next_kf_id: u64,
    pose: Pose,
    last_pose: Option<Pose>,
    motion: Pose,
    landmarks: HashMap<u64, LandmarkData>,
    window: VecDeque<KeyframeData>,
    archived: Vec<KeyframeData>,
    prior: Option<PosePrior>,
    prior_kf_ids: Vec<u64>,
    vocab: Option<Vocabulary>,
    db: KeyframeDatabase,
    corpus: Vec<OrbDescriptor>,
    initial: Option<Pose>,
    initialized: bool,
    loops_closed: usize,
    /// Stereo baseline of the rig (captured from the first input).
    baseline: f64,
}

impl Slam {
    /// Creates an uninitialized SLAM backend.
    pub fn new(cfg: SlamConfig) -> Self {
        Slam {
            cfg,
            frame_count: 0,
            next_kf_id: 0,
            pose: Pose::identity(),
            last_pose: None,
            motion: Pose::identity(),
            landmarks: HashMap::new(),
            window: VecDeque::new(),
            archived: Vec::new(),
            prior: None,
            prior_kf_ids: Vec::new(),
            vocab: None,
            db: KeyframeDatabase::new(),
            corpus: Vec::new(),
            initial: None,
            initialized: false,
            loops_closed: 0,
            baseline: 0.0,
        }
    }

    /// Sets the pose the map is anchored at (first frame).
    pub fn set_initial_pose(&mut self, pose: Pose) {
        self.initial = Some(pose);
    }

    /// Number of mapped landmarks.
    pub fn landmark_count(&self) -> usize {
        self.landmarks.len()
    }

    /// Number of keyframes created so far.
    pub fn keyframe_count(&self) -> u64 {
        self.next_kf_id
    }

    /// Loop closures performed so far.
    pub fn loops_closed(&self) -> usize {
        self.loops_closed
    }

    /// Exports the accumulated map for later registration (paper:
    /// "persist map (optional)").
    pub fn persist_map(&self) -> WorldMap {
        let points = self
            .landmarks
            .iter()
            .map(|(&id, l)| MapPoint {
                id,
                position: l.position,
                descriptor: l.descriptor,
            })
            .collect();
        let keyframes = self
            .archived
            .iter()
            .chain(self.window.iter())
            .map(|k| MapKeyframe {
                id: k.id,
                pose: k.pose,
                point_ids: k.obs.iter().map(|&(tid, _, _)| tid).collect(),
            })
            .collect();
        WorldMap { points, keyframes }
    }

    /// Builds the local BA problem over the current window. Returns the
    /// problem plus the landmark ids backing each landmark index.
    fn build_window_problem(&self, camera: &eudoxus_geometry::PinholeCamera) -> (BaProblem, Vec<u64>) {
        // Landmarks observed by ≥ 2 window keyframes.
        let mut count: HashMap<u64, usize> = HashMap::new();
        for kf in &self.window {
            for &(tid, _, _) in &kf.obs {
                *count.entry(tid).or_insert(0) += 1;
            }
        }
        let mut lm_ids: Vec<u64> = count
            .iter()
            .filter(|&(tid, &c)| c >= 2 && self.landmarks.contains_key(tid))
            .map(|(&tid, _)| tid)
            .collect();
        lm_ids.sort_unstable();
        let lm_index: HashMap<u64, usize> =
            lm_ids.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut observations = Vec::new();
        for (ki, kf) in self.window.iter().enumerate() {
            for &(tid, px, disparity) in &kf.obs {
                if let Some(&li) = lm_index.get(&tid) {
                    observations.push(BaObservation {
                        kf: ki,
                        landmark: li,
                        pixel: px,
                        disparity,
                    });
                }
            }
        }
        let poses: Vec<Pose> = self.window.iter().map(|k| k.pose).collect();
        let n = poses.len();
        let fixed: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let landmarks: Vec<Vec3> = lm_ids
            .iter()
            .map(|tid| self.landmarks[tid].position)
            .collect();
        (
            BaProblem {
                camera: *camera,
                baseline: self.baseline,
                poses,
                fixed,
                landmarks,
                observations,
            },
            lm_ids,
        )
    }

    /// Remaps the stored prior's keyframe ids onto current window indices.
    fn remapped_prior(&self) -> Option<PosePrior> {
        let prior = self.prior.as_ref()?;
        let mut kf_indices = Vec::with_capacity(self.prior_kf_ids.len());
        for kid in &self.prior_kf_ids {
            let idx = self.window.iter().position(|k| k.id == *kid)?;
            kf_indices.push(idx);
        }
        Some(PosePrior {
            kf_indices,
            information: prior.information.clone(),
            linearization: prior.linearization.clone(),
        })
    }

    /// Attempts loop closure for the newest keyframe; returns the number of
    /// matched point pairs used (0 when no loop fired).
    fn try_loop_closure(&mut self) -> usize {
        let Some(vocab) = &self.vocab else { return 0 };
        let Some(current) = self.window.back() else { return 0 };
        let bow = vocab.bow(&current.descriptors);
        let hits = self.db.query(&bow, 3);
        let candidate = hits.into_iter().find(|h| {
            h.score >= self.cfg.loop_min_score
                && current.id.saturating_sub(h.doc_id) >= self.cfg.loop_min_gap
        });
        let Some(hit) = candidate else { return 0 };
        let Some(old_kf) = self
            .archived
            .iter()
            .chain(self.window.iter())
            .find(|k| k.id == hit.doc_id)
            .cloned()
        else {
            return 0;
        };
        // Match current landmarks against the old keyframe's landmarks by
        // descriptor distance.
        let mut pairs_from = Vec::new();
        let mut pairs_to = Vec::new();
        for &(tid_new, _, _) in &current.obs {
            let Some(lm_new) = self.landmarks.get(&tid_new) else { continue };
            let mut best: Option<(u64, u32)> = None;
            for &(tid_old, _, _) in &old_kf.obs {
                if tid_old == tid_new {
                    continue; // same physical track — no drift info
                }
                let Some(lm_old) = self.landmarks.get(&tid_old) else { continue };
                let d = lm_new.descriptor.hamming(&lm_old.descriptor);
                if d <= self.cfg.loop_max_hamming && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((tid_old, d));
                }
            }
            if let Some((tid_old, _)) = best {
                pairs_from.push(lm_new.position);
                pairs_to.push(self.landmarks[&tid_old].position);
            }
        }
        if pairs_from.len() < 6 {
            return 0;
        }
        let Some(correction) = align_point_sets(&pairs_from, &pairs_to) else {
            return 0;
        };
        // Apply the drift correction to the live state: current pose and
        // every window keyframe.
        self.pose = correction * self.pose;
        for kf in &mut self.window {
            kf.pose = correction * kf.pose;
        }
        self.loops_closed += 1;
        pairs_from.len()
    }
}

impl Backend for Slam {
    fn mode(&self) -> BackendMode {
        BackendMode::Slam
    }

    fn begin_segment(&mut self, anchor: Option<eudoxus_geometry::PoseAnchor>) {
        self.reset();
        // The anchor replaces any previous segment's: an unanchored
        // segment maps from identity, not from stale state.
        self.initial = anchor.map(|a| a.pose);
    }

    fn step(&mut self, input: &BackendInput<'_>) -> BackendEstimate {
        let mut timer = KernelTimer::new();
        let camera = input.rig.camera;
        self.baseline = input.rig.baseline;
        if !self.initialized {
            self.pose = self.initial.unwrap_or_else(Pose::identity);
            self.initialized = true;
        } else {
            self.pose = self.pose * self.motion; // constant-velocity prediction
        }

        // --- Tracking + landmark initialization ("Init."/"Others"). ---
        let mut tracking = true;
        timer.time(Kernel::SlamInit, input.observations.len(), || {
            let matches: Vec<PoseObservation> = input
                .observations
                .iter()
                .filter_map(|o| {
                    self.landmarks.get(&o.track_id).map(|lm| PoseObservation {
                        world: lm.position,
                        pixel: Vec2::new(o.x as f64, o.y as f64),
                    })
                })
                .collect();
            if matches.len() >= 6 {
                if let Some(result) = optimize_pose(&camera, self.pose, &matches, &self.cfg.pose_opt)
                {
                    self.pose = result.pose;
                }
            } else if self.frame_count > 0 {
                tracking = false;
            }
            // Initialize landmarks from stereo depth.
            for o in input.observations {
                if self.landmarks.contains_key(&o.track_id) {
                    continue;
                }
                let Some(disp) = o.disparity else { continue };
                let Some(depth) = input.rig.depth_from_disparity(disp as f64) else {
                    continue;
                };
                if !(0.3..80.0).contains(&depth) {
                    continue;
                }
                let p_cam = camera.unproject_depth(Vec2::new(o.x as f64, o.y as f64), depth);
                self.landmarks.insert(
                    o.track_id,
                    LandmarkData {
                        position: self.pose.transform(p_cam),
                        descriptor: o.descriptor,
                    },
                );
            }
        });

        // --- Keyframe path: mapping, marginalization, loop closure. ---
        if self.frame_count.is_multiple_of(self.cfg.keyframe_interval as u64) {
            // Only observations consistent with the current map enter the
            // keyframe (mistracked features otherwise poison BA).
            let obs: Vec<(u64, Vec2, Option<f64>)> = input
                .observations
                .iter()
                .filter_map(|o| {
                    let lm = self.landmarks.get(&o.track_id)?;
                    let px = Vec2::new(o.x as f64, o.y as f64);
                    let p_cam = self.pose.inverse_transform(lm.position);
                    let pred = camera.project(p_cam)?;
                    ((pred - px).norm() < 6.0)
                        .then_some((o.track_id, px, o.disparity.map(f64::from)))
                })
                .collect();
            let descriptors: Vec<OrbDescriptor> =
                input.observations.iter().map(|o| o.descriptor).collect();
            let kf = KeyframeData {
                id: self.next_kf_id,
                pose: self.pose,
                obs,
                descriptors: descriptors.clone(),
            };
            self.next_kf_id += 1;
            self.window.push_back(kf);

            // [Solver] local bundle adjustment over the window.
            if self.window.len() >= 2 {
                let (mut problem, lm_ids) = self.build_window_problem(&camera);
                let prior = self.remapped_prior();
                let n_obs = problem.observations.len();
                timer.time(Kernel::Solver, n_obs, || {
                    solve_lm(&mut problem, &self.cfg.lm, prior.as_ref());
                });
                for (ki, kf) in self.window.iter_mut().enumerate() {
                    kf.pose = problem.poses[ki];
                }
                for (li, tid) in lm_ids.iter().enumerate() {
                    if let Some(lm) = self.landmarks.get_mut(tid) {
                        lm.position = problem.landmarks[li];
                    }
                }
                self.pose = self.window.back().expect("window non-empty").pose;
            }

            // [Marginalization] slide the window.
            if self.window.len() > self.cfg.window_size {
                let (problem, lm_ids) = self.build_window_problem(&camera);
                // Landmarks seen only by the oldest keyframe within the
                // window get marginalized with it.
                let mut seen_later = vec![false; lm_ids.len()];
                for o in &problem.observations {
                    if o.kf > 0 {
                        seen_later[o.landmark] = true;
                    }
                }
                let exclusive: Vec<usize> = (0..lm_ids.len())
                    .filter(|&i| !seen_later[i])
                    .collect();
                let remaining: Vec<usize> = (1..self.window.len()).collect();
                let marg_size = 3 * exclusive.len() + 6;
                let result = timer.time(Kernel::Marginalization, marg_size, || {
                    marginalize_keyframe(
                        &camera,
                        &problem.poses,
                        &problem.landmarks,
                        &problem.observations,
                        0,
                        &exclusive,
                        &remaining,
                    )
                });
                if let Some((prior, _)) = result {
                    self.prior_kf_ids = remaining
                        .iter()
                        .map(|&i| self.window[i].id)
                        .collect();
                    self.prior = Some(prior);
                }
                let old = self.window.pop_front().expect("window non-empty");
                self.archived.push(old);
            }

            // Vocabulary training + loop closure (bookkeeping time lands on
            // the Init kernel).
            timer.time(Kernel::SlamInit, descriptors.len(), || {
                self.corpus.extend(descriptors.iter().copied());
                if self.vocab.is_none() && self.corpus.len() >= self.cfg.vocab_train_min {
                    let mut vocab =
                        Vocabulary::train(&self.corpus, &VocabularyConfig::default(), 17);
                    let docs: Vec<Vec<OrbDescriptor>> = self
                        .archived
                        .iter()
                        .chain(self.window.iter())
                        .map(|k| k.descriptors.clone())
                        .collect();
                    vocab.reweight_idf(&docs);
                    // Backfill the database.
                    for kf in self.archived.iter().chain(self.window.iter()) {
                        self.db.insert(kf.id, vocab.bow(&kf.descriptors));
                    }
                    self.vocab = Some(vocab);
                }
                self.try_loop_closure();
                if let (Some(vocab), Some(kf)) = (&self.vocab, self.window.back()) {
                    self.db.insert(kf.id, vocab.bow(&kf.descriptors));
                }
            });
        }

        // Constant-velocity motion model update.
        if let Some(last) = self.last_pose {
            self.motion = last.between(self.pose);
        }
        self.last_pose = Some(self.pose);
        self.frame_count += 1;

        BackendEstimate {
            pose: self.pose,
            kernels: timer.into_samples(),
            tracking,
        }
    }

    fn reset(&mut self) {
        let cfg = self.cfg;
        let initial = self.initial;
        *self = Slam::new(cfg);
        self.initial = initial;
    }

    fn persist_map(&self) -> Option<WorldMap> {
        Some(Slam::persist_map(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eudoxus_frontend::Observation;
    use eudoxus_geometry::{PinholeCamera, StereoRig};

    fn rig() -> StereoRig {
        StereoRig::new(PinholeCamera::centered(450.0, 640, 480), 0.11)
    }

    /// World: grid of landmarks in front of a slowly translating camera.
    fn landmark_grid() -> Vec<Vec3> {
        (0..60)
            .map(|i| {
                Vec3::new(
                    (i % 10) as f64 * 0.9 - 4.0,
                    ((i / 10) % 6) as f64 * 0.7 - 1.8,
                    6.0 + (i % 4) as f64,
                )
            })
            .collect()
    }

    fn observations_at(rig: &StereoRig, pose: Pose, lms: &[Vec3]) -> Vec<Observation> {
        lms.iter()
            .enumerate()
            .filter_map(|(i, lm)| {
                let p_cam = pose.inverse_transform(*lm);
                rig.camera.project_in_bounds(p_cam).map(|px| Observation {
                    track_id: i as u64,
                    x: px.x as f32,
                    y: px.y as f32,
                    disparity: Some(rig.disparity_from_depth(p_cam.z) as f32),
                    descriptor: {
                        // Unique-ish synthetic descriptor per landmark.
                        let mut d = OrbDescriptor::zero();
                        for b in 0..8 {
                            d.set_bit((i * 31 + b * 7) % 256);
                        }
                        d
                    },
                })
            })
            .collect()
    }

    #[test]
    fn tracks_translating_camera() {
        let rig = rig();
        let lms = landmark_grid();
        let mut slam = Slam::new(SlamConfig::default());
        let mut worst = 0.0f64;
        for frame in 0..12u64 {
            let t = frame as f64 * 0.1;
            let truth = Pose::new(Default::default(), Vec3::new(0.15 * frame as f64, 0.0, 0.0));
            let obs = observations_at(&rig, truth, &lms);
            let report = slam.step(&BackendInput {
                t,
                observations: &obs,
                imu: &[],
                gps: &[],
                rig,
            });
            assert!(report.tracking, "lost at frame {frame}");
            worst = worst.max(report.pose.translation_distance(truth));
        }
        assert!(worst < 0.12, "worst pose error {worst} m");
        assert!(slam.landmark_count() >= 40);
        assert!(slam.keyframe_count() >= 3);
    }

    #[test]
    fn solver_and_marginalization_kernels_fire() {
        let rig = rig();
        let lms = landmark_grid();
        let mut slam = Slam::new(SlamConfig {
            keyframe_interval: 1,
            window_size: 3,
            ..SlamConfig::default()
        });
        let mut kinds = std::collections::HashSet::new();
        for frame in 0..8u64 {
            let truth = Pose::new(Default::default(), Vec3::new(0.1 * frame as f64, 0.0, 0.0));
            let obs = observations_at(&rig, truth, &lms);
            let report = slam.step(&BackendInput {
                t: frame as f64 * 0.1,
                observations: &obs,
                imu: &[],
                gps: &[],
                rig,
            });
            for k in &report.kernels {
                kinds.insert(k.kernel);
            }
        }
        assert!(kinds.contains(&Kernel::Solver), "kinds {kinds:?}");
        assert!(kinds.contains(&Kernel::Marginalization), "kinds {kinds:?}");
        assert!(kinds.contains(&Kernel::SlamInit));
    }

    #[test]
    fn persisted_map_contains_points_and_keyframes() {
        let rig = rig();
        let lms = landmark_grid();
        let mut slam = Slam::new(SlamConfig::default());
        for frame in 0..9u64 {
            let truth = Pose::new(Default::default(), Vec3::new(0.12 * frame as f64, 0.0, 0.0));
            let obs = observations_at(&rig, truth, &lms);
            slam.step(&BackendInput {
                t: frame as f64 * 0.1,
                observations: &obs,
                imu: &[],
                gps: &[],
                rig,
            });
        }
        let map = slam.persist_map();
        assert!(map.points.len() >= 40);
        assert!(!map.keyframes.is_empty());
        // Map point positions close to the true landmarks.
        let mut total_err = 0.0;
        let mut n = 0;
        for p in &map.points {
            let truth = lms[p.id as usize];
            total_err += (p.position - truth).norm();
            n += 1;
        }
        assert!(total_err / (n as f64) < 0.1, "mean map error {}", total_err / n as f64);
    }

    #[test]
    fn reset_clears_map() {
        let rig = rig();
        let lms = landmark_grid();
        let mut slam = Slam::new(SlamConfig::default());
        let obs = observations_at(&rig, Pose::identity(), &lms);
        slam.step(&BackendInput {
            t: 0.0,
            observations: &obs,
            imu: &[],
            gps: &[],
            rig,
        });
        assert!(slam.landmark_count() > 0);
        slam.reset();
        assert_eq!(slam.landmark_count(), 0);
        assert_eq!(slam.keyframe_count(), 0);
    }
}
