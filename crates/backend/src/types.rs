//! Backend input/output types and the pluggable estimator trait.

use crate::kernels::KernelSample;
use crate::map::WorldMap;
use eudoxus_frontend::Observation;
use eudoxus_geometry::{Pose, PoseAnchor, StereoRig, Vec3};
use std::fmt;

/// One IMU reading, as consumed by the backend (decoupled from the
/// simulator's generation-side type).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuReading {
    /// Timestamp (seconds).
    pub t: f64,
    /// Body angular rate (rad/s).
    pub gyro: Vec3,
    /// Body specific force (m/s²).
    pub accel: Vec3,
}

/// One GPS fix, as consumed by the backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsFix {
    /// Timestamp (seconds).
    pub t: f64,
    /// Measured world position (meters).
    pub position: Vec3,
    /// Reported 1-σ accuracy (meters).
    pub sigma: f64,
}

/// Everything a backend receives for one frame.
#[derive(Debug, Clone)]
pub struct BackendInput<'a> {
    /// Frame timestamp (seconds).
    pub t: f64,
    /// Feature observations with persistent track ids (from the frontend).
    pub observations: &'a [Observation],
    /// IMU readings since the previous frame.
    pub imu: &'a [ImuReading],
    /// GPS fixes since the previous frame (empty indoors).
    pub gps: &'a [GpsFix],
    /// The stereo rig (intrinsics + baseline).
    pub rig: StereoRig,
}

/// What a backend produces for one frame.
#[derive(Debug, Clone)]
pub struct BackendEstimate {
    /// Estimated body pose at the frame timestamp.
    pub pose: Pose,
    /// Per-kernel timing/size samples for this frame.
    pub kernels: Vec<KernelSample>,
    /// Whether the estimator considers itself converged/tracking (false
    /// during initialization or after losing the map).
    pub tracking: bool,
}

/// The three estimator families of the unified algorithm (paper Fig. 4).
///
/// A [`Backend`] advertises which family it implements; the pipeline's
/// registry dispatches each frame to the registered backend of the mode
/// the environment prefers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendMode {
    /// Localize against a pre-built map (indoor, known).
    Registration,
    /// Filter-based odometry, GPS-corrected outdoors.
    Vio,
    /// Build the map while localizing (indoor, unknown).
    Slam,
}

impl BackendMode {
    /// All modes in paper order.
    pub const ALL: [BackendMode; 3] = [
        BackendMode::Registration,
        BackendMode::Vio,
        BackendMode::Slam,
    ];

    /// Short mode name for reports ("vio", "slam", "registration").
    pub fn name(self) -> &'static str {
        match self {
            BackendMode::Registration => "registration",
            BackendMode::Vio => "vio",
            BackendMode::Slam => "slam",
        }
    }

    /// The mode a frame degrades to when no backend of this mode is
    /// registered: registration (needs a map) falls back to SLAM, SLAM
    /// falls back to pure odometry. VIO is the floor — without it the
    /// registry cannot serve the frame at all.
    pub fn fallback(self) -> Option<BackendMode> {
        match self {
            BackendMode::Registration => Some(BackendMode::Slam),
            BackendMode::Slam => Some(BackendMode::Vio),
            BackendMode::Vio => None,
        }
    }
}

impl fmt::Display for BackendMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A pluggable localization estimator (paper Fig. 4: VIO / SLAM /
/// registration). Third parties can supply their own implementation of
/// any of the three families — e.g. a custom VIO — and register it in
/// place of the built-in one; the set of families itself (and thus the
/// dispatchable [`BackendMode`]s) is closed.
///
/// A backend is driven as a stream: [`begin_segment`](Backend::begin_segment)
/// opens an independent trajectory segment (optionally anchored to a known
/// state), then [`step`](Backend::step) consumes one frame of
/// correspondences and inter-frame sensor windows at a time.
///
/// Backends must be [`Send`]: sessions are the sharding unit of the
/// serving layer (`SessionManager::poll_parallel` moves whole sessions —
/// and thus their registered backends — across worker threads). Each
/// session is only ever driven by one thread at a time, so `Sync` is not
/// required.
pub trait Backend: Send {
    /// Which estimator family this backend implements. The registry
    /// dispatches frames by this value.
    fn mode(&self) -> BackendMode;

    /// Starts a new independent trajectory segment, resetting estimator
    /// state. When `anchor` is given, the estimator should initialize from
    /// that known state; estimators that localize globally (e.g. against a
    /// persisted map) may ignore it.
    fn begin_segment(&mut self, anchor: Option<PoseAnchor>);

    /// Processes one frame of correspondences and sensor data.
    fn step(&mut self, input: &BackendInput<'_>) -> BackendEstimate;

    /// Resets all estimator state (equivalent to `begin_segment(None)` for
    /// estimators without sticky anchors).
    fn reset(&mut self);

    /// Short name for reports; defaults to the mode's name.
    fn name(&self) -> &'static str {
        self.mode().name()
    }

    /// Exports the map this backend has built, if it builds one (SLAM
    /// does; odometry and map-consuming backends return `None`).
    fn persist_map(&self) -> Option<WorldMap> {
        None
    }

    /// Propagates the pose from **internal sensors only** (IMU,
    /// odometry) — no feature observations, no GPS. The session calls
    /// this instead of [`step`](Backend::step) when vision is starved
    /// and the health monitor has switched to dead-reckoning; `from` is
    /// the last trusted state (pose + velocity) to propagate from.
    ///
    /// Returns `None` (the default) for backends that cannot propagate
    /// blind — the session then holds `from.pose` instead.
    fn dead_reckon(
        &mut self,
        _input: &BackendInput<'_>,
        _from: PoseAnchor,
    ) -> Option<BackendEstimate> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImuReading>();
        assert_send_sync::<GpsFix>();
        assert_send_sync::<BackendEstimate>();
        assert_send_sync::<BackendMode>();
    }

    #[test]
    fn estimate_carries_kernels() {
        let r = BackendEstimate {
            pose: Pose::identity(),
            kernels: vec![],
            tracking: true,
        };
        assert!(r.kernels.is_empty());
        assert!(r.tracking);
    }

    #[test]
    fn fallback_chain_ends_at_vio() {
        assert_eq!(
            BackendMode::Registration.fallback(),
            Some(BackendMode::Slam)
        );
        assert_eq!(BackendMode::Slam.fallback(), Some(BackendMode::Vio));
        assert_eq!(BackendMode::Vio.fallback(), None);
        assert_eq!(BackendMode::ALL.len(), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(BackendMode::Slam.to_string(), "slam");
        assert_eq!(BackendMode::Registration.name(), "registration");
    }
}
