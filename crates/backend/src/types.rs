//! Backend input/output types and the mode trait.

use crate::kernels::KernelSample;
use eudoxus_frontend::Observation;
use eudoxus_geometry::{Pose, StereoRig, Vec3};

/// One IMU reading, as consumed by the backend (decoupled from the
/// simulator's generation-side type).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuReading {
    /// Timestamp (seconds).
    pub t: f64,
    /// Body angular rate (rad/s).
    pub gyro: Vec3,
    /// Body specific force (m/s²).
    pub accel: Vec3,
}

/// One GPS fix, as consumed by the backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsFix {
    /// Timestamp (seconds).
    pub t: f64,
    /// Measured world position (meters).
    pub position: Vec3,
    /// Reported 1-σ accuracy (meters).
    pub sigma: f64,
}

/// Everything a backend mode receives for one frame.
#[derive(Debug, Clone)]
pub struct BackendInput<'a> {
    /// Frame timestamp (seconds).
    pub t: f64,
    /// Feature observations with persistent track ids (from the frontend).
    pub observations: &'a [Observation],
    /// IMU readings since the previous frame.
    pub imu: &'a [ImuReading],
    /// GPS fixes since the previous frame (empty indoors).
    pub gps: &'a [GpsFix],
    /// The stereo rig (intrinsics + baseline).
    pub rig: StereoRig,
}

/// What a backend mode produces for one frame.
#[derive(Debug, Clone)]
pub struct BackendReport {
    /// Estimated body pose at the frame timestamp.
    pub pose: Pose,
    /// Per-kernel timing/size samples for this frame.
    pub kernels: Vec<KernelSample>,
    /// Whether the estimator considers itself converged/tracking (false
    /// during initialization or after losing the map).
    pub tracking: bool,
}

/// A localization backend mode (paper Fig. 4: VIO / SLAM / Registration).
pub trait BackendMode {
    /// Processes one frame of correspondences and sensor data.
    fn process(&mut self, input: &BackendInput<'_>) -> BackendReport;

    /// Resets all estimator state (used at dataset segment boundaries).
    fn reset(&mut self);

    /// Short mode name for reports ("vio", "slam", "registration").
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImuReading>();
        assert_send_sync::<GpsFix>();
        assert_send_sync::<BackendReport>();
    }

    #[test]
    fn report_carries_kernels() {
        let r = BackendReport {
            pose: Pose::identity(),
            kernels: vec![],
            tracking: true,
        };
        assert!(r.kernels.is_empty());
        assert!(r.tracking);
    }
}
