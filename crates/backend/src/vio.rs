//! The VIO backend mode: MSCKF filtering + GPS fusion.
//!
//! Wires the paper's "Filtering" and "Fusion" blocks (Fig. 4) into one
//! [`BackendMode`]: per frame it propagates the filter through the IMU
//! window, clones the camera state, feeds the frontend's tracked
//! observations, runs the multi-state constraint update, and folds in any
//! GPS fixes.

use crate::fusion::{GpsFusion, GpsFusionConfig};
use crate::kernels::{Kernel, KernelTimer};
use crate::msckf::{Msckf, MsckfConfig};
use crate::types::{Backend, BackendEstimate, BackendInput, BackendMode};
use eudoxus_geometry::{Pose, PoseAnchor, Vec2, Vec3};
use std::collections::HashSet;

/// Combined VIO configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct VioConfig {
    /// Filter settings.
    pub msckf: MsckfConfig,
    /// Fusion settings.
    pub fusion: GpsFusionConfig,
}

/// The VIO backend.
///
/// # Example
///
/// ```
/// use eudoxus_backend::vio::{Vio, VioConfig};
/// use eudoxus_backend::{Backend, BackendMode};
///
/// let mut vio = Vio::new(VioConfig::default());
/// assert_eq!(vio.mode(), BackendMode::Vio);
/// assert_eq!(vio.name(), "vio");
/// ```
#[derive(Debug)]
pub struct Vio {
    filter: Msckf,
    fusion: GpsFusion,
    initial: Option<(Pose, Vec3)>,
}

impl Vio {
    /// Creates an uninitialized VIO backend; the filter initializes at the
    /// first processed frame (identity pose unless
    /// [`Vio::set_initial_state`] was called).
    pub fn new(cfg: VioConfig) -> Self {
        Vio {
            filter: Msckf::new(cfg.msckf),
            fusion: GpsFusion::new(cfg.fusion),
            initial: None,
        }
    }

    /// Sets the pose/velocity the filter initializes with (e.g. the known
    /// start of a survey run; VIO otherwise estimates a relative
    /// trajectory from identity).
    pub fn set_initial_state(&mut self, pose: Pose, velocity: Vec3) {
        self.initial = Some((pose, velocity));
    }

    /// Read access to the inner filter (tests, diagnostics).
    pub fn filter(&self) -> &Msckf {
        &self.filter
    }
}

impl Backend for Vio {
    fn mode(&self) -> BackendMode {
        BackendMode::Vio
    }

    fn begin_segment(&mut self, anchor: Option<PoseAnchor>) {
        self.filter.reset();
        // The anchor replaces any previous segment's: an unanchored
        // segment initializes from identity, not from stale state.
        self.initial = anchor.map(|a| (a.pose, a.velocity));
    }

    fn step(&mut self, input: &BackendInput<'_>) -> BackendEstimate {
        let mut timer = KernelTimer::new();
        if !self.filter.is_initialized() {
            let (pose, vel) = self.initial.unwrap_or((Pose::identity(), Vec3::zero()));
            let t0 = input.imu.first().map_or(input.t, |s| s.t - 1e-3);
            self.filter.initialize(pose, vel, t0);
        }

        // [IMU Proc.] propagate through the inter-frame IMU window.
        timer.time(Kernel::ImuIntegration, input.imu.len(), || {
            self.filter.propagate(input.imu);
        });

        // Clone the camera state for this frame and record observations.
        let clone_id = self.filter.augment_clone();
        let mut seen: HashSet<u64> = HashSet::with_capacity(input.observations.len());
        for obs in input.observations {
            self.filter.record_observation(
                obs.track_id,
                clone_id,
                Vec2::new(obs.x as f64, obs.y as f64),
            );
            seen.insert(obs.track_id);
        }

        // Multi-state constraint update (Jacobian/QR/Cov/Kalman gain all
        // timed inside).
        self.filter
            .update_from_tracks(&input.rig.camera, &seen, &mut timer);

        // [Fusion] GPS position updates, when outdoors.
        self.fusion.fuse(&mut self.filter, input.gps, &mut timer);

        BackendEstimate {
            pose: self.filter.pose().unwrap_or_default(),
            kernels: timer.into_samples(),
            tracking: self.filter.window_len() > 0,
        }
    }

    fn reset(&mut self) {
        self.filter.reset();
    }

    /// Blind propagation: integrate the IMU window through the filter
    /// and report the propagated pose — no feature observations, no
    /// clone augmentation, no GPS. This is the dead-reckoning the
    /// session runs on when vision starves; if the filter has never
    /// initialized (starvation from frame zero) it starts from the
    /// trusted state `from`.
    fn dead_reckon(
        &mut self,
        input: &BackendInput<'_>,
        from: PoseAnchor,
    ) -> Option<BackendEstimate> {
        let mut timer = KernelTimer::new();
        if !self.filter.is_initialized() {
            let t0 = input.imu.first().map_or(input.t, |s| s.t - 1e-3);
            self.filter.initialize(from.pose, from.velocity, t0);
        }
        timer.time(Kernel::ImuIntegration, input.imu.len(), || {
            self.filter.propagate(input.imu);
        });
        Some(BackendEstimate {
            pose: self.filter.pose().unwrap_or(from.pose),
            kernels: timer.into_samples(),
            // Propagation without correction is never "tracking".
            tracking: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GpsFix, ImuReading};
    use eudoxus_frontend::{Observation, OrbDescriptor};
    use eudoxus_geometry::{PinholeCamera, StereoRig};

    fn rig() -> StereoRig {
        StereoRig::new(PinholeCamera::centered(450.0, 640, 480), 0.11)
    }

    /// Synthesizes a VIO run: a body moving at constant velocity observing
    /// landmarks, with GPS fixes along the true path.
    #[test]
    fn processes_frames_and_reports_kernels() {
        let rig = rig();
        let mut vio = Vio::new(VioConfig::default());
        vio.set_initial_state(Pose::identity(), Vec3::new(0.5, 0.0, 0.0));
        let landmarks: Vec<Vec3> = (0..20)
            .map(|i| Vec3::new((i % 5) as f64 - 2.0, (i / 5) as f64 - 2.0, 6.0))
            .collect();
        let mut saw_update = false;
        for frame in 1..=8u64 {
            let t = frame as f64 * 0.1;
            let imu: Vec<ImuReading> = (1..=20)
                .map(|i| ImuReading {
                    t: t - 0.1 + i as f64 * 0.005,
                    gyro: Vec3::zero(),
                    accel: Vec3::new(0.0, 0.0, 9.80665),
                })
                .collect();
            let true_pose = Pose::new(Default::default(), Vec3::new(0.5 * t, 0.0, 0.0));
            // Observe a shrinking subset so tracks complete.
            let visible = if frame < 5 { 20 } else { 10 };
            let observations: Vec<Observation> = landmarks[..visible]
                .iter()
                .enumerate()
                .filter_map(|(i, lm)| {
                    rig.camera
                        .project_in_bounds(true_pose.inverse_transform(*lm))
                        .map(|px| Observation {
                            track_id: i as u64,
                            x: px.x as f32,
                            y: px.y as f32,
                            disparity: None,
                            descriptor: OrbDescriptor::zero(),
                        })
                })
                .collect();
            let gps = [GpsFix {
                t,
                position: true_pose.translation,
                sigma: 0.5,
            }];
            let report = vio.step(&BackendInput {
                t,
                observations: &observations,
                imu: &imu,
                gps: &gps,
                rig,
            });
            assert!(report.tracking);
            assert!(report.pose.translation_distance(true_pose) < 0.5);
            if report
                .kernels
                .iter()
                .any(|k| k.kernel == Kernel::KalmanGain)
            {
                saw_update = true;
            }
            assert!(report.kernels.iter().any(|k| k.kernel == Kernel::ImuIntegration));
            assert!(report.kernels.iter().any(|k| k.kernel == Kernel::GpsFusion));
        }
        assert!(saw_update, "no Kalman update fired across frames");
    }

    #[test]
    fn unanchored_segment_clears_sticky_anchor() {
        let rig = rig();
        let mut vio = Vio::new(VioConfig::default());
        let anchored = Pose::new(Default::default(), Vec3::new(5.0, -2.0, 1.0));
        vio.begin_segment(Some(PoseAnchor::stationary(anchored)));
        let input = BackendInput {
            t: 0.0,
            observations: &[],
            imu: &[],
            gps: &[],
            rig,
        };
        assert!(vio.step(&input).pose.translation_distance(anchored) < 1e-9);
        // A new segment WITHOUT an anchor must start from identity, not
        // from the previous segment's anchor.
        vio.begin_segment(None);
        let r = vio.step(&input);
        assert!(
            r.pose.translation.norm() < 1e-9,
            "stale anchor leaked into unanchored segment: {:?}",
            r.pose.translation
        );
    }

    #[test]
    fn reset_reinitializes_on_next_frame() {
        let rig = rig();
        let mut vio = Vio::new(VioConfig::default());
        vio.set_initial_state(Pose::new(Default::default(), Vec3::new(1.0, 2.0, 3.0)), Vec3::zero());
        let input = BackendInput {
            t: 0.0,
            observations: &[],
            imu: &[],
            gps: &[],
            rig,
        };
        let r1 = vio.step(&input);
        assert!((r1.pose.translation - Vec3::new(1.0, 2.0, 3.0)).norm() < 1e-9);
        vio.reset();
        assert!(!vio.filter().is_initialized());
        let r2 = vio.step(&input);
        assert!((r2.pose.translation - Vec3::new(1.0, 2.0, 3.0)).norm() < 1e-9);
    }
}
