//! Criterion benchmarks of the three offloadable backend kernels at the
//! CPU level (the latencies Fig. 16 characterizes), plus the accelerator
//! model's estimate for the same sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eudoxus_accel::{BackendEngine, KernelDims, Platform};
use eudoxus_math::{Cholesky, Matrix};
use std::hint::black_box;

/// CPU Kalman-gain kernel: S = H·P·Hᵀ + R; solve S·K' = (P·Hᵀ)'.
fn kalman_gain_cpu(rows: usize, state: usize) -> Matrix {
    let h = Matrix::from_fn(rows, state, |i, j| ((i * state + j) as f64 * 0.11).sin());
    let p = {
        let b = Matrix::from_fn(state, state, |i, j| ((i + 2 * j) as f64 * 0.07).cos());
        let mut p = b.outer_gram();
        p.add_diag(state as f64);
        p
    };
    let pht = p.matmul(&h.transpose()).unwrap();
    let mut s = h.matmul(&pht).unwrap();
    s.add_diag(1.5 * 1.5);
    let chol = Cholesky::factor(&s).unwrap();
    chol.solve_matrix(&pht.transpose()).unwrap().transpose()
}

/// CPU projection kernel: C(3×4) · X(4×M).
fn projection_cpu(map_points: usize) -> Matrix {
    let c = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
    let x = Matrix::from_fn(4, map_points, |i, j| ((i * map_points + j) as f64 * 0.01).sin());
    c.matmul(&x).unwrap()
}

fn bench_backend(c: &mut Criterion) {
    let engine = BackendEngine::new(Platform::edx_car());

    let mut group = c.benchmark_group("kalman_gain_cpu");
    for rows in [40usize, 80, 160] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| black_box(kalman_gain_cpu(rows, 195)))
        });
        let est = engine.offload_time(&KernelDims::KalmanGain { rows, state: 195 });
        println!("model: kalman gain rows={rows} accel offload ≈ {:.3} ms", est * 1e3);
    }
    group.finish();

    let mut group = c.benchmark_group("projection_cpu");
    for m in [1_000usize, 4_000, 16_000] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| black_box(projection_cpu(m)))
        });
        let est = engine.offload_time(&KernelDims::Projection { map_points: m });
        println!("model: projection M={m} accel offload ≈ {:.3} ms", est * 1e3);
    }
    group.finish();

    // Marginalization at the math level: Schur complement of a
    // marginalization-shaped matrix.
    let mut group = c.benchmark_group("marginalization_cpu");
    for k in [20usize, 40] {
        let na = 3 * k;
        let n = na + 36;
        let b = Matrix::from_fn(n, n, |i, j| ((i * n + j) as f64 * 0.19).sin());
        let mut m = b.outer_gram();
        m.add_diag(n as f64);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| {
                let blk = eudoxus_math::BlockMatrix::split(black_box(&m), na).unwrap();
                eudoxus_math::schur_complement(blk.a(), blk.b(), blk.c(), blk.d()).unwrap()
            })
        });
        let est = engine.offload_time(&KernelDims::Marginalization {
            landmarks: k,
            remaining: 36,
        });
        println!("model: marginalization k={k} accel offload ≈ {:.3} ms", est * 1e3);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_backend
}
criterion_main!(benches);
