//! Criterion micro-benchmarks of the frontend kernels (the FD/IF/FC,
//! MO/DR and DC/LSS tasks of paper Fig. 12) on rendered drone frames.

use criterion::{criterion_group, criterion_main, Criterion};
use eudoxus_bench::baseline;
use eudoxus_frontend::{
    compute_orb, detect_fast, detect_fast_into, match_stereo, track_pyramidal,
    track_pyramidal_into, FastConfig, FastScratch, Feature, Frontend, FrontendConfig, KltConfig,
    KltScratch, OrbConfig, StereoConfig,
};
use eudoxus_image::{gaussian_blur, gaussian_blur_into, FilterScratch, GrayImage, Pyramid};
use eudoxus_sim::{Platform, ScenarioBuilder, ScenarioKind};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let data = ScenarioBuilder::new(ScenarioKind::IndoorUnknown)
        .frames(2)
        .seed(7)
        .platform(Platform::Drone)
        .build();
    let left = &data.frames[0].left;
    let right = &data.frames[0].right;
    let next_left = &data.frames[1].left;

    // Before/after: the seed detector (per-frame allocations, clamped
    // taps) vs the allocating wrapper vs the warm scratch-reused path.
    c.bench_function("fast_detect_640x480_seed_baseline", |b| {
        b.iter(|| baseline::detect_fast_baseline(black_box(left), &FastConfig::default()))
    });
    c.bench_function("fast_detect_640x480", |b| {
        b.iter(|| detect_fast(black_box(left), &FastConfig::default()))
    });
    {
        let mut scratch = FastScratch::default();
        let mut out = Vec::new();
        c.bench_function("fast_detect_640x480_into_warm", |b| {
            b.iter(|| {
                detect_fast_into(black_box(left), &FastConfig::default(), &mut scratch, &mut out);
                black_box(out.len())
            })
        });
    }

    // Before/after: seed blur vs warm scratch-reused blur.
    c.bench_function("gaussian_blur_640x480_seed_baseline", |b| {
        b.iter(|| baseline::gaussian_blur_baseline(black_box(left), 1.2))
    });
    {
        let mut scratch = FilterScratch::default();
        let mut out = GrayImage::default();
        c.bench_function("gaussian_blur_640x480_into_warm", |b| {
            b.iter(|| {
                gaussian_blur_into(black_box(left), 1.2, &mut scratch, &mut out);
                black_box(out.width())
            })
        });
    }

    let blurred = gaussian_blur(left, 1.2);
    let kps = detect_fast(left, &FastConfig::default());
    c.bench_function("orb_describe_per_400_kps", |b| {
        b.iter(|| {
            let n = kps
                .iter()
                .take(400)
                .filter_map(|kp| compute_orb(black_box(&blurred), kp, &OrbConfig::default()))
                .count();
            black_box(n)
        })
    });

    let blurred_r = gaussian_blur(right, 1.2);
    let feats_l: Vec<Feature> = kps
        .iter()
        .filter_map(|kp| {
            compute_orb(&blurred, kp, &OrbConfig::default()).map(|d| Feature {
                keypoint: *kp,
                descriptor: d,
            })
        })
        .collect();
    let kps_r = detect_fast(right, &FastConfig::default());
    let feats_r: Vec<Feature> = kps_r
        .iter()
        .filter_map(|kp| {
            compute_orb(&blurred_r, kp, &OrbConfig::default()).map(|d| Feature {
                keypoint: *kp,
                descriptor: d,
            })
        })
        .collect();
    c.bench_function("stereo_match_mo_dr", |b| {
        b.iter(|| {
            match_stereo(
                black_box(&feats_l),
                black_box(&feats_r),
                left,
                right,
                &StereoConfig::default(),
            )
        })
    });

    let points: Vec<(f32, f32)> = feats_l
        .iter()
        .take(300)
        .map(|f| (f.keypoint.x, f.keypoint.y))
        .collect();
    // Before/after: rebuild-both-pyramids-per-call (seed and current
    // wrapper) vs the frontend's steady state (both pyramids cached, only
    // the solve runs).
    c.bench_function("klt_track_300_points_seed_baseline", |b| {
        b.iter(|| {
            baseline::track_pyramidal_baseline(
                black_box(left),
                black_box(next_left),
                &points,
                &KltConfig::default(),
            )
        })
    });
    c.bench_function("klt_track_300_points", |b| {
        b.iter(|| track_pyramidal(black_box(left), black_box(next_left), &points, &KltConfig::default()))
    });
    {
        let cfg = KltConfig::default();
        let prev_pyr = Pyramid::build((**left).clone(), cfg.levels);
        let next_pyr = Pyramid::build((**next_left).clone(), cfg.levels);
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();
        // The batched lane-parallel solve (the steady-state path).
        c.bench_function("klt_track_300_points_cached_pyramids", |b| {
            b.iter(|| {
                track_pyramidal_into(&prev_pyr, &next_pyr, &points, &cfg, &mut scratch, &mut out);
                black_box(out.len())
            })
        });
        // Same points through the scalar one-track-at-a-time API. Note
        // `track_one_with` re-converts both pyramids to f32 planes per
        // call, so this measures the full cost of *not* batching (the
        // reason steady-state callers use `track_pyramidal_into`), not
        // the solve arithmetic alone.
        c.bench_function("klt_track_300_points_scalar_fallback", |b| {
            b.iter(|| {
                let n = points
                    .iter()
                    .map(|&(x, y)| {
                        eudoxus_frontend::track_one_with(
                            &prev_pyr, &next_pyr, x, y, &cfg, &mut scratch,
                        )
                    })
                    .filter(|o| o.position().is_some())
                    .count();
                black_box(n)
            })
        });
    }

    c.bench_function("frontend_full_frame", |b| {
        b.iter(|| {
            let mut fe = Frontend::new(FrontendConfig::default());
            black_box(fe.process(left, right))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_frontend
}
criterion_main!(benches);
