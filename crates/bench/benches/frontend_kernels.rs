//! Criterion micro-benchmarks of the frontend kernels (the FD/IF/FC,
//! MO/DR and DC/LSS tasks of paper Fig. 12) on rendered drone frames.

use criterion::{criterion_group, criterion_main, Criterion};
use eudoxus_frontend::{
    compute_orb, detect_fast, match_stereo, track_pyramidal, FastConfig, Feature, Frontend,
    FrontendConfig, KltConfig, OrbConfig, StereoConfig,
};
use eudoxus_image::gaussian_blur;
use eudoxus_sim::{Platform, ScenarioBuilder, ScenarioKind};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let data = ScenarioBuilder::new(ScenarioKind::IndoorUnknown)
        .frames(2)
        .seed(7)
        .platform(Platform::Drone)
        .build();
    let left = &data.frames[0].left;
    let right = &data.frames[0].right;
    let next_left = &data.frames[1].left;

    c.bench_function("fast_detect_640x480", |b| {
        b.iter(|| detect_fast(black_box(left), &FastConfig::default()))
    });

    let blurred = gaussian_blur(left, 1.2);
    let kps = detect_fast(left, &FastConfig::default());
    c.bench_function("orb_describe_per_400_kps", |b| {
        b.iter(|| {
            let n = kps
                .iter()
                .take(400)
                .filter_map(|kp| compute_orb(black_box(&blurred), kp, &OrbConfig::default()))
                .count();
            black_box(n)
        })
    });

    let blurred_r = gaussian_blur(right, 1.2);
    let feats_l: Vec<Feature> = kps
        .iter()
        .filter_map(|kp| {
            compute_orb(&blurred, kp, &OrbConfig::default()).map(|d| Feature {
                keypoint: *kp,
                descriptor: d,
            })
        })
        .collect();
    let kps_r = detect_fast(right, &FastConfig::default());
    let feats_r: Vec<Feature> = kps_r
        .iter()
        .filter_map(|kp| {
            compute_orb(&blurred_r, kp, &OrbConfig::default()).map(|d| Feature {
                keypoint: *kp,
                descriptor: d,
            })
        })
        .collect();
    c.bench_function("stereo_match_mo_dr", |b| {
        b.iter(|| {
            match_stereo(
                black_box(&feats_l),
                black_box(&feats_r),
                left,
                right,
                &StereoConfig::default(),
            )
        })
    });

    let points: Vec<(f32, f32)> = feats_l
        .iter()
        .take(300)
        .map(|f| (f.keypoint.x, f.keypoint.y))
        .collect();
    c.bench_function("klt_track_300_points", |b| {
        b.iter(|| track_pyramidal(black_box(left), black_box(next_left), &points, &KltConfig::default()))
    });

    c.bench_function("frontend_full_frame", |b| {
        b.iter(|| {
            let mut fe = Frontend::new(FrontendConfig::default());
            black_box(fe.process(left, right))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_frontend
}
criterion_main!(benches);
