//! Criterion benchmarks of the five matrix building blocks (paper
//! Table I), including the ablations DESIGN.md calls out: blocked vs
//! naive multiplication and structured vs general inversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eudoxus_math::{BlockMatrix, Cholesky, Matrix, Qr, Vector};
use std::hint::black_box;

fn spd(n: usize) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| ((i * n + j) as f64 * 0.37).sin());
    let mut a = b.outer_gram();
    a.add_diag(n as f64);
    a
}

fn bench_primitives(c: &mut Criterion) {
    // Multiplication: naive vs blocked (the engine's blocking ablation).
    let mut group = c.benchmark_group("multiply");
    for n in [64usize, 128] {
        let a = Matrix::from_fn(n, n, |i, j| (i + j) as f64 * 0.01);
        let b = Matrix::from_fn(n, n, |i, j| (i as f64 - j as f64) * 0.02);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul(black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("blocked32", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul_blocked(black_box(&b), 32).unwrap())
        });
    }
    group.finish();

    // Decomposition (Cholesky) — the Kalman-gain path.
    let mut group = c.benchmark_group("decompose");
    for n in [60usize, 120] {
        let a = spd(n);
        group.bench_with_input(BenchmarkId::new("cholesky", n), &n, |bench, _| {
            bench.iter(|| Cholesky::factor(black_box(&a)).unwrap())
        });
    }
    group.finish();

    // Substitution (solve after decomposition).
    let a = spd(120);
    let chol = Cholesky::factor(&a).unwrap();
    let rhs = Vector::from_iter((0..120).map(|i| (i as f64).sin()));
    c.bench_function("substitution_120", |b| {
        b.iter(|| chol.solve(black_box(&rhs)).unwrap())
    });

    // QR (MSCKF measurement compression).
    let tall = Matrix::from_fn(240, 60, |i, j| ((i * 61 + j) as f64 * 0.13).cos());
    c.bench_function("qr_240x60", |b| {
        b.iter(|| Qr::factor(black_box(&tall)).unwrap())
    });

    // Inverse: structured (marginalization A_mm) vs general — the
    // specialization ablation of Sec. VI-A.
    let na = 60;
    let n = na + 6;
    let mut m = Matrix::zeros(n, n);
    for i in 0..na {
        m[(i, i)] = 2.0 + i as f64 * 0.05;
    }
    for i in 0..6 {
        for j in 0..6 {
            m[(na + i, na + j)] = if i == j { 9.0 } else { 0.3 };
        }
    }
    for i in 0..na {
        for j in 0..6 {
            let v = 0.05 * ((i + j) as f64).sin();
            m[(i, na + j)] = v;
            m[(na + j, i)] = v;
        }
    }
    let blk = BlockMatrix::split(&m, na).unwrap();
    c.bench_function("inverse_structured_66", |b| {
        b.iter(|| blk.inverse_structured().unwrap())
    });
    c.bench_function("inverse_general_66", |b| {
        b.iter(|| black_box(&m).inverse().unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_primitives
}
criterion_main!(benches);
