//! Heap-allocation counting for the perf experiments.
//!
//! [`CountingAllocator`] wraps the system allocator and bumps a global
//! counter on every `alloc`/`realloc`. Two ways to install it:
//!
//! * Build `eudoxus-bench` with the `count-alloc` feature — the
//!   `throughput` binary then reports allocations-per-frame in
//!   `BENCH_throughput.json`.
//! * Declare it as the `#[global_allocator]` of a test binary (see
//!   `tests/alloc_free.rs`), which asserts the scratch-reused kernels are
//!   allocation-free after warm-up.
//!
//! Do not combine the two in one build (`cargo test --features
//! count-alloc`): a binary can only have one global allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A system allocator that counts allocation events (`alloc` and
/// `realloc`; `dealloc` is free and not counted).
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation events counted so far. Zero (and constant) unless a
/// [`CountingAllocator`] is installed as the global allocator.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Whether this build installed the counting allocator via the
/// `count-alloc` feature.
pub fn counting_enabled() -> bool {
    cfg!(feature = "count-alloc")
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;
