//! Seed (pre-scratch) implementations of the frontend hot-path kernels.
//!
//! These are the per-frame-allocating, clamp-every-pixel versions the
//! optimized `*_into` kernels replaced. They are preserved here for two
//! jobs:
//!
//! 1. **Golden reference** — the bit-identity tests assert the optimized
//!    kernels (and the whole [`Frontend`](eudoxus_frontend::Frontend)
//!    with its pyramid cache) produce byte-identical output to this code.
//! 2. **Before/after measurement** — the `throughput` binary and the
//!    `frontend_kernels` benches run both paths in the same process, so
//!    every `BENCH_throughput.json` records its own pre-PR baseline.
//!
//! The code intentionally mirrors the seed revision: do not "fix" or
//! optimize it, or the baseline stops being one.

use eudoxus_frontend::fast::CIRCLE;
use eudoxus_frontend::{
    compute_orb, match_stereo, FastConfig, Feature, FrameStats, FrontendConfig, FrontendFrame,
    FrontendTiming, KeyPoint, KltConfig, Observation, TrackOutcome,
};
use eudoxus_image::{FloatImage, GrayImage, Pyramid};
use std::time::Instant;

/// Minimum contiguous arc length for the segment test (FAST-9).
const ARC: usize = 9;

/// Seed Gaussian blur: fresh kernel, fresh float intermediates, clamped
/// border handling at every tap.
pub fn gaussian_blur_baseline(img: &GrayImage, sigma: f32) -> GrayImage {
    let k = eudoxus_image::gaussian_kernel(sigma);
    separable_filter_baseline(img, &k, &k).to_gray()
}

/// Seed separable filter: per-pixel `get_clamped` on both passes.
pub fn separable_filter_baseline(
    img: &GrayImage,
    kernel_x: &[f32],
    kernel_y: &[f32],
) -> FloatImage {
    let (w, h) = img.dimensions();
    let rx = (kernel_x.len() / 2) as i64;
    let ry = (kernel_y.len() / 2) as i64;
    let mut tmp = FloatImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (k, &kv) in kernel_x.iter().enumerate() {
                acc += kv * img.get_clamped(x as i64 + k as i64 - rx, y as i64) as f32;
            }
            tmp.put(x, y, acc);
        }
    }
    let mut out = FloatImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (k, &kv) in kernel_y.iter().enumerate() {
                acc += kv * tmp.get_clamped(x as i64, y as i64 + k as i64 - ry);
            }
            out.put(x, y, acc);
        }
    }
    out
}

/// Seed FAST corner response: `get_clamped` on every circle tap.
fn corner_response_baseline(img: &GrayImage, x: u32, y: u32, t: u8) -> f32 {
    let c = img.get(x, y) as i32;
    let t = t as i32;
    let (xi, yi) = (x as i64, y as i64);
    let p0 = img.get_clamped(xi, yi - 3) as i32;
    let p8 = img.get_clamped(xi, yi + 3) as i32;
    let p4 = img.get_clamped(xi + 3, yi) as i32;
    let p12 = img.get_clamped(xi - 3, yi) as i32;
    let bright_quick = [p0, p4, p8, p12].iter().filter(|&&p| p > c + t).count();
    let dark_quick = [p0, p4, p8, p12].iter().filter(|&&p| p < c - t).count();
    if bright_quick < 2 && dark_quick < 2 {
        return 0.0;
    }
    let mut ring = [0i32; 16];
    for (slot, &(dx, dy)) in ring.iter_mut().zip(CIRCLE.iter()) {
        *slot = img.get_clamped(xi + dx, yi + dy) as i32;
    }
    let mut bright_run = 0usize;
    let mut dark_run = 0usize;
    let mut is_corner = false;
    for k in 0..(16 + ARC) {
        let p = ring[k % 16];
        if p > c + t {
            bright_run += 1;
            dark_run = 0;
        } else if p < c - t {
            dark_run += 1;
            bright_run = 0;
        } else {
            bright_run = 0;
            dark_run = 0;
        }
        if bright_run >= ARC || dark_run >= ARC {
            is_corner = true;
            break;
        }
    }
    if !is_corner {
        return 0.0;
    }
    ring.iter().map(|&p| ((p - c).abs() - t).max(0)).sum::<i32>() as f32
}

/// Seed FAST detection: fresh response map and candidate vectors per
/// call, `slice::sort_by` (which allocates) for the ordering passes.
pub fn detect_fast_baseline(img: &GrayImage, cfg: &FastConfig) -> Vec<KeyPoint> {
    let (w, h) = img.dimensions();
    if w < 8 || h < 8 {
        return Vec::new();
    }
    let mut responses = vec![0.0f32; (w * h) as usize];
    for y in 3..(h - 3) {
        for x in 3..(w - 3) {
            responses[(y * w + x) as usize] = corner_response_baseline(img, x, y, cfg.threshold);
        }
    }
    let mut candidates: Vec<KeyPoint> = Vec::new();
    for y in 3..(h - 3) {
        for x in 3..(w - 3) {
            let r = responses[(y * w + x) as usize];
            if r <= 0.0 {
                continue;
            }
            let mut is_max = true;
            'nms: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let n =
                        responses[((y as i64 + dy) as u32 * w + (x as i64 + dx) as u32) as usize];
                    if n > r || (n == r && (dy < 0 || (dy == 0 && dx < 0))) {
                        is_max = false;
                        break 'nms;
                    }
                }
            }
            if is_max {
                candidates.push(KeyPoint::new(x as f32, y as f32, r));
            }
        }
    }
    bucket_keypoints_baseline(candidates, w, h, cfg)
}

fn bucket_keypoints_baseline(
    mut kps: Vec<KeyPoint>,
    w: u32,
    h: u32,
    cfg: &FastConfig,
) -> Vec<KeyPoint> {
    if kps.len() <= cfg.max_keypoints {
        kps.sort_by(|a, b| b.response.total_cmp(&a.response));
        return kps;
    }
    let cell = cfg.cell_size.max(8);
    let cols = w.div_ceil(cell);
    let rows = h.div_ceil(cell);
    kps.sort_by(|a, b| b.response.total_cmp(&a.response));
    let mut cell_counts = vec![0u32; (cols * rows) as usize];
    let per_cell = ((cfg.max_keypoints as u32) / (cols * rows).max(1)).max(1);
    let mut picked = Vec::with_capacity(cfg.max_keypoints);
    let mut spill = Vec::new();
    for kp in kps {
        let ci = (kp.y as u32 / cell) * cols + (kp.x as u32 / cell);
        if cell_counts[ci as usize] < per_cell {
            cell_counts[ci as usize] += 1;
            picked.push(kp);
        } else {
            spill.push(kp);
        }
        if picked.len() == cfg.max_keypoints {
            break;
        }
    }
    for kp in spill {
        if picked.len() >= cfg.max_keypoints {
            break;
        }
        picked.push(kp);
    }
    picked.sort_by(|a, b| b.response.total_cmp(&a.response));
    picked
}

/// Seed bilinear sample: four `get_clamped` taps per sample (the
/// optimized `GrayImage::sample_bilinear` short-circuits the clamps on
/// interior samples; the arithmetic is identical).
fn sample_bilinear_baseline(img: &GrayImage, x: f32, y: f32) -> f32 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = x - x0;
    let fy = y - y0;
    let (x0, y0) = (x0 as i64, y0 as i64);
    let p00 = img.get_clamped(x0, y0) as f32;
    let p10 = img.get_clamped(x0 + 1, y0) as f32;
    let p01 = img.get_clamped(x0, y0 + 1) as f32;
    let p11 = img.get_clamped(x0 + 1, y0 + 1) as f32;
    p00 * (1.0 - fx) * (1.0 - fy) + p10 * fx * (1.0 - fy) + p01 * (1.0 - fx) * fy + p11 * fx * fy
}

#[allow(clippy::too_many_arguments)]
fn track_level_baseline(
    prev: &GrayImage,
    next: &GrayImage,
    px: f32,
    py: f32,
    mut gx: f32,
    mut gy: f32,
    cfg: &KltConfig,
) -> Option<(f32, f32, f32)> {
    let r = cfg.window_radius;
    let w = (2 * r + 1) as usize;
    let n_px = (w * w) as f32;
    let mut template = vec![0.0f32; w * w];
    let mut grad_x = vec![0.0f32; w * w];
    let mut grad_y = vec![0.0f32; w * w];
    let mut a11 = 0.0f32;
    let mut a12 = 0.0f32;
    let mut a22 = 0.0f32;
    for (row, dy) in (-r..=r).enumerate() {
        for (col, dx) in (-r..=r).enumerate() {
            let tx = px + dx as f32;
            let ty = py + dy as f32;
            let idx = row * w + col;
            template[idx] = sample_bilinear_baseline(prev, tx, ty);
            let ix = (sample_bilinear_baseline(prev, tx + 1.0, ty)
                - sample_bilinear_baseline(prev, tx - 1.0, ty))
                * 0.5;
            let iy = (sample_bilinear_baseline(prev, tx, ty + 1.0)
                - sample_bilinear_baseline(prev, tx, ty - 1.0))
                * 0.5;
            grad_x[idx] = ix;
            grad_y[idx] = iy;
            a11 += ix * ix;
            a12 += ix * iy;
            a22 += iy * iy;
        }
    }
    let det = a11 * a22 - a12 * a12;
    if det < cfg.min_determinant * n_px * n_px {
        return None;
    }
    let inv = 1.0 / det;
    let mut residual = f32::MAX;
    for _ in 0..cfg.max_iterations {
        let mut b1 = 0.0f32;
        let mut b2 = 0.0f32;
        let mut res_acc = 0.0f32;
        for (row, dy) in (-r..=r).enumerate() {
            for (col, dx) in (-r..=r).enumerate() {
                let idx = row * w + col;
                let tx = px + dx as f32;
                let ty = py + dy as f32;
                let it = sample_bilinear_baseline(next, tx + gx, ty + gy) - template[idx];
                b1 += it * grad_x[idx];
                b2 += it * grad_y[idx];
                res_acc += it.abs();
            }
        }
        residual = res_acc / n_px;
        let ux = (a22 * b1 - a12 * b2) * inv;
        let uy = (a11 * b2 - a12 * b1) * inv;
        gx -= ux;
        gy -= uy;
        if (ux * ux + uy * uy).sqrt() < cfg.epsilon {
            break;
        }
    }
    Some((gx, gy, residual))
}

fn track_one_baseline(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    x: f32,
    y: f32,
    cfg: &KltConfig,
) -> TrackOutcome {
    let levels = prev_pyr.levels().min(next_pyr.levels());
    let mut gx = 0.0f32;
    let mut gy = 0.0f32;
    let mut residual = f32::MAX;
    let mut degenerate = false;
    for li in (0..levels).rev() {
        let scale = prev_pyr.scale(li);
        let (lx, ly) = (x / scale, y / scale);
        match track_level_baseline(prev_pyr.level(li), next_pyr.level(li), lx, ly, gx, gy, cfg) {
            Some((dx, dy, res)) => {
                residual = res;
                if li > 0 {
                    gx = dx * 2.0;
                    gy = dy * 2.0;
                } else {
                    gx = dx;
                    gy = dy;
                }
            }
            None => {
                degenerate = true;
                break;
            }
        }
    }
    if degenerate {
        return TrackOutcome::Degenerate;
    }
    let nx = x + gx;
    let ny = y + gy;
    let base = next_pyr.level(0);
    let m = cfg.window_radius as f32;
    if nx < m || ny < m || nx >= base.width() as f32 - m || ny >= base.height() as f32 - m {
        return TrackOutcome::OutOfBounds;
    }
    if residual > cfg.max_residual {
        return TrackOutcome::Lost;
    }
    TrackOutcome::Tracked {
        x: nx,
        y: ny,
        residual,
    }
}

/// Seed pyramidal tracking: clones both images and builds both pyramids
/// on every call.
pub fn track_pyramidal_baseline(
    prev: &GrayImage,
    next: &GrayImage,
    points: &[(f32, f32)],
    cfg: &KltConfig,
) -> Vec<TrackOutcome> {
    let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
    let next_pyr = Pyramid::build(next.clone(), cfg.levels);
    points
        .iter()
        .map(|&(x, y)| track_one_baseline(&prev_pyr, &next_pyr, x, y, cfg))
        .collect()
}

/// A live track (internal state of [`BaselineFrontend`]).
#[derive(Debug, Clone, Copy)]
struct Track {
    id: u64,
    x: f32,
    y: f32,
}

/// The seed frontend: identical association and track-management logic to
/// `eudoxus_frontend::Frontend`, but running the baseline kernels, keeping
/// `prev_left` as a full-image clone, and allocating every working buffer
/// per frame. Produces bit-identical [`FrontendFrame`] observation streams
/// to the optimized frontend — that equivalence is what the bit-identity
/// tests pin down.
#[derive(Debug)]
pub struct BaselineFrontend {
    config: FrontendConfig,
    prev_left: Option<GrayImage>,
    tracks: Vec<Track>,
    next_id: u64,
}

impl BaselineFrontend {
    /// Creates a baseline frontend.
    pub fn new(config: FrontendConfig) -> Self {
        BaselineFrontend {
            config,
            prev_left: None,
            tracks: Vec::new(),
            next_id: 0,
        }
    }

    /// Resets all state (segment boundary).
    pub fn reset(&mut self) {
        self.prev_left = None;
        self.tracks.clear();
    }

    /// Processes one stereo frame exactly the way the seed revision did.
    pub fn process(&mut self, left: &GrayImage, right: &GrayImage) -> FrontendFrame {
        let cfg = &self.config;
        let mut timing = FrontendTiming::default();
        let mut stats = FrameStats::default();

        let t = Instant::now();
        let left_blur = gaussian_blur_baseline(left, cfg.tuning.blur_sigma);
        let right_blur = gaussian_blur_baseline(right, cfg.tuning.blur_sigma);
        timing.filtering = t.elapsed();

        let t = Instant::now();
        let kps_left = detect_fast_baseline(left, &cfg.fast);
        let kps_right = detect_fast_baseline(right, &cfg.fast);
        timing.detection = t.elapsed();
        stats.keypoints_left = kps_left.len();
        stats.keypoints_right = kps_right.len();

        let t = Instant::now();
        let feats_left: Vec<Feature> = kps_left
            .iter()
            .filter_map(|kp| {
                compute_orb(&left_blur, kp, &cfg.orb).map(|descriptor| Feature {
                    keypoint: *kp,
                    descriptor,
                })
            })
            .collect();
        let feats_right: Vec<Feature> = kps_right
            .iter()
            .filter_map(|kp| {
                compute_orb(&right_blur, kp, &cfg.orb).map(|descriptor| Feature {
                    keypoint: *kp,
                    descriptor,
                })
            })
            .collect();
        timing.description = t.elapsed();

        let t = Instant::now();
        let stereo = match_stereo(&feats_left, &feats_right, left, right, &cfg.stereo);
        timing.stereo = t.elapsed();
        stats.stereo_matches = stereo.len();
        let mut disparity_of: Vec<Option<f32>> = vec![None; feats_left.len()];
        for m in &stereo {
            disparity_of[m.left_index] = Some(m.disparity);
        }

        let t = Instant::now();
        let tracked: Vec<Option<(f32, f32)>> = match &self.prev_left {
            Some(prev) if !self.tracks.is_empty() => {
                let pts: Vec<(f32, f32)> = self.tracks.iter().map(|tr| (tr.x, tr.y)).collect();
                track_pyramidal_baseline(prev, left, &pts, &cfg.klt)
                    .into_iter()
                    .map(|o| o.position())
                    .collect()
            }
            _ => vec![None; self.tracks.len()],
        };
        timing.temporal = t.elapsed();

        let snap2 = cfg.tuning.snap_radius * cfg.tuning.snap_radius;
        let mut claimed: Vec<Option<u64>> = vec![None; feats_left.len()];
        let mut new_tracks: Vec<Track> = Vec::new();
        let mut observations: Vec<Observation> = Vec::new();
        for (track, pos) in self.tracks.iter().zip(&tracked) {
            let Some((tx, ty)) = *pos else {
                stats.tracks_lost += 1;
                continue;
            };
            let probe = KeyPoint::new(tx, ty, 0.0);
            let mut best: Option<(usize, f32)> = None;
            for (fi, f) in feats_left.iter().enumerate() {
                if claimed[fi].is_some() {
                    continue;
                }
                let d2 = f.keypoint.distance_squared(&probe);
                if d2 <= snap2 && best.is_none_or(|(_, bd)| d2 < bd) {
                    best = Some((fi, d2));
                }
            }
            match best {
                Some((fi, _)) => {
                    claimed[fi] = Some(track.id);
                    let f = &feats_left[fi];
                    observations.push(Observation {
                        track_id: track.id,
                        x: f.keypoint.x,
                        y: f.keypoint.y,
                        disparity: disparity_of[fi],
                        descriptor: f.descriptor,
                    });
                    new_tracks.push(Track {
                        id: track.id,
                        x: f.keypoint.x,
                        y: f.keypoint.y,
                    });
                    stats.tracks_continued += 1;
                }
                None => {
                    let kp = KeyPoint::new(tx, ty, 0.0);
                    match compute_orb(&left_blur, &kp, &cfg.orb) {
                        Some(descriptor) => {
                            observations.push(Observation {
                                track_id: track.id,
                                x: tx,
                                y: ty,
                                disparity: None,
                                descriptor,
                            });
                            new_tracks.push(Track {
                                id: track.id,
                                x: tx,
                                y: ty,
                            });
                            stats.tracks_continued += 1;
                        }
                        None => stats.tracks_lost += 1,
                    }
                }
            }
        }

        for (fi, f) in feats_left.iter().enumerate() {
            if new_tracks.len() >= cfg.tuning.max_tracks {
                break;
            }
            if claimed[fi].is_some() {
                continue;
            }
            let id = self.next_id;
            self.next_id += 1;
            claimed[fi] = Some(id);
            observations.push(Observation {
                track_id: id,
                x: f.keypoint.x,
                y: f.keypoint.y,
                disparity: disparity_of[fi],
                descriptor: f.descriptor,
            });
            new_tracks.push(Track {
                id,
                x: f.keypoint.x,
                y: f.keypoint.y,
            });
            stats.tracks_spawned += 1;
        }

        self.tracks = new_tracks;
        self.prev_left = Some(left.clone());

        FrontendFrame {
            observations,
            timing,
            stats,
        }
    }
}
