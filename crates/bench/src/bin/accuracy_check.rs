//! Sec. IV-A accuracy check: relative trajectory error of the unified
//! framework on the drone-style (EuRoC substitution) and car-style (KITTI
//! substitution) datasets.
//!
//! Paper: 0.28 % (registration) – 0.42 % (SLAM) relative error on EuRoC;
//! < 0.01 % on KITTI with VIO+GPS (GPS bounds absolute drift).

use eudoxus_bench::{row, run_pipeline, run_pipeline_with_map, section};
use eudoxus_sim::{Dataset, ScenarioBuilder};
use eudoxus_sim::{Platform as SimPlatform, ScenarioKind};

fn main() {
    section("relative trajectory error of the unified framework");
    row(&[
        "dataset".into(),
        "mode".into(),
        "RMSE m".into(),
        "rel err %".into(),
    ]);

    let d20 = |kind, frames, seed| -> Dataset {
        ScenarioBuilder::new(kind)
            .frames(frames)
            .fps(20.0)
            .seed(seed)
            .platform(SimPlatform::Drone)
            .build()
    };
    let slam_data = d20(ScenarioKind::IndoorUnknown, 60, 100);
    let slam = run_pipeline(&slam_data);
    row(&[
        "euroc-like".into(),
        "slam".into(),
        format!("{:.3}", slam.translation_rmse()),
        format!("{:.2}", slam.relative_error_percent()),
    ]);

    let reg_data = d20(ScenarioKind::IndoorKnown, 60, 101);
    let reg = run_pipeline_with_map(&reg_data);
    row(&[
        "euroc-like".into(),
        "registration".into(),
        format!("{:.3}", reg.translation_rmse()),
        format!("{:.2}", reg.relative_error_percent()),
    ]);

    let vio_data = ScenarioBuilder::new(ScenarioKind::OutdoorUnknown)
        .frames(30)
        .fps(10.0)
        .seed(102)
        .platform(SimPlatform::Car)
        .build();
    let vio = run_pipeline(&vio_data);
    row(&[
        "kitti-like".into(),
        "vio+gps".into(),
        format!("{:.3}", vio.translation_rmse()),
        format!("{:.2}", vio.relative_error_percent()),
    ]);

    println!("\npaper: 0.28%-0.42% relative error (EuRoC-class), <0.01%* (KITTI, VIO+GPS)");
    println!("*the paper's KITTI number benefits from km-scale trajectories; ours are");
    println!(" tens of meters, so the same absolute drift is a larger percentage");
}
