//! Figs. 5–11: software characterization of the unified framework.
//!
//! * Fig. 5 — frontend/backend latency split and RSD per mode;
//! * Figs. 6–8 — backend kernel breakdown per mode;
//! * Figs. 9–11 — per-frame latency variation (sorted traces).
//!
//! Paper shape: the frontend dominates latency in every mode (55 %–83 %);
//! the backend has the higher RSD; the biggest backend contributors are
//! projection (registration), Kalman gain (VIO) and
//! solver/marginalization (SLAM); worst/best frame latency ratio reaches
//! 2–4×.

use eudoxus_bench::{dataset, row, run_pipeline, run_pipeline_with_map, section};
use eudoxus_core::{Mode, RunLog, Summary};
use eudoxus_sim::{Platform, ScenarioKind};

fn mode_logs() -> Vec<(Mode, RunLog)> {
    // One dataset per mode, drone platform for brisk regeneration.
    let frames = 45;
    let reg_data = dataset(ScenarioKind::IndoorKnown, Platform::Drone, frames, 5);
    let vio_data = dataset(ScenarioKind::OutdoorUnknown, Platform::Drone, frames, 6);
    let slam_data = dataset(ScenarioKind::IndoorUnknown, Platform::Drone, frames, 7);
    vec![
        (Mode::Registration, run_pipeline_with_map(&reg_data)),
        (Mode::Vio, run_pipeline(&vio_data)),
        (Mode::Slam, run_pipeline(&slam_data)),
    ]
}

fn main() {
    let logs = mode_logs();

    section("Fig. 5: frontend vs backend latency split and RSD per mode");
    row(&[
        "mode".into(),
        "frontend %".into(),
        "backend %".into(),
        "fe RSD %".into(),
        "be RSD %".into(),
    ]);
    for (mode, log) in &logs {
        let fe = Summary::of(&log.frontend_ms(None));
        let be = Summary::of(&log.backend_ms(None));
        let total = fe.mean + be.mean;
        row(&[
            mode.to_string(),
            format!("{:.0}", fe.mean / total * 100.0),
            format!("{:.0}", be.mean / total * 100.0),
            format!("{:.0}", fe.rsd() * 100.0),
            format!("{:.0}", be.rsd() * 100.0),
        ]);
    }
    println!("paper: frontend 55-83% of latency; backend RSD > frontend RSD");

    for (mode, log, fig) in logs
        .iter()
        .map(|(m, l)| (m, l, match m {
            Mode::Registration => "Fig. 6 (registration backend)",
            Mode::Vio => "Fig. 7 (VIO backend)",
            Mode::Slam => "Fig. 8 (SLAM backend)",
        }))
    {
        section(&format!("{fig}: kernel breakdown"));
        let totals = log.kernel_totals(*mode);
        let sum: f64 = totals.iter().map(|(_, ms)| ms).sum();
        row(&["kernel".into(), "total ms".into(), "share %".into()]);
        for (kernel, ms) in &totals {
            row(&[
                kernel.to_string(),
                format!("{ms:.1}"),
                format!("{:.0}", ms / sum.max(1e-9) * 100.0),
            ]);
        }
    }

    for (mode, log, fig) in logs.iter().map(|(m, l)| {
        (m, l, match m {
            Mode::Registration => "Fig. 9 (registration)",
            Mode::Vio => "Fig. 10 (VIO)",
            Mode::Slam => "Fig. 11 (SLAM)",
        })
    }) {
        section(&format!("{fig}: per-frame latency variation (sorted)"));
        let mut totals = log.total_ms(None);
        totals.sort_by(f64::total_cmp);
        let s = Summary::of(&totals);
        let pick = |q: f64| totals[((totals.len() - 1) as f64 * q) as usize];
        row(&[
            "min ms".into(),
            "p25".into(),
            "median".into(),
            "p75".into(),
            "max".into(),
            "max/min".into(),
        ]);
        row(&[
            format!("{:.1}", s.min),
            format!("{:.1}", pick(0.25)),
            format!("{:.1}", pick(0.5)),
            format!("{:.1}", pick(0.75)),
            format!("{:.1}", s.max),
            format!("{:.1}x", s.max_over_min()),
        ]);
        let _ = mode;
    }
    println!("\npaper: worst/best frame ratio up to 4x in SLAM, 2x in registration");
}
