//! Figs. 17–21: the overall evaluation — baseline (measured software) vs
//! the accelerated system (modeled), on both platforms.
//!
//! * Fig. 17 — end-to-end latency + SD, per mode and overall;
//! * Fig. 18 — FPS with/without frontend↔backend pipelining;
//! * Fig. 19 — energy per frame;
//! * Fig. 20 — frontend latency and throughput;
//! * Fig. 21 — backend latency + SD per mode.
//!
//! Paper shape: ~2× end-to-end speedup, 43–58 % SD reduction, pipelining
//! lifting FPS well past real-time, 47–74 % energy reduction, frontend
//! SM-bound.

use eudoxus_accel::{FrameWorkload, FrontendEngine, Platform};
use eudoxus_bench::{dataset, row, run_pipeline, run_pipeline_with_map, section};
use eudoxus_core::executor::{Executor, OffloadPolicy};
use eudoxus_core::{Mode, RunLog, Summary};
use eudoxus_sim::{Platform as SimPlatform, ScenarioKind};

struct PlatformEval {
    name: &'static str,
    platform: Platform,
    logs: Vec<(Mode, RunLog)>,
}

fn build_eval(name: &'static str, accel: Platform, sim: SimPlatform, frames: usize) -> PlatformEval {
    let reg = run_pipeline_with_map(&dataset(ScenarioKind::IndoorKnown, sim, frames, 70));
    let vio = run_pipeline(&dataset(ScenarioKind::OutdoorUnknown, sim, frames / 2, 71));
    let slam = run_pipeline(&dataset(ScenarioKind::IndoorUnknown, sim, frames / 2, 72));
    PlatformEval {
        name,
        platform: accel,
        logs: vec![(Mode::Registration, reg), (Mode::Vio, vio), (Mode::Slam, slam)],
    }
}

fn main() {
    // Drone gets the full treatment; the car runs fewer frames (1280×720
    // software frontend is ~6× the pixels).
    let evals = [
        build_eval("EDX-DRONE", Platform::edx_drone(), SimPlatform::Drone, 40),
        build_eval("EDX-CAR", Platform::edx_car(), SimPlatform::Car, 20),
    ];

    for eval in &evals {
        let exec = Executor::new(eval.platform);

        section(&format!("Fig. 17 ({}): latency + SD, baseline vs accelerated", eval.name));
        row(&[
            "mode".into(),
            "base ms".into(),
            "accel ms".into(),
            "speedup".into(),
            "base SD".into(),
            "accel SD".into(),
            "SD red.".into(),
        ]);
        let mut all_base: Vec<f64> = Vec::new();
        let mut all_accel: Vec<f64> = Vec::new();
        for (mode, log) in &eval.logs {
            let policy = match exec.train_scheduler(log, 0.25) {
                Some(s) => OffloadPolicy::Scheduled(s),
                None => OffloadPolicy::Always,
            };
            let run = exec.replay(log, &policy);
            let base = log.latency_summary(None);
            let accel = run.summary();
            all_base.extend(log.total_ms(None));
            all_accel.extend(run.total_ms());
            row(&[
                mode.to_string(),
                format!("{:.1}", base.mean),
                format!("{:.1}", accel.mean),
                format!("{:.2}x", base.mean / accel.mean),
                format!("{:.1}", base.std_dev),
                format!("{:.1}", accel.std_dev),
                format!("{:.0}%", (1.0 - accel.std_dev / base.std_dev.max(1e-9)) * 100.0),
            ]);
        }
        let base = Summary::of(&all_base);
        let accel = Summary::of(&all_accel);
        row(&[
            "overall".into(),
            format!("{:.1}", base.mean),
            format!("{:.1}", accel.mean),
            format!("{:.2}x", base.mean / accel.mean),
            format!("{:.1}", base.std_dev),
            format!("{:.1}", accel.std_dev),
            format!("{:.0}%", (1.0 - accel.std_dev / base.std_dev.max(1e-9)) * 100.0),
        ]);

        section(&format!("Fig. 18 ({}): FPS with and without pipelining", eval.name));
        let mut rows3: Vec<(f64, f64, f64)> = Vec::new();
        for (_, log) in &eval.logs {
            let policy = match exec.train_scheduler(log, 0.25) {
                Some(s) => OffloadPolicy::Scheduled(s),
                None => OffloadPolicy::Always,
            };
            let run = exec.replay(log, &policy);
            rows3.push((log.fps(), run.fps_unpipelined(), run.fps_pipelined()));
        }
        let n = rows3.len() as f64;
        let base_fps = rows3.iter().map(|r| r.0).sum::<f64>() / n;
        let unpiped = rows3.iter().map(|r| r.1).sum::<f64>() / n;
        let piped = rows3.iter().map(|r| r.2).sum::<f64>() / n;
        row(&["baseline".into(), "w/o pipelining".into(), "w/ pipelining".into()]);
        row(&[
            format!("{base_fps:.1}"),
            format!("{unpiped:.1}"),
            format!("{piped:.1}"),
        ]);

        section(&format!("Fig. 19 ({}): energy per frame", eval.name));
        let mut base_j = 0.0;
        let mut accel_j = 0.0;
        for (_, log) in &eval.logs {
            let policy = match exec.train_scheduler(log, 0.25) {
                Some(s) => OffloadPolicy::Scheduled(s),
                None => OffloadPolicy::Always,
            };
            let run = exec.replay(log, &policy);
            base_j += exec.baseline_energy(log) / eval.logs.len() as f64;
            accel_j += run.mean_energy() / eval.logs.len() as f64;
        }
        println!(
            "baseline {base_j:.2} J -> accelerated {accel_j:.2} J ({:.0}% reduction)",
            (1.0 - accel_j / base_j) * 100.0
        );

        section(&format!("Fig. 20 ({}): frontend latency/throughput", eval.name));
        let engine = FrontendEngine::new(eval.platform);
        let (w, h) = eval.platform.resolution;
        let l = engine.latency(&FrameWorkload::typical(w, h));
        let base_fe: f64 = eval
            .logs
            .iter()
            .flat_map(|(_, log)| log.frontend_ms(None))
            .sum::<f64>()
            / eval.logs.iter().map(|(_, l)| l.len()).sum::<usize>() as f64;
        println!(
            "baseline FE {base_fe:.1} ms -> accel FE {:.1} ms (FE {:.1} + SM {:.1}); \
             FPS {:.1} unpipelined / {:.1} pipelined",
            l.total() * 1e3,
            l.feature_extraction * 1e3,
            l.stereo_matching * 1e3,
            l.unpipelined_fps(),
            l.pipelined_fps()
        );

        section(&format!("Fig. 21 ({}): backend latency + SD per mode", eval.name));
        row(&[
            "mode".into(),
            "base be ms".into(),
            "accel be ms".into(),
            "base SD".into(),
            "accel SD".into(),
        ]);
        for (mode, log) in &eval.logs {
            let policy = match exec.train_scheduler(log, 0.25) {
                Some(s) => OffloadPolicy::Scheduled(s),
                None => OffloadPolicy::Always,
            };
            let run = exec.replay(log, &policy);
            let base = Summary::of(&log.backend_ms(None));
            let accel = Summary::of(&run.frames.iter().map(|f| f.backend_ms).collect::<Vec<_>>());
            row(&[
                mode.to_string(),
                format!("{:.1}", base.mean),
                format!("{:.1}", accel.mean),
                format!("{:.2}", base.std_dev),
                format!("{:.2}", accel.std_dev),
            ]);
        }
    }
    println!("\npaper: car 2.1x overall speedup, SD -58%, 8.6->17.2 FPS (31.9 piped),");
    println!("energy 1.9->0.5 J; drone 1.9x, SD -43%, 7.0->22.4 FPS, 0.8->0.4 J");
}
