//! Fig. 3a–d: localization error vs frame rate for the three primitive
//! algorithms in the four operating environments.
//!
//! Paper shape to reproduce: SLAM best indoors without a map (3a),
//! registration best indoors with one (3b), VIO (+GPS) best outdoors
//! (3c/3d), with registration clearly worse than VIO outdoors.

use eudoxus_bench::{row, section};
use eudoxus_core::{build_map, PipelineConfig, SessionBuilder};
use eudoxus_sim::{Dataset, Environment, Platform, ScenarioBuilder, ScenarioKind};

/// Relabels every frame/segment so the mode selector runs one algorithm.
fn relabeled(dataset: &Dataset, env: Environment, keep_gps: bool) -> Dataset {
    let mut d = dataset.clone();
    for f in &mut d.frames {
        f.environment = env;
    }
    for s in &mut d.segments {
        s.environment = env;
    }
    if !keep_gps {
        d.gps.clear();
    }
    d
}

fn rmse_of(data: &Dataset) -> (f64, f64) {
    let mut system = SessionBuilder::new(PipelineConfig::anchored()).build_batch();
    let log = system.process_dataset(data);
    (log.translation_rmse(), log.fps())
}

fn rmse_registration(data: &Dataset) -> (f64, f64) {
    let map = build_map(data, &PipelineConfig::anchored());
    let mut system = SessionBuilder::new(PipelineConfig::anchored()).map(map).build_batch();
    let log = system.process_dataset(data);
    (log.translation_rmse(), log.fps())
}

fn main() {
    println!("Fig. 3: error vs performance per algorithm in each environment");
    println!("(long runs let VIO drift accumulate indoors, as in the paper)");
    let frames = 90;
    for (fig, kind, has_gps_truly) in [
        ("3a indoor-unknown", ScenarioKind::IndoorUnknown, false),
        ("3b indoor-known", ScenarioKind::IndoorKnown, false),
        ("3c outdoor-unknown", ScenarioKind::OutdoorUnknown, true),
        ("3d outdoor-known", ScenarioKind::OutdoorKnown, true),
    ] {
        section(&format!("Fig. {fig}"));
        row(&["algorithm".into(), "error (m)".into(), "proc FPS".into()]);
        // Every algorithm sees the same sensor stream; only the backend
        // differs. Platform follows the paper: drone indoors, car outdoors.
        let platform = if has_gps_truly { Platform::Car } else { Platform::Drone };
        let data = ScenarioBuilder::new(kind)
            .frames(frames)
            .fps(10.0)
            .seed(33)
            .platform(platform)
            .build();

        // VIO: GPS available only when the environment truly has it.
        let vio_data = relabeled(&data, Environment::OutdoorUnknown, has_gps_truly);
        let (vio_err, vio_fps) = rmse_of(&vio_data);
        row(&["VIO".into(), format!("{vio_err:.3}"), format!("{vio_fps:.1}")]);

        // SLAM.
        let slam_data = relabeled(&data, Environment::IndoorUnknown, false);
        let (slam_err, slam_fps) = rmse_of(&slam_data);
        row(&["SLAM".into(), format!("{slam_err:.3}"), format!("{slam_fps:.1}")]);

        // Registration (only where a map exists).
        if data.frames[0].environment.has_map() {
            let reg_data = relabeled(&data, Environment::IndoorKnown, false);
            let (reg_err, reg_fps) = rmse_registration(&reg_data);
            row(&["Registration".into(), format!("{reg_err:.3}"), format!("{reg_fps:.1}")]);
        } else {
            row(&["Registration".into(), "n/a (no map)".into(), "-".into()]);
        }
    }
    println!("\npaper reference: 3a SLAM 0.19 < VIO 0.27; 3b Reg 0.15 best;");
    println!("3c/3d VIO+GPS ~0.10 best, Reg 1.42, SLAM ~12 outdoors");
}
