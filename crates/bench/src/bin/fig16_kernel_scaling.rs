//! Fig. 16a–c: backend kernel latency vs the size of the matrices it
//! operates on, with the scheduler's regression fits.
//!
//! Paper shape: projection scales linearly with map points; Kalman gain
//! and marginalization scale superlinearly (quadratic fits) with feature
//! counts.

use eudoxus_bench::{dataset, row, run_pipeline, run_pipeline_with_map, section};
use eudoxus_backend::Kernel;
use eudoxus_math::{PolyFit, PolyModel};
use eudoxus_sim::{Platform, ScenarioKind};

fn scatter(samples: &[(usize, f64)], model: PolyModel, label: &str) {
    if samples.len() < 6 {
        println!("{label}: too few samples ({})", samples.len());
        return;
    }
    // Bucketize for a compact series.
    let mut sorted = samples.to_vec();
    sorted.sort_by_key(|&(s, _)| s);
    section(label);
    row(&["size".into(), "latency ms".into()]);
    let buckets = 8.min(sorted.len());
    for b in 0..buckets {
        let lo = b * sorted.len() / buckets;
        let hi = ((b + 1) * sorted.len() / buckets).max(lo + 1);
        let chunk = &sorted[lo..hi.min(sorted.len())];
        let size = chunk.iter().map(|&(s, _)| s as f64).sum::<f64>() / chunk.len() as f64;
        let ms = chunk.iter().map(|&(_, m)| m).sum::<f64>() / chunk.len() as f64;
        row(&[format!("{size:.0}"), format!("{ms:.3}")]);
    }
    let xs: Vec<f64> = samples.iter().map(|&(s, _)| s as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|&(_, m)| m).collect();
    match PolyFit::fit(model, &xs, &ys) {
        Ok(fit) => println!(
            "fit: {:?}, coeffs {:?}, R^2 = {:.3}",
            model,
            fit.coefficients()
                .iter()
                .map(|c| format!("{c:.2e}"))
                .collect::<Vec<_>>(),
            fit.r_squared()
        ),
        Err(e) => println!("fit failed: {e}"),
    }
}

fn main() {
    println!("Fig. 16: kernel latency is dictated by operand matrix size");
    // Vary workload sizes via landmark-count/scenario sweeps.
    let mut projection = Vec::new();
    let mut kalman = Vec::new();
    let mut marginalization = Vec::new();
    // Sweep landmark density AND run length so persisted-map sizes (the
    // projection kernel's M) span a wide range.
    for (i, (lm_count, frames)) in [(250usize, 20usize), (900, 30), (2500, 60)]
        .iter()
        .enumerate()
    {
        let reg_data = eudoxus_sim::ScenarioBuilder::new(ScenarioKind::IndoorKnown)
            .frames(*frames)
            .fps(10.0)
            .seed(40 + i as u64)
            .platform(Platform::Drone)
            .landmarks(*lm_count)
            .build();
        let reg = run_pipeline_with_map(&reg_data);
        projection.extend(reg.kernel_samples(Kernel::Projection));
    }
    for (i, frames) in [30usize, 45].iter().enumerate() {
        let vio = run_pipeline(&dataset(
            ScenarioKind::OutdoorUnknown,
            Platform::Drone,
            *frames,
            50 + i as u64,
        ));
        kalman.extend(vio.kernel_samples(Kernel::KalmanGain));
        let slam = run_pipeline(&dataset(
            ScenarioKind::IndoorUnknown,
            Platform::Drone,
            *frames,
            60 + i as u64,
        ));
        marginalization.extend(slam.kernel_samples(Kernel::Marginalization));
    }
    let _ = &dataset; // keep the harness import exercised
    scatter(&projection, PolyModel::Linear, "Fig. 16a: projection vs map points (linear)");
    scatter(&kalman, PolyModel::Quadratic, "Fig. 16b: Kalman gain vs measurement rows (quadratic)");
    scatter(
        &marginalization,
        PolyModel::Quadratic,
        "Fig. 16c: marginalization vs marginalized dim (quadratic)",
    );
    println!("\npaper: projection linear in map points; others quadratic in features");
}
