//! Robustness sweep: graceful degradation under canned fault profiles.
//!
//! Replays all five scenario kinds through streaming sessions, once
//! clean and once per canned `FaultProfile` (`imu_drift` →
//! `flaky_camera` → `dusty_site` → `sensor_storm`, mildest to worst),
//! with deterministic fault injection and the health monitor armed.
//! Writes `BENCH_robustness.json` with, per profile × scenario:
//! held-pose RMSE against the clean run (every dataset frame scores —
//! frames the injector swallowed are charged at the stale pose a
//! consumer would still be acting on, so dropping hard frames never
//! flatters the curve), frames dead-reckoned / degraded / recovering,
//! recovery and relapse counts, mean recovery length, and the
//! injector's drop counters — the degradation curve the session's
//! survival machinery is pinned to.
//!
//! Everything is seeded: the same `(plan, seed, dataset)` replays bit
//! for bit, so the JSON is reproducible run to run.
//!
//! `--max-rmse X` turns the run into a regression gate: the process
//! exits non-zero when any faulted scenario's pose RMSE exceeds `X`
//! meters (CI smokes with a loose bound — the point is "bounded", not
//! "small").
//!
//! ```text
//! cargo run --release -p eudoxus-bench --bin robustness -- \
//!     [--frames N] [--out PATH] [--profile NAME] [--max-rmse X]
//! ```

use eudoxus_bench::{dataset, row, section};
use eudoxus_core::{FaultProfile, FrameRecord, PipelineConfig, SessionBuilder, SessionHealthStats};
use eudoxus_sim::{Platform, ScenarioKind};
use eudoxus_telemetry::{Histogram, TelemetryConfig};

const KINDS: [(ScenarioKind, &str); 5] = [
    (ScenarioKind::OutdoorUnknown, "outdoor_unknown"),
    (ScenarioKind::OutdoorKnown, "outdoor_known"),
    (ScenarioKind::IndoorUnknown, "indoor_unknown"),
    (ScenarioKind::IndoorKnown, "indoor_known"),
    (ScenarioKind::Mixed, "mixed"),
];

/// Seed for every fault process the bench instantiates (the dataset
/// seed is independent): fixed so the sweep replays bit-identically.
const FAULT_SEED: u64 = 21;
const DATASET_SEED: u64 = 7;

struct Args {
    frames: usize,
    out: String,
    profile: Option<String>,
    max_rmse: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        frames: 60,
        out: "BENCH_robustness.json".to_string(),
        profile: None,
        max_rmse: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--frames" => args.frames = value("--frames").parse().expect("--frames: integer"),
            "--out" => args.out = value("--out"),
            "--profile" => {
                let name = value("--profile");
                assert!(
                    FaultProfile::by_name(&name).is_some(),
                    "--profile {name}: expected one of imu_drift, flaky_camera, dusty_site, \
                     sensor_storm"
                );
                args.profile = Some(name);
            }
            "--max-rmse" => {
                args.max_rmse = Some(value("--max-rmse").parse().expect("--max-rmse: float"))
            }
            other => panic!(
                "unknown flag {other} (supported: --frames --out --profile --max-rmse)"
            ),
        }
    }
    args.frames = args.frames.max(4);
    args
}

/// One faulted pass over one scenario.
struct CellResult {
    kind: &'static str,
    /// Frames that produced records (dropped frames never do).
    frames_served: usize,
    rmse: f64,
    clean_rmse: f64,
    health: SessionHealthStats,
    /// Mean probation length in frames per recovery (0 when vision
    /// never came back).
    mean_recovery_frames: f64,
    images_dropped: u64,
    images_blacked_out: u64,
    gps_dropped: u64,
    /// Per-frame latency histogram from the armed session's frame
    /// spans (wall clock — measurement, not a reproducible quantity).
    frame_hist: Histogram,
}

/// One profile row: its five scenario cells plus the cross-scenario
/// mean RMSE (the y-axis of the severity curve).
struct ProfileResult {
    name: &'static str,
    severity: f64,
    mean_rmse: f64,
    cells: Vec<CellResult>,
}

/// Held-pose RMSE over **all** dataset frames, not just the served
/// ones: a served frame scores its estimate against ground truth; a
/// frame the injector swallowed scores the pose a consumer would still
/// be acting on — the most recent served estimate. Dropping a hard
/// frame therefore never flatters the score: the error it hides is
/// charged to the stale held pose. Frames before the first served
/// record are skipped (there is no estimate to hold yet); on a clean
/// run every frame is served and this reduces to the plain served-frame
/// translation RMSE.
fn held_pose_rmse(data: &eudoxus_sim::Dataset, records: &[FrameRecord]) -> f64 {
    let mut held: Option<&FrameRecord> = None;
    let mut next = 0usize;
    let mut sum = 0.0;
    let mut n = 0usize;
    for (frame, truth) in data.frames.iter().zip(&data.ground_truth) {
        while next < records.len() && records[next].t <= frame.t + 1e-9 {
            held = Some(&records[next]);
            next += 1;
        }
        if let Some(r) = held {
            let err = r.pose.translation_distance(*truth);
            sum += err * err;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        (sum / n as f64).sqrt()
    }
}

fn clean_rmse(kind: ScenarioKind, frames: usize) -> f64 {
    let data = dataset(kind, Platform::Drone, frames, DATASET_SEED);
    let mut session = SessionBuilder::new(PipelineConfig::anchored()).build();
    let records: Vec<FrameRecord> = data.events().filter_map(|e| session.push(e)).collect();
    held_pose_rmse(&data, &records)
}

fn run_cell(
    profile: &FaultProfile,
    kind: ScenarioKind,
    name: &'static str,
    frames: usize,
    clean: f64,
) -> CellResult {
    let data = dataset(kind, Platform::Drone, frames, DATASET_SEED);
    // Telemetry armed: frame latency percentiles come off the span
    // histogram instead of ad-hoc timers (and arming is free — the
    // faulted trajectory is bit-identical either way).
    let mut session = SessionBuilder::new(PipelineConfig::anchored())
        .faults(profile.plan, FAULT_SEED)
        .telemetry(TelemetryConfig::new())
        .build();
    let records: Vec<FrameRecord> = data.events().filter_map(|e| session.push(e)).collect();
    let health = session.health_stats();
    let counters = session.fault_counters().expect("faults attached");
    let frame_hist = session
        .telemetry()
        .expect("telemetry armed")
        .frame_histogram();
    let rmse = held_pose_rmse(&data, &records);
    CellResult {
        kind: name,
        frames_served: records.len(),
        rmse,
        clean_rmse: clean,
        health,
        mean_recovery_frames: if health.recoveries > 0 {
            health.recovering_frames as f64 / health.recoveries as f64
        } else {
            0.0
        },
        images_dropped: counters.images_dropped,
        images_blacked_out: counters.images_blacked_out,
        gps_dropped: counters.gps_dropped,
        frame_hist,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn write_json(path: &str, frames: usize, clean: &[(&'static str, f64)], profiles: &[ProfileResult]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"frames_per_scenario\": {frames},\n"));
    s.push_str(&format!("  \"fault_seed\": {FAULT_SEED},\n"));
    s.push_str("  \"clean_rmse\": {");
    for (i, (name, rmse)) in clean.iter().enumerate() {
        s.push_str(&format!("\"{name}\": {}", json_f(*rmse)));
        if i + 1 < clean.len() {
            s.push_str(", ");
        }
    }
    s.push_str("},\n");
    s.push_str("  \"profiles\": [\n");
    for (i, p) in profiles.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"profile\": \"{}\",\n", p.name));
        s.push_str(&format!("      \"severity\": {},\n", json_f(p.severity)));
        s.push_str(&format!("      \"mean_rmse\": {},\n", json_f(p.mean_rmse)));
        s.push_str("      \"scenarios\": [\n");
        for (j, c) in p.cells.iter().enumerate() {
            let h = &c.health;
            s.push_str("        {\n");
            s.push_str(&format!("          \"kind\": \"{}\",\n", c.kind));
            s.push_str(&format!("          \"frames_served\": {},\n", c.frames_served));
            s.push_str(&format!("          \"rmse\": {},\n", json_f(c.rmse)));
            s.push_str(&format!("          \"clean_rmse\": {},\n", json_f(c.clean_rmse)));
            s.push_str(&format!(
                "          \"rmse_vs_clean\": {},\n",
                json_f(c.rmse - c.clean_rmse)
            ));
            s.push_str(&format!("          \"degraded_frames\": {},\n", h.degraded_frames));
            s.push_str(&format!(
                "          \"dead_reckoned_frames\": {},\n",
                h.dead_reckoned_frames
            ));
            s.push_str(&format!(
                "          \"recovering_frames\": {},\n",
                h.recovering_frames
            ));
            s.push_str(&format!("          \"fallback_frames\": {},\n", h.fallback_frames));
            s.push_str(&format!("          \"recoveries\": {},\n", h.recoveries));
            s.push_str(&format!("          \"relapses\": {},\n", h.relapses));
            s.push_str(&format!(
                "          \"mean_recovery_frames\": {},\n",
                json_f(c.mean_recovery_frames)
            ));
            s.push_str(&format!("          \"faulted_drops\": {},\n", h.faulted_drops));
            s.push_str(&format!("          \"images_dropped\": {},\n", c.images_dropped));
            s.push_str(&format!(
                "          \"images_blacked_out\": {},\n",
                c.images_blacked_out
            ));
            s.push_str(&format!("          \"gps_dropped\": {},\n", c.gps_dropped));
            s.push_str(&format!(
                "          \"frame_latency_ms\": {{\"p50\": {}, \"p99\": {}}}\n",
                json_f(c.frame_hist.p50_ms()),
                json_f(c.frame_hist.p99_ms())
            ));
            s.push_str(if j + 1 < p.cells.len() {
                "        },\n"
            } else {
                "        }\n"
            });
        }
        s.push_str("      ]\n");
        s.push_str(if i + 1 < profiles.len() { "    },\n" } else { "    }\n" });
    }
    s.push_str("  ],\n");
    // Cross-sweep frame latency: every faulted cell's histogram merged.
    let mut merged = Histogram::new();
    for p in profiles {
        for c in &p.cells {
            merged.merge(&c.frame_hist);
        }
    }
    s.push_str(&format!(
        "  \"frame_latency_ms\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}}\n",
        json_f(merged.p50_ms()),
        json_f(merged.p90_ms()),
        json_f(merged.p99_ms())
    ));
    s.push_str("}\n");
    std::fs::write(path, s).expect("write BENCH json");
}

fn main() {
    let args = parse_args();

    section(&format!(
        "Robustness sweep: {} frames/scenario, drone rig, fault seed {}",
        args.frames, FAULT_SEED
    ));

    let clean: Vec<(&'static str, f64)> = KINDS
        .iter()
        .map(|(kind, name)| (*name, clean_rmse(*kind, args.frames)))
        .collect();

    let profiles: Vec<FaultProfile> = FaultProfile::canned()
        .into_iter()
        .filter(|p| args.profile.as_deref().is_none_or(|sel| sel == p.name))
        .collect();

    row(&[
        "profile".into(),
        "severity".into(),
        "mean rmse".into(),
        "dead-reckoned".into(),
        "recoveries".into(),
        "drops".into(),
    ]);
    let mut results = Vec::new();
    for profile in &profiles {
        let cells: Vec<CellResult> = KINDS
            .iter()
            .zip(&clean)
            .map(|((kind, name), (_, clean_rmse))| {
                run_cell(profile, *kind, name, args.frames, *clean_rmse)
            })
            .collect();
        let mean_rmse =
            cells.iter().map(|c| c.rmse).sum::<f64>() / cells.len().max(1) as f64;
        let dead: u64 = cells.iter().map(|c| c.health.dead_reckoned_frames).sum();
        let recov: u64 = cells.iter().map(|c| c.health.recoveries).sum();
        let drops: u64 = cells.iter().map(|c| c.health.faulted_drops).sum();
        row(&[
            profile.name.into(),
            format!("{:.3}", profile.severity()),
            format!("{mean_rmse:.4}"),
            format!("{dead}"),
            format!("{recov}"),
            format!("{drops}"),
        ]);
        results.push(ProfileResult {
            name: profile.name,
            severity: profile.severity(),
            mean_rmse,
            cells,
        });
    }

    write_json(&args.out, args.frames, &clean, &results);
    println!("\nwrote {}", args.out);

    if let Some(max) = args.max_rmse {
        let worst = results
            .iter()
            .flat_map(|p| p.cells.iter())
            .filter(|c| c.rmse.is_finite())
            .map(|c| c.rmse)
            .fold(0.0_f64, f64::max);
        if worst > max {
            eprintln!(
                "FAIL: worst faulted scenario RMSE {worst:.4} m exceeds the --max-rmse \
                 gate of {max:.4} m"
            );
            std::process::exit(1);
        }
        println!("rmse gate passed (worst {worst:.4} m <= {max:.4} m)");
    }
}
