//! Sec. VII-F: effectiveness of the runtime offload scheduler.
//!
//! Paper results to mirror: regression R² of 0.83/0.82/0.98
//! (registration/VIO/SLAM kernels), near-oracle scheduling (<0.001 %
//! difference), most registration/VIO frames offloaded, ~76 % of SLAM
//! marginalizations offloaded, and always-offloading SLAM *increasing*
//! latency (+8.3 %).

use eudoxus_accel::{BackendKernelKind, KernelDims, RuntimeScheduler};
use eudoxus_bench::{dataset, row, run_pipeline, run_pipeline_with_map, section};
use eudoxus_core::executor::{Executor, OffloadPolicy};
use eudoxus_core::Mode;
use eudoxus_sim::{Platform as SimPlatform, ScenarioKind};

fn main() {
    let frames = 45;
    let logs = vec![
        (
            Mode::Registration,
            run_pipeline_with_map(&dataset(ScenarioKind::IndoorKnown, SimPlatform::Drone, frames, 80)),
        ),
        (
            Mode::Vio,
            run_pipeline(&dataset(ScenarioKind::OutdoorUnknown, SimPlatform::Drone, 2 * frames, 81)),
        ),
        (
            Mode::Slam,
            run_pipeline(&dataset(ScenarioKind::IndoorUnknown, SimPlatform::Drone, frames, 82)),
        ),
    ];
    let exec = Executor::new(eudoxus_accel::Platform::edx_drone());

    // The paper trains one regression per kernel offline on 25% of frames;
    // pool the three mode traces the same way (a single registration map
    // has a constant size, so per-mode projection fits would be singular).
    section("regression quality (pooled, interleaved 50/50 split)");
    row(&["kernel".into(), "R^2".into(), "samples".into()]);
    let mut train: Vec<_> = Vec::new();
    let mut eval_pool: Vec<_> = Vec::new();
    for (_, log) in &logs {
        // Interleave so every kernel appears in both halves (Kalman gain
        // only fires once the MSCKF window fills).
        for (i, s) in exec.training_samples(log, 1.0).into_iter().enumerate() {
            if i % 2 == 0 {
                train.push(s);
            } else {
                eval_pool.push(s);
            }
        }
    }
    let trained = RuntimeScheduler::train(&train);
    if let Some(sched) = &trained {
        for kind in BackendKernelKind::ALL {
            let n = train.iter().filter(|s| s.kind == kind).count();
            match sched.r_squared(kind) {
                Some(r2) => row(&[kind.paper_name().into(), format!("{r2:.3}"), format!("{n}")]),
                None => row(&[
                    kind.paper_name().into(),
                    "const model".into(),
                    format!("{n}"),
                ]),
            }
        }
    }
    println!("paper: R^2 = 0.83 (registration), 0.82 (VIO), 0.98 (SLAM)");

    section("scheduler vs oracle on the held-out half");
    row(&[
        "kernel".into(),
        "agree %".into(),
        "offload %".into(),
        "sched ms".into(),
        "oracle ms".into(),
        "always ms".into(),
    ]);
    for kind_filter in BackendKernelKind::ALL {
        let Some(sched) = trained.clone() else { continue };
        let eval: Vec<_> = eval_pool
            .iter()
            .copied()
            .filter(|s| s.kind == kind_filter)
            .collect();
        if eval.is_empty() {
            continue;
        }
        let eval = &eval[..];
        let mut agree = 0usize;
        let mut offloads = 0usize;
        let mut sched_ms = 0.0;
        let mut oracle_ms = 0.0;
        let mut always_ms = 0.0;
        for s in eval {
            let dims = match s.kind {
                BackendKernelKind::Projection => KernelDims::Projection { map_points: s.size },
                BackendKernelKind::KalmanGain => KernelDims::KalmanGain {
                    rows: s.size,
                    state: 195,
                },
                BackendKernelKind::Marginalization => KernelDims::Marginalization {
                    landmarks: s.size.saturating_sub(6) / 3,
                    remaining: 30,
                },
            };
            let accel_ms = exec.backend_engine().offload_time(&dims) * 1e3;
            let sd = sched.decide(exec.backend_engine(), &dims).is_offload();
            let od = RuntimeScheduler::oracle_decide(exec.backend_engine(), &dims, s.cpu_millis)
                .is_offload();
            if sd == od {
                agree += 1;
            }
            if sd {
                offloads += 1;
            }
            sched_ms += if sd { accel_ms } else { s.cpu_millis };
            oracle_ms += if od { accel_ms } else { s.cpu_millis };
            always_ms += accel_ms;
        }
        let n = eval.len().max(1);
        row(&[
            kind_filter.paper_name().into(),
            format!("{:.1}", agree as f64 / n as f64 * 100.0),
            format!("{:.1}", offloads as f64 / n as f64 * 100.0),
            format!("{sched_ms:.1}"),
            format!("{oracle_ms:.1}"),
            format!("{always_ms:.1}"),
        ]);
    }
    println!("paper: scheduler within 0.001% of oracle; 76.4% of SLAM frames offloaded;");
    println!("always-offloading SLAM increases latency by 8.3%");

    section("end-to-end latency per policy (drone, all modes pooled)");
    row(&["policy".into(), "mean ms".into()]);
    for (name, policy_of) in [
        ("never", 0usize),
        ("scheduled", 1),
        ("always", 2),
    ] {
        let mut total = 0.0;
        let mut count = 0usize;
        for (_, log) in &logs {
            let policy = match policy_of {
                0 => OffloadPolicy::Never,
                1 => match exec.train_scheduler(log, 0.25) {
                    Some(s) => OffloadPolicy::Scheduled(s),
                    None => OffloadPolicy::Never,
                },
                _ => OffloadPolicy::Always,
            };
            let run = exec.replay(log, &policy);
            total += run.summary().mean * log.len() as f64;
            count += log.len();
        }
        row(&[name.into(), format!("{:.1}", total / count as f64)]);
    }
}
