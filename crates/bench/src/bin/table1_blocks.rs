//! Table I: the variation-contributing backend kernels decompose into the
//! five shared matrix building blocks.

use eudoxus_accel::{BackendKernelKind, KernelDims};
use eudoxus_bench::{row, section};

fn main() {
    section("Table I: building blocks per backend kernel");
    let blocks = [
        "Matrix Multiplication",
        "Matrix Decomposition",
        "Matrix Inverse",
        "Matrix Transpose",
        "Fwd./Bwd. Substitution",
    ];
    let dims = [
        KernelDims::Projection { map_points: 2000 },
        KernelDims::KalmanGain { rows: 80, state: 195 },
        KernelDims::Marginalization {
            landmarks: 40,
            remaining: 30,
        },
    ];
    row(&[
        "building block".into(),
        "Projection".into(),
        "Kalman Gain".into(),
        "Marginal.".into(),
    ]);
    for block in blocks {
        let mut cells = vec![block.to_string()];
        for d in &dims {
            let used = d.decompose().iter().any(|op| op.block_name() == block);
            cells.push(if used { "x".into() } else { "".into() });
        }
        row(&cells);
    }
    println!("\npaper Table I: multiplication+transpose in all; decomposition/substitution");
    println!("in Kalman gain + marginalization; inverse only in marginalization");

    section("per-kernel op sequences (with cycle costs on EDX-CAR, block=16)");
    for d in &dims {
        println!("\n{}:", match d.kind() {
            BackendKernelKind::Projection => "Projection (C[3x4] . X[4xM], M=2000)",
            BackendKernelKind::KalmanGain => "Kalman Gain (rows=80, state=195)",
            BackendKernelKind::Marginalization => "Marginalization (40 landmarks + pose, 30 kept)",
        });
        for op in d.decompose() {
            println!("  {:<24} {:>10.0} cycles", op.block_name(), op.cycles(16));
        }
    }
}
