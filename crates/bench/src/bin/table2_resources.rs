//! Table II: FPGA resource consumption of both prototypes, shared design
//! vs the "N.S." no-sharing hypothetical, plus the stencil-buffer sizing
//! study of Sec. VII-D.

use eudoxus_accel::platform::Platform;
use eudoxus_accel::resources::{board_capacity, resource_report};
use eudoxus_accel::stencil::{frontend_consumers, plan_stencil_buffers};
use eudoxus_accel::memory::memory_report;
use eudoxus_bench::{row, section};

fn main() {
    section("Table II: FPGA resource consumption (shared vs N.S.)");
    row(&[
        "resource".into(),
        "Car".into(),
        "Virtex-7 %".into(),
        "Car N.S.".into(),
        "Drone".into(),
        "Zynq %".into(),
        "Drone N.S.".into(),
    ]);
    let car = resource_report(&Platform::edx_car());
    let drone = resource_report(&Platform::edx_drone());
    let rows: [(&str, fn(&eudoxus_accel::ResourceVector) -> f64); 4] = [
        ("LUT", |r| r.lut),
        ("Flip-Flop", |r| r.ff),
        ("DSP", |r| r.dsp),
        ("BRAM (MB)", |r| r.bram_mb),
    ];
    for (name, get) in rows {
        row(&[
            name.into(),
            format!("{:.0}", get(&car.shared)),
            format!("{:.1}%", get(&car.utilization) * 100.0),
            format!("{:.0}", get(&car.no_sharing)),
            format!("{:.0}", get(&drone.shared)),
            format!("{:.1}%", get(&drone.utilization) * 100.0),
            format!("{:.0}", get(&drone.no_sharing)),
        ]);
    }
    println!(
        "frontend share of used LUTs: car {:.0}% (paper 83.2%), drone {:.0}%",
        car.frontend_lut_fraction * 100.0,
        drone.frontend_lut_fraction * 100.0
    );
    println!(
        "boards: {} / {}",
        board_capacity(eudoxus_accel::PlatformKind::EdxCar).name,
        board_capacity(eudoxus_accel::PlatformKind::EdxDrone).name
    );
    println!("paper Table II (car): 350671 LUT 80.9%, 239347 FF, 1284 DSP, 5.0 BRAM 87.5%");

    section("Sec. VII-D: stencil-buffer replication study (EDX-CAR)");
    let p = Platform::edx_car();
    let consumers = frontend_consumers(p.resolution.0, p.pixels());
    let plan = plan_stencil_buffers(&consumers, p.resolution.0 as usize, 1, p.pixels());
    println!("strategy chosen: {:?}", plan.strategy);
    println!(
        "SB bytes (2 streams): {:.1} KB; sharing instead would need {:.1} MB (+{:.1} MB)",
        2.0 * plan.bytes as f64 / 1e3,
        2.0 * plan.rejected_bytes as f64 / 1e6,
        2.0 * (plan.rejected_bytes - plan.bytes) as f64 / 1e6,
    );
    println!("extra DRAM reads per frame: {}", plan.extra_dram_reads);
    println!("paper: SB 0.4 MB; sharing would add ~9 MB (pixel waits >3M cycles)");

    section("on-chip memory budget");
    for (name, platform) in [("EDX-CAR", Platform::edx_car()), ("EDX-DRONE", Platform::edx_drone())] {
        let m = memory_report(&platform);
        println!(
            "{name}: SB {:.1} KB, FIFO {:.1} KB, SPM {:.2} MB (total {:.2} MB)",
            m.sb_bytes as f64 / 1e3,
            m.fifo_bytes as f64 / 1e3,
            m.spm_bytes as f64 / 1e6,
            m.total() as f64 / 1e6
        );
    }
    println!("paper (car): SPM ~3.6 MB dominates SB ~0.4 MB; MSCKF state ~1.2 MB");
}
