//! Table III: EDX-CAR speedup over CPU/GPU/DSP software baselines.
//!
//! The multi-core reference is our measured pipeline; the other baselines
//! apply the documented latency transforms (ROS IPC overhead, single-core
//! factor, GPU launch/setup costs — see `eudoxus_accel::baselines`).

use eudoxus_accel::baselines::table3_speedups;
use eudoxus_bench::{dataset, row, run_pipeline, section};
use eudoxus_core::executor::{Executor, OffloadPolicy};
use eudoxus_sim::{Platform as SimPlatform, ScenarioKind};

fn main() {
    // Measured multi-core-equivalent frame time on the car resolution.
    let log = run_pipeline(&dataset(ScenarioKind::OutdoorUnknown, SimPlatform::Car, 15, 90));
    let exec = Executor::new(eudoxus_accel::Platform::edx_car());
    let policy = match exec.train_scheduler(&log, 0.25) {
        Some(s) => OffloadPolicy::Scheduled(s),
        None => OffloadPolicy::Always,
    };
    let run = exec.replay(&log, &policy);
    // Our Rust pipeline is single-threaded without SIMD, so the honest
    // mapping is measured time = single-core baseline; the multi-core
    // reference derives from the paper's parallelization factor.
    let single_core_s = log.latency_summary(None).mean * 1e-3;
    let multicore_s = single_core_s / 1.57;
    let eudoxus_s = run.summary().mean * 1e-3;

    section("Table III: EDX-CAR speedup over software baselines");
    println!(
        "(measured single-core frame {:.1} ms -> derived multi-core {:.1} ms; accelerated {:.1} ms)\n",
        single_core_s * 1e3,
        multicore_s * 1e3,
        eudoxus_s * 1e3
    );
    row(&["baseline".into(), "speedup (x)".into(), "paper".into()]);
    let paper = [3.5, 3.3, 2.2, 2.1, 4.4, 2.5, 2.5];
    for ((baseline, speedup), paper_x) in table3_speedups(multicore_s, eudoxus_s).iter().zip(paper)
    {
        row(&[
            baseline.paper_name().into(),
            format!("{speedup:.1}"),
            format!("{paper_x:.1}"),
        ]);
    }
    println!("\nshape: GPU worst (launch overhead), ROS adds IPC cost, ours lowest speedup");
}
