//! Replay-throughput benchmark: seeds the performance trajectory.
//!
//! Replays all five scenario kinds (the `Mixed` 50/25/25 evaluation set
//! included) through the seed-equivalent
//! [`BaselineFrontend`](eudoxus_bench::baseline::BaselineFrontend), the
//! optimized batched-KLT `Frontend`, and a full streaming
//! `LocalizationSession`, then drives a multi-agent `SessionManager`
//! sequentially and with `poll_parallel`. Writes `BENCH_throughput.json`
//! with frames/sec, per-kernel microseconds, per-frame latency
//! percentiles (p50/p90/p99) and per-kernel p50/p99 — both sourced from
//! the telemetry span rings, not ad-hoc timers — and (when built with
//! `--features count-alloc`) allocations-per-frame.
//!
//! `--min-speedup X` turns the run into a regression gate: the process
//! exits non-zero when the mean frontend speedup vs the in-run seed
//! baseline falls below `X` (CI smokes with `--min-speedup 2.0`).
//!
//! `--engine {cpu,edx-car,edx-drone,scheduled}` selects the in-loop
//! `ExecutionEngine` for an additional live pass per scenario: `cpu`
//! skips it, `edx-car`/`edx-drone` attach a `ModeledAccelEngine`
//! (always-offload estimate on that platform), and `scheduled` (the
//! default) trains the paper's offload scheduler on the measured CPU
//! pass and runs it inside `push` on EDX-DRONE (the rig the datasets
//! simulate). The modeled accelerated fps (pipelined/unpipelined),
//! energy and offload rate land in the per-scenario `accel` block of
//! `BENCH_throughput.json`.
//!
//! `--link {stable,congested,canyon}` puts the engine pass behind a
//! seeded `StochasticLink` (`lan_stable` / `congested_uplink` /
//! `urban_canyon_dropout`): the scheduler then re-prices every kernel
//! against the live channel, and the per-scenario `accel` block gains a
//! `link` sub-block with the shedding counters. Independently of the
//! flag, every non-`cpu` engine run appends a top-level `link_sweep`
//! block: each scenario's measured CPU records replayed through a
//! trained scheduler behind each canned profile, showing the offload
//! rate decaying (and fallbacks rising) as the channel degrades from
//! `lan_stable` to `urban_canyon_dropout`.
//!
//! `--deadline-ms D` adds a closed-loop pass: per scenario a session
//! with the frame-deadline throttle armed (engine verdicts steering the
//! next frame's feature budget) next to an unthrottled twin, plus an
//! admission-controlled `SessionManager` shedding agents whose modeled
//! rate cannot meet `D`. The throttle rate, shed counters, and the
//! modeled-vs-unthrottled frame period land in the top-level
//! `control_loop` block of `BENCH_throughput.json`.
//!
//! ```text
//! cargo run --release -p eudoxus-bench --bin throughput -- \
//!     [--frames N] [--workers W] [--out PATH] [--min-speedup X] [--engine E] [--link L] \
//!     [--deadline-ms D]
//! ```

use eudoxus_accel::Platform as AccelPlatform;
use eudoxus_bench::baseline::BaselineFrontend;
use eudoxus_bench::{alloc_track, dataset, row, section};
use eudoxus_core::{
    AcceleratedRun, AdmissionConfig, AdmissionStats, Enqueue, Executor, ExecutionEngine,
    FrameContext, FrameRecord, LinkProfile, LinkStats, ModeledAccelEngine, OffloadPolicy,
    PipelineConfig, RunLog, ScheduledEngine, SessionBuilder, SessionManager, StochasticLink,
    ThrottleConfig, ThrottleStats,
};
use eudoxus_frontend::{Frontend, FrontendConfig};
use eudoxus_sim::{Dataset, Platform, ScenarioKind};
use eudoxus_telemetry::{SpanScope, TelemetryConfig, TelemetryHub};
use std::time::Instant;

const KINDS: [(ScenarioKind, &str); 5] = [
    (ScenarioKind::OutdoorUnknown, "outdoor_unknown"),
    (ScenarioKind::OutdoorKnown, "outdoor_known"),
    (ScenarioKind::IndoorUnknown, "indoor_unknown"),
    (ScenarioKind::IndoorKnown, "indoor_known"),
    (ScenarioKind::Mixed, "mixed"),
];

/// Which in-loop engine the engine pass attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    Cpu,
    EdxCar,
    EdxDrone,
    Scheduled,
}

impl EngineChoice {
    fn name(self) -> &'static str {
        match self {
            EngineChoice::Cpu => "cpu",
            EngineChoice::EdxCar => "edx-car",
            EngineChoice::EdxDrone => "edx-drone",
            EngineChoice::Scheduled => "scheduled",
        }
    }
}

/// Seed for every stochastic link the bench instantiates: the traces
/// (and therefore the decisions and counters) replay bit-identically
/// from run to run.
const LINK_SEED: u64 = 9;

struct Args {
    frames: usize,
    workers: usize,
    out: String,
    min_speedup: Option<f64>,
    engine: EngineChoice,
    link: Option<LinkProfile>,
    deadline_ms: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        frames: 40,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(KINDS.len()),
        out: "BENCH_throughput.json".to_string(),
        min_speedup: None,
        engine: EngineChoice::Scheduled,
        link: None,
        deadline_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--frames" => args.frames = value("--frames").parse().expect("--frames: integer"),
            "--workers" => args.workers = value("--workers").parse().expect("--workers: integer"),
            "--out" => args.out = value("--out"),
            "--min-speedup" => {
                args.min_speedup =
                    Some(value("--min-speedup").parse().expect("--min-speedup: float"))
            }
            "--engine" => {
                args.engine = match value("--engine").as_str() {
                    "cpu" => EngineChoice::Cpu,
                    "edx-car" => EngineChoice::EdxCar,
                    "edx-drone" => EngineChoice::EdxDrone,
                    "scheduled" => EngineChoice::Scheduled,
                    other => panic!(
                        "--engine {other}: expected cpu, edx-car, edx-drone or scheduled"
                    ),
                }
            }
            "--link" => {
                args.link = Some(match value("--link").as_str() {
                    "stable" => LinkProfile::lan_stable(),
                    "congested" => LinkProfile::congested_uplink(),
                    "canyon" => LinkProfile::urban_canyon_dropout(),
                    other => panic!("--link {other}: expected stable, congested or canyon"),
                })
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")
                        .parse()
                        .expect("--deadline-ms: float"),
                )
            }
            other => panic!(
                "unknown flag {other} (supported: --frames --workers --out --min-speedup \
                 --engine --link --deadline-ms)"
            ),
        }
    }
    args.frames = args.frames.max(2);
    args.workers = args.workers.max(1);
    args
}

/// Mean of per-record kernel time in microseconds, by accessor.
fn mean_us(records: &[FrameRecord], f: impl Fn(&FrameRecord) -> std::time::Duration) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(|r| f(r).as_secs_f64() * 1e6).sum::<f64>() / records.len() as f64
}

/// Modeled accelerated numbers from the in-loop engine pass.
struct AccelResult {
    engine: &'static str,
    mean_latency_ms: f64,
    fps_unpipelined: f64,
    fps_pipelined: f64,
    mean_energy_j: f64,
    baseline_energy_j: f64,
    offload_rate: f64,
    /// Present when `--link` put the engine pass behind a channel (and
    /// the engine accepted it — the modeled always-offload engines
    /// price transfers on their fixed bus and decline links).
    link: Option<LinkResult>,
}

/// Shedding counters from a link-backed pass.
struct LinkResult {
    profile: &'static str,
    stats: LinkStats,
    fallback_rate: f64,
    frames_lost: usize,
}

struct ScenarioResult {
    name: &'static str,
    baseline_frontend_fps: f64,
    frontend_fps: f64,
    frontend_speedup: f64,
    session_fps: f64,
    session_fps_baseline_est: f64,
    session_speedup_est: f64,
    kernel_us: [(&'static str, f64); 5],
    /// Per-frame session latency percentiles (ms), from the armed
    /// session's frame spans.
    frame_latency_ms: (f64, f64, f64),
    /// Per-kernel (p50 µs, p99 µs) from the armed session's kernel
    /// spans, in first-seen order.
    kernel_percentiles_us: Vec<(&'static str, f64, f64)>,
    /// Spans the session pass recorded / dropped (ring overflow).
    spans_recorded: u64,
    spans_dropped: u64,
    allocations_per_frame: Option<f64>,
    accel: Option<AccelResult>,
}

/// Builds the selected in-loop engine; `Scheduled` trains the offload
/// scheduler on the measured CPU records first (the paper's 25 %
/// profiling fraction) and falls back to always-offload when the run is
/// too short to fit the regressions.
fn build_engine(choice: EngineChoice, cpu_log: &RunLog) -> Option<Box<dyn ExecutionEngine>> {
    match choice {
        EngineChoice::Cpu => None,
        EngineChoice::EdxCar => Some(Box::new(ModeledAccelEngine::edx_car())),
        EngineChoice::EdxDrone => Some(Box::new(ModeledAccelEngine::edx_drone())),
        EngineChoice::Scheduled => {
            let platform = AccelPlatform::edx_drone();
            let policy = match Executor::new(platform).train_scheduler(cpu_log, 0.25) {
                Some(sched) => OffloadPolicy::Scheduled(sched),
                None => OffloadPolicy::Always,
            };
            Some(Box::new(ScheduledEngine::with_policy(platform, policy)))
        }
    }
}

/// Drives a second live session with the engine attached and summarizes
/// its per-frame `ExecutionReport`s.
fn run_engine_pass(
    data: &Dataset,
    cpu_log: &RunLog,
    choice: EngineChoice,
    link: Option<LinkProfile>,
) -> Option<AccelResult> {
    let mut engine = build_engine(choice, cpu_log)?;
    let engine_name = engine.name();
    let attached_profile = link.and_then(|profile| {
        engine
            .attach_link(Box::new(StochasticLink::new(profile, LINK_SEED)), None)
            .then_some(profile.name)
    });
    let mut session = SessionBuilder::new(PipelineConfig::anchored()).build();
    session.set_engine(engine);
    let log = RunLog {
        records: data.events().filter_map(|e| session.push(e)).collect(),
    };
    let run: AcceleratedRun = log
        .execution_run()
        .expect("an attached accel engine reports every frame");
    let link_result = attached_profile.map(|profile| LinkResult {
        profile,
        stats: session.engine().link_stats().expect("link attached"),
        fallback_rate: run.fallback_rate(),
        frames_lost: run.frames_lost(),
    });
    // Baseline energy on the platform the engine models, from the same
    // live pass the reports came from.
    let platform = match choice {
        EngineChoice::EdxCar => AccelPlatform::edx_car(),
        _ => AccelPlatform::edx_drone(),
    };
    Some(AccelResult {
        engine: engine_name,
        mean_latency_ms: run.summary().mean,
        fps_unpipelined: run.fps_unpipelined(),
        fps_pipelined: run.fps_pipelined(),
        mean_energy_j: run.mean_energy(),
        baseline_energy_j: Executor::new(platform).baseline_energy(&log),
        offload_rate: run.offload_rate(),
        link: link_result,
    })
}

/// One row of the link sweep: a trained scheduler replaying a measured
/// CPU log behind one canned profile.
struct LinkSweepRow {
    profile: &'static str,
    offload_rate: f64,
    fallback_rate: f64,
    stats: LinkStats,
}

/// Replays every scenario's measured CPU records through a
/// link-backed trained scheduler, once per canned profile (best channel
/// first). Replay (not a second live pass): the scheduler prices the
/// *measured* kernels against each link state, so the three rows differ
/// only in the channel — which is exactly the comparison the sweep is
/// after.
fn run_link_sweep(cpu_logs: &[RunLog], choice: EngineChoice) -> Option<Vec<LinkSweepRow>> {
    if choice == EngineChoice::Cpu {
        return None;
    }
    let rows = LinkProfile::canned()
        .into_iter()
        .map(|profile| {
            let mut frames = Vec::new();
            let mut stats = LinkStats::default();
            for cpu_log in cpu_logs {
                // A fresh engine (and link) per scenario: every scenario
                // sees the same seeded channel trace.
                let mut engine = build_engine(EngineChoice::Scheduled, cpu_log)
                    .expect("scheduled choice always builds");
                assert!(engine
                    .attach_link(Box::new(StochasticLink::new(profile, LINK_SEED)), None));
                for r in &cpu_log.records {
                    let report = engine
                        .execute_frame(&FrameContext {
                            stats: &r.frontend_stats,
                            timing: &r.frontend_timing,
                            backend_kernels: &r.backend_kernels,
                            health: None,
                        })
                        .expect("a scheduled engine reports every frame");
                    frames.push(report.accelerated_frame());
                }
                let s = engine.link_stats().expect("link attached");
                stats.frames += s.frames;
                stats.frames_lost += s.frames_lost;
                stats.link_fallbacks += s.link_fallbacks;
                stats.deadline_missed += s.deadline_missed;
            }
            let run = AcceleratedRun { frames };
            LinkSweepRow {
                profile: profile.name,
                offload_rate: run.offload_rate(),
                fallback_rate: run.fallback_rate(),
                stats,
            }
        })
        .collect();
    Some(rows)
}

/// Closed-loop numbers from the `--deadline-ms` pass: throttle-armed
/// sessions (one per scenario) plus an admission-controlled fleet.
struct ControlLoopResult {
    deadline_ms: f64,
    frames: u64,
    throttled_frames: u64,
    throttle_entries: u64,
    /// Severity-ladder steps up (repeated deadline misses) across the
    /// throttled sessions.
    throttle_escalations: u64,
    throttle_rate: f64,
    /// Mean converged modeled frame period across throttled sessions.
    modeled_period_ms: f64,
    /// Same sessions without the throttle, for the modeled-vs-achieved
    /// comparison.
    unthrottled_period_ms: f64,
    offered: u64,
    admitted: u64,
    degraded: u64,
    shed: u64,
    shed_rate: f64,
}

/// Drives the control loop closed: per scenario, one scheduled session
/// with the frame-deadline throttle armed (the engine verdict steering
/// the next frame's feature budget) next to an unthrottled twin; then an
/// admission-controlled manager over the same fleet, enqueueing and
/// draining in lockstep so the modeled rate the gate consults stays
/// current.
fn run_control_loop(
    datasets: &[Dataset],
    cpu_logs: &[RunLog],
    choice: EngineChoice,
    deadline_ms: f64,
) -> Option<ControlLoopResult> {
    if choice == EngineChoice::Cpu {
        return None;
    }
    let mut throttle = ThrottleStats::default();
    let mut modeled = 0.0;
    let mut unthrottled = 0.0;
    for (data, cpu_log) in datasets.iter().zip(cpu_logs) {
        let mut baseline = SessionBuilder::new(PipelineConfig::anchored()).build();
        baseline.set_engine(build_engine(choice, cpu_log).expect("non-cpu choice"));
        for event in data.events() {
            std::hint::black_box(baseline.push(event));
        }
        let mut throttled = SessionBuilder::new(PipelineConfig::anchored()).build();
        throttled.set_engine(build_engine(choice, cpu_log).expect("non-cpu choice"));
        throttled.enable_throttle(ThrottleConfig::new(deadline_ms));
        for event in data.events() {
            std::hint::black_box(throttled.push(event));
        }
        let stats = throttled.throttle_stats();
        throttle.frames += stats.frames;
        throttle.throttled_frames += stats.throttled_frames;
        throttle.entries += stats.entries;
        throttle.exits += stats.exits;
        throttle.escalations += stats.escalations;
        throttle.deescalations += stats.deescalations;
        modeled += throttled.modeled_period_ms().unwrap_or(0.0);
        unthrottled += baseline.modeled_period_ms().unwrap_or(0.0);
    }
    let passes = datasets.len().max(1) as f64;

    let mut manager = SessionManager::new();
    manager.set_admission_control(AdmissionConfig::new(deadline_ms));
    for (i, cpu_log) in cpu_logs.iter().enumerate() {
        let mut session = SessionBuilder::new(PipelineConfig::anchored()).build();
        session.set_engine(build_engine(choice, cpu_log).expect("non-cpu choice"));
        manager.add_agent(format!("agent-{i}"), session);
    }
    let mut streams: Vec<_> = datasets.iter().map(|d| d.events()).collect();
    loop {
        let mut any = false;
        for (i, stream) in streams.iter_mut().enumerate() {
            if let Some(event) = stream.next() {
                any = true;
                let id = format!("agent-{i}");
                std::hint::black_box(manager.try_enqueue(&id, event));
            }
        }
        if !any {
            break;
        }
        while manager.poll().is_some() {}
    }
    let mut admission = AdmissionStats::default();
    for i in 0..cpu_logs.len() {
        let a = manager
            .admission_stats(&format!("agent-{i}"))
            .expect("agent exists");
        admission.offered += a.offered;
        admission.admitted += a.admitted;
        admission.degraded += a.degraded;
        admission.shed += a.shed;
    }
    Some(ControlLoopResult {
        deadline_ms,
        frames: throttle.frames,
        throttled_frames: throttle.throttled_frames,
        throttle_entries: throttle.entries,
        throttle_escalations: throttle.escalations,
        throttle_rate: throttle.throttle_rate(),
        modeled_period_ms: modeled / passes,
        unthrottled_period_ms: unthrottled / passes,
        offered: admission.offered,
        admitted: admission.admitted,
        degraded: admission.degraded,
        shed: admission.shed,
        shed_rate: admission.shed_rate(),
    })
}

fn run_scenario(
    data: &Dataset,
    name: &'static str,
    engine: EngineChoice,
    link: Option<LinkProfile>,
) -> (ScenarioResult, RunLog) {
    // All three passes are timed by draining telemetry spans instead of
    // ad-hoc `Instant` arithmetic: each frame is bracketed by a
    // wall-clock frame span, per-pass totals are the exact span sums,
    // and the histograms double as the percentile source.

    // Pre-PR baseline: the seed frontend, allocating per frame.
    let baseline_hub = TelemetryHub::new(TelemetryConfig::new());
    let mut baseline = BaselineFrontend::new(FrontendConfig::default());
    for (i, frame) in data.frames.iter().enumerate() {
        let t0 = baseline_hub.start();
        std::hint::black_box(baseline.process(&frame.left, &frame.right));
        baseline_hub.record(SpanScope::Frame, "frame", i as u64, t0);
    }
    let baseline_frontend_s = baseline_hub.frame_histogram().sum_ns() as f64 * 1e-9;

    // Optimized frontend: scratch reuse + cached pyramid.
    let fe_hub = TelemetryHub::new(TelemetryConfig::new());
    let mut frontend = Frontend::new(FrontendConfig::default());
    frontend.set_telemetry(Some(fe_hub.clone()));
    for (i, frame) in data.frames.iter().enumerate() {
        frontend.set_telemetry_frame(i as u64);
        let t0 = fe_hub.start();
        std::hint::black_box(frontend.process(&frame.left, &frame.right));
        fe_hub.record(SpanScope::Frame, "frame", i as u64, t0);
    }
    let frontend_s = fe_hub.frame_histogram().sum_ns() as f64 * 1e-9;

    // Full streaming session (frontend + backend + event plumbing),
    // timed with the default passthrough engine so session_fps stays
    // comparable across engine choices. Telemetry armed: the session
    // stamps its own frame and kernel spans, and the percentiles below
    // come straight off its histograms.
    let mut session = SessionBuilder::new(PipelineConfig::anchored())
        .telemetry(TelemetryConfig::new())
        .build();
    let alloc_before = alloc_track::allocations();
    let records: Vec<FrameRecord> = data.events().filter_map(|e| session.push(e)).collect();
    let alloc_after = alloc_track::allocations();
    assert_eq!(records.len(), data.frames.len(), "every frame yields a record");
    let hub = session.telemetry().expect("session telemetry armed").clone();
    let frame_hist = hub.frame_histogram();
    let session_s = frame_hist.sum_ns() as f64 * 1e-9;
    let cpu_log = RunLog { records };

    let n = data.frames.len() as f64;
    let frontend_share = frontend_s / n;
    let baseline_share = baseline_frontend_s / n;
    // Estimated seed-era session time: swap the measured optimized
    // frontend share for the measured baseline share.
    let session_baseline_s_est = session_s - frontend_s + baseline_frontend_s;

    // In-loop engine pass: the same stream through a session with the
    // selected accelerator engine deciding per frame.
    let accel = run_engine_pass(data, &cpu_log, engine, link);

    let result = ScenarioResult {
        name,
        baseline_frontend_fps: n / baseline_frontend_s,
        frontend_fps: n / frontend_s,
        frontend_speedup: baseline_share / frontend_share,
        session_fps: n / session_s,
        session_fps_baseline_est: n / session_baseline_s_est,
        session_speedup_est: session_baseline_s_est / session_s,
        kernel_us: [
            ("filtering", mean_us(&cpu_log.records, |r| r.frontend_timing.filtering)),
            ("detection", mean_us(&cpu_log.records, |r| r.frontend_timing.detection)),
            ("description", mean_us(&cpu_log.records, |r| r.frontend_timing.description)),
            ("stereo", mean_us(&cpu_log.records, |r| r.frontend_timing.stereo)),
            ("temporal", mean_us(&cpu_log.records, |r| r.frontend_timing.temporal)),
        ],
        frame_latency_ms: (
            frame_hist.p50_ms(),
            frame_hist.p90_ms(),
            frame_hist.p99_ms(),
        ),
        kernel_percentiles_us: hub
            .kernel_histograms()
            .iter()
            .map(|(kernel, h)| {
                (*kernel, h.quantile(0.50) * 1e-3, h.quantile(0.99) * 1e-3)
            })
            .collect(),
        spans_recorded: hub.spans_recorded(),
        spans_dropped: hub.spans_dropped(),
        allocations_per_frame: alloc_track::counting_enabled()
            .then(|| (alloc_after - alloc_before) as f64 / n),
        accel,
    };
    // Every span-sourced percentile lands in the committed JSON: a NaN
    // or infinity there means a histogram went unfed — fail here, not in
    // whatever consumes the artifact.
    let (p50, p90, p99) = result.frame_latency_ms;
    assert!(
        p50.is_finite() && p90.is_finite() && p99.is_finite(),
        "{name}: non-finite frame percentiles ({p50}/{p90}/{p99})"
    );
    for (kernel, p50, p99) in &result.kernel_percentiles_us {
        assert!(
            p50.is_finite() && p99.is_finite(),
            "{name}: non-finite percentiles for kernel {kernel}"
        );
    }
    (result, cpu_log)
}

struct ManagerResult {
    agents: usize,
    workers: usize,
    sequential_fps: f64,
    parallel_fps: f64,
    parallel_speedup: f64,
}

fn run_manager(datasets: &[Dataset], workers: usize) -> ManagerResult {
    let fill = |manager: &mut SessionManager| {
        for (i, data) in datasets.iter().enumerate() {
            let id = format!("agent-{i}");
            manager.add_agent(&id, SessionBuilder::new(PipelineConfig::anchored()).build());
            for event in data.events() {
                assert!(matches!(
                    manager.try_enqueue(&id, event),
                    Enqueue::Accepted
                ));
            }
        }
    };
    let total_frames: usize = datasets.iter().map(|d| d.frames.len()).sum();

    let mut sequential = SessionManager::new();
    fill(&mut sequential);
    let t = Instant::now();
    let seq_records = sequential.run_until_idle();
    let sequential_s = t.elapsed().as_secs_f64();
    assert_eq!(seq_records.len(), total_frames);

    let mut parallel = SessionManager::new();
    fill(&mut parallel);
    let t = Instant::now();
    let par_records = parallel.poll_parallel(workers);
    let parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(par_records.len(), total_frames);

    ManagerResult {
        agents: datasets.len(),
        workers,
        sequential_fps: total_frames as f64 / sequential_s,
        parallel_fps: total_frames as f64 / parallel_s,
        parallel_speedup: sequential_s / parallel_s,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn write_json(
    path: &str,
    frames: usize,
    engine: EngineChoice,
    scenarios: &[ScenarioResult],
    manager: &ManagerResult,
    link_sweep: Option<&[LinkSweepRow]>,
    control_loop: Option<&ControlLoopResult>,
) {
    let mean_speedup =
        scenarios.iter().map(|s| s.frontend_speedup).sum::<f64>() / scenarios.len().max(1) as f64;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"frames_per_scenario\": {frames},\n"));
    s.push_str(&format!("  \"engine\": \"{}\",\n", engine.name()));
    s.push_str(&format!(
        "  \"mean_frontend_speedup_vs_seed_baseline\": {},\n",
        json_f(mean_speedup)
    ));
    s.push_str(&format!(
        "  \"count_alloc_enabled\": {},\n",
        alloc_track::counting_enabled()
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"kind\": \"{}\",\n", sc.name));
        s.push_str(&format!(
            "      \"baseline_frontend_fps\": {},\n",
            json_f(sc.baseline_frontend_fps)
        ));
        s.push_str(&format!("      \"frontend_fps\": {},\n", json_f(sc.frontend_fps)));
        s.push_str(&format!(
            "      \"frontend_speedup\": {},\n",
            json_f(sc.frontend_speedup)
        ));
        s.push_str(&format!("      \"session_fps\": {},\n", json_f(sc.session_fps)));
        s.push_str(&format!(
            "      \"session_fps_baseline_est\": {},\n",
            json_f(sc.session_fps_baseline_est)
        ));
        s.push_str(&format!(
            "      \"session_speedup_est\": {},\n",
            json_f(sc.session_speedup_est)
        ));
        s.push_str("      \"kernel_us\": {");
        for (j, (k, v)) in sc.kernel_us.iter().enumerate() {
            s.push_str(&format!("\"{k}\": {}", json_f(*v)));
            if j + 1 < sc.kernel_us.len() {
                s.push_str(", ");
            }
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "      \"frame_latency_ms\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
            json_f(sc.frame_latency_ms.0),
            json_f(sc.frame_latency_ms.1),
            json_f(sc.frame_latency_ms.2),
        ));
        s.push_str("      \"kernel_percentiles_us\": {");
        for (j, (k, p50, p99)) in sc.kernel_percentiles_us.iter().enumerate() {
            s.push_str(&format!(
                "\"{k}\": {{\"p50\": {}, \"p99\": {}}}",
                json_f(*p50),
                json_f(*p99)
            ));
            if j + 1 < sc.kernel_percentiles_us.len() {
                s.push_str(", ");
            }
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "      \"spans_recorded\": {},\n",
            sc.spans_recorded
        ));
        s.push_str(&format!("      \"spans_dropped\": {},\n", sc.spans_dropped));
        s.push_str(&format!(
            "      \"allocations_per_frame\": {},\n",
            sc.allocations_per_frame.map_or("null".to_string(), json_f)
        ));
        match &sc.accel {
            Some(a) => {
                s.push_str("      \"accel\": {\n");
                s.push_str(&format!("        \"engine\": \"{}\",\n", a.engine));
                s.push_str(&format!(
                    "        \"mean_latency_ms\": {},\n",
                    json_f(a.mean_latency_ms)
                ));
                s.push_str(&format!(
                    "        \"fps_unpipelined\": {},\n",
                    json_f(a.fps_unpipelined)
                ));
                s.push_str(&format!(
                    "        \"fps_pipelined\": {},\n",
                    json_f(a.fps_pipelined)
                ));
                s.push_str(&format!(
                    "        \"mean_energy_j\": {},\n",
                    json_f(a.mean_energy_j)
                ));
                s.push_str(&format!(
                    "        \"baseline_energy_j\": {},\n",
                    json_f(a.baseline_energy_j)
                ));
                s.push_str(&format!(
                    "        \"offload_rate\": {},\n",
                    json_f(a.offload_rate)
                ));
                match &a.link {
                    Some(l) => {
                        s.push_str("        \"link\": {\n");
                        s.push_str(&format!("          \"profile\": \"{}\",\n", l.profile));
                        s.push_str(&format!("          \"frames\": {},\n", l.stats.frames));
                        s.push_str(&format!(
                            "          \"frames_lost\": {},\n",
                            l.stats.frames_lost
                        ));
                        s.push_str(&format!(
                            "          \"link_fallbacks\": {},\n",
                            l.stats.link_fallbacks
                        ));
                        s.push_str(&format!(
                            "          \"deadline_missed\": {},\n",
                            l.stats.deadline_missed
                        ));
                        s.push_str(&format!(
                            "          \"fallback_rate\": {},\n",
                            json_f(l.fallback_rate)
                        ));
                        s.push_str(&format!(
                            "          \"frames_lost_with_work\": {}\n",
                            l.frames_lost
                        ));
                        s.push_str("        }\n");
                    }
                    None => s.push_str("        \"link\": null\n"),
                }
                s.push_str("      }\n");
            }
            None => s.push_str("      \"accel\": null\n"),
        }
        s.push_str(if i + 1 < scenarios.len() { "    },\n" } else { "    }\n" });
    }
    s.push_str("  ],\n");
    match link_sweep {
        Some(rows) => {
            s.push_str("  \"link_sweep\": [\n");
            for (i, r) in rows.iter().enumerate() {
                s.push_str("    {\n");
                s.push_str(&format!("      \"profile\": \"{}\",\n", r.profile));
                s.push_str(&format!(
                    "      \"offload_rate\": {},\n",
                    json_f(r.offload_rate)
                ));
                s.push_str(&format!(
                    "      \"fallback_rate\": {},\n",
                    json_f(r.fallback_rate)
                ));
                s.push_str(&format!("      \"frames\": {},\n", r.stats.frames));
                s.push_str(&format!("      \"frames_lost\": {},\n", r.stats.frames_lost));
                s.push_str(&format!(
                    "      \"link_fallbacks\": {},\n",
                    r.stats.link_fallbacks
                ));
                s.push_str(&format!(
                    "      \"deadline_missed\": {}\n",
                    r.stats.deadline_missed
                ));
                s.push_str(if i + 1 < rows.len() { "    },\n" } else { "    }\n" });
            }
            s.push_str("  ],\n");
        }
        None => s.push_str("  \"link_sweep\": null,\n"),
    }
    match control_loop {
        Some(c) => {
            s.push_str("  \"control_loop\": {\n");
            s.push_str(&format!("    \"deadline_ms\": {},\n", json_f(c.deadline_ms)));
            s.push_str(&format!("    \"frames\": {},\n", c.frames));
            s.push_str(&format!(
                "    \"throttled_frames\": {},\n",
                c.throttled_frames
            ));
            s.push_str(&format!(
                "    \"throttle_entries\": {},\n",
                c.throttle_entries
            ));
            s.push_str(&format!(
                "    \"throttle_escalations\": {},\n",
                c.throttle_escalations
            ));
            s.push_str(&format!(
                "    \"throttle_rate\": {},\n",
                json_f(c.throttle_rate)
            ));
            s.push_str(&format!(
                "    \"modeled_period_ms\": {},\n",
                json_f(c.modeled_period_ms)
            ));
            s.push_str(&format!(
                "    \"unthrottled_period_ms\": {},\n",
                json_f(c.unthrottled_period_ms)
            ));
            s.push_str(&format!("    \"offered\": {},\n", c.offered));
            s.push_str(&format!("    \"admitted\": {},\n", c.admitted));
            s.push_str(&format!("    \"degraded\": {},\n", c.degraded));
            s.push_str(&format!("    \"shed\": {},\n", c.shed));
            s.push_str(&format!("    \"shed_rate\": {}\n", json_f(c.shed_rate)));
            s.push_str("  },\n");
        }
        None => s.push_str("  \"control_loop\": null,\n"),
    }
    s.push_str("  \"manager\": {\n");
    s.push_str(&format!("    \"agents\": {},\n", manager.agents));
    s.push_str(&format!("    \"workers\": {},\n", manager.workers));
    s.push_str(&format!(
        "    \"sequential_fps\": {},\n",
        json_f(manager.sequential_fps)
    ));
    s.push_str(&format!("    \"parallel_fps\": {},\n", json_f(manager.parallel_fps)));
    s.push_str(&format!(
        "    \"parallel_speedup\": {}\n",
        json_f(manager.parallel_speedup)
    ));
    s.push_str("  }\n");
    s.push_str("}\n");
    std::fs::write(path, s).expect("write BENCH json");
}

fn main() {
    let args = parse_args();

    section(&format!(
        "Replay throughput: {} frames/scenario, drone rig",
        args.frames
    ));
    let mut scenarios = Vec::new();
    let mut datasets = Vec::new();
    let mut cpu_logs = Vec::new();
    row(&[
        "scenario".into(),
        "seed fps".into(),
        "opt fps".into(),
        "speedup".into(),
        "session fps".into(),
        "p50/p99 ms".into(),
        "accel fps(p)".into(),
        "alloc/frame".into(),
    ]);
    for (kind, name) in KINDS {
        let data = dataset(kind, Platform::Drone, args.frames, 7);
        let (result, cpu_log) = run_scenario(&data, name, args.engine, args.link);
        row(&[
            name.into(),
            format!("{:.2}", result.baseline_frontend_fps),
            format!("{:.2}", result.frontend_fps),
            format!("{:.2}x", result.frontend_speedup),
            format!("{:.2}", result.session_fps),
            format!(
                "{:.2}/{:.2}",
                result.frame_latency_ms.0, result.frame_latency_ms.2
            ),
            result
                .accel
                .as_ref()
                .map_or("n/a".into(), |a| format!("{:.1}", a.fps_pipelined)),
            result
                .allocations_per_frame
                .map_or("n/a".into(), |a| format!("{a:.0}")),
        ]);
        scenarios.push(result);
        datasets.push(data);
        cpu_logs.push(cpu_log);
    }

    let link_sweep = run_link_sweep(&cpu_logs, args.engine);
    if let Some(rows) = &link_sweep {
        section("Link sweep: trained scheduler behind each canned profile");
        row(&[
            "profile".into(),
            "offload".into(),
            "fallback".into(),
            "lost".into(),
            "frames".into(),
        ]);
        for r in rows {
            row(&[
                r.profile.into(),
                format!("{:.0}%", r.offload_rate * 100.0),
                format!("{:.0}%", r.fallback_rate * 100.0),
                format!("{}", r.stats.frames_lost),
                format!("{}", r.stats.frames),
            ]);
        }
    }

    let control_loop = args
        .deadline_ms
        .and_then(|deadline| run_control_loop(&datasets, &cpu_logs, args.engine, deadline));
    if let Some(c) = &control_loop {
        section(&format!(
            "Control loop: deadline {:.2} ms (throttle + admission)",
            c.deadline_ms
        ));
        row(&[
            "throttle rate".into(),
            format!("{:.0}%", c.throttle_rate * 100.0),
            "period".into(),
            format!("{:.2} ms (was {:.2})", c.modeled_period_ms, c.unthrottled_period_ms),
            "shed".into(),
            format!("{}/{} ({:.0}%)", c.shed, c.offered, c.shed_rate * 100.0),
        ]);
    }

    section(&format!(
        "SessionManager: {} agents, {} workers",
        datasets.len(),
        args.workers
    ));
    let manager = run_manager(&datasets, args.workers);
    row(&[
        "sequential fps".into(),
        format!("{:.2}", manager.sequential_fps),
        "parallel fps".into(),
        format!("{:.2}", manager.parallel_fps),
        "speedup".into(),
        format!("{:.2}x", manager.parallel_speedup),
    ]);

    write_json(
        &args.out,
        args.frames,
        args.engine,
        &scenarios,
        &manager,
        link_sweep.as_deref(),
        control_loop.as_ref(),
    );
    println!("\nwrote {}", args.out);

    let mean_speedup: f64 =
        scenarios.iter().map(|s| s.frontend_speedup).sum::<f64>() / scenarios.len() as f64;
    println!(
        "mean single-session frontend speedup vs seed baseline: {mean_speedup:.2}x"
    );

    if let Some(min) = args.min_speedup {
        if mean_speedup < min {
            eprintln!(
                "FAIL: mean frontend speedup {mean_speedup:.2}x is below the \
                 --min-speedup gate of {min:.2}x"
            );
            std::process::exit(1);
        }
        println!("speedup gate passed (>= {min:.2}x)");
    }
}
