//! Replay-throughput benchmark: seeds the performance trajectory.
//!
//! Replays all five scenario kinds (the `Mixed` 50/25/25 evaluation set
//! included) through the seed-equivalent
//! [`BaselineFrontend`](eudoxus_bench::baseline::BaselineFrontend), the
//! optimized batched-KLT `Frontend`, and a full streaming
//! `LocalizationSession`, then drives a multi-agent `SessionManager`
//! sequentially and with `poll_parallel`. Writes `BENCH_throughput.json`
//! with frames/sec, per-kernel microseconds, and (when built with
//! `--features count-alloc`) allocations-per-frame.
//!
//! `--min-speedup X` turns the run into a regression gate: the process
//! exits non-zero when the mean frontend speedup vs the in-run seed
//! baseline falls below `X` (CI smokes with `--min-speedup 2.0`).
//!
//! ```text
//! cargo run --release -p eudoxus-bench --bin throughput -- \
//!     [--frames N] [--workers W] [--out PATH] [--min-speedup X]
//! ```

use eudoxus_bench::baseline::BaselineFrontend;
use eudoxus_bench::{alloc_track, dataset, row, section};
use eudoxus_core::{FrameRecord, LocalizationSession, PipelineConfig, SessionManager};
use eudoxus_frontend::{Frontend, FrontendConfig};
use eudoxus_sim::{Dataset, Platform, ScenarioKind};
use std::time::Instant;

const KINDS: [(ScenarioKind, &str); 5] = [
    (ScenarioKind::OutdoorUnknown, "outdoor_unknown"),
    (ScenarioKind::OutdoorKnown, "outdoor_known"),
    (ScenarioKind::IndoorUnknown, "indoor_unknown"),
    (ScenarioKind::IndoorKnown, "indoor_known"),
    (ScenarioKind::Mixed, "mixed"),
];

struct Args {
    frames: usize,
    workers: usize,
    out: String,
    min_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        frames: 40,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(KINDS.len()),
        out: "BENCH_throughput.json".to_string(),
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--frames" => args.frames = value("--frames").parse().expect("--frames: integer"),
            "--workers" => args.workers = value("--workers").parse().expect("--workers: integer"),
            "--out" => args.out = value("--out"),
            "--min-speedup" => {
                args.min_speedup =
                    Some(value("--min-speedup").parse().expect("--min-speedup: float"))
            }
            other => panic!(
                "unknown flag {other} (supported: --frames --workers --out --min-speedup)"
            ),
        }
    }
    args.frames = args.frames.max(2);
    args.workers = args.workers.max(1);
    args
}

/// Mean of per-record kernel time in microseconds, by accessor.
fn mean_us(records: &[FrameRecord], f: impl Fn(&FrameRecord) -> std::time::Duration) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(|r| f(r).as_secs_f64() * 1e6).sum::<f64>() / records.len() as f64
}

struct ScenarioResult {
    name: &'static str,
    baseline_frontend_fps: f64,
    frontend_fps: f64,
    frontend_speedup: f64,
    session_fps: f64,
    session_fps_baseline_est: f64,
    session_speedup_est: f64,
    kernel_us: [(&'static str, f64); 5],
    allocations_per_frame: Option<f64>,
}

fn run_scenario(data: &Dataset, name: &'static str) -> ScenarioResult {
    // Pre-PR baseline: the seed frontend, allocating per frame.
    let mut baseline = BaselineFrontend::new(FrontendConfig::default());
    let t = Instant::now();
    for frame in &data.frames {
        std::hint::black_box(baseline.process(&frame.left, &frame.right));
    }
    let baseline_frontend_s = t.elapsed().as_secs_f64();

    // Optimized frontend: scratch reuse + cached pyramid.
    let mut frontend = Frontend::new(FrontendConfig::default());
    let t = Instant::now();
    for frame in &data.frames {
        std::hint::black_box(frontend.process(&frame.left, &frame.right));
    }
    let frontend_s = t.elapsed().as_secs_f64();

    // Full streaming session (frontend + backend + event plumbing).
    let mut session = LocalizationSession::new(PipelineConfig::anchored());
    let alloc_before = alloc_track::allocations();
    let t = Instant::now();
    let records: Vec<FrameRecord> = data.events().filter_map(|e| session.push(e)).collect();
    let session_s = t.elapsed().as_secs_f64();
    let alloc_after = alloc_track::allocations();
    assert_eq!(records.len(), data.frames.len(), "every frame yields a record");

    let n = data.frames.len() as f64;
    let frontend_share = frontend_s / n;
    let baseline_share = baseline_frontend_s / n;
    // Estimated seed-era session time: swap the measured optimized
    // frontend share for the measured baseline share.
    let session_baseline_s_est = session_s - frontend_s + baseline_frontend_s;

    ScenarioResult {
        name,
        baseline_frontend_fps: n / baseline_frontend_s,
        frontend_fps: n / frontend_s,
        frontend_speedup: baseline_share / frontend_share,
        session_fps: n / session_s,
        session_fps_baseline_est: n / session_baseline_s_est,
        session_speedup_est: session_baseline_s_est / session_s,
        kernel_us: [
            ("filtering", mean_us(&records, |r| r.frontend_timing.filtering)),
            ("detection", mean_us(&records, |r| r.frontend_timing.detection)),
            ("description", mean_us(&records, |r| r.frontend_timing.description)),
            ("stereo", mean_us(&records, |r| r.frontend_timing.stereo)),
            ("temporal", mean_us(&records, |r| r.frontend_timing.temporal)),
        ],
        allocations_per_frame: alloc_track::counting_enabled()
            .then(|| (alloc_after - alloc_before) as f64 / n),
    }
}

struct ManagerResult {
    agents: usize,
    workers: usize,
    sequential_fps: f64,
    parallel_fps: f64,
    parallel_speedup: f64,
}

fn run_manager(datasets: &[Dataset], workers: usize) -> ManagerResult {
    let fill = |manager: &mut SessionManager| {
        for (i, data) in datasets.iter().enumerate() {
            let id = format!("agent-{i}");
            manager.add_agent(&id, LocalizationSession::new(PipelineConfig::anchored()));
            for event in data.events() {
                manager.enqueue(&id, event);
            }
        }
    };
    let total_frames: usize = datasets.iter().map(|d| d.frames.len()).sum();

    let mut sequential = SessionManager::new();
    fill(&mut sequential);
    let t = Instant::now();
    let seq_records = sequential.run_until_idle();
    let sequential_s = t.elapsed().as_secs_f64();
    assert_eq!(seq_records.len(), total_frames);

    let mut parallel = SessionManager::new();
    fill(&mut parallel);
    let t = Instant::now();
    let par_records = parallel.poll_parallel(workers);
    let parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(par_records.len(), total_frames);

    ManagerResult {
        agents: datasets.len(),
        workers,
        sequential_fps: total_frames as f64 / sequential_s,
        parallel_fps: total_frames as f64 / parallel_s,
        parallel_speedup: sequential_s / parallel_s,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn write_json(path: &str, frames: usize, scenarios: &[ScenarioResult], manager: &ManagerResult) {
    let mean_speedup =
        scenarios.iter().map(|s| s.frontend_speedup).sum::<f64>() / scenarios.len().max(1) as f64;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"frames_per_scenario\": {frames},\n"));
    s.push_str(&format!(
        "  \"mean_frontend_speedup_vs_seed_baseline\": {},\n",
        json_f(mean_speedup)
    ));
    s.push_str(&format!(
        "  \"count_alloc_enabled\": {},\n",
        alloc_track::counting_enabled()
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"kind\": \"{}\",\n", sc.name));
        s.push_str(&format!(
            "      \"baseline_frontend_fps\": {},\n",
            json_f(sc.baseline_frontend_fps)
        ));
        s.push_str(&format!("      \"frontend_fps\": {},\n", json_f(sc.frontend_fps)));
        s.push_str(&format!(
            "      \"frontend_speedup\": {},\n",
            json_f(sc.frontend_speedup)
        ));
        s.push_str(&format!("      \"session_fps\": {},\n", json_f(sc.session_fps)));
        s.push_str(&format!(
            "      \"session_fps_baseline_est\": {},\n",
            json_f(sc.session_fps_baseline_est)
        ));
        s.push_str(&format!(
            "      \"session_speedup_est\": {},\n",
            json_f(sc.session_speedup_est)
        ));
        s.push_str("      \"kernel_us\": {");
        for (j, (k, v)) in sc.kernel_us.iter().enumerate() {
            s.push_str(&format!("\"{k}\": {}", json_f(*v)));
            if j + 1 < sc.kernel_us.len() {
                s.push_str(", ");
            }
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "      \"allocations_per_frame\": {}\n",
            sc.allocations_per_frame.map_or("null".to_string(), json_f)
        ));
        s.push_str(if i + 1 < scenarios.len() { "    },\n" } else { "    }\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"manager\": {\n");
    s.push_str(&format!("    \"agents\": {},\n", manager.agents));
    s.push_str(&format!("    \"workers\": {},\n", manager.workers));
    s.push_str(&format!(
        "    \"sequential_fps\": {},\n",
        json_f(manager.sequential_fps)
    ));
    s.push_str(&format!("    \"parallel_fps\": {},\n", json_f(manager.parallel_fps)));
    s.push_str(&format!(
        "    \"parallel_speedup\": {}\n",
        json_f(manager.parallel_speedup)
    ));
    s.push_str("  }\n");
    s.push_str("}\n");
    std::fs::write(path, s).expect("write BENCH json");
}

fn main() {
    let args = parse_args();

    section(&format!(
        "Replay throughput: {} frames/scenario, drone rig",
        args.frames
    ));
    let mut scenarios = Vec::new();
    let mut datasets = Vec::new();
    row(&[
        "scenario".into(),
        "seed fps".into(),
        "opt fps".into(),
        "speedup".into(),
        "session fps".into(),
        "alloc/frame".into(),
    ]);
    for (kind, name) in KINDS {
        let data = dataset(kind, Platform::Drone, args.frames, 7);
        let result = run_scenario(&data, name);
        row(&[
            name.into(),
            format!("{:.2}", result.baseline_frontend_fps),
            format!("{:.2}", result.frontend_fps),
            format!("{:.2}x", result.frontend_speedup),
            format!("{:.2}", result.session_fps),
            result
                .allocations_per_frame
                .map_or("n/a".into(), |a| format!("{a:.0}")),
        ]);
        scenarios.push(result);
        datasets.push(data);
    }

    section(&format!(
        "SessionManager: {} agents, {} workers",
        datasets.len(),
        args.workers
    ));
    let manager = run_manager(&datasets, args.workers);
    row(&[
        "sequential fps".into(),
        format!("{:.2}", manager.sequential_fps),
        "parallel fps".into(),
        format!("{:.2}", manager.parallel_fps),
        "speedup".into(),
        format!("{:.2}x", manager.parallel_speedup),
    ]);

    write_json(&args.out, args.frames, &scenarios, &manager);
    println!("\nwrote {}", args.out);

    let mean_speedup: f64 =
        scenarios.iter().map(|s| s.frontend_speedup).sum::<f64>() / scenarios.len() as f64;
    println!(
        "mean single-session frontend speedup vs seed baseline: {mean_speedup:.2}x"
    );

    if let Some(min) = args.min_speedup {
        if mean_speedup < min {
            eprintln!(
                "FAIL: mean frontend speedup {mean_speedup:.2}x is below the \
                 --min-speedup gate of {min:.2}x"
            );
            std::process::exit(1);
        }
        println!("speedup gate passed (>= {min:.2}x)");
    }
}
