//! Shared harness for the experiment regenerators.
//!
//! One binary per table/figure group of the paper (see DESIGN.md §3):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig03_accuracy` | Fig. 3a–d: error vs frame rate per algorithm per environment |
//! | `characterization` | Figs. 5–11: latency splits, kernel breakdowns, per-frame variation |
//! | `fig16_kernel_scaling` | Fig. 16a–c: kernel latency vs matrix size + fits |
//! | `table1_blocks` | Table I: kernel → building-block decomposition |
//! | `table2_resources` | Table II + the SB saving of Sec. VII-D |
//! | `evaluation` | Figs. 17–21: latency/SD/FPS/energy, baseline vs accelerated, both platforms |
//! | `sched_eval` | Sec. VII-F: scheduler R², oracle comparison, offload rates |
//! | `table3_baselines` | Table III: speedups over CPU/GPU/DSP baselines |
//! | `accuracy_check` | Sec. IV-A: relative trajectory error of the unified framework |
//!
//! Run any of them with
//! `cargo run --release -p eudoxus-bench --bin <name>`.
//!
//! Two support modules back the performance trajectory:
//! [`baseline`] preserves the seed frontend kernels (the before of every
//! before/after comparison), and [`alloc_track`] counts heap allocations
//! (install via the `count-alloc` feature). The `throughput` binary ties
//! them together and writes `BENCH_throughput.json`.

pub mod alloc_track;
pub mod baseline;

use eudoxus_core::{PipelineConfig, RunLog, SessionBuilder};
use eudoxus_sim::{Dataset, Platform, ScenarioBuilder, ScenarioKind};

/// Builds a dataset with the harness defaults.
pub fn dataset(kind: ScenarioKind, platform: Platform, frames: usize, seed: u64) -> Dataset {
    ScenarioBuilder::new(kind)
        .frames(frames)
        .fps(10.0)
        .seed(seed)
        .platform(platform)
        .build()
}

/// Runs the unified pipeline over a dataset, ground-truth anchored.
pub fn run_pipeline(data: &Dataset) -> RunLog {
    let mut system = SessionBuilder::new(PipelineConfig::anchored()).build_batch();
    system.process_dataset(data)
}

/// Runs the pipeline with a map (registration enabled), surveying first.
pub fn run_pipeline_with_map(data: &Dataset) -> RunLog {
    let map = eudoxus_core::build_map(data, &PipelineConfig::anchored());
    let mut system = SessionBuilder::new(PipelineConfig::anchored()).map(map).build_batch();
    system.process_dataset(data)
}

/// Asserts two [`TrackOutcome`](eudoxus_frontend::TrackOutcome) slices
/// are **bit-identical**: `Tracked` positions and residuals are compared
/// at the bit level (`f32::to_bits`), every other variant by equality.
/// The one definition of "same output" every KLT bit-identity harness
/// (golden, property, unit) compares against.
///
/// # Panics
///
/// Panics with `what` and the point index on the first mismatch.
pub fn assert_outcomes_bit_identical(
    a: &[eudoxus_frontend::TrackOutcome],
    b: &[eudoxus_frontend::TrackOutcome],
    what: &str,
) {
    use eudoxus_frontend::TrackOutcome;
    assert_eq!(a.len(), b.len(), "{what}: outcome count");
    for (i, (oa, ob)) in a.iter().zip(b).enumerate() {
        match (oa, ob) {
            (
                TrackOutcome::Tracked { x: ax, y: ay, residual: ar },
                TrackOutcome::Tracked { x: bx, y: by, residual: br },
            ) => {
                assert_eq!(ax.to_bits(), bx.to_bits(), "{what}: point {i} x");
                assert_eq!(ay.to_bits(), by.to_bits(), "{what}: point {i} y");
                assert_eq!(ar.to_bits(), br.to_bits(), "{what}: point {i} residual");
            }
            _ => assert_eq!(oa, ob, "{what}: point {i}"),
        }
    }
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" |"));
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_builds_and_runs_small() {
        let d = dataset(ScenarioKind::IndoorUnknown, Platform::Drone, 2, 1);
        let log = run_pipeline(&d);
        assert_eq!(log.len(), 2);
    }
}
