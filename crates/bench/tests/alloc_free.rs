//! Counting-allocator proof of the allocation-free steady state: after
//! one warm-up call, the scratch-reused kernels (blur, FAST, pyramid
//! rebuild, KLT) perform zero heap allocations, a warm
//! `Frontend::process` allocates far less than a cold one, and the
//! telemetry recording path (`SpanRing::record`, `Histogram::record`,
//! the full `TelemetryHub::record` round trip) allocates nothing at all.
//!
//! The counting allocator is global to this test binary, so everything
//! runs inside a single `#[test]` — parallel test threads would otherwise
//! pollute each other's deltas.

use eudoxus_bench::alloc_track::{allocations, CountingAllocator};
use eudoxus_frontend::{
    detect_fast_into, track_pyramidal_into, FastConfig, FastScratch, Frontend, FrontendConfig,
    KltConfig, KltScratch, KLT_LANES,
};
use eudoxus_image::{gaussian_blur_into, FilterScratch, GrayImage, Pyramid};
use eudoxus_sim::{Platform, ScenarioBuilder, ScenarioKind};
use eudoxus_telemetry::{Histogram, Span, SpanRing, SpanScope, TelemetryConfig, TelemetryHub};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many allocation events it performed.
fn alloc_delta(mut f: impl FnMut()) -> u64 {
    let before = allocations();
    f();
    allocations() - before
}

#[test]
fn steady_state_kernels_are_allocation_free() {
    let data = ScenarioBuilder::new(ScenarioKind::IndoorUnknown)
        .frames(3)
        .seed(7)
        .platform(Platform::Drone)
        .build();
    let left = &data.frames[0].left;
    let right = &data.frames[0].right;
    let next_left = &data.frames[1].left;

    // Gaussian blur (the IF task).
    let mut filter = FilterScratch::default();
    let mut blurred = GrayImage::default();
    gaussian_blur_into(left, 1.2, &mut filter, &mut blurred); // warm-up
    let d = alloc_delta(|| gaussian_blur_into(left, 1.2, &mut filter, &mut blurred));
    assert_eq!(d, 0, "warm gaussian_blur_into allocated {d} times");

    // FAST detection (the FD task), including NMS, bucketing and sorting.
    let mut fast = FastScratch::default();
    let mut kps = Vec::new();
    detect_fast_into(left, &FastConfig::default(), &mut fast, &mut kps); // warm-up
    let d = alloc_delta(|| detect_fast_into(left, &FastConfig::default(), &mut fast, &mut kps));
    assert_eq!(d, 0, "warm detect_fast_into allocated {d} times");
    assert!(!kps.is_empty(), "rendered frame must yield corners");

    // Pyramid rebuild (the per-frame pyramid of the DC/LSS tasks).
    let klt_cfg = KltConfig::default();
    let mut pyr = Pyramid::empty();
    pyr.rebuild_from(left, klt_cfg.levels); // warm-up
    let d = alloc_delta(|| pyr.rebuild_from(next_left, klt_cfg.levels));
    assert_eq!(d, 0, "warm Pyramid::rebuild_from allocated {d} times");

    // Batched KLT tracking between cached pyramids (the DC + LSS tasks):
    // the `TrackBatch` SoA state — lane position/tensor/mask arrays plus
    // the lane-interleaved window buffers — lives in `KltScratch`, so one
    // warm-up call covers every subsequent batch.
    let prev_pyr = Pyramid::build((**left).clone(), klt_cfg.levels);
    let next_pyr = Pyramid::build((**next_left).clone(), klt_cfg.levels);
    let points: Vec<(f32, f32)> = kps.iter().take(100).map(|k| (k.x, k.y)).collect();
    assert!(points.len() > 2 * KLT_LANES, "need several full batches");
    let mut klt = KltScratch::default();
    let mut outcomes = Vec::new();
    track_pyramidal_into(&prev_pyr, &next_pyr, &points, &klt_cfg, &mut klt, &mut outcomes);
    let d = alloc_delta(|| {
        track_pyramidal_into(&prev_pyr, &next_pyr, &points, &klt_cfg, &mut klt, &mut outcomes)
    });
    assert_eq!(d, 0, "warm track_pyramidal_into allocated {d} times");
    // Remainder batches (a masked tail, a partial batch, a lone lane)
    // reuse the same SoA arrays — still zero allocations.
    for count in [points.len() - 3, KLT_LANES + 1, KLT_LANES - 1, 1] {
        let pts = &points[..count];
        let d = alloc_delta(|| {
            track_pyramidal_into(&prev_pyr, &next_pyr, pts, &klt_cfg, &mut klt, &mut outcomes)
        });
        assert_eq!(d, 0, "warm batched KLT with {count} tracks allocated {d} times");
    }

    // Full frontend: response maps, blur buffers and pyramids no longer
    // allocate, so a warm frame must cost a small fraction of the cold
    // frame's allocations (what remains: the returned observations, the
    // stereo matcher's internals, ORB bookkeeping).
    let mut frontend = Frontend::new(FrontendConfig::default());
    let cold = alloc_delta(|| {
        frontend.process(left, right);
    });
    frontend.process(next_left, right); // settle track state
    let warm = alloc_delta(|| {
        frontend.process(left, right);
    });
    assert!(
        warm * 2 < cold,
        "warm Frontend::process allocated {warm} times vs {cold} cold — scratch reuse regressed"
    );

    // Telemetry span ring: storage is reserved at construction, so
    // recording — including wrap-around overwrites once the ring is
    // full — never allocates.
    let mut ring = SpanRing::new(64);
    let span = Span {
        scope: SpanScope::Kernel,
        kernel: "detect_fast",
        frame_idx: 0,
        start_ns: 0,
        dur_ns: 5,
        track: 0,
    };
    let d = alloc_delta(|| {
        for _ in 0..1_000 {
            ring.record(span);
        }
    });
    assert_eq!(d, 0, "SpanRing::record allocated {d} times");
    assert_eq!(ring.dropped(), 1_000 - 64, "ring must have wrapped");

    // Streaming histogram: a flat inline bucket array — recording is an
    // index computation and an increment.
    let mut hist = Histogram::new();
    let d = alloc_delta(|| {
        for v in 0..1_000u64 {
            hist.record(v * 997);
        }
    });
    assert_eq!(d, 0, "Histogram::record allocated {d} times");

    // The full hub round trip (clock read + ring store + histogram
    // feed): zero allocations after one warm-up sighting of each kernel
    // name (the hub pre-reserves kernel slots, so even that is cold-path
    // only).
    let hub = TelemetryHub::new(TelemetryConfig::deterministic(100));
    let t = hub.start();
    hub.record(SpanScope::Kernel, "gaussian_blur", 0, t);
    let d = alloc_delta(|| {
        for i in 0..512u64 {
            let t = hub.start();
            hub.record(SpanScope::Kernel, "gaussian_blur", i, t);
            let t = hub.start();
            hub.record(SpanScope::Frame, "frame", i, t);
        }
    });
    assert_eq!(d, 0, "warm TelemetryHub::record allocated {d} times");
}
