//! Golden bit-identity: the optimized scratch/pyramid-cached frontend
//! must reproduce the seed implementation byte for byte.
//!
//! `eudoxus_bench::baseline` preserves the seed kernels and the seed
//! frontend verbatim; these tests drive both paths over rendered frames
//! of every scenario kind and compare outputs at the bit level. Together
//! with `tests/streaming_session.rs` at the workspace root (batch vs
//! stream vs `poll_parallel` RunLog equivalence), this pins the whole
//! optimization down: same poses, faster clock.

use eudoxus_bench::assert_outcomes_bit_identical;
use eudoxus_bench::baseline::{
    detect_fast_baseline, gaussian_blur_baseline, track_pyramidal_baseline, BaselineFrontend,
};
use eudoxus_frontend::{
    detect_fast_into, track_pyramidal_into, FastConfig, FastScratch, Frontend, FrontendConfig,
    KltConfig, KltScratch, KLT_LANES,
};
use eudoxus_image::{gaussian_blur_into, FilterScratch, GrayImage, Pyramid};
use eudoxus_sim::{Dataset, Platform, ScenarioBuilder, ScenarioKind};

/// Every scenario kind, the `Mixed` 50/25/25 evaluation set included.
const KINDS: [ScenarioKind; 5] = [
    ScenarioKind::OutdoorUnknown,
    ScenarioKind::OutdoorKnown,
    ScenarioKind::IndoorUnknown,
    ScenarioKind::IndoorKnown,
    ScenarioKind::Mixed,
];

fn dataset(kind: ScenarioKind, frames: usize) -> Dataset {
    ScenarioBuilder::new(kind)
        .frames(frames)
        .seed(17)
        .platform(Platform::Drone)
        .build()
}

#[test]
fn blur_kernel_matches_seed_bitwise() {
    let data = dataset(ScenarioKind::IndoorUnknown, 2);
    let mut scratch = FilterScratch::default();
    let mut out = GrayImage::default();
    for frame in &data.frames {
        for img in [&frame.left, &frame.right] {
            let seed = gaussian_blur_baseline(img, 1.2);
            gaussian_blur_into(img, 1.2, &mut scratch, &mut out);
            assert_eq!(seed, out, "blur differs from seed");
        }
    }
}

#[test]
fn fast_kernel_matches_seed_bitwise() {
    let data = dataset(ScenarioKind::OutdoorUnknown, 2);
    let cfg = FastConfig::default();
    let mut scratch = FastScratch::default();
    let mut out = Vec::new();
    for frame in &data.frames {
        for img in [&frame.left, &frame.right] {
            let seed = detect_fast_baseline(img, &cfg);
            detect_fast_into(img, &cfg, &mut scratch, &mut out);
            assert_eq!(seed.len(), out.len(), "keypoint count differs");
            for (a, b) in seed.iter().zip(&out) {
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
                assert_eq!(a.response.to_bits(), b.response.to_bits());
            }
        }
    }
}

#[test]
fn klt_kernel_matches_seed_bitwise_across_all_scenario_kinds() {
    // The batched lane-parallel solve must reproduce the seed scalar
    // solve bit for bit on real rendered frames of every scenario kind,
    // and for track counts exercising the lane remainders: a lone lane,
    // a partial batch, exactly one full batch, and full-batches-plus-tail.
    for kind in KINDS {
        let data = dataset(kind, 3);
        let klt_cfg = KltConfig::default();
        let prev = &data.frames[0].left;
        let next = &data.frames[1].left;
        let kps = detect_fast_baseline(prev, &FastConfig::default());
        let points: Vec<(f32, f32)> = kps.iter().take(150).map(|k| (k.x, k.y)).collect();
        assert!(points.len() > 2 * KLT_LANES, "{kind:?}: too few corners");

        // Optimized path: cached/rebuilt pyramids + reused scratch.
        let mut prev_pyr = Pyramid::empty();
        prev_pyr.rebuild_from(prev, klt_cfg.levels);
        let mut next_pyr = Pyramid::empty();
        next_pyr.rebuild_from(next, klt_cfg.levels);
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();

        for count in [1, KLT_LANES - 1, KLT_LANES, KLT_LANES + 1, points.len()] {
            let pts = &points[..count];
            let seed = track_pyramidal_baseline(prev, next, pts, &klt_cfg);
            track_pyramidal_into(&prev_pyr, &next_pyr, pts, &klt_cfg, &mut scratch, &mut out);
            assert_eq!(scratch.iteration_counts().len(), out.len());
            assert_outcomes_bit_identical(&out, &seed, &format!("{kind:?} n={count}"));
        }
    }
}

#[test]
fn full_frontend_matches_seed_across_all_scenario_kinds() {
    // The strongest frontend-level guarantee: observation streams —
    // track ids, positions, disparities, descriptors — are bit-identical
    // between the seed frontend (prev_left clone, two pyramid builds,
    // fresh buffers every frame) and the optimized one (scratch reuse,
    // one pyramid rebuild, cached template pyramid), across multiple
    // frames and a mid-stream reset of every scenario kind.
    for kind in KINDS {
        let data = dataset(kind, 4);
        let mut seed_fe = BaselineFrontend::new(FrontendConfig::default());
        let mut opt_fe = Frontend::new(FrontendConfig::default());
        for (i, frame) in data.frames.iter().enumerate() {
            if i == 2 {
                // Segment boundary behavior must match too.
                seed_fe.reset();
                opt_fe.reset();
            }
            let seed = seed_fe.process(&frame.left, &frame.right);
            let opt = opt_fe.process(&frame.left, &frame.right);
            assert_eq!(
                seed.observations.len(),
                opt.observations.len(),
                "{kind:?} frame {i}: observation count"
            );
            for (a, b) in seed.observations.iter().zip(&opt.observations) {
                assert_eq!(a.track_id, b.track_id, "{kind:?} frame {i}: track id");
                assert_eq!(a.x.to_bits(), b.x.to_bits(), "{kind:?} frame {i}: x");
                assert_eq!(a.y.to_bits(), b.y.to_bits(), "{kind:?} frame {i}: y");
                assert_eq!(
                    a.disparity.map(f32::to_bits),
                    b.disparity.map(f32::to_bits),
                    "{kind:?} frame {i}: disparity"
                );
                assert_eq!(
                    a.descriptor.words(),
                    b.descriptor.words(),
                    "{kind:?} frame {i}: descriptor"
                );
            }
            assert_eq!(seed.stats.keypoints_left, opt.stats.keypoints_left);
            assert_eq!(seed.stats.stereo_matches, opt.stats.stereo_matches);
            assert_eq!(seed.stats.tracks_continued, opt.stats.tracks_continued);
            assert_eq!(seed.stats.tracks_spawned, opt.stats.tracks_spawned);
            assert_eq!(seed.stats.tracks_lost, opt.stats.tracks_lost);
        }
    }
}
