//! Property-based bit-identity of the batched KLT solve.
//!
//! The golden tests (`bit_identity.rs`) pin the batched lane-parallel
//! solve to the seed scalar solve on rendered frames; these properties
//! sweep the input space the renderer never reaches: random window radii,
//! pyramid depths, iteration budgets, image sizes, and track positions
//! hugging (or beyond) the image border, with track counts covering every
//! lane-remainder shape. For every draw, the batched
//! [`track_pyramidal_into`] must reproduce the seed
//! [`track_pyramidal_baseline`] **bit for bit** — positions, residuals
//! and `TrackOutcome` variants — and must execute exactly the same LSS
//! iteration count per track as the scalar in-crate solve
//! ([`track_one_with`]).

use eudoxus_bench::assert_outcomes_bit_identical;
use eudoxus_bench::baseline::track_pyramidal_baseline;
use eudoxus_frontend::{
    track_one_with, track_pyramidal_into, KltConfig, KltScratch, KLT_LANES,
};
use eudoxus_image::{GrayImage, Pyramid};
use proptest::prelude::*;

/// A synthetic multi-frequency texture (same family as the renderer's
/// surfaces) shifted by `(sx, sy)` — enough gradient everywhere that
/// healthy windows solve, while `flat` carves a textureless patch to
/// exercise the degenerate mask.
fn textured(w: u32, h: u32, sx: f32, sy: f32, phase: f32, flat: bool) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        if flat && x >= w / 3 && x < 2 * w / 3 && y >= h / 3 && y < 2 * h / 3 {
            return 127;
        }
        let u = x as f32 - sx;
        let v = y as f32 - sy;
        let val = 128.0
            + 52.0 * ((u * 0.33 + phase).sin() * (v * 0.27).cos())
            + 28.0 * ((u * 0.12 + v * 0.19 + phase).sin());
        val.clamp(0.0, 255.0) as u8
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random windows, depths, budgets and border-hugging positions:
    /// batched == seed scalar, bitwise, for every remainder width.
    #[test]
    fn batched_solve_is_bit_identical_to_seed(
        dims in (40u32..97, 40u32..97),
        shift in (-3.0f32..3.0, -3.0f32..3.0),
        phase in 0.0f32..6.4,
        radius in 2i64..8,
        levels in 1usize..4,
        max_iterations in 1usize..16,
        count in 1usize..(2 * KLT_LANES + 4),
        spread in (0.31f32..0.93, 0.17f32..0.81),
        flat in any::<bool>(),
    ) {
        let (w, h) = dims;
        let prev = textured(w, h, 0.0, 0.0, phase, flat);
        let next = textured(w, h, shift.0, shift.1, phase, flat);
        let cfg = KltConfig {
            window_radius: radius,
            levels,
            max_iterations,
            ..KltConfig::default()
        };
        // Deterministic position scatter that walks the whole frame,
        // including the border band and a margin beyond it (the solve
        // must clamp, never read out of bounds, and call them
        // OutOfBounds exactly like the seed).
        let points: Vec<(f32, f32)> = (0..count)
            .map(|i| {
                let fi = i as f32;
                let x = -4.0 + (fi * spread.0).fract() * (w as f32 + 8.0)
                    + (fi * 0.618).fract();
                let y = -4.0 + (fi * spread.1).fract() * (h as f32 + 8.0)
                    + (fi * 0.414).fract();
                (x, y)
            })
            .collect();

        let seed = track_pyramidal_baseline(&prev, &next, &points, &cfg);

        let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
        let next_pyr = Pyramid::build(next.clone(), cfg.levels);
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();
        track_pyramidal_into(&prev_pyr, &next_pyr, &points, &cfg, &mut scratch, &mut out);
        assert_outcomes_bit_identical(&out, &seed, "batched vs seed");
        prop_assert_eq!(scratch.iteration_counts().len(), points.len());

        // Iteration counts: the batch must run exactly the scalar
        // solve's LSS iteration schedule for every track.
        let batch_iters: Vec<u32> = scratch.iteration_counts().to_vec();
        let mut scalar_scratch = KltScratch::default();
        for (i, &(x, y)) in points.iter().enumerate() {
            let scalar =
                track_one_with(&prev_pyr, &next_pyr, x, y, &cfg, &mut scalar_scratch);
            assert_outcomes_bit_identical(&[scalar], &[out[i]], "scalar vs batched");
            prop_assert_eq!(
                scalar_scratch.iteration_counts()[0],
                batch_iters[i],
                "iteration count of point {}",
                i
            );
        }
    }

    /// Warm-scratch determinism: re-running the same batch through a
    /// reused scratch (the frontend steady state) never drifts.
    #[test]
    fn warm_scratch_rerun_is_stable(
        dims in (48u32..80, 48u32..80),
        shift in (-2.0f32..2.0, -2.0f32..2.0),
        count in 1usize..(KLT_LANES + 3),
    ) {
        let (w, h) = dims;
        let prev = textured(w, h, 0.0, 0.0, 1.3, false);
        let next = textured(w, h, shift.0, shift.1, 1.3, false);
        let cfg = KltConfig::default();
        let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
        let next_pyr = Pyramid::build(next.clone(), cfg.levels);
        let points: Vec<(f32, f32)> = (0..count)
            .map(|i| (10.0 + 7.3 * i as f32, h as f32 - 12.0 - 5.1 * i as f32))
            .collect();
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();
        track_pyramidal_into(&prev_pyr, &next_pyr, &points, &cfg, &mut scratch, &mut out);
        let first = out.clone();
        let first_iters = scratch.iteration_counts().to_vec();
        track_pyramidal_into(&prev_pyr, &next_pyr, &points, &cfg, &mut scratch, &mut out);
        assert_outcomes_bit_identical(&out, &first, "warm rerun");
        prop_assert_eq!(scratch.iteration_counts(), &first_iters[..]);
    }
}
