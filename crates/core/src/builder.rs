//! One construction surface for sessions, managers and batch systems.
//!
//! [`SessionBuilder`] replaces the sprawl of
//! `LocalizationSession::new`/`with_registry`/`with_map`/`register`,
//! `Eudoxus::new`/`with_map` and
//! `SessionManager::add_agent`+`set_ingest_limit` with one fluent API:
//! configure once — pipeline config, in-loop
//! [`ExecutionEngine`](crate::engine::ExecutionEngine), persisted map,
//! custom backends, agents, ingest bounds — then [`build`] a single
//! session, [`build_manager`] a many-agent manager, or [`build_batch`] a
//! dataset-replay [`Eudoxus`].
//!
//! ```no_run
//! use eudoxus_core::{ModeledAccelEngine, PipelineConfig, SessionBuilder};
//! use eudoxus_stream::OverflowPolicy;
//!
//! // One serving blueprint, stamped out for four agents with bounded
//! // lossless queues and a live EDX-DRONE estimate on every frame.
//! let manager = SessionBuilder::new(PipelineConfig::anchored())
//!     .engine(ModeledAccelEngine::edx_drone())
//!     .ingest_limit(32, OverflowPolicy::Defer)
//!     .agent("car")
//!     .agent("drone")
//!     .build_manager();
//! assert_eq!(manager.agent_count(), 2);
//! ```
//!
//! [`build`]: SessionBuilder::build
//! [`build_manager`]: SessionBuilder::build_manager
//! [`build_batch`]: SessionBuilder::build_batch

use crate::control::{AdmissionConfig, ThrottleConfig};
use crate::engine::{CpuEngine, ExecutionEngine};
use crate::health::HealthConfig;
use crate::pipeline::{Eudoxus, PipelineConfig};
use crate::session::{LocalizationSession, SessionManager};
use eudoxus_backend::{Backend, Registration, Slam, Vio, WorldMap};
use eudoxus_faults::{FaultPlan, FaultProcess};
use eudoxus_link::LinkModel;
use eudoxus_stream::OverflowPolicy;
use eudoxus_telemetry::TelemetryConfig;

/// Fluent constructor for [`LocalizationSession`]s (and everything built
/// from them). See the [module docs](self) for the construction surface
/// it unifies.
///
/// Custom backends are supplied as *factories* (`.backend(|| ..)`) and
/// the engine is [`fork`](ExecutionEngine::fork)ed per session, because
/// one builder can stamp out many sessions ([`build_manager`] creates one
/// per declared [`agent`]); everything else (`config`, `map`) is cloned.
///
/// [`build_manager`]: Self::build_manager
/// [`agent`]: Self::agent
pub struct SessionBuilder {
    config: PipelineConfig,
    engine: Box<dyn ExecutionEngine>,
    map: Option<WorldMap>,
    backends: Vec<Box<dyn Fn() -> Box<dyn Backend>>>,
    default_registry: bool,
    agents: Vec<String>,
    ingest_limit: Option<(usize, OverflowPolicy)>,
    link: Option<Box<dyn LinkModel>>,
    deadline_ms: Option<f64>,
    faults: Option<FaultProcess>,
    health: Option<HealthConfig>,
    throttle: Option<ThrottleConfig>,
    admission: Option<AdmissionConfig>,
    telemetry: Option<TelemetryConfig>,
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SessionBuilder(engine: {}, link: {}, map: {}, custom backends: {}, agents: {:?})",
            self.engine.name(),
            self.link.as_ref().map_or("none", |l| l.name()),
            self.map.is_some(),
            self.backends.len(),
            self.agents
        )
    }
}

impl SessionBuilder {
    /// Starts a builder with the defaults every legacy constructor
    /// implied: the VIO + SLAM estimator registry, no map, and the
    /// passthrough [`CpuEngine`] (no per-frame accelerator reports).
    pub fn new(config: PipelineConfig) -> Self {
        SessionBuilder {
            config,
            engine: Box::new(CpuEngine),
            map: None,
            backends: Vec::new(),
            default_registry: true,
            agents: Vec::new(),
            ingest_limit: None,
            link: None,
            deadline_ms: None,
            faults: None,
            health: None,
            throttle: None,
            admission: None,
            telemetry: None,
        }
    }

    /// Selects the in-loop execution engine consulted after every frame
    /// (default: the passthrough [`CpuEngine`]). Attach a
    /// [`ModeledAccelEngine`](crate::engine::ModeledAccelEngine) for live
    /// EDX-CAR/EDX-DRONE estimates or a
    /// [`ScheduledEngine`](crate::engine::ScheduledEngine) to run the
    /// paper's offload scheduler inside
    /// [`push`](LocalizationSession::push).
    pub fn engine(mut self, engine: impl ExecutionEngine + 'static) -> Self {
        self.engine = Box::new(engine);
        self
    }

    /// Puts the accelerator behind a modeled communication channel:
    /// every built session's engine gets a
    /// [`fork`](LinkModel::fork) of `link` (independent channel per
    /// agent, restarted at frame 0) and re-prices offloads against its
    /// per-frame state — see the
    /// [crate docs](crate#communication-adaptive-offload-sessionbuilderlink).
    /// Engines that do not price transfers ([`CpuEngine`],
    /// [`ModeledAccelEngine`](crate::engine::ModeledAccelEngine))
    /// ignore the link.
    pub fn link(mut self, link: impl LinkModel + 'static) -> Self {
        self.link = Some(Box::new(link));
        self
    }

    /// Sets the per-frame latency budget (ms) for modeled engines (with
    /// or without a link): frames whose modeled total with offloads
    /// would exceed it are kept fully local
    /// ([`FallbackCause::DeadlineExceeded`](crate::engine::FallbackCause)),
    /// and frames still late under the all-local plan are counted as
    /// deadline misses.
    pub fn deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Arms the closed-loop frame throttle on every built session: the
    /// engine's modeled frame period is compared against the config's
    /// deadline and, hysteretically, a
    /// [`FrameDirective`](eudoxus_frontend::FrameDirective) steers the
    /// next frame's frontend budget (see
    /// [`ThrottleController`](crate::control::ThrottleController)).
    /// Needs a reporting engine — under the passthrough [`CpuEngine`]
    /// the controller never observes a period and stays idle.
    pub fn throttle(mut self, config: ThrottleConfig) -> Self {
        self.throttle = Some(config);
        self
    }

    /// Arms deadline-aware admission control on managers built with
    /// [`build_manager`](Self::build_manager): image events for agents
    /// whose modeled frame period cannot meet the config's deadline are
    /// degraded or shed at the ingest gate (see
    /// [`AdmissionConfig`](crate::control::AdmissionConfig)). Ignored
    /// by [`build`](Self::build) — single sessions have no ingest gate.
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Arms span + histogram telemetry on every built session: each
    /// gets its own
    /// [`TelemetryHub`](eudoxus_telemetry::TelemetryHub) (per-agent
    /// rings and histograms; the manager assigns trace tracks) stamping
    /// frame, kernel, backend, engine and health spans. Off by default.
    /// Pure observation — an armed session's poses and modeled
    /// quantities are bit-identical to a plain one's.
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Installs a persisted map: each built session gets a registration
    /// backend over (a clone of) it, enabling registration mode.
    pub fn map(mut self, map: WorldMap) -> Self {
        self.map = Some(map);
        self
    }

    /// Attaches deterministic fault injection: every built session gets
    /// a [`fork`](FaultProcess::fork) of the seeded process (independent
    /// identical degradation per agent, restarted at event 0), applied
    /// to every pushed event before it reaches the estimators. Also
    /// enables health monitoring (default thresholds unless
    /// [`health`](Self::health) set others) — the graceful-degradation
    /// reflex the faults exercise.
    pub fn faults(mut self, plan: FaultPlan, seed: u64) -> Self {
        self.faults = Some(FaultProcess::new(plan, seed));
        self
    }

    /// Enables health monitoring + graceful degradation with explicit
    /// thresholds (see
    /// [`HealthMonitor`](crate::health::HealthMonitor)). Without this
    /// (or [`faults`](Self::faults)) sessions keep the historical
    /// serving behavior bit for bit and their records carry
    /// `health: None`.
    pub fn health(mut self, config: HealthConfig) -> Self {
        self.health = Some(config);
        self
    }

    /// Registers a custom estimator. The factory runs once per built
    /// session; its backend replaces any registered backend of the same
    /// mode (defaults included), so e.g.
    /// `.backend(|| MyVio::new())` swaps the stock VIO out.
    pub fn backend<B, F>(mut self, make: F) -> Self
    where
        B: Backend + 'static,
        F: Fn() -> B + 'static,
    {
        self.backends.push(Box::new(move || Box::new(make())));
        self
    }

    /// Drops the default VIO + SLAM registry: sessions carry only the
    /// backends added via [`backend`](Self::backend) /
    /// [`map`](Self::map). The registry should still cover every frame
    /// the stream will carry — frames it cannot serve come back as
    /// unserved records (held pose, `tracking: false`).
    pub fn without_default_backends(mut self) -> Self {
        self.default_registry = false;
        self
    }

    /// Declares an agent for [`build_manager`](Self::build_manager); one
    /// session is stamped from this blueprint per declared agent. Call
    /// repeatedly, in round-robin priority order.
    pub fn agent(mut self, id: impl Into<String>) -> Self {
        self.agents.push(id.into());
        self
    }

    /// Bounds every manager-built agent's ingest queue (capacity +
    /// overflow policy). Unset means unbounded — the legacy
    /// `add_agent` default.
    pub fn ingest_limit(mut self, capacity: usize, policy: OverflowPolicy) -> Self {
        self.ingest_limit = Some((capacity, policy));
        self
    }

    /// Stamps one session from the blueprint.
    fn assemble(&self, mut engine: Box<dyn ExecutionEngine>) -> LocalizationSession {
        if let Some(link) = &self.link {
            engine.attach_link(link.fork(), self.deadline_ms);
        } else if let Some(deadline) = self.deadline_ms {
            // A deadline without a link used to be silently ignored;
            // now it arms deadline shedding on the bus-backed engine.
            engine.set_deadline_ms(deadline);
        }
        let mut session =
            LocalizationSession::from_parts(self.config.clone(), Vec::new(), engine);
        if self.default_registry {
            session.register(Box::new(Vio::new(self.config.vio)));
            session.register(Box::new(Slam::new(self.config.slam)));
        }
        if let Some(map) = &self.map {
            session.register(Box::new(Registration::new(
                map.clone(),
                self.config.registration,
            )));
        }
        for make in &self.backends {
            session.register(make());
        }
        if let Some(config) = self.health {
            session.enable_health(config);
        }
        if let Some(process) = &self.faults {
            session.attach_faults(process.fork());
        }
        if let Some(config) = self.throttle {
            session.enable_throttle(config);
        }
        if let Some(config) = self.telemetry {
            session.enable_telemetry(config);
        }
        session
    }

    /// Builds a single streaming session.
    pub fn build(self) -> LocalizationSession {
        let engine = self.engine.fork();
        self.assemble(engine)
    }

    /// Builds a [`SessionManager`] with one session per declared
    /// [`agent`](Self::agent) (none declared → an empty manager; agents
    /// can still join later via
    /// [`add_agent`](SessionManager::add_agent)), each with a
    /// [`fork`](ExecutionEngine::fork) of the engine and the configured
    /// [`ingest_limit`](Self::ingest_limit) applied.
    pub fn build_manager(self) -> SessionManager {
        let mut manager = SessionManager::new();
        if let Some(config) = self.admission {
            manager.set_admission_control(config);
        }
        for id in &self.agents {
            let session = self.assemble(self.engine.fork());
            manager.add_agent(id.clone(), session);
            if let Some((capacity, policy)) = self.ingest_limit {
                manager.set_ingest_limit(id, capacity, policy);
            }
        }
        manager
    }

    /// Builds the batch adapter: a [`Eudoxus`] replaying recorded
    /// datasets through a session stamped from this blueprint.
    pub fn build_batch(self) -> Eudoxus {
        Eudoxus::from_session(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ModeledAccelEngine;
    use crate::mode::Mode;
    use eudoxus_backend::BackendMode;
    use eudoxus_stream::Environment;

    #[test]
    fn default_build_carries_default_registry_and_cpu_engine() {
        let session = SessionBuilder::new(PipelineConfig::anchored()).build();
        assert_eq!(session.registered_modes().len(), 2);
        assert_eq!(session.engine().name(), "cpu");
        assert_eq!(
            session.effective_mode(Environment::OutdoorUnknown),
            Mode::Vio
        );
    }

    #[test]
    fn map_enables_registration() {
        let session = SessionBuilder::new(PipelineConfig::anchored())
            .map(WorldMap::default())
            .build();
        assert!(session.backend(BackendMode::Registration).is_some());
        assert_eq!(
            session.effective_mode(Environment::IndoorKnown),
            Mode::Registration
        );
    }

    #[test]
    fn without_default_backends_leaves_only_customs() {
        let config = PipelineConfig::anchored();
        let vio = config.vio;
        let session = SessionBuilder::new(config)
            .without_default_backends()
            .backend(move || Vio::new(vio))
            .build();
        assert_eq!(session.registered_modes(), vec![BackendMode::Vio]);
        // Indoor frames degrade all the way to odometry.
        assert_eq!(
            session.effective_mode(Environment::IndoorUnknown),
            Mode::Vio
        );
    }

    #[test]
    fn custom_backend_replaces_same_mode_default() {
        let config = PipelineConfig::anchored();
        let vio = config.vio;
        let session = SessionBuilder::new(config)
            .backend(move || Vio::new(vio))
            .build();
        assert_eq!(session.registered_modes().len(), 2, "no duplicate modes");
    }

    #[test]
    fn build_manager_stamps_all_agents_with_limits_and_engine() {
        let manager = SessionBuilder::new(PipelineConfig::anchored())
            .engine(ModeledAccelEngine::edx_drone())
            .ingest_limit(16, OverflowPolicy::Defer)
            .agent("a")
            .agent("b")
            .agent("c")
            .build_manager();
        assert_eq!(manager.agent_count(), 3);
        let ids: Vec<&str> = manager.agent_ids().collect();
        assert_eq!(ids, vec!["a", "b", "c"], "round-robin order preserved");
        for stats in manager.ingest_stats() {
            assert_eq!(stats.capacity, 16);
        }
        assert_eq!(
            manager.session("b").unwrap().engine().name(),
            "edx-drone"
        );
    }

    #[test]
    fn build_manager_without_agents_is_empty() {
        let manager = SessionBuilder::new(PipelineConfig::anchored()).build_manager();
        assert_eq!(manager.agent_count(), 0);
    }

    #[test]
    fn link_attaches_to_scheduled_engines_per_agent() {
        use crate::engine::{LinkStats, OffloadPolicy, ScheduledEngine};
        use eudoxus_accel::Platform;
        use eudoxus_link::StaticLink;

        // Each agent's engine gets its own fork of the link, with fresh
        // counters.
        let manager = SessionBuilder::new(PipelineConfig::anchored())
            .engine(ScheduledEngine::with_policy(
                Platform::edx_drone(),
                OffloadPolicy::Always,
            ))
            .link(StaticLink::new(1e8, 2e-3))
            .deadline_ms(40.0)
            .agent("a")
            .agent("b")
            .build_manager();
        for id in ["a", "b"] {
            let engine = manager.session(id).unwrap().engine();
            assert_eq!(engine.link_stats(), Some(LinkStats::default()));
        }

        // Engines that don't price transfers simply ignore the link.
        let session = SessionBuilder::new(PipelineConfig::anchored())
            .link(StaticLink::new(1e8, 2e-3))
            .build();
        assert!(session.engine().link_stats().is_none());
    }
}
