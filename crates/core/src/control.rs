//! The closed control loop: hysteretic frame throttling and
//! deadline-aware admission control.
//!
//! PR 5's engines *observe and price* each frame; this module is where
//! the verdict steers execution. Two controllers live here:
//!
//! - [`ThrottleController`] — a per-session hysteresis loop fed the
//!   modeled frame period after every engine report. When the period
//!   exceeds the deadline for `enter_frames` consecutive frames, it
//!   issues a [`FrameDirective`] that the session applies to the
//!   frontend on the *next* frame (shrunken feature budget, shallower
//!   pyramid, optionally the scalar KLT datapath). The directive stays
//!   in force until the *raw* modeled period drops below
//!   `exit_margin × min(throttled baseline, deadline)` for
//!   `exit_frames` consecutive frames — on constant load the throttled
//!   period equals its own baseline and never clears the margin, so
//!   the loop cannot oscillate.
//! - [`AdmissionConfig`] — policy for `SessionManager::try_enqueue`:
//!   an agent whose (health-weighted) modeled frame period exceeds its
//!   deadline has image frames decimated (admit one in
//!   `degrade_keep`), and one whose period exceeds
//!   `shed_factor × deadline` is shed outright. Counters in
//!   [`AdmissionStats`] conserve: `offered == admitted + degraded + shed`.
//!
//! Both controllers are deterministic functions of the modeled load —
//! no wall-clock reads — so throttled runs replay bit-identically.

use eudoxus_frontend::FrameDirective;

/// Configuration for the per-session throttle loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleConfig {
    /// Deadline on the modeled frame period (milliseconds).
    pub deadline_ms: f64,
    /// Consecutive modeled overruns required to *enter* throttling.
    pub enter_frames: u32,
    /// Consecutive under-threshold frames required to *exit*.
    pub exit_frames: u32,
    /// Exit threshold as a fraction of `min(throttled baseline,
    /// deadline)`. Must be `< 1.0` for the no-oscillation guarantee.
    pub exit_margin: f64,
    /// EWMA smoothing factor for the reported modeled period
    /// (`0 < smoothing <= 1`; 1 = no smoothing).
    pub smoothing: f64,
    /// The directive issued while throttled.
    pub directive: FrameDirective,
}

impl ThrottleConfig {
    /// A conservative default policy for the given deadline.
    pub fn new(deadline_ms: f64) -> Self {
        ThrottleConfig {
            deadline_ms,
            enter_frames: 2,
            exit_frames: 4,
            exit_margin: 0.8,
            smoothing: 0.3,
            directive: FrameDirective::throttled(),
        }
    }

    /// Replaces the directive issued while throttled.
    pub fn with_directive(mut self, directive: FrameDirective) -> Self {
        self.directive = directive;
        self
    }
}

/// Counters describing one session's throttle history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThrottleStats {
    /// Frames observed by the controller.
    pub frames: u64,
    /// Frames processed while a directive was in force.
    pub throttled_frames: u64,
    /// Times the loop entered throttling.
    pub entries: u64,
    /// Times the loop exited throttling.
    pub exits: u64,
}

impl ThrottleStats {
    /// Fraction of observed frames spent throttled.
    pub fn throttle_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.throttled_frames as f64 / self.frames as f64
        }
    }
}

/// Frames the controller waits after entering throttling before it
/// samples the throttled baseline (lets the shrunken budget take
/// effect — the directive applies to the *next* frame).
const SETTLE_FRAMES: u32 = 2;

/// Deterministic hysteresis loop turning modeled frame periods into
/// [`FrameDirective`]s. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct ThrottleController {
    config: ThrottleConfig,
    throttled: bool,
    overrun_streak: u32,
    calm_streak: u32,
    settle_left: u32,
    /// Raw modeled period sampled once the throttled budget has taken
    /// effect; the exit threshold is relative to this.
    baseline: Option<f64>,
    /// EWMA of the modeled period (reporting only; decisions use raw).
    period: Option<f64>,
    stats: ThrottleStats,
}

impl ThrottleController {
    /// Creates an idle (unthrottled) controller.
    pub fn new(config: ThrottleConfig) -> Self {
        ThrottleController {
            config,
            throttled: false,
            overrun_streak: 0,
            calm_streak: 0,
            settle_left: 0,
            baseline: None,
            period: None,
            stats: ThrottleStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ThrottleConfig {
        &self.config
    }

    /// Whether a directive is currently in force.
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }

    /// Smoothed modeled frame period (ms), if any frame was observed.
    pub fn modeled_period_ms(&self) -> Option<f64> {
        self.period
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ThrottleStats {
        self.stats
    }

    /// The directive to apply to the next frame, if throttled.
    pub fn directive(&self) -> Option<FrameDirective> {
        self.throttled.then_some(self.config.directive)
    }

    /// Feeds one modeled frame period (ms) and returns the directive
    /// for the *next* frame.
    pub fn observe(&mut self, modeled_period_ms: f64) -> Option<FrameDirective> {
        self.stats.frames += 1;
        let alpha = self.config.smoothing.clamp(f64::EPSILON, 1.0);
        self.period = Some(match self.period {
            Some(p) => p + alpha * (modeled_period_ms - p),
            None => modeled_period_ms,
        });
        if self.throttled {
            self.stats.throttled_frames += 1;
            if self.settle_left > 0 {
                // The directive issued on entry steers the *next*
                // frame; skip the frames still priced at full budget.
                self.settle_left -= 1;
                if self.settle_left == 0 {
                    self.baseline = Some(modeled_period_ms);
                }
            } else {
                let baseline = self.baseline.unwrap_or(self.config.deadline_ms);
                let threshold = self.config.exit_margin * baseline.min(self.config.deadline_ms);
                if modeled_period_ms < threshold {
                    self.calm_streak += 1;
                    if self.calm_streak >= self.config.exit_frames {
                        self.throttled = false;
                        self.calm_streak = 0;
                        self.baseline = None;
                        self.stats.exits += 1;
                    }
                } else {
                    self.calm_streak = 0;
                }
            }
        } else if modeled_period_ms > self.config.deadline_ms {
            self.overrun_streak += 1;
            if self.overrun_streak >= self.config.enter_frames {
                self.throttled = true;
                self.overrun_streak = 0;
                self.settle_left = SETTLE_FRAMES;
                self.baseline = None;
                self.stats.entries += 1;
            }
        } else {
            self.overrun_streak = 0;
        }
        self.directive()
    }
}

/// Policy for deadline-aware admission control in `SessionManager`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Deadline on the agent's modeled frame period (milliseconds).
    pub deadline_ms: f64,
    /// Shed outright when the effective period exceeds
    /// `shed_factor × deadline_ms`.
    pub shed_factor: f64,
    /// While degrading (deadline < period ≤ shed threshold), admit one
    /// image frame in every `degrade_keep`.
    pub degrade_keep: u32,
    /// Multiplier on the modeled period for agents stuck below
    /// `Nominal` health — deprioritizes degraded agents first.
    pub health_penalty: f64,
}

impl AdmissionConfig {
    /// A conservative default policy for the given deadline.
    pub fn new(deadline_ms: f64) -> Self {
        AdmissionConfig {
            deadline_ms,
            shed_factor: 2.0,
            degrade_keep: 2,
            health_penalty: 1.5,
        }
    }
}

/// Per-agent admission counters. Invariant:
/// `offered == admitted + degraded + shed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Image frames offered to the gate.
    pub offered: u64,
    /// Frames admitted to the agent's inbox gate.
    pub admitted: u64,
    /// Frames dropped by degrade-mode decimation.
    pub degraded: u64,
    /// Frames shed because the agent cannot meet its deadline.
    pub shed: u64,
}

impl AdmissionStats {
    /// Fraction of offered frames shed outright.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_throttle_enters_after_consecutive_overruns() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        assert!(tc.observe(20.0).is_none(), "one overrun must not trigger");
        assert!(tc.observe(20.0).is_some(), "second consecutive overrun triggers");
        assert_eq!(tc.stats().entries, 1);
    }

    #[test]
    fn control_throttle_single_overruns_never_trigger() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        for _ in 0..50 {
            assert!(tc.observe(20.0).is_none());
            assert!(tc.observe(5.0).is_none());
        }
        assert_eq!(tc.stats().entries, 0);
    }

    #[test]
    fn control_throttle_exits_when_load_falls_away() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        tc.observe(20.0);
        tc.observe(20.0);
        assert!(tc.is_throttled());
        // Settle frames still reflect the unthrottled budget.
        tc.observe(20.0);
        tc.observe(6.0); // baseline sampled: 6.0
        // Load collapses well below margin × baseline.
        for _ in 0..tc.config().exit_frames {
            tc.observe(1.0);
        }
        assert!(!tc.is_throttled());
        assert_eq!(tc.stats().exits, 1);
    }

    #[test]
    fn control_throttle_constant_load_does_not_oscillate() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        // Constant overload: throttled period equals its own baseline,
        // which never clears the exit margin.
        for _ in 0..200 {
            tc.observe(15.0);
        }
        assert_eq!(tc.stats().entries, 1);
        assert_eq!(tc.stats().exits, 0);
        assert!(tc.is_throttled());
    }

    #[test]
    fn control_admission_stats_rates() {
        let s = AdmissionStats {
            offered: 10,
            admitted: 5,
            degraded: 3,
            shed: 2,
        };
        assert_eq!(s.offered, s.admitted + s.degraded + s.shed);
        assert!((s.shed_rate() - 0.2).abs() < 1e-12);
        assert_eq!(AdmissionStats::default().shed_rate(), 0.0);
    }
}
