//! The closed control loop: hysteretic frame throttling and
//! deadline-aware admission control.
//!
//! PR 5's engines *observe and price* each frame; this module is where
//! the verdict steers execution. Two controllers live here:
//!
//! - [`ThrottleController`] — a per-session hysteresis loop fed the
//!   modeled frame period after every engine report. When the period
//!   exceeds the deadline for `enter_frames` consecutive frames, it
//!   issues a [`FrameDirective`] that the session applies to the
//!   frontend on the *next* frame (shrunken feature budget, shallower
//!   pyramid, optionally the scalar KLT datapath). Severity is
//!   *graded*: the controller carries a three-rung ladder of
//!   directives and enters at the rung matching how badly the period
//!   overshoots the deadline (`level2_ratio` / `level3_ratio`). While
//!   throttled, frames that *still* miss the deadline
//!   ([`ExecutionReport::deadline_missed`](crate::engine::ExecutionReport))
//!   for `enter_frames` consecutive frames escalate one rung; the same
//!   calm hysteresis that used to exit now first steps *down* one rung
//!   at a time, and only exits from the bottom rung. The directive
//!   stays in force until the *raw* modeled period drops below
//!   `exit_margin × min(throttled baseline, deadline)` for
//!   `exit_frames` consecutive frames — on constant load the throttled
//!   period equals its own baseline and never clears the margin, so
//!   the loop cannot oscillate (each rung re-settles and samples its
//!   own baseline).
//! - [`AdmissionConfig`] — policy for `SessionManager::try_enqueue`:
//!   an agent whose (health-weighted) modeled frame period exceeds its
//!   deadline has image frames decimated (admit one in
//!   `degrade_keep`), and one whose period exceeds
//!   `shed_factor × deadline` is shed outright. Counters in
//!   [`AdmissionStats`] conserve: `offered == admitted + degraded + shed`.
//!
//! Both controllers are deterministic functions of the modeled load —
//! no wall-clock reads — so throttled runs replay bit-identically.

use eudoxus_frontend::FrameDirective;

/// Configuration for the per-session throttle loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleConfig {
    /// Deadline on the modeled frame period (milliseconds).
    pub deadline_ms: f64,
    /// Consecutive modeled overruns required to *enter* throttling.
    pub enter_frames: u32,
    /// Consecutive under-threshold frames required to *exit*.
    pub exit_frames: u32,
    /// Exit threshold as a fraction of `min(throttled baseline,
    /// deadline)`. Must be `< 1.0` for the no-oscillation guarantee.
    pub exit_margin: f64,
    /// EWMA smoothing factor for the reported modeled period
    /// (`0 < smoothing <= 1`; 1 = no smoothing).
    pub smoothing: f64,
    /// The severity ladder, mildest first: rung 1 is issued on a small
    /// overshoot, rung 3 on a gross one (or after repeated deadline
    /// misses escalate the loop).
    pub directives: [FrameDirective; 3],
    /// Overshoot ratio (`modeled period / deadline`) at or above which
    /// the loop *enters* directly at rung 2.
    pub level2_ratio: f64,
    /// Overshoot ratio at or above which the loop enters at rung 3.
    pub level3_ratio: f64,
}

impl ThrottleConfig {
    /// A conservative default policy for the given deadline.
    pub fn new(deadline_ms: f64) -> Self {
        ThrottleConfig {
            deadline_ms,
            enter_frames: 2,
            exit_frames: 4,
            exit_margin: 0.8,
            smoothing: 0.3,
            directives: [
                FrameDirective::mild(),
                FrameDirective::throttled(),
                FrameDirective::severe(),
            ],
            level2_ratio: 1.5,
            level3_ratio: 2.5,
        }
    }

    /// Collapses the ladder to a single directive issued at every rung
    /// — the pre-ladder fixed-severity behavior.
    pub fn with_directive(mut self, directive: FrameDirective) -> Self {
        self.directives = [directive; 3];
        self
    }

    /// Replaces the full severity ladder, mildest first.
    pub fn with_ladder(mut self, directives: [FrameDirective; 3]) -> Self {
        self.directives = directives;
        self
    }
}

/// Counters describing one session's throttle history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThrottleStats {
    /// Frames observed by the controller.
    pub frames: u64,
    /// Frames processed while a directive was in force.
    pub throttled_frames: u64,
    /// Times the loop entered throttling.
    pub entries: u64,
    /// Times the loop exited throttling.
    pub exits: u64,
    /// Times the loop stepped *up* a rung while already throttled
    /// (consecutive deadline misses under the current directive).
    pub escalations: u64,
    /// Times the calm hysteresis stepped *down* a rung without exiting.
    pub deescalations: u64,
}

impl eudoxus_telemetry::Telemetry for ThrottleStats {
    fn publish(&self, reg: &mut eudoxus_telemetry::CounterRegistry) {
        reg.counter("frames", self.frames);
        reg.counter("throttled_frames", self.throttled_frames);
        reg.counter("entries", self.entries);
        reg.counter("exits", self.exits);
        reg.counter("escalations", self.escalations);
        reg.counter("deescalations", self.deescalations);
        reg.gauge("throttle_rate", self.throttle_rate());
    }
}

impl ThrottleStats {
    /// Fraction of observed frames spent throttled.
    pub fn throttle_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.throttled_frames as f64 / self.frames as f64
        }
    }
}

/// Frames the controller waits after entering throttling before it
/// samples the throttled baseline (lets the shrunken budget take
/// effect — the directive applies to the *next* frame).
const SETTLE_FRAMES: u32 = 2;

/// Deterministic hysteresis loop turning modeled frame periods into
/// [`FrameDirective`]s. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct ThrottleController {
    config: ThrottleConfig,
    /// Severity rung in force: 0 = unthrottled, 1..=3 index the ladder.
    level: u8,
    overrun_streak: u32,
    calm_streak: u32,
    /// Consecutive deadline-missed frames under the current rung
    /// (post-settle) — the escalation trigger.
    miss_streak: u32,
    settle_left: u32,
    /// Raw modeled period sampled once the current rung's budget has
    /// taken effect; the exit threshold is relative to this.
    baseline: Option<f64>,
    /// EWMA of the modeled period (reporting only; decisions use raw).
    period: Option<f64>,
    stats: ThrottleStats,
}

impl ThrottleController {
    /// Creates an idle (unthrottled) controller.
    pub fn new(config: ThrottleConfig) -> Self {
        ThrottleController {
            config,
            level: 0,
            overrun_streak: 0,
            calm_streak: 0,
            miss_streak: 0,
            settle_left: 0,
            baseline: None,
            period: None,
            stats: ThrottleStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ThrottleConfig {
        &self.config
    }

    /// Whether a directive is currently in force.
    pub fn is_throttled(&self) -> bool {
        self.level > 0
    }

    /// The severity rung in force: 0 = unthrottled, 1 (mildest) to 3.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Smoothed modeled frame period (ms), if any frame was observed.
    pub fn modeled_period_ms(&self) -> Option<f64> {
        self.period
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ThrottleStats {
        self.stats
    }

    /// The directive to apply to the next frame, if throttled.
    pub fn directive(&self) -> Option<FrameDirective> {
        (self.level > 0).then(|| self.config.directives[usize::from(self.level - 1)])
    }

    /// The rung the loop would enter at for this overshoot ratio.
    fn entry_level(&self, modeled_period_ms: f64) -> u8 {
        let ratio = modeled_period_ms / self.config.deadline_ms;
        if ratio >= self.config.level3_ratio {
            3
        } else if ratio >= self.config.level2_ratio {
            2
        } else {
            1
        }
    }

    /// Moves to `level` and restarts the settle window: the new rung's
    /// directive steers the *next* frame, so its baseline must be
    /// resampled before the calm hysteresis can act.
    fn enter_level(&mut self, level: u8) {
        self.level = level;
        self.settle_left = SETTLE_FRAMES;
        self.baseline = None;
        self.calm_streak = 0;
        self.miss_streak = 0;
    }

    /// Feeds one modeled frame period (ms) and returns the directive
    /// for the *next* frame. Equivalent to
    /// [`observe_with_miss`](Self::observe_with_miss) with no deadline
    /// miss — escalation never triggers through this path.
    pub fn observe(&mut self, modeled_period_ms: f64) -> Option<FrameDirective> {
        self.observe_with_miss(modeled_period_ms, false)
    }

    /// Feeds one modeled frame period (ms) plus whether the frame
    /// *still* missed its deadline after the engine's offload plan, and
    /// returns the directive for the *next* frame. `enter_frames`
    /// consecutive misses under a rung escalate one rung up.
    pub fn observe_with_miss(
        &mut self,
        modeled_period_ms: f64,
        deadline_missed: bool,
    ) -> Option<FrameDirective> {
        self.stats.frames += 1;
        let alpha = self.config.smoothing.clamp(f64::EPSILON, 1.0);
        self.period = Some(match self.period {
            Some(p) => p + alpha * (modeled_period_ms - p),
            None => modeled_period_ms,
        });
        if self.level > 0 {
            self.stats.throttled_frames += 1;
            if self.settle_left > 0 {
                // The directive issued on entry steers the *next*
                // frame; skip the frames still priced at full budget.
                self.settle_left -= 1;
                if self.settle_left == 0 {
                    self.baseline = Some(modeled_period_ms);
                }
            } else if deadline_missed && self.level < 3 {
                // The current rung is not enough: the engine's final
                // plan still blew the deadline. Repeats escalate.
                self.miss_streak += 1;
                self.calm_streak = 0;
                if self.miss_streak >= self.config.enter_frames {
                    self.enter_level(self.level + 1);
                    self.stats.escalations += 1;
                }
            } else {
                self.miss_streak = 0;
                let baseline = self.baseline.unwrap_or(self.config.deadline_ms);
                let threshold = self.config.exit_margin * baseline.min(self.config.deadline_ms);
                if modeled_period_ms < threshold {
                    self.calm_streak += 1;
                    if self.calm_streak >= self.config.exit_frames {
                        if self.level > 1 {
                            // Step down one rung and re-settle there;
                            // exiting outright from a deep rung would
                            // forfeit the hysteresis on the way back.
                            self.enter_level(self.level - 1);
                            self.stats.deescalations += 1;
                        } else {
                            self.level = 0;
                            self.calm_streak = 0;
                            self.miss_streak = 0;
                            self.baseline = None;
                            self.stats.exits += 1;
                        }
                    }
                } else {
                    self.calm_streak = 0;
                }
            }
        } else if modeled_period_ms > self.config.deadline_ms {
            self.overrun_streak += 1;
            if self.overrun_streak >= self.config.enter_frames {
                self.overrun_streak = 0;
                self.enter_level(self.entry_level(modeled_period_ms));
                self.stats.entries += 1;
            }
        } else {
            self.overrun_streak = 0;
        }
        self.directive()
    }
}

/// Policy for deadline-aware admission control in `SessionManager`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Deadline on the agent's modeled frame period (milliseconds).
    pub deadline_ms: f64,
    /// Shed outright when the effective period exceeds
    /// `shed_factor × deadline_ms`.
    pub shed_factor: f64,
    /// While degrading (deadline < period ≤ shed threshold), admit one
    /// image frame in every `degrade_keep`.
    pub degrade_keep: u32,
    /// Multiplier on the modeled period for agents stuck below
    /// `Nominal` health — deprioritizes degraded agents first.
    pub health_penalty: f64,
}

impl AdmissionConfig {
    /// A conservative default policy for the given deadline.
    pub fn new(deadline_ms: f64) -> Self {
        AdmissionConfig {
            deadline_ms,
            shed_factor: 2.0,
            degrade_keep: 2,
            health_penalty: 1.5,
        }
    }
}

/// Per-agent admission counters. Invariant:
/// `offered == admitted + degraded + shed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Image frames offered to the gate.
    pub offered: u64,
    /// Frames admitted to the agent's inbox gate.
    pub admitted: u64,
    /// Frames dropped by degrade-mode decimation.
    pub degraded: u64,
    /// Frames shed because the agent cannot meet its deadline.
    pub shed: u64,
}

impl eudoxus_telemetry::Telemetry for AdmissionStats {
    fn publish(&self, reg: &mut eudoxus_telemetry::CounterRegistry) {
        reg.counter("offered", self.offered);
        reg.counter("admitted", self.admitted);
        reg.counter("degraded", self.degraded);
        reg.counter("shed", self.shed);
        reg.gauge("shed_rate", self.shed_rate());
    }
}

impl AdmissionStats {
    /// Fraction of offered frames shed outright.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_throttle_enters_after_consecutive_overruns() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        assert!(tc.observe(20.0).is_none(), "one overrun must not trigger");
        assert!(tc.observe(20.0).is_some(), "second consecutive overrun triggers");
        assert_eq!(tc.stats().entries, 1);
    }

    #[test]
    fn control_throttle_single_overruns_never_trigger() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        for _ in 0..50 {
            assert!(tc.observe(20.0).is_none());
            assert!(tc.observe(5.0).is_none());
        }
        assert_eq!(tc.stats().entries, 0);
    }

    #[test]
    fn control_throttle_exits_when_load_falls_away() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        tc.observe(20.0);
        tc.observe(20.0);
        assert!(tc.is_throttled());
        assert_eq!(tc.level(), 2, "2× overshoot enters the middle rung");
        // Settle frames still reflect the unthrottled budget.
        tc.observe(20.0);
        tc.observe(6.0); // baseline sampled: 6.0
        // Load collapses well below margin × baseline: down to rung 1.
        for _ in 0..tc.config().exit_frames {
            tc.observe(1.0);
        }
        assert_eq!(tc.level(), 1);
        // Rung 1 settles, baselines, and the calm walks the loop out.
        tc.observe(1.0);
        tc.observe(1.0);
        for _ in 0..tc.config().exit_frames {
            tc.observe(0.1);
        }
        assert!(!tc.is_throttled());
        assert_eq!(tc.stats().exits, 1);
    }

    #[test]
    fn control_throttle_constant_load_does_not_oscillate() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        // Constant overload: throttled period equals its own baseline,
        // which never clears the exit margin.
        for _ in 0..200 {
            tc.observe(15.0);
        }
        assert_eq!(tc.stats().entries, 1);
        assert_eq!(tc.stats().exits, 0);
        assert!(tc.is_throttled());
    }

    #[test]
    fn control_throttle_enters_at_rung_matching_overshoot() {
        // Just past the deadline → mildest rung.
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        tc.observe(12.0);
        tc.observe(12.0);
        assert_eq!(tc.level(), 1);
        assert_eq!(tc.directive(), Some(FrameDirective::mild()));
        // level2_ratio (1.5×) → middle rung.
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        tc.observe(16.0);
        tc.observe(16.0);
        assert_eq!(tc.level(), 2);
        assert_eq!(tc.directive(), Some(FrameDirective::throttled()));
        // level3_ratio (2.5×) → deepest rung.
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        tc.observe(30.0);
        tc.observe(30.0);
        assert_eq!(tc.level(), 3);
        assert_eq!(tc.directive(), Some(FrameDirective::severe()));
    }

    #[test]
    fn control_throttle_escalates_on_repeated_deadline_misses() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        tc.observe(12.0);
        tc.observe(12.0);
        assert_eq!(tc.level(), 1);
        // Settle frames first, then misses under the rung escalate.
        tc.observe_with_miss(12.0, true);
        tc.observe_with_miss(12.0, true);
        assert_eq!(tc.level(), 1, "settle window absorbs the first misses");
        tc.observe_with_miss(12.0, true);
        tc.observe_with_miss(12.0, true);
        assert_eq!(tc.level(), 2);
        assert_eq!(tc.stats().escalations, 1);
        // Each rung re-settles before it can escalate again.
        tc.observe_with_miss(12.0, true);
        tc.observe_with_miss(12.0, true);
        tc.observe_with_miss(12.0, true);
        tc.observe_with_miss(12.0, true);
        assert_eq!(tc.level(), 3);
        assert_eq!(tc.stats().escalations, 2);
        // The top rung has nowhere to go.
        for _ in 0..10 {
            tc.observe_with_miss(12.0, true);
        }
        assert_eq!(tc.level(), 3);
        assert_eq!(tc.stats().escalations, 2);
        assert_eq!(tc.stats().entries, 1, "escalation is not re-entry");
    }

    #[test]
    fn control_throttle_deescalates_one_rung_at_a_time() {
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0));
        tc.observe(30.0);
        tc.observe(30.0);
        assert_eq!(tc.level(), 3);
        tc.observe(30.0);
        tc.observe(8.0); // baseline for rung 3
        // Calm frames step down to rung 2, not straight out.
        for _ in 0..tc.config().exit_frames {
            tc.observe(1.0);
        }
        assert_eq!(tc.level(), 2);
        assert_eq!(tc.stats().deescalations, 1);
        assert_eq!(tc.stats().exits, 0);
        assert!(tc.is_throttled());
        // Rung 2 re-settles, samples its own baseline, then the same
        // calm hysteresis walks the rest of the ladder down and out.
        tc.observe(1.0);
        tc.observe(1.0);
        for _ in 0..tc.config().exit_frames {
            tc.observe(0.1);
        }
        assert_eq!(tc.level(), 1);
        assert_eq!(tc.stats().deescalations, 2);
        tc.observe(0.1);
        tc.observe(0.1);
        for _ in 0..tc.config().exit_frames {
            tc.observe(0.01);
        }
        assert!(!tc.is_throttled());
        assert_eq!(tc.stats().exits, 1);
    }

    #[test]
    fn control_throttle_with_directive_collapses_ladder() {
        let fixed = FrameDirective {
            max_keypoints: 99,
            max_tracks: 50,
            max_pyramid_levels: 1,
            scalar_klt: true,
        };
        let mut tc = ThrottleController::new(ThrottleConfig::new(10.0).with_directive(fixed));
        tc.observe(30.0);
        tc.observe(30.0);
        assert_eq!(tc.level(), 3, "entry grading still applies");
        assert_eq!(tc.directive(), Some(fixed), "but every rung issues the same directive");
    }

    #[test]
    fn control_admission_stats_rates() {
        let s = AdmissionStats {
            offered: 10,
            admitted: 5,
            degraded: 3,
            shed: 2,
        };
        assert_eq!(s.offered, s.admitted + s.degraded + s.shed);
        assert!((s.shed_rate() - 0.2).abs() < 1e-12);
        assert_eq!(AdmissionStats::default().shed_rate(), 0.0);
    }
}
