//! In-loop execution engines: the accelerator model as a live per-frame
//! decision.
//!
//! The paper's runtime (Sec. VI-B) decides *per frame* whether the
//! localization kernels run on the host CPU or the Eudoxus accelerator.
//! This module makes that decision part of the streaming session itself:
//! an [`ExecutionEngine`] is consulted by
//! [`LocalizationSession::push`](crate::session::LocalizationSession::push)
//! after every processed frame — it sees the frame's workload counters,
//! measured stage timings and backend kernel samples, and returns an
//! [`ExecutionReport`] (chosen target, modeled latency, energy) that
//! rides on the [`FrameRecord`](crate::instrument::FrameRecord). The
//! accelerated fps/energy numbers thereby become part of the live
//! instrumentation stream instead of a separate replay artifact.
//!
//! Three engines ship:
//!
//! * [`CpuEngine`] — the default: a pure passthrough that attaches no
//!   report. Sessions built with it are bit-identical to sessions that
//!   predate the engine seam.
//! * [`ModeledAccelEngine`] — wraps `eudoxus_accel`'s
//!   `FrontendEngine`/`BackendEngine`/`Platform` so every pushed frame
//!   gets a live EDX-CAR / EDX-DRONE latency + energy estimate with all
//!   offloadable kernels on the fabric ([`OffloadPolicy::Always`]).
//! * [`ScheduledEngine`] — wraps a trained
//!   [`RuntimeScheduler`] behind an [`OffloadPolicy`], making the
//!   regression-based offload decision *inside* `push`, not in replay.
//!
//! [`Executor::replay`](crate::executor::Executor::replay) delegates to
//! the same [`AccelModel::model_frame`] code path, so an in-loop report
//! and a post-hoc replay of the same [`RunLog`](crate::instrument::RunLog)
//! are exactly equal — decisions, latencies and energy, bit for bit
//! (proven by `tests/engine_equivalence.rs`).
//!
//! # Communication-adaptive offload
//!
//! The accelerator does not have to sit on the host bus: attaching a
//! [`LinkModel`](eudoxus_link::LinkModel) (via
//! [`ScheduledEngine::with_link`] or
//! [`SessionBuilder::link`](crate::builder::SessionBuilder::link)) makes
//! the engine treat it as a *remote* resource behind a modeled channel.
//! Each pushed frame advances the link one step and re-prices every
//! offloadable kernel against the current [`LinkState`] — same
//! three-round-trip protocol, but the DMA term is the link's
//! `transfer_time(bytes)` instead of the bus's. Two fallbacks force the
//! frame's kernels back onto the host CPU:
//!
//! * [`FallbackCause::FrameLost`] — the link dropped the frame (a
//!   dropout burst); nothing can be offloaded.
//! * [`FallbackCause::DeadlineExceeded`] — the kernels *could* offload,
//!   but the modeled frame latency would blow the agent's deadline, so
//!   the engine refuses to depend on the remote side.
//!
//! The [`ExecutionReport`] records the link state and fallback cause,
//! [`LinkStats`] counts shed frames
//! ([`ExecutionEngine::link_stats`]), and a `StaticLink` mirroring the
//! platform bus reproduces the linkless engine bit for bit (PCIe is
//! just another link).

use crate::health::{DegradationState, HealthReport};
use crate::stats::Summary;
use eudoxus_accel::{
    BackendEngine, BackendKernelKind, EnergyModel, FrameEnergy, FrameWorkload, FrontendEngine,
    KernelDims, Platform, PlatformKind, RuntimeScheduler,
};
use eudoxus_backend::{Kernel, KernelSample};
use eudoxus_frontend::{FrameDirective, FrameStats, FrontendTiming};
use eudoxus_link::{LinkModel, LinkState};

/// Offload policy for the backend kernels.
#[derive(Debug, Clone)]
pub enum OffloadPolicy {
    /// Never offload (backend stays on the host CPU).
    Never,
    /// Always offload the three accelerator kernels.
    Always,
    /// Use the trained runtime scheduler (paper Sec. VI-B).
    Scheduled(RuntimeScheduler),
}

impl OffloadPolicy {
    /// Short policy name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            OffloadPolicy::Never => "never",
            OffloadPolicy::Always => "always",
            OffloadPolicy::Scheduled(_) => "scheduled",
        }
    }
}

/// Why a frame's offloadable kernels were forced back onto the host CPU
/// despite the engine wanting (or being allowed) to offload them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackCause {
    /// The link dropped the frame (dropout burst / timeout): transfers
    /// were impossible, every kernel ran locally.
    FrameLost,
    /// Offloading was possible but the modeled frame latency over the
    /// current link would exceed the agent's deadline, so the engine
    /// kept the frame local rather than gamble on the remote side.
    DeadlineExceeded,
}

impl FallbackCause {
    /// Short cause name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FallbackCause::FrameLost => "frame-lost",
            FallbackCause::DeadlineExceeded => "deadline",
        }
    }
}

impl std::fmt::Display for FallbackCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Link-shedding counters for an engine with a channel attached — the
/// engine-side analogue of the ingest
/// [`IngestSnapshot`](crate::instrument::IngestSnapshot): how often the
/// modeled channel degraded the frame placement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames the link was advanced for (every executed frame).
    pub frames: u64,
    /// Frames the link dropped outright (state was `lost`).
    pub frames_lost: u64,
    /// Frames forced to pure-CPU by the link — lost frames with
    /// offloadable work pending, plus deadline fallbacks.
    pub link_fallbacks: u64,
    /// Frames whose modeled total still exceeded the deadline *after*
    /// the offload decision (including the all-local fallback plan):
    /// "shed and still late", as opposed to "shed and safe".
    pub deadline_missed: u64,
}

impl eudoxus_telemetry::Telemetry for LinkStats {
    fn publish(&self, reg: &mut eudoxus_telemetry::CounterRegistry) {
        reg.counter("frames", self.frames);
        reg.counter("frames_lost", self.frames_lost);
        reg.counter("link_fallbacks", self.link_fallbacks);
        reg.counter("deadline_missed", self.deadline_missed);
        reg.gauge("loss_rate", self.loss_rate());
    }
}

impl LinkStats {
    /// Fraction of frames the link dropped.
    pub fn loss_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.frames_lost as f64 / self.frames as f64
        }
    }

    /// Fraction of frames shed to pure-CPU because of the link.
    pub fn fallback_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.link_fallbacks as f64 / self.frames as f64
        }
    }

    /// Fraction of frames still over the deadline after the final plan.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.deadline_missed as f64 / self.frames as f64
        }
    }
}

impl std::fmt::Display for LinkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "link: {} frames, {} lost ({:.1}%), {} cpu fallbacks ({:.1}%), {} deadline misses",
            self.frames,
            self.frames_lost,
            100.0 * self.loss_rate(),
            self.link_fallbacks,
            100.0 * self.fallback_rate(),
            self.deadline_missed,
        )
    }
}

/// Maps a measured backend kernel onto the accelerator's offloadable kind.
pub fn offloadable_kind(kernel: Kernel) -> Option<BackendKernelKind> {
    match kernel {
        Kernel::KalmanGain => Some(BackendKernelKind::KalmanGain),
        Kernel::Projection => Some(BackendKernelKind::Projection),
        Kernel::Marginalization => Some(BackendKernelKind::Marginalization),
        _ => None,
    }
}

/// One frame's measured inputs, as the session hands them to an
/// [`ExecutionEngine`]: the frontend workload counters (from which the
/// engine derives its [`FrameWorkload`]), the measured per-stage CPU
/// timings, and the backend kernel samples with their workload sizes.
#[derive(Debug, Clone, Copy)]
pub struct FrameContext<'a> {
    /// Frontend workload counters of the frame.
    pub stats: &'a FrameStats,
    /// Measured per-stage frontend wall-clock times.
    pub timing: &'a FrontendTiming,
    /// Measured backend kernel samples (kernel, ms, workload size).
    pub backend_kernels: &'a [KernelSample],
    /// The frame's health verdict, when the session has a
    /// [`HealthMonitor`](crate::health::HealthMonitor) armed. Feeds
    /// fault-aware pricing: dead-reckoned / unserved frames are priced
    /// as IMU-only work and frames in the `DeadReckoning` state skip
    /// accelerator offload entirely. `None` (health off) prices the
    /// frame exactly as before the health seam existed.
    pub health: Option<HealthReport>,
}

/// Where a frame's offloadable backend kernels ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionTarget {
    /// Every offloadable kernel stayed on the host CPU (or the frame had
    /// none).
    Cpu,
    /// Every offloadable kernel ran on the accelerator.
    Accelerator,
    /// Some kernels offloaded, some stayed — the per-kernel decision the
    /// runtime scheduler makes.
    Mixed,
}

impl std::fmt::Display for ExecutionTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecutionTarget::Cpu => "cpu",
            ExecutionTarget::Accelerator => "accel",
            ExecutionTarget::Mixed => "mixed",
        })
    }
}

/// One offloadable kernel invocation's in-loop decision.
#[derive(Debug, Clone, Copy)]
pub struct KernelDecision {
    /// Which accelerator kernel.
    pub kind: BackendKernelKind,
    /// Workload size (the scheduler's regressor).
    pub size: usize,
    /// Whether the engine chose to offload it.
    pub offloaded: bool,
    /// Measured CPU milliseconds of the invocation.
    pub cpu_ms: f64,
    /// Modeled accelerator milliseconds (compute + DMA).
    pub accel_ms: f64,
}

/// An [`ExecutionEngine`]'s verdict for one frame: where the work ran
/// (or would run) and what the accelerator model predicts it costs.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Name of the engine (or policy) that produced the report.
    pub engine: &'static str,
    /// Where the offloadable backend kernels were placed.
    pub target: ExecutionTarget,
    /// Modeled accelerated frontend latency (ms).
    pub frontend_ms: f64,
    /// Backend latency after the offload decisions (ms): modeled time
    /// for offloaded kernels, measured CPU time for the rest.
    pub backend_ms: f64,
    /// Offloadable kernel invocations this frame.
    pub offloadable: usize,
    /// How many were actually offloaded.
    pub offloaded: usize,
    /// The per-kernel decisions behind the counts.
    pub decisions: Vec<KernelDecision>,
    /// Modeled per-frame energy.
    pub energy: FrameEnergy,
    /// Channel state the frame's transfers were priced against; `None`
    /// for linkless engines (the on-board bus).
    pub link: Option<LinkState>,
    /// Why the frame was forced to pure CPU, when it was.
    pub fallback: Option<FallbackCause>,
    /// Whether the final plan (offloads *or* the all-local fallback)
    /// still exceeds the deadline — distinguishes "shed and safe" from
    /// "shed and still late". Always `false` without a deadline.
    pub deadline_missed: bool,
    /// The throttle directive the session's control loop issued for the
    /// *next* frame in response to this report (`None` when the loop is
    /// unarmed or unthrottled). Stamped by the session, not the model.
    pub directive: Option<FrameDirective>,
}

impl ExecutionReport {
    /// End-to-end (non-pipelined) modeled frame latency (ms).
    pub fn total_ms(&self) -> f64 {
        self.frontend_ms + self.backend_ms
    }

    /// The replay-vocabulary view of this report (drops the per-kernel
    /// decisions). [`Executor::replay`](crate::executor::Executor::replay)
    /// produces exactly this for every frame.
    pub fn accelerated_frame(&self) -> AcceleratedFrame {
        AcceleratedFrame {
            frontend_ms: self.frontend_ms,
            backend_ms: self.backend_ms,
            offloadable: self.offloadable,
            offloaded: self.offloaded,
            energy: self.energy,
            fallback: self.fallback,
        }
    }
}

/// One frame through the accelerator model.
#[derive(Debug, Clone, Copy)]
pub struct AcceleratedFrame {
    /// Modeled frontend latency (ms).
    pub frontend_ms: f64,
    /// Backend latency after offload decisions (ms).
    pub backend_ms: f64,
    /// Offloadable kernel invocations this frame.
    pub offloadable: usize,
    /// How many were actually offloaded.
    pub offloaded: usize,
    /// Per-frame energy.
    pub energy: FrameEnergy,
    /// Why the frame was forced to pure CPU, when it was (link-backed
    /// engines only; always `None` on the bus).
    pub fallback: Option<FallbackCause>,
}

impl AcceleratedFrame {
    /// End-to-end (non-pipelined) frame latency (ms).
    pub fn total_ms(&self) -> f64 {
        self.frontend_ms + self.backend_ms
    }
}

/// A run through the accelerator model — collected from an in-loop
/// engine's reports
/// ([`RunLog::execution_run`](crate::instrument::RunLog::execution_run))
/// or produced by [`Executor::replay`](crate::executor::Executor::replay).
#[derive(Debug, Clone)]
pub struct AcceleratedRun {
    /// Per-frame results, in order.
    pub frames: Vec<AcceleratedFrame>,
}

impl AcceleratedRun {
    /// Total latencies (ms).
    pub fn total_ms(&self) -> Vec<f64> {
        self.frames.iter().map(|f| f.total_ms()).collect()
    }

    /// Latency summary.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.total_ms())
    }

    /// Throughput without frontend↔backend pipelining.
    pub fn fps_unpipelined(&self) -> f64 {
        let s = self.summary();
        if s.mean <= 0.0 {
            0.0
        } else {
            1000.0 / s.mean
        }
    }

    /// Throughput with the frontend of frame `i+1` overlapping the backend
    /// of frame `i` (paper Fig. 18 "w/ Pipelining"): the frame period is
    /// the slower of the two stages.
    pub fn fps_pipelined(&self) -> f64 {
        let periods: Vec<f64> = self
            .frames
            .iter()
            .map(|f| f.frontend_ms.max(f.backend_ms))
            .collect();
        let s = Summary::of(&periods);
        if s.mean <= 0.0 {
            0.0
        } else {
            1000.0 / s.mean
        }
    }

    /// Mean energy per frame (joules).
    pub fn mean_energy(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().map(|f| f.energy.total()).sum::<f64>() / self.frames.len() as f64
    }

    /// Fraction of offloadable kernels actually offloaded.
    pub fn offload_rate(&self) -> f64 {
        let total: usize = self.frames.iter().map(|f| f.offloadable).sum();
        let off: usize = self.frames.iter().map(|f| f.offloaded).sum();
        if total == 0 {
            0.0
        } else {
            off as f64 / total as f64
        }
    }

    /// Fraction of frames forced to pure CPU by the link (lost frames
    /// with pending work, or deadline fallbacks).
    pub fn fallback_rate(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let fb = self.frames.iter().filter(|f| f.fallback.is_some()).count();
        fb as f64 / self.frames.len() as f64
    }

    /// Frames the link dropped outright.
    pub fn frames_lost(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.fallback == Some(FallbackCause::FrameLost))
            .count()
    }
}

/// The per-frame decision hook a [`LocalizationSession`] consults.
///
/// `execute_frame` runs inside
/// [`push`](crate::session::LocalizationSession::push) for every image
/// frame, *after* the CPU pipeline has produced its estimate — engines
/// model and decide, they never change the numerical result, so any
/// engine-built session stays bit-identical in poses to the default
/// [`CpuEngine`] one. Returning `None` attaches no report (the CPU
/// passthrough); returning `Some` puts the report on the frame's
/// [`FrameRecord`](crate::instrument::FrameRecord).
///
/// `fork` produces an independent engine for another session —
/// [`SessionBuilder::build_manager`](crate::builder::SessionBuilder::build_manager)
/// uses it to stamp one engine per agent.
///
/// [`LocalizationSession`]: crate::session::LocalizationSession
pub trait ExecutionEngine: Send {
    /// Short engine name for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Models (and, for deciding engines, places) one processed frame.
    fn execute_frame(&mut self, ctx: &FrameContext<'_>) -> Option<ExecutionReport>;

    /// A fresh, independent engine with the same configuration (for
    /// another agent's session).
    fn fork(&self) -> Box<dyn ExecutionEngine>;

    /// Attaches a communication channel (and an optional per-frame
    /// deadline in milliseconds) between the host and the accelerator:
    /// the engine advances the link every frame and re-prices offloads
    /// against its state. Returns `false` when the engine does not
    /// price transfers and ignored the link ([`CpuEngine`] models
    /// nothing; [`ModeledAccelEngine`] is the fixed on-board-bus
    /// instrument — use
    /// [`ScheduledEngine::with_policy`]`(platform, OffloadPolicy::Always)`
    /// for an always-offload engine behind a link).
    fn attach_link(&mut self, link: Box<dyn LinkModel>, deadline_ms: Option<f64>) -> bool {
        let _ = (link, deadline_ms);
        false
    }

    /// Sets the agent's per-frame latency budget (ms) without touching
    /// the link: frames whose modeled total with offloads would exceed
    /// it are kept fully local, and misses are counted in
    /// [`LinkStats::deadline_missed`]. Returns `false` when the engine
    /// does not model latency and ignored the deadline.
    fn set_deadline_ms(&mut self, deadline_ms: f64) -> bool {
        let _ = deadline_ms;
        false
    }

    /// Link-shedding counters, for engines with a channel attached
    /// (`None` otherwise). Engines with a deadline but no link also
    /// report: deadline shedding is accounted the same way.
    fn link_stats(&self) -> Option<LinkStats> {
        None
    }
}

/// The shared analytical core every accelerator-backed engine (and the
/// replay [`Executor`](crate::executor::Executor)) evaluates: workload
/// construction from the frontend counters, the frontend task-pipeline
/// latency, per-kernel offload arithmetic, and the energy model. One
/// implementation — so an in-loop report and a replay of the same log
/// cannot drift apart.
#[derive(Debug, Clone)]
pub struct AccelModel {
    platform: Platform,
    frontend: FrontendEngine,
    backend: BackendEngine,
    energy: EnergyModel,
    /// MSCKF error-state dimension used to size Kalman-gain offloads.
    msckf_state_dim: usize,
}

impl AccelModel {
    /// Creates the model for a platform.
    pub fn new(platform: Platform) -> Self {
        AccelModel {
            platform,
            frontend: FrontendEngine::new(platform),
            backend: BackendEngine::new(platform),
            energy: EnergyModel::new(platform),
            msckf_state_dim: 15 + 6 * 30,
        }
    }

    /// The platform being modeled.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The backend engine (scheduler experiments need direct access).
    pub fn backend_engine(&self) -> &BackendEngine {
        &self.backend
    }

    /// The accelerator workload implied by one frame's counters, at this
    /// platform's resolution.
    pub fn workload(&self, stats: &FrameStats) -> FrameWorkload {
        FrameWorkload {
            pixels: self.platform.pixels(),
            keypoints_left: stats.keypoints_left,
            keypoints_right: stats.keypoints_right,
            stereo_matches: stats.stereo_matches,
            tracks: stats.tracks_continued + stats.tracks_lost,
            disparity_range: if self.platform.resolution.0 >= 1280 {
                200
            } else {
                100
            },
        }
    }

    /// Accelerator dimensions for one measured kernel sample.
    pub fn dims_for(&self, kind: BackendKernelKind, size: usize) -> KernelDims {
        match kind {
            BackendKernelKind::Projection => KernelDims::Projection { map_points: size },
            BackendKernelKind::KalmanGain => KernelDims::KalmanGain {
                rows: size,
                state: self.msckf_state_dim,
            },
            BackendKernelKind::Marginalization => KernelDims::Marginalization {
                // The recorded size is the marginalized block dimension
                // 3k + 6.
                landmarks: size.saturating_sub(6) / 3,
                remaining: 6 * 5,
            },
        }
    }

    /// Energy of a CPU-only (baseline) frame of the given latency.
    pub fn baseline_frame_energy(&self, frame_seconds: f64) -> FrameEnergy {
        self.energy.baseline_frame(frame_seconds)
    }

    /// Evaluates one frame under an offload policy — the single code
    /// path behind every engine report and every replayed frame.
    /// Equivalent to [`model_frame_linked`](Self::model_frame_linked)
    /// with no link and no deadline (the on-board bus).
    pub fn model_frame(&self, ctx: &FrameContext<'_>, policy: &OffloadPolicy) -> ExecutionReport {
        self.model_frame_linked(ctx, policy, None, None)
    }

    /// Evaluates one frame with the accelerator behind a communication
    /// channel. `link` is the channel state in force for this frame
    /// (`None` = the platform bus, reproducing [`model_frame`] bit for
    /// bit); `deadline_ms` is the agent's per-frame latency budget.
    ///
    /// The link governs only the backend kernels' DMA round trips — the
    /// frontend pipeline streams from the on-board sensors and keeps its
    /// accelerator latency in all cases. A lost frame prices every
    /// kernel at `accel_ms = ∞` (forced local,
    /// [`FallbackCause::FrameLost`]); a frame whose modeled total,
    /// offloads included, would exceed the deadline is re-evaluated
    /// all-local ([`FallbackCause::DeadlineExceeded`]).
    ///
    /// [`model_frame`]: Self::model_frame
    pub fn model_frame_linked(
        &self,
        ctx: &FrameContext<'_>,
        policy: &OffloadPolicy,
        link: Option<&LinkState>,
        deadline_ms: Option<f64>,
    ) -> ExecutionReport {
        // Fault-aware pricing: the health verdict reshapes what the
        // frame *is* before any offload arithmetic runs.
        let mut report = match ctx.health {
            // A dead-reckoned or unserved frame runs no vision kernels
            // at all — it is IMU-only work, with no offload decisions
            // to make.
            Some(h) if h.dead_reckoned || !h.served => self.imu_only_frame(ctx, policy, link),
            // A starved frame (DeadReckoning state) that still produced
            // vision output skips accelerator offload entirely: the
            // pipeline is about to lose vision, don't gamble on it.
            Some(h) if h.state == DegradationState::DeadReckoning => {
                let mut r = self.model_frame_over(ctx, &OffloadPolicy::Never, link);
                r.engine = policy.name();
                r
            }
            _ => self.model_frame_over(ctx, policy, link),
        };
        if let Some(deadline) = deadline_ms {
            if report.offloaded > 0 && report.total_ms() > deadline {
                // The offloaded plan blows the budget: refuse to depend
                // on the remote side and keep the whole frame local.
                report = self.model_frame_over(ctx, &OffloadPolicy::Never, link);
                report.engine = policy.name();
                report.fallback = Some(FallbackCause::DeadlineExceeded);
            }
            // The all-local plan can *also* blow the deadline — record
            // it so consumers can tell "shed and safe" from "shed and
            // still late".
            report.deadline_missed = report.total_ms() > deadline;
        }
        report
    }

    /// Prices a frame that ran no vision kernels (dead reckoning or an
    /// unserved starve): the measured backend samples — IMU integration
    /// and friends — at their CPU cost, zero modeled frontend, zero
    /// offload decisions, baseline (host-only) energy.
    fn imu_only_frame(
        &self,
        ctx: &FrameContext<'_>,
        policy: &OffloadPolicy,
        link: Option<&LinkState>,
    ) -> ExecutionReport {
        let backend_ms: f64 = ctx.backend_kernels.iter().map(|k| k.millis).sum();
        ExecutionReport {
            engine: policy.name(),
            target: ExecutionTarget::Cpu,
            frontend_ms: 0.0,
            backend_ms,
            offloadable: 0,
            offloaded: 0,
            decisions: Vec::new(),
            energy: self.baseline_frame_energy(backend_ms * 1e-3),
            link: link.copied(),
            fallback: None,
            deadline_missed: false,
            directive: None,
        }
    }

    /// The shared frame loop: prices every offloadable kernel over the
    /// given channel state (or the platform bus) and applies the policy.
    fn model_frame_over(
        &self,
        ctx: &FrameContext<'_>,
        policy: &OffloadPolicy,
        link: Option<&LinkState>,
    ) -> ExecutionReport {
        // Frontend through the accelerator.
        let workload = self.workload(ctx.stats);
        let fe = self.frontend.latency(&workload);
        let frontend_ms = fe.total() * 1e3;

        // Backend: offload decisions per kernel sample.
        let mut backend_ms = 0.0;
        let mut fpga_backend_s = 0.0;
        let mut host_backend_s = 0.0;
        let mut offloadable = 0usize;
        let mut offloaded = 0usize;
        let mut decisions = Vec::new();
        for k in ctx.backend_kernels {
            match offloadable_kind(k.kernel) {
                Some(kind) => {
                    offloadable += 1;
                    let dims = self.dims_for(kind, k.size);
                    let accel_ms = match link {
                        // No link: the platform bus, summed in the exact
                        // order the pre-link engine used.
                        None => self.backend.offload_time(&dims) * 1e3,
                        Some(state) => match state.transfer_time(dims.transfer_bytes()) {
                            Some(t) => self.backend.offload_time_via(&dims, t) * 1e3,
                            // Frame lost: offloading is impossible.
                            None => f64::INFINITY,
                        },
                    };
                    let do_offload = match policy {
                        OffloadPolicy::Never => false,
                        OffloadPolicy::Always => accel_ms.is_finite(),
                        OffloadPolicy::Scheduled(s) => {
                            s.decide_with_accel_ms(kind, k.size, accel_ms).is_offload()
                        }
                    };
                    if do_offload {
                        offloaded += 1;
                        backend_ms += accel_ms;
                        fpga_backend_s += accel_ms * 1e-3;
                    } else {
                        backend_ms += k.millis;
                        host_backend_s += k.millis * 1e-3;
                    }
                    decisions.push(KernelDecision {
                        kind,
                        size: k.size,
                        offloaded: do_offload,
                        cpu_ms: k.millis,
                        accel_ms,
                    });
                }
                None => {
                    backend_ms += k.millis;
                    host_backend_s += k.millis * 1e-3;
                }
            }
        }

        let frame_s = (frontend_ms + backend_ms) * 1e-3;
        let fpga_s = fe.total() + fpga_backend_s;
        let energy = self
            .energy
            .accelerated_frame(frame_s, fpga_s, host_backend_s);
        let target = if offloaded == 0 {
            ExecutionTarget::Cpu
        } else if offloaded == offloadable {
            ExecutionTarget::Accelerator
        } else {
            ExecutionTarget::Mixed
        };
        let lost = link.is_some_and(|s| s.lost);
        ExecutionReport {
            engine: policy.name(),
            target,
            frontend_ms,
            backend_ms,
            offloadable,
            offloaded,
            decisions,
            energy,
            link: link.copied(),
            fallback: if lost && offloadable > 0 {
                Some(FallbackCause::FrameLost)
            } else {
                None
            },
            deadline_missed: false,
            directive: None,
        }
    }
}

/// The default engine: a pure passthrough. No modeling, no report —
/// sessions built with it are bit-identical to pre-engine sessions.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuEngine;

impl ExecutionEngine for CpuEngine {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn execute_frame(&mut self, _ctx: &FrameContext<'_>) -> Option<ExecutionReport> {
        None
    }

    fn fork(&self) -> Box<dyn ExecutionEngine> {
        Box::new(CpuEngine)
    }
}

/// Live EDX-CAR / EDX-DRONE estimate for every pushed frame, with all
/// offloadable backend kernels placed on the fabric
/// ([`OffloadPolicy::Always`]) — the "what would the accelerator do with
/// this exact frame" instrument.
#[derive(Debug, Clone)]
pub struct ModeledAccelEngine {
    model: AccelModel,
}

impl ModeledAccelEngine {
    /// Creates the engine for a platform.
    pub fn new(platform: Platform) -> Self {
        ModeledAccelEngine {
            model: AccelModel::new(platform),
        }
    }

    /// The self-driving-car instance.
    pub fn edx_car() -> Self {
        ModeledAccelEngine::new(Platform::edx_car())
    }

    /// The drone instance.
    pub fn edx_drone() -> Self {
        ModeledAccelEngine::new(Platform::edx_drone())
    }

    /// The underlying model.
    pub fn model(&self) -> &AccelModel {
        &self.model
    }
}

impl ExecutionEngine for ModeledAccelEngine {
    fn name(&self) -> &'static str {
        match self.model.platform().kind {
            PlatformKind::EdxCar => "edx-car",
            PlatformKind::EdxDrone => "edx-drone",
        }
    }

    fn execute_frame(&mut self, ctx: &FrameContext<'_>) -> Option<ExecutionReport> {
        let mut report = self.model.model_frame(ctx, &OffloadPolicy::Always);
        report.engine = self.name();
        Some(report)
    }

    fn fork(&self) -> Box<dyn ExecutionEngine> {
        Box::new(self.clone())
    }
}

/// The paper's runtime offload scheduler, in the loop: every pushed
/// frame's offloadable kernels are individually placed by the trained
/// regression models (or a fixed [`OffloadPolicy`]), and the resulting
/// report rides on the frame record —
/// [`Executor::replay`](crate::executor::Executor::replay) of the same
/// log reproduces it exactly.
///
/// With a channel attached ([`with_link`](Self::with_link) /
/// [`attach_link`](ExecutionEngine::attach_link)), the engine advances
/// the link once per frame, re-prices every kernel against its state,
/// and sheds the frame to pure CPU on loss or deadline risk (see the
/// [module docs](self)). [`Clone`] and
/// [`fork`](ExecutionEngine::fork) restart the link at frame 0 and
/// zero the [`LinkStats`] — a clone is a fresh engine with the same
/// configuration, not a snapshot of channel position.
pub struct ScheduledEngine {
    model: AccelModel,
    policy: OffloadPolicy,
    link: Option<Box<dyn LinkModel>>,
    deadline_ms: Option<f64>,
    stats: LinkStats,
}

impl std::fmt::Debug for ScheduledEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ScheduledEngine(policy: {}, link: {}, deadline_ms: {:?})",
            self.policy.name(),
            self.link.as_ref().map_or("none", |l| l.name()),
            self.deadline_ms,
        )
    }
}

impl Clone for ScheduledEngine {
    fn clone(&self) -> Self {
        ScheduledEngine {
            model: self.model.clone(),
            policy: self.policy.clone(),
            link: self.link.as_ref().map(|l| l.fork()),
            deadline_ms: self.deadline_ms,
            stats: LinkStats::default(),
        }
    }
}

impl ScheduledEngine {
    /// An engine driving a trained scheduler on a platform.
    pub fn new(platform: Platform, scheduler: RuntimeScheduler) -> Self {
        ScheduledEngine::with_policy(platform, OffloadPolicy::Scheduled(scheduler))
    }

    /// An engine with an explicit policy (e.g. [`OffloadPolicy::Always`]
    /// as the untrained fallback).
    pub fn with_policy(platform: Platform, policy: OffloadPolicy) -> Self {
        ScheduledEngine {
            model: AccelModel::new(platform),
            policy,
            link: None,
            deadline_ms: None,
            stats: LinkStats::default(),
        }
    }

    /// Shares an existing model (the replay executor's delegation path).
    pub(crate) fn from_model(model: AccelModel, policy: OffloadPolicy) -> Self {
        ScheduledEngine {
            model,
            policy,
            link: None,
            deadline_ms: None,
            stats: LinkStats::default(),
        }
    }

    /// Puts the accelerator behind a modeled channel: every frame
    /// advances `link` and prices offloads against its state. A
    /// `StaticLink` mirroring the platform bus reproduces the linkless
    /// engine bit for bit.
    pub fn with_link(mut self, link: impl LinkModel + 'static) -> Self {
        self.link = Some(Box::new(link));
        self
    }

    /// Sets the agent's per-frame latency budget (ms): frames whose
    /// modeled total with offloads would exceed it are kept fully local
    /// ([`FallbackCause::DeadlineExceeded`]).
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// The offload policy in force.
    pub fn policy(&self) -> &OffloadPolicy {
        &self.policy
    }

    /// The underlying model.
    pub fn model(&self) -> &AccelModel {
        &self.model
    }

    /// The attached channel, if any.
    pub fn link(&self) -> Option<&dyn LinkModel> {
        self.link.as_deref()
    }
}

impl ExecutionEngine for ScheduledEngine {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn execute_frame(&mut self, ctx: &FrameContext<'_>) -> Option<ExecutionReport> {
        let state = self.link.as_mut().map(|link| link.advance_frame());
        let report =
            self.model
                .model_frame_linked(ctx, &self.policy, state.as_ref(), self.deadline_ms);
        // Shedding is accounted whenever something can shed: a link, a
        // deadline, or both.
        if state.is_some() || self.deadline_ms.is_some() {
            self.stats.frames += 1;
            if state.as_ref().is_some_and(|s| s.lost) {
                self.stats.frames_lost += 1;
            }
            if report.fallback.is_some() {
                self.stats.link_fallbacks += 1;
            }
            if report.deadline_missed {
                self.stats.deadline_missed += 1;
            }
        }
        Some(report)
    }

    fn fork(&self) -> Box<dyn ExecutionEngine> {
        Box::new(self.clone())
    }

    fn attach_link(&mut self, link: Box<dyn LinkModel>, deadline_ms: Option<f64>) -> bool {
        self.link = Some(link);
        if deadline_ms.is_some() {
            self.deadline_ms = deadline_ms;
        }
        self.stats = LinkStats::default();
        true
    }

    fn set_deadline_ms(&mut self, deadline_ms: f64) -> bool {
        self.deadline_ms = Some(deadline_ms);
        true
    }

    fn link_stats(&self) -> Option<LinkStats> {
        (self.link.is_some() || self.deadline_ms.is_some()).then_some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_inputs() -> (FrameStats, FrontendTiming, Vec<KernelSample>) {
        let stats = FrameStats {
            keypoints_left: 350,
            keypoints_right: 350,
            stereo_matches: 260,
            tracks_continued: 280,
            tracks_spawned: 40,
            tracks_lost: 30,
        };
        let kernels = vec![
            KernelSample {
                kernel: Kernel::ImuIntegration,
                millis: 2.0,
                size: 20,
            },
            KernelSample {
                kernel: Kernel::KalmanGain,
                millis: 25.0,
                size: 200,
            },
        ];
        (stats, FrontendTiming::default(), kernels)
    }

    #[test]
    fn cpu_engine_is_a_passthrough() {
        let (stats, timing, kernels) = ctx_inputs();
        let mut engine = CpuEngine;
        assert_eq!(engine.name(), "cpu");
        assert!(engine
            .execute_frame(&FrameContext {
                stats: &stats,
                timing: &timing,
                backend_kernels: &kernels,
                health: None,
            })
            .is_none());
    }

    #[test]
    fn modeled_engine_reports_always_offload() {
        let (stats, timing, kernels) = ctx_inputs();
        let mut engine = ModeledAccelEngine::edx_car();
        assert_eq!(engine.name(), "edx-car");
        let report = engine
            .execute_frame(&FrameContext {
                stats: &stats,
                timing: &timing,
                backend_kernels: &kernels,
                health: None,
            })
            .expect("modeled engine always reports");
        assert_eq!(report.offloadable, 1);
        assert_eq!(report.offloaded, 1);
        assert_eq!(report.target, ExecutionTarget::Accelerator);
        assert_eq!(report.decisions.len(), 1);
        assert!(report.decisions[0].offloaded);
        assert!(report.frontend_ms > 0.0);
        assert!(report.energy.total() > 0.0);
        // The non-offloadable IMU integration stays at its measured cost.
        assert!(report.backend_ms >= 2.0);
    }

    #[test]
    fn never_policy_keeps_measured_backend_cost() {
        let (stats, timing, kernels) = ctx_inputs();
        let mut engine =
            ScheduledEngine::with_policy(Platform::edx_drone(), OffloadPolicy::Never);
        assert_eq!(engine.name(), "never");
        let report = engine
            .execute_frame(&FrameContext {
                stats: &stats,
                timing: &timing,
                backend_kernels: &kernels,
                health: None,
            })
            .unwrap();
        assert_eq!(report.offloaded, 0);
        assert_eq!(report.target, ExecutionTarget::Cpu);
        assert!((report.backend_ms - 27.0).abs() < 1e-9);
    }

    #[test]
    fn forked_engines_report_identically() {
        let (stats, timing, kernels) = ctx_inputs();
        let ctx = FrameContext {
            stats: &stats,
            timing: &timing,
            backend_kernels: &kernels,
            health: None,
        };
        let mut original = ModeledAccelEngine::edx_drone();
        let mut fork = original.fork();
        let a = original.execute_frame(&ctx).unwrap();
        let b = fork.execute_frame(&ctx).unwrap();
        assert_eq!(a.frontend_ms.to_bits(), b.frontend_ms.to_bits());
        assert_eq!(a.backend_ms.to_bits(), b.backend_ms.to_bits());
        assert_eq!(a.energy.total().to_bits(), b.energy.total().to_bits());
    }

    #[test]
    fn static_link_matches_bus_bitwise() {
        // PCIe as "just another link": a StaticLink mirroring the
        // platform bus must reproduce the linkless report bit for bit.
        let (stats, timing, kernels) = ctx_inputs();
        let ctx = FrameContext {
            stats: &stats,
            timing: &timing,
            backend_kernels: &kernels,
            health: None,
        };
        for platform in [Platform::edx_car(), Platform::edx_drone()] {
            let mut plain = ScheduledEngine::with_policy(platform, OffloadPolicy::Always);
            let mut linked = ScheduledEngine::with_policy(platform, OffloadPolicy::Always)
                .with_link(platform.bus.as_link());
            let a = plain.execute_frame(&ctx).unwrap();
            let b = linked.execute_frame(&ctx).unwrap();
            assert_eq!(a.frontend_ms.to_bits(), b.frontend_ms.to_bits());
            assert_eq!(a.backend_ms.to_bits(), b.backend_ms.to_bits());
            assert_eq!(a.energy.total().to_bits(), b.energy.total().to_bits());
            assert_eq!(a.offloaded, b.offloaded);
            assert_eq!(b.fallback, None);
            assert!(b.link.is_some() && a.link.is_none());
            for (da, db) in a.decisions.iter().zip(&b.decisions) {
                assert_eq!(da.accel_ms.to_bits(), db.accel_ms.to_bits());
                assert_eq!(da.offloaded, db.offloaded);
            }
        }
    }

    #[test]
    fn forced_loss_profile_counts_fallbacks_and_losses() {
        // A link that is down every frame: every frame with offloadable
        // work must shed to CPU and the counters must say so.
        let (stats, timing, kernels) = ctx_inputs();
        let ctx = FrameContext {
            stats: &stats,
            timing: &timing,
            backend_kernels: &kernels,
            health: None,
        };
        let dead = eudoxus_link::TraceLink::new(vec![LinkState::down()]);
        let mut engine = ScheduledEngine::with_policy(Platform::edx_drone(), OffloadPolicy::Always)
            .with_link(dead);
        for _ in 0..8 {
            let report = engine.execute_frame(&ctx).unwrap();
            assert_eq!(report.offloaded, 0);
            assert_eq!(report.target, ExecutionTarget::Cpu);
            assert_eq!(report.fallback, Some(FallbackCause::FrameLost));
            assert!(report.link.unwrap().lost);
            // Lost frames price offload at infinity.
            assert!(report.decisions[0].accel_ms.is_infinite());
        }
        let stats = engine.link_stats().expect("link attached");
        assert_eq!(stats.frames, 8);
        assert_eq!(stats.frames_lost, 8);
        assert_eq!(stats.link_fallbacks, 8);
        assert_eq!(stats.loss_rate(), 1.0);
        assert_eq!(stats.fallback_rate(), 1.0);
        // Fork restarts the channel and zeroes the counters.
        assert_eq!(engine.fork().link_stats(), Some(LinkStats::default()));
    }

    #[test]
    fn deadline_blows_fall_back_to_local() {
        let (stats, timing, kernels) = ctx_inputs();
        let ctx = FrameContext {
            stats: &stats,
            timing: &timing,
            backend_kernels: &kernels,
            health: None,
        };
        // A painfully slow (but up) link: offloading the Kalman gain
        // would add hundreds of ms, blowing a 50 ms budget.
        let slow = eudoxus_link::StaticLink::new(1e5, 0.2);
        let mut engine = ScheduledEngine::with_policy(Platform::edx_drone(), OffloadPolicy::Always)
            .with_link(slow)
            .with_deadline_ms(50.0);
        let report = engine.execute_frame(&ctx).unwrap();
        assert_eq!(report.fallback, Some(FallbackCause::DeadlineExceeded));
        assert_eq!(report.offloaded, 0);
        // The local plan keeps the measured backend cost.
        assert!((report.backend_ms - 27.0).abs() < 1e-9);
        assert_eq!(engine.link_stats().unwrap().link_fallbacks, 1);
        assert_eq!(engine.link_stats().unwrap().frames_lost, 0);
    }

    #[test]
    fn passthrough_engines_ignore_links() {
        let mut cpu = CpuEngine;
        assert!(!cpu.attach_link(Box::new(eudoxus_link::StaticLink::new(1e9, 1e-3)), None));
        assert!(cpu.link_stats().is_none());
        let mut modeled = ModeledAccelEngine::edx_car();
        assert!(!modeled.attach_link(Box::new(eudoxus_link::StaticLink::new(1e9, 1e-3)), None));
        assert!(modeled.link_stats().is_none());
    }

    #[test]
    fn report_converts_to_accelerated_frame() {
        let (stats, timing, kernels) = ctx_inputs();
        let report = AccelModel::new(Platform::edx_car()).model_frame(
            &FrameContext {
                stats: &stats,
                timing: &timing,
                backend_kernels: &kernels,
                health: None,
            },
            &OffloadPolicy::Always,
        );
        let frame = report.accelerated_frame();
        assert_eq!(frame.frontend_ms.to_bits(), report.frontend_ms.to_bits());
        assert_eq!(frame.backend_ms.to_bits(), report.backend_ms.to_bits());
        assert_eq!(frame.offloaded, report.offloaded);
        assert_eq!(frame.total_ms().to_bits(), report.total_ms().to_bits());
    }
}
