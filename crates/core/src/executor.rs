//! Accelerated execution, replay flavor: re-scoring a measured CPU run
//! through the accelerator models.
//!
//! The evaluation methodology mirrors the paper's: the *baseline* numbers
//! are real measurements of the software pipeline; the *accelerated*
//! numbers replay each frame's workload through the analytical FPGA models
//! — frontend task pipeline, backend matrix engine, runtime offload
//! scheduler, and the energy model. This module produces the data behind
//! Figs. 17–21 and the scheduler study of Sec. VII-F.
//!
//! Since the in-loop redesign the per-frame modeling itself lives in
//! [`crate::engine`]: [`Executor::replay`] builds a [`ScheduledEngine`]
//! over its platform model and feeds it the log's records — exactly the
//! code path a live session with that engine runs — so replayed numbers
//! and in-loop [`ExecutionReport`](crate::engine::ExecutionReport)s can
//! never drift apart. Prefer attaching an engine via
//! [`SessionBuilder::engine`](crate::builder::SessionBuilder::engine)
//! when the stream is live; use the replay executor to re-score recorded
//! logs under different policies or platforms, and to train the
//! scheduler.

use crate::engine::{offloadable_kind, AccelModel, FrameContext, ScheduledEngine};
use crate::instrument::RunLog;
use eudoxus_accel::{BackendEngine, Platform, RuntimeScheduler, TrainingSample};

pub use crate::engine::{AcceleratedFrame, AcceleratedRun, ExecutionEngine, OffloadPolicy};

/// The accelerated executor for one platform.
#[derive(Debug, Clone)]
pub struct Executor {
    model: AccelModel,
}

impl Executor {
    /// Creates an executor for a platform.
    pub fn new(platform: Platform) -> Self {
        Executor {
            model: AccelModel::new(platform),
        }
    }

    /// The platform being modeled.
    pub fn platform(&self) -> &Platform {
        self.model.platform()
    }

    /// The backend engine (scheduler experiments need direct access).
    pub fn backend_engine(&self) -> &BackendEngine {
        self.model.backend_engine()
    }

    /// The shared per-frame accelerator model.
    pub fn model(&self) -> &AccelModel {
        &self.model
    }

    /// Builds scheduler training samples from the first
    /// `train_fraction` of the log (the paper trains on 25 % of frames,
    /// Sec. VII-A).
    pub fn training_samples(&self, log: &RunLog, train_fraction: f64) -> Vec<TrainingSample> {
        let n_train = ((log.len() as f64) * train_fraction).ceil() as usize;
        let mut samples = Vec::new();
        for r in log.records.iter().take(n_train) {
            for k in &r.backend_kernels {
                if let Some(kind) = offloadable_kind(k.kernel) {
                    samples.push(TrainingSample {
                        kind,
                        size: k.size,
                        cpu_millis: k.millis,
                    });
                }
            }
        }
        samples
    }

    /// Trains the runtime scheduler on the head of the log.
    pub fn train_scheduler(&self, log: &RunLog, train_fraction: f64) -> Option<RuntimeScheduler> {
        RuntimeScheduler::train(&self.training_samples(log, train_fraction))
    }

    /// An in-loop engine sharing this executor's platform model: attach
    /// it to a [`SessionBuilder`](crate::builder::SessionBuilder) and
    /// every live frame gets the decision `replay` would make post hoc.
    pub fn in_loop_engine(&self, policy: OffloadPolicy) -> ScheduledEngine {
        ScheduledEngine::from_model(self.model.clone(), policy)
    }

    /// Replays a measured run under an offload policy, by feeding each
    /// record through the same [`ScheduledEngine`] code path a live
    /// session runs.
    pub fn replay(&self, log: &RunLog, policy: &OffloadPolicy) -> AcceleratedRun {
        let mut engine = self.in_loop_engine(policy.clone());
        let frames = log
            .records
            .iter()
            .map(|r| {
                engine
                    .execute_frame(&FrameContext {
                        stats: &r.frontend_stats,
                        timing: &r.frontend_timing,
                        backend_kernels: &r.backend_kernels,
                        // Health-armed logs replay with the same fault-
                        // aware pricing the live session applied.
                        health: r.health,
                    })
                    .expect("a scheduled engine reports every frame")
                    .accelerated_frame()
            })
            .collect();
        AcceleratedRun { frames }
    }

    /// Baseline (all-CPU) energy per frame for the measured log (joules).
    pub fn baseline_energy(&self, log: &RunLog) -> f64 {
        if log.is_empty() {
            return 0.0;
        }
        log.records
            .iter()
            .map(|r| self.model.baseline_frame_energy(r.total_ms() * 1e-3).total())
            .sum::<f64>()
            / log.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::FrameRecord;
    use crate::mode::Mode;
    use eudoxus_backend::{Kernel, KernelSample};
    use eudoxus_frontend::{FrameStats, FrontendTiming};
    use eudoxus_geometry::Pose;
    use eudoxus_stream::Environment;
    use std::time::Duration;

    /// A synthetic measured log: heavy frontend, sizable Kalman gains.
    fn synthetic_log(frames: usize) -> RunLog {
        let mut log = RunLog::new();
        for i in 0..frames {
            let rows = 40 + (i % 50) * 4;
            log.records.push(FrameRecord {
                index: i,
                t: i as f64 * 0.1,
                environment: Environment::OutdoorUnknown,
                mode: Mode::Vio,
                frontend_timing: FrontendTiming {
                    detection: Duration::from_millis(30),
                    filtering: Duration::from_millis(20),
                    description: Duration::from_millis(15),
                    stereo: Duration::from_millis(25),
                    temporal: Duration::from_millis(10),
                },
                frontend_stats: FrameStats {
                    keypoints_left: 350,
                    keypoints_right: 350,
                    stereo_matches: 260,
                    tracks_continued: 280,
                    tracks_spawned: 40,
                    tracks_lost: 30,
                },
                backend_kernels: vec![
                    KernelSample {
                        kernel: Kernel::ImuIntegration,
                        millis: 2.0,
                        size: 20,
                    },
                    KernelSample {
                        kernel: Kernel::KalmanGain,
                        // Quadratic CPU cost in rows.
                        millis: 0.5 + 1.2e-3 * (rows * rows) as f64,
                        size: rows,
                    },
                ],
                pose: Pose::identity(),
                ground_truth: Pose::identity(),
                has_ground_truth: true,
                tracking: true,
                execution: None,
                directive: None,
                health: None,
            });
        }
        log
    }

    #[test]
    fn acceleration_beats_measured_baseline() {
        let log = synthetic_log(40);
        let exec = Executor::new(Platform::edx_car());
        let sched = exec.train_scheduler(&log, 0.25).expect("trainable");
        let run = exec.replay(&log, &OffloadPolicy::Scheduled(sched));
        let baseline_mean = log.latency_summary(None).mean;
        let accel_mean = run.summary().mean;
        assert!(
            accel_mean < baseline_mean,
            "accel {accel_mean} ms vs baseline {baseline_mean} ms"
        );
    }

    #[test]
    fn pipelining_improves_throughput() {
        let log = synthetic_log(20);
        let exec = Executor::new(Platform::edx_car());
        let run = exec.replay(&log, &OffloadPolicy::Always);
        assert!(run.fps_pipelined() > run.fps_unpipelined());
    }

    #[test]
    fn scheduler_offloads_large_kernels_only() {
        let log = synthetic_log(60);
        let exec = Executor::new(Platform::edx_car());
        let sched = exec.train_scheduler(&log, 0.25).expect("trainable");
        let run = exec.replay(&log, &OffloadPolicy::Scheduled(sched));
        let rate = run.offload_rate();
        assert!(rate > 0.3, "offload rate {rate}");
        // Scheduled must be at least as fast as both extremes.
        let always = exec.replay(&log, &OffloadPolicy::Always);
        let never = exec.replay(&log, &OffloadPolicy::Never);
        let s = run.summary().mean;
        assert!(s <= always.summary().mean + 1e-9);
        assert!(s <= never.summary().mean + 1e-9);
    }

    #[test]
    fn energy_drops_with_acceleration() {
        let log = synthetic_log(30);
        let exec = Executor::new(Platform::edx_car());
        let run = exec.replay(&log, &OffloadPolicy::Always);
        let baseline_j = exec.baseline_energy(&log);
        assert!(
            run.mean_energy() < baseline_j,
            "accel {} J vs baseline {} J",
            run.mean_energy(),
            baseline_j
        );
    }

    #[test]
    fn never_policy_keeps_cpu_times() {
        let log = synthetic_log(10);
        let exec = Executor::new(Platform::edx_drone());
        let run = exec.replay(&log, &OffloadPolicy::Never);
        assert_eq!(run.offload_rate(), 0.0);
        // Backend times must equal the measured CPU times.
        for (f, r) in run.frames.iter().zip(&log.records) {
            assert!((f.backend_ms - r.backend_ms()).abs() < 1e-9);
        }
    }

    #[test]
    fn replay_equals_in_loop_engine_on_the_same_log() {
        // The delegation contract: replay(log) is literally the engine
        // run over the log's records — every modeled number matches at
        // the bit level.
        let log = synthetic_log(25);
        let exec = Executor::new(Platform::edx_drone());
        let sched = exec.train_scheduler(&log, 0.25).expect("trainable");
        let policy = OffloadPolicy::Scheduled(sched);
        let replayed = exec.replay(&log, &policy);
        let mut engine = exec.in_loop_engine(policy);
        for (frame, record) in replayed.frames.iter().zip(&log.records) {
            let report = engine
                .execute_frame(&FrameContext {
                    stats: &record.frontend_stats,
                    timing: &record.frontend_timing,
                    backend_kernels: &record.backend_kernels,
                    health: record.health,
                })
                .unwrap();
            assert_eq!(report.frontend_ms.to_bits(), frame.frontend_ms.to_bits());
            assert_eq!(report.backend_ms.to_bits(), frame.backend_ms.to_bits());
            assert_eq!(report.offloaded, frame.offloaded);
            assert_eq!(report.offloadable, frame.offloadable);
            assert_eq!(
                report.energy.total().to_bits(),
                frame.energy.total().to_bits()
            );
        }
    }
}
