//! Accelerated execution: replaying a measured CPU run through the
//! accelerator models.
//!
//! The evaluation methodology mirrors the paper's: the *baseline* numbers
//! are real measurements of the software pipeline; the *accelerated*
//! numbers replay each frame's workload through the analytical FPGA models
//! — frontend task pipeline, backend matrix engine, runtime offload
//! scheduler, and the energy model. This module produces the data behind
//! Figs. 17–21 and the scheduler study of Sec. VII-F.

use crate::instrument::RunLog;
use crate::stats::Summary;
use eudoxus_accel::{
    BackendEngine, BackendKernelKind, EnergyModel, FrameEnergy, FrameWorkload, FrontendEngine,
    KernelDims, Platform, RuntimeScheduler, TrainingSample,
};
use eudoxus_backend::Kernel;

/// Offload policy for the backend kernels.
#[derive(Debug, Clone)]
pub enum OffloadPolicy {
    /// Never offload (backend stays on the host CPU).
    Never,
    /// Always offload the three accelerator kernels.
    Always,
    /// Use the trained runtime scheduler (paper Sec. VI-B).
    Scheduled(RuntimeScheduler),
}

/// One frame replayed through the accelerator.
#[derive(Debug, Clone, Copy)]
pub struct AcceleratedFrame {
    /// Modeled frontend latency (ms).
    pub frontend_ms: f64,
    /// Backend latency after offload decisions (ms).
    pub backend_ms: f64,
    /// Offloadable kernel invocations this frame.
    pub offloadable: usize,
    /// How many were actually offloaded.
    pub offloaded: usize,
    /// Per-frame energy.
    pub energy: FrameEnergy,
}

impl AcceleratedFrame {
    /// End-to-end (non-pipelined) frame latency (ms).
    pub fn total_ms(&self) -> f64 {
        self.frontend_ms + self.backend_ms
    }
}

/// A replayed run.
#[derive(Debug, Clone)]
pub struct AcceleratedRun {
    /// Per-frame results, in order.
    pub frames: Vec<AcceleratedFrame>,
}

impl AcceleratedRun {
    /// Total latencies (ms).
    pub fn total_ms(&self) -> Vec<f64> {
        self.frames.iter().map(|f| f.total_ms()).collect()
    }

    /// Latency summary.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.total_ms())
    }

    /// Throughput without frontend↔backend pipelining.
    pub fn fps_unpipelined(&self) -> f64 {
        let s = self.summary();
        if s.mean <= 0.0 {
            0.0
        } else {
            1000.0 / s.mean
        }
    }

    /// Throughput with the frontend of frame `i+1` overlapping the backend
    /// of frame `i` (paper Fig. 18 "w/ Pipelining"): the frame period is
    /// the slower of the two stages.
    pub fn fps_pipelined(&self) -> f64 {
        let periods: Vec<f64> = self
            .frames
            .iter()
            .map(|f| f.frontend_ms.max(f.backend_ms))
            .collect();
        let s = Summary::of(&periods);
        if s.mean <= 0.0 {
            0.0
        } else {
            1000.0 / s.mean
        }
    }

    /// Mean energy per frame (joules).
    pub fn mean_energy(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().map(|f| f.energy.total()).sum::<f64>() / self.frames.len() as f64
    }

    /// Fraction of offloadable kernels actually offloaded.
    pub fn offload_rate(&self) -> f64 {
        let total: usize = self.frames.iter().map(|f| f.offloadable).sum();
        let off: usize = self.frames.iter().map(|f| f.offloaded).sum();
        if total == 0 {
            0.0
        } else {
            off as f64 / total as f64
        }
    }
}

/// Maps a measured backend kernel onto the accelerator's offloadable kind.
fn offloadable_kind(kernel: Kernel) -> Option<BackendKernelKind> {
    match kernel {
        Kernel::KalmanGain => Some(BackendKernelKind::KalmanGain),
        Kernel::Projection => Some(BackendKernelKind::Projection),
        Kernel::Marginalization => Some(BackendKernelKind::Marginalization),
        _ => None,
    }
}

/// The accelerated executor for one platform.
#[derive(Debug, Clone)]
pub struct Executor {
    platform: Platform,
    frontend: FrontendEngine,
    backend: BackendEngine,
    energy: EnergyModel,
    /// MSCKF error-state dimension used to size Kalman-gain offloads.
    msckf_state_dim: usize,
}

impl Executor {
    /// Creates an executor for a platform.
    pub fn new(platform: Platform) -> Self {
        Executor {
            platform,
            frontend: FrontendEngine::new(platform),
            backend: BackendEngine::new(platform),
            energy: EnergyModel::new(platform),
            msckf_state_dim: 15 + 6 * 30,
        }
    }

    /// The platform being modeled.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The backend engine (scheduler experiments need direct access).
    pub fn backend_engine(&self) -> &BackendEngine {
        &self.backend
    }

    /// Builds scheduler training samples from the first
    /// `train_fraction` of the log (the paper trains on 25 % of frames,
    /// Sec. VII-A).
    pub fn training_samples(&self, log: &RunLog, train_fraction: f64) -> Vec<TrainingSample> {
        let n_train = ((log.len() as f64) * train_fraction).ceil() as usize;
        let mut samples = Vec::new();
        for r in log.records.iter().take(n_train) {
            for k in &r.backend_kernels {
                if let Some(kind) = offloadable_kind(k.kernel) {
                    samples.push(TrainingSample {
                        kind,
                        size: k.size,
                        cpu_millis: k.millis,
                    });
                }
            }
        }
        samples
    }

    /// Trains the runtime scheduler on the head of the log.
    pub fn train_scheduler(&self, log: &RunLog, train_fraction: f64) -> Option<RuntimeScheduler> {
        RuntimeScheduler::train(&self.training_samples(log, train_fraction))
    }

    /// Accelerator dimensions for one measured kernel sample.
    fn dims_for(&self, kind: BackendKernelKind, size: usize) -> KernelDims {
        match kind {
            BackendKernelKind::Projection => KernelDims::Projection { map_points: size },
            BackendKernelKind::KalmanGain => KernelDims::KalmanGain {
                rows: size,
                state: self.msckf_state_dim,
            },
            BackendKernelKind::Marginalization => KernelDims::Marginalization {
                // The recorded size is the marginalized block dimension
                // 3k + 6.
                landmarks: size.saturating_sub(6) / 3,
                remaining: 6 * 5,
            },
        }
    }

    /// Replays a measured run under an offload policy.
    pub fn replay(&self, log: &RunLog, policy: &OffloadPolicy) -> AcceleratedRun {
        let frames = log
            .records
            .iter()
            .map(|r| {
                // Frontend through the accelerator.
                let workload = FrameWorkload {
                    pixels: self.platform.pixels(),
                    keypoints_left: r.frontend_stats.keypoints_left,
                    keypoints_right: r.frontend_stats.keypoints_right,
                    stereo_matches: r.frontend_stats.stereo_matches,
                    tracks: r.frontend_stats.tracks_continued + r.frontend_stats.tracks_lost,
                    disparity_range: if self.platform.resolution.0 >= 1280 {
                        200
                    } else {
                        100
                    },
                };
                let fe = self.frontend.latency(&workload);
                let frontend_ms = fe.total() * 1e3;

                // Backend: offload decisions per kernel sample.
                let mut backend_ms = 0.0;
                let mut fpga_backend_s = 0.0;
                let mut host_backend_s = 0.0;
                let mut offloadable = 0usize;
                let mut offloaded = 0usize;
                for k in &r.backend_kernels {
                    match offloadable_kind(k.kernel) {
                        Some(kind) => {
                            offloadable += 1;
                            let dims = self.dims_for(kind, k.size);
                            let accel_ms = self.backend.offload_time(&dims) * 1e3;
                            let do_offload = match policy {
                                OffloadPolicy::Never => false,
                                OffloadPolicy::Always => true,
                                OffloadPolicy::Scheduled(s) => {
                                    s.decide(&self.backend, &dims).is_offload()
                                }
                            };
                            if do_offload {
                                offloaded += 1;
                                backend_ms += accel_ms;
                                fpga_backend_s += accel_ms * 1e-3;
                            } else {
                                backend_ms += k.millis;
                                host_backend_s += k.millis * 1e-3;
                            }
                        }
                        None => {
                            backend_ms += k.millis;
                            host_backend_s += k.millis * 1e-3;
                        }
                    }
                }

                let frame_s = (frontend_ms + backend_ms) * 1e-3;
                let fpga_s = fe.total() + fpga_backend_s;
                let energy = self
                    .energy
                    .accelerated_frame(frame_s, fpga_s, host_backend_s);
                AcceleratedFrame {
                    frontend_ms,
                    backend_ms,
                    offloadable,
                    offloaded,
                    energy,
                }
            })
            .collect();
        AcceleratedRun { frames }
    }

    /// Baseline (all-CPU) energy per frame for the measured log (joules).
    pub fn baseline_energy(&self, log: &RunLog) -> f64 {
        if log.is_empty() {
            return 0.0;
        }
        log.records
            .iter()
            .map(|r| self.energy.baseline_frame(r.total_ms() * 1e-3).total())
            .sum::<f64>()
            / log.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::FrameRecord;
    use crate::mode::Mode;
    use eudoxus_backend::KernelSample;
    use eudoxus_frontend::{FrameStats, FrontendTiming};
    use eudoxus_geometry::Pose;
    use eudoxus_stream::Environment;
    use std::time::Duration;

    /// A synthetic measured log: heavy frontend, sizable Kalman gains.
    fn synthetic_log(frames: usize) -> RunLog {
        let mut log = RunLog::new();
        for i in 0..frames {
            let rows = 40 + (i % 50) * 4;
            log.records.push(FrameRecord {
                index: i,
                t: i as f64 * 0.1,
                environment: Environment::OutdoorUnknown,
                mode: Mode::Vio,
                frontend_timing: FrontendTiming {
                    detection: Duration::from_millis(30),
                    filtering: Duration::from_millis(20),
                    description: Duration::from_millis(15),
                    stereo: Duration::from_millis(25),
                    temporal: Duration::from_millis(10),
                },
                frontend_stats: FrameStats {
                    keypoints_left: 350,
                    keypoints_right: 350,
                    stereo_matches: 260,
                    tracks_continued: 280,
                    tracks_spawned: 40,
                    tracks_lost: 30,
                },
                backend_kernels: vec![
                    KernelSample {
                        kernel: Kernel::ImuIntegration,
                        millis: 2.0,
                        size: 20,
                    },
                    KernelSample {
                        kernel: Kernel::KalmanGain,
                        // Quadratic CPU cost in rows.
                        millis: 0.5 + 1.2e-3 * (rows * rows) as f64,
                        size: rows,
                    },
                ],
                pose: Pose::identity(),
                ground_truth: Pose::identity(),
                has_ground_truth: true,
                tracking: true,
            });
        }
        log
    }

    #[test]
    fn acceleration_beats_measured_baseline() {
        let log = synthetic_log(40);
        let exec = Executor::new(Platform::edx_car());
        let sched = exec.train_scheduler(&log, 0.25).expect("trainable");
        let run = exec.replay(&log, &OffloadPolicy::Scheduled(sched));
        let baseline_mean = log.latency_summary(None).mean;
        let accel_mean = run.summary().mean;
        assert!(
            accel_mean < baseline_mean,
            "accel {accel_mean} ms vs baseline {baseline_mean} ms"
        );
    }

    #[test]
    fn pipelining_improves_throughput() {
        let log = synthetic_log(20);
        let exec = Executor::new(Platform::edx_car());
        let run = exec.replay(&log, &OffloadPolicy::Always);
        assert!(run.fps_pipelined() > run.fps_unpipelined());
    }

    #[test]
    fn scheduler_offloads_large_kernels_only() {
        let log = synthetic_log(60);
        let exec = Executor::new(Platform::edx_car());
        let sched = exec.train_scheduler(&log, 0.25).expect("trainable");
        let run = exec.replay(&log, &OffloadPolicy::Scheduled(sched));
        let rate = run.offload_rate();
        assert!(rate > 0.3, "offload rate {rate}");
        // Scheduled must be at least as fast as both extremes.
        let always = exec.replay(&log, &OffloadPolicy::Always);
        let never = exec.replay(&log, &OffloadPolicy::Never);
        let s = run.summary().mean;
        assert!(s <= always.summary().mean + 1e-9);
        assert!(s <= never.summary().mean + 1e-9);
    }

    #[test]
    fn energy_drops_with_acceleration() {
        let log = synthetic_log(30);
        let exec = Executor::new(Platform::edx_car());
        let run = exec.replay(&log, &OffloadPolicy::Always);
        let baseline_j = exec.baseline_energy(&log);
        assert!(
            run.mean_energy() < baseline_j,
            "accel {} J vs baseline {} J",
            run.mean_energy(),
            baseline_j
        );
    }

    #[test]
    fn never_policy_keeps_cpu_times() {
        let log = synthetic_log(10);
        let exec = Executor::new(Platform::edx_drone());
        let run = exec.replay(&log, &OffloadPolicy::Never);
        assert_eq!(run.offload_rate(), 0.0);
        // Backend times must equal the measured CPU times.
        for (f, r) in run.frames.iter().zip(&log.records) {
            assert!((f.backend_ms - r.backend_ms()).abs() < 1e-9);
        }
    }
}
