//! In-session health monitoring and graceful degradation.
//!
//! A clean stream keeps the estimators fed; a degraded one (dropped
//! frames, dust blackouts, drifting IMU — see `eudoxus_faults`) starves
//! them. This module is the session's survival reflex: a
//! [`HealthMonitor`] folds per-frame vitals (tracked features, frame
//! gaps, pose innovation) through a [`DegradationState`] machine, and
//! `LocalizationSession` acts on the verdict — when vision starves it
//! stops trusting the visual backend and **dead-reckons** on internal
//! sensors only (IMU via `Backend::dead_reckon`), and when vision
//! returns it re-anchors the estimators at the dead-reckoned pose and
//! re-enters through the registry fallback chain instead of resuming
//! stale tracks. The production pattern is the bulldozer
//! self-localization result: when exteroception is useless, survive on
//! internal sensors and re-anchor on recovery.
//!
//! Monitoring is **opt-in** (`SessionBuilder::health` /
//! `SessionBuilder::faults`): sessions without it behave — bit for
//! bit — as before.
//!
//! The state machine:
//!
//! ```text
//!              unhealthy                 starved
//!   Nominal ←──────────→ Degraded ─────────────────┐
//!      ↑        healthy      │ starved              ↓
//!      │                     └─────────────→ DeadReckoning ←┐
//!      │ recovery_frames                            │       │ starved
//!      │ healthy in a row                   vision  │       │ (relapse)
//!      └──────────── Recovering ←───────── returns ─┘       │
//!                        └──────────────────────────────────┘
//! ```

use std::fmt;

/// Where the session sits on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradationState {
    /// Vitals healthy; estimates fully trusted.
    Nominal,
    /// Vitals below par (thin tracking, frame gaps, jumpy innovation)
    /// but vision still usable. A label, not a behavior change: the
    /// normal backend keeps serving.
    Degraded,
    /// Vision starved: the session propagates pose from internal
    /// sensors only (`Backend::dead_reckon`) and ignores the visual
    /// estimators.
    DeadReckoning,
    /// Vision returned after dead-reckoning; the estimators were
    /// re-anchored and must prove themselves healthy for
    /// [`HealthConfig::recovery_frames`] consecutive frames before the
    /// session reads [`Nominal`](DegradationState::Nominal) again.
    Recovering,
}

impl fmt::Display for DegradationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradationState::Nominal => "nominal",
            DegradationState::Degraded => "degraded",
            DegradationState::DeadReckoning => "dead-reckoning",
            DegradationState::Recovering => "recovering",
        })
    }
}

/// Thresholds the [`HealthMonitor`] judges vitals against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Below this many tracked features the frame counts as *starved*
    /// (vision unusable → dead-reckon).
    pub starve_tracks: usize,
    /// Below this many tracked features the frame counts as *degraded*
    /// (vision thin but usable).
    pub degraded_tracks: usize,
    /// An inter-frame gap (seconds) above this is unhealthy — frames
    /// are being dropped upstream.
    pub max_frame_gap: f64,
    /// A frame-to-frame pose jump (meters) above this is unhealthy —
    /// the estimator is not to be trusted blindly.
    pub max_innovation: f64,
    /// Consecutive healthy frames required to leave
    /// [`Recovering`](DegradationState::Recovering).
    pub recovery_frames: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            starve_tracks: 4,
            degraded_tracks: 24,
            // Clean streams run ~10 Hz; several consecutive drops show
            // up as a gap well past this.
            max_frame_gap: 0.5,
            max_innovation: 1.0,
            recovery_frames: 3,
        }
    }
}

/// Per-frame vitals the monitor judges (all derived from event
/// timestamps and estimator outputs — deterministic, never wall-clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameVitals {
    /// Features the frontend delivered this frame.
    pub tracked: usize,
    /// Tracks continued from the previous frame (temporal inliers).
    pub inliers: usize,
    /// Seconds since the previous served frame (0 on the first frame of
    /// a segment).
    pub frame_gap: f64,
    /// The *previous* frame's pose jump (meters) — a lag-one residual:
    /// this frame's own estimate does not exist yet when the monitor
    /// runs.
    pub innovation: f64,
}

/// The health verdict attached to a frame record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthReport {
    /// State after folding this frame's vitals.
    pub state: DegradationState,
    /// The vitals that produced it.
    pub vitals: FrameVitals,
    /// Whether the pose came from internal-sensor dead-reckoning rather
    /// than the visual backend.
    pub dead_reckoned: bool,
    /// Whether any estimator served the frame at all (`false` when the
    /// registry had no backend for the mode — the pose is held, not
    /// estimated).
    pub served: bool,
}

/// The per-frame state machine: fold vitals in, read the
/// [`DegradationState`] out. Pure and deterministic — the state
/// trajectory is a function of the vitals sequence alone.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    state: DegradationState,
    healthy_streak: u32,
}

impl HealthMonitor {
    /// A monitor in [`Nominal`](DegradationState::Nominal) state.
    pub fn new(config: HealthConfig) -> Self {
        HealthMonitor {
            config,
            state: DegradationState::Nominal,
            healthy_streak: 0,
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// The current state.
    pub fn state(&self) -> DegradationState {
        self.state
    }

    /// Back to [`Nominal`](DegradationState::Nominal) (new segment: the
    /// estimators were re-initialized anyway).
    pub fn reset(&mut self) {
        self.state = DegradationState::Nominal;
        self.healthy_streak = 0;
    }

    /// Folds one frame's vitals; returns the state now in force (the
    /// state that governs *this* frame's serving).
    pub fn observe(&mut self, vitals: &FrameVitals) -> DegradationState {
        let c = &self.config;
        let starved = vitals.tracked < c.starve_tracks;
        let unhealthy = starved
            || vitals.tracked < c.degraded_tracks
            || vitals.frame_gap > c.max_frame_gap
            || vitals.innovation > c.max_innovation;
        self.state = match self.state {
            DegradationState::Nominal | DegradationState::Degraded => {
                if starved {
                    DegradationState::DeadReckoning
                } else if unhealthy {
                    DegradationState::Degraded
                } else {
                    DegradationState::Nominal
                }
            }
            DegradationState::DeadReckoning | DegradationState::Recovering => {
                if starved {
                    // Still (or again) blind: a Recovering → DeadReckoning
                    // transition is a relapse.
                    self.healthy_streak = 0;
                    DegradationState::DeadReckoning
                } else if unhealthy {
                    // Vision is back but thin/jumpy: keep probation going,
                    // restart the streak.
                    self.healthy_streak = 0;
                    DegradationState::Recovering
                } else {
                    self.healthy_streak += 1;
                    if self.healthy_streak >= c.recovery_frames {
                        self.healthy_streak = 0;
                        DegradationState::Nominal
                    } else {
                        DegradationState::Recovering
                    }
                }
            }
        };
        self.state
    }
}

/// Cumulative degradation accounting for one session — the
/// serving-layer view of how rough a stream has been (surfaced per
/// agent through `SessionManager::ingest_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionHealthStats {
    /// Image frames processed (served or not).
    pub frames: u64,
    /// Frames judged [`Degraded`](DegradationState::Degraded).
    pub degraded_frames: u64,
    /// Frames served by internal-sensor dead-reckoning.
    pub dead_reckoned_frames: u64,
    /// Frames spent in recovery probation.
    pub recovering_frames: u64,
    /// Frames no registered backend could serve (pose held, counted —
    /// not a panic).
    pub unserved_frames: u64,
    /// Events swallowed by an attached fault process (never reached the
    /// estimators).
    pub faulted_drops: u64,
    /// DeadReckoning → Recovering transitions (vision came back).
    pub recoveries: u64,
    /// Recovering → DeadReckoning transitions (vision went away again
    /// before probation completed).
    pub relapses: u64,
    /// Frames served by a mode other than the one the session would
    /// normally use for their environment (degradation walked the
    /// registry fallback chain past the effective preferred mode).
    pub fallback_frames: u64,
}

impl eudoxus_telemetry::Telemetry for SessionHealthStats {
    fn publish(&self, reg: &mut eudoxus_telemetry::CounterRegistry) {
        reg.counter("frames", self.frames);
        reg.counter("degraded_frames", self.degraded_frames);
        reg.counter("dead_reckoned_frames", self.dead_reckoned_frames);
        reg.counter("recovering_frames", self.recovering_frames);
        reg.counter("unserved_frames", self.unserved_frames);
        reg.counter("faulted_drops", self.faulted_drops);
        reg.counter("recoveries", self.recoveries);
        reg.counter("relapses", self.relapses);
        reg.counter("fallback_frames", self.fallback_frames);
    }
}

impl fmt::Display for SessionHealthStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} frames: {} degraded, {} dead-reckoned, {} recovering, \
             {} unserved, {} fallback; {} recoveries, {} relapses, \
             {} events faulted away",
            self.frames,
            self.degraded_frames,
            self.dead_reckoned_frames,
            self.recovering_frames,
            self.unserved_frames,
            self.fallback_frames,
            self.recoveries,
            self.relapses,
            self.faulted_drops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vitals(tracked: usize) -> FrameVitals {
        FrameVitals {
            tracked,
            inliers: tracked,
            frame_gap: 0.1,
            innovation: 0.01,
        }
    }

    #[test]
    fn nominal_stays_nominal_on_healthy_vitals() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        for _ in 0..10 {
            assert_eq!(m.observe(&vitals(100)), DegradationState::Nominal);
        }
    }

    #[test]
    fn thin_tracking_degrades_without_dead_reckoning() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        assert_eq!(m.observe(&vitals(10)), DegradationState::Degraded);
        assert_eq!(m.observe(&vitals(100)), DegradationState::Nominal);
    }

    #[test]
    fn starvation_dead_reckons_then_recovers_after_streak() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        assert_eq!(m.observe(&vitals(0)), DegradationState::DeadReckoning);
        assert_eq!(m.observe(&vitals(0)), DegradationState::DeadReckoning);
        // Vision returns: probation, then nominal after 3 healthy frames.
        assert_eq!(m.observe(&vitals(100)), DegradationState::Recovering);
        assert_eq!(m.observe(&vitals(100)), DegradationState::Recovering);
        assert_eq!(m.observe(&vitals(100)), DegradationState::Nominal);
    }

    #[test]
    fn relapse_returns_to_dead_reckoning_and_restarts_probation() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.observe(&vitals(0));
        assert_eq!(m.observe(&vitals(100)), DegradationState::Recovering);
        // Blind again mid-probation: relapse.
        assert_eq!(m.observe(&vitals(0)), DegradationState::DeadReckoning);
        // The streak restarted: three more healthy frames needed.
        assert_eq!(m.observe(&vitals(100)), DegradationState::Recovering);
        assert_eq!(m.observe(&vitals(100)), DegradationState::Recovering);
        assert_eq!(m.observe(&vitals(100)), DegradationState::Nominal);
    }

    #[test]
    fn unhealthy_probation_frames_do_not_count_toward_the_streak() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.observe(&vitals(0));
        m.observe(&vitals(100));
        m.observe(&vitals(100));
        // A thin frame resets the streak without relapsing.
        assert_eq!(m.observe(&vitals(10)), DegradationState::Recovering);
        m.observe(&vitals(100));
        m.observe(&vitals(100));
        assert_eq!(m.observe(&vitals(100)), DegradationState::Nominal);
    }

    #[test]
    fn gaps_and_innovation_degrade_but_do_not_starve() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        let gap = FrameVitals {
            frame_gap: 2.0,
            ..vitals(100)
        };
        assert_eq!(m.observe(&gap), DegradationState::Degraded);
        let jump = FrameVitals {
            innovation: 5.0,
            ..vitals(100)
        };
        assert_eq!(m.observe(&jump), DegradationState::Degraded);
        assert_eq!(m.observe(&vitals(100)), DegradationState::Nominal);
    }

    #[test]
    fn reset_returns_to_nominal() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.observe(&vitals(0));
        assert_eq!(m.state(), DegradationState::DeadReckoning);
        m.reset();
        assert_eq!(m.state(), DegradationState::Nominal);
    }
}
