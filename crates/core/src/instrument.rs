//! Per-frame instrumentation records — the raw material of every
//! characterization figure.

use crate::control::{AdmissionStats, ThrottleStats};
use crate::engine::{AcceleratedRun, ExecutionReport};
use crate::health::{HealthReport, SessionHealthStats};
use crate::metrics;
use crate::mode::Mode;
use crate::stats::Summary;
use eudoxus_backend::{Kernel, KernelSample};
use eudoxus_frontend::{FrameDirective, FrameStats, FrontendTiming};
use eudoxus_geometry::Pose;
use eudoxus_stream::{Environment, IngestCounters};

/// Ingestion health of one agent at a point in time: queue depth against
/// its bound, plus the cumulative backpressure counters. Produced by
/// `SessionManager::ingest_stats`; a serving layer alarms on growing
/// depth (consumer too slow) or growing drop/defer counts (producer too
/// fast for the configured bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestSnapshot {
    /// Agent id the queue belongs to.
    pub agent: String,
    /// Events currently queued.
    pub queued: usize,
    /// Queue bound (`usize::MAX` when unbounded).
    pub capacity: usize,
    /// Cumulative admission accounting (accepted, frames/events dropped,
    /// deferred, high watermark).
    pub counters: IngestCounters,
    /// The session's degradation accounting (all zeros when health
    /// monitoring is not enabled for the agent).
    pub health: SessionHealthStats,
    /// Admission-control accounting: image frames offered, admitted,
    /// dropped by degrade-mode decimation, and shed outright (all
    /// zeros while admission control is unarmed). The counters
    /// conserve: `offered == admitted + degraded + shed`.
    pub admission: AdmissionStats,
    /// The session's throttle-loop accounting (all zeros while the
    /// loop is unarmed).
    pub throttle: ThrottleStats,
    /// Times the agent's queue was drained on the polling thread
    /// instead of a parallel worker (`poll_parallel` keeps faulted
    /// agents sequential) — nonzero means this agent cost the fleet
    /// parallelism.
    pub sequential_drains: u64,
}

impl eudoxus_telemetry::Telemetry for IngestSnapshot {
    fn publish(&self, reg: &mut eudoxus_telemetry::CounterRegistry) {
        reg.counter("queued", self.queued as u64);
        if self.capacity != usize::MAX {
            reg.counter("capacity", self.capacity as u64);
        }
        reg.counter("sequential_drains", self.sequential_drains);
        reg.scoped("ingest", |r| self.counters.publish(r));
        reg.scoped("health", |r| self.health.publish(r));
        reg.scoped("admission", |r| self.admission.publish(r));
        reg.scoped("throttle", |r| self.throttle.publish(r));
    }
}

impl std::fmt::Display for IngestSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}/{} queued (peak {}), {} accepted, {} dropped ({} frames), {} deferred",
            self.agent,
            self.queued,
            if self.capacity == usize::MAX {
                "∞".to_string()
            } else {
                self.capacity.to_string()
            },
            self.counters.high_watermark,
            self.counters.accepted,
            self.counters.dropped(),
            self.counters.frames_dropped,
            self.counters.deferred,
        )
    }
}

/// Everything recorded for one processed frame.
#[derive(Debug, Clone)]
pub struct FrameRecord {
    /// Frame index within the dataset.
    pub index: usize,
    /// Capture timestamp (seconds).
    pub t: f64,
    /// Environment label.
    pub environment: Environment,
    /// Backend mode that ran.
    pub mode: Mode,
    /// Frontend per-task wall-clock times.
    pub frontend_timing: FrontendTiming,
    /// Frontend workload counters (feeds the accelerator model).
    pub frontend_stats: FrameStats,
    /// Backend kernel samples (kernel, ms, workload size).
    pub backend_kernels: Vec<KernelSample>,
    /// The in-loop execution engine's verdict for this frame (chosen
    /// target, modeled accelerated latency, energy). `None` under the
    /// default passthrough [`CpuEngine`](crate::engine::CpuEngine);
    /// attach a modeled engine via
    /// [`SessionBuilder::engine`](crate::builder::SessionBuilder::engine)
    /// to populate it.
    pub execution: Option<ExecutionReport>,
    /// The throttle directive in force for *this* frame's frontend
    /// work (issued by the control loop off the previous frame's
    /// report). `None` when the loop is unarmed or unthrottled — the
    /// frontend then ran at its configured budgets.
    pub directive: Option<FrameDirective>,
    /// Estimated pose.
    pub pose: Pose,
    /// Ground-truth pose. Only meaningful when
    /// [`has_ground_truth`](Self::has_ground_truth) is set; live streams
    /// without a reference store the estimate here.
    pub ground_truth: Pose,
    /// Whether the stream supplied a reference pose for this frame.
    /// Error metrics skip frames without one.
    pub has_ground_truth: bool,
    /// Whether the backend reported itself tracking.
    pub tracking: bool,
    /// The health monitor's verdict for this frame (degradation state,
    /// vitals, whether the pose was dead-reckoned). `None` when health
    /// monitoring is not enabled — the default.
    pub health: Option<HealthReport>,
}

impl FrameRecord {
    /// Frontend milliseconds.
    pub fn frontend_ms(&self) -> f64 {
        self.frontend_timing.total().as_secs_f64() * 1e3
    }

    /// Backend milliseconds (sum of kernel samples).
    pub fn backend_ms(&self) -> f64 {
        self.backend_kernels.iter().map(|k| k.millis).sum()
    }

    /// End-to-end frame milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.frontend_ms() + self.backend_ms()
    }

    /// Milliseconds attributed to one kernel this frame.
    pub fn kernel_ms(&self, kernel: Kernel) -> f64 {
        self.backend_kernels
            .iter()
            .filter(|k| k.kernel == kernel)
            .map(|k| k.millis)
            .sum()
    }

    /// Translational error against ground truth (meters); `NaN` when the
    /// frame carries no reference pose, matching the [`RunLog`] metrics.
    pub fn translation_error(&self) -> f64 {
        if !self.has_ground_truth {
            return f64::NAN;
        }
        self.pose.translation_distance(self.ground_truth)
    }
}

/// A complete instrumented run.
#[derive(Debug, Clone, Default)]
pub struct RunLog {
    /// Per-frame records in order.
    pub records: Vec<FrameRecord>,
}

impl RunLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RunLog::default()
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records for one mode only.
    pub fn frames_in_mode(&self, mode: Mode) -> Vec<&FrameRecord> {
        self.records.iter().filter(|r| r.mode == mode).collect()
    }

    /// Frontend latencies (ms) for all frames, or one mode.
    pub fn frontend_ms(&self, mode: Option<Mode>) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| mode.is_none_or(|m| r.mode == m))
            .map(|r| r.frontend_ms())
            .collect()
    }

    /// Backend latencies (ms).
    pub fn backend_ms(&self, mode: Option<Mode>) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| mode.is_none_or(|m| r.mode == m))
            .map(|r| r.backend_ms())
            .collect()
    }

    /// Total latencies (ms).
    pub fn total_ms(&self, mode: Option<Mode>) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| mode.is_none_or(|m| r.mode == m))
            .map(|r| r.total_ms())
            .collect()
    }

    /// Total milliseconds per kernel across the run, restricted to a mode.
    pub fn kernel_totals(&self, mode: Mode) -> Vec<(Kernel, f64)> {
        let mut totals: std::collections::HashMap<Kernel, f64> = std::collections::HashMap::new();
        for r in self.records.iter().filter(|r| r.mode == mode) {
            for k in &r.backend_kernels {
                *totals.entry(k.kernel).or_insert(0.0) += k.millis;
            }
        }
        let mut v: Vec<(Kernel, f64)> = totals.into_iter().collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// All `(size, ms)` samples of one kernel — the scatter behind
    /// Fig. 16 and the scheduler's training set.
    pub fn kernel_samples(&self, kernel: Kernel) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .flat_map(|r| r.backend_kernels.iter())
            .filter(|k| k.kernel == kernel)
            .map(|k| (k.size, k.millis))
            .collect()
    }

    /// Records that carry a reference pose (error metrics use only
    /// these; a live stream without ground truth has none).
    fn referenced(&self) -> (Vec<Pose>, Vec<Pose>) {
        self.records
            .iter()
            .filter(|r| r.has_ground_truth)
            .map(|r| (r.pose, r.ground_truth))
            .unzip()
    }

    /// Translation RMSE over the frames with a reference pose (meters).
    /// `NaN` when no frame carries one — "no reference" must not read
    /// as "zero error".
    pub fn translation_rmse(&self) -> f64 {
        let (est, gt) = self.referenced();
        if est.is_empty() {
            return f64::NAN;
        }
        metrics::translation_rmse(&est, &gt)
    }

    /// Relative trajectory error (%) over the frames with a reference
    /// pose; `NaN` when no frame carries one.
    pub fn relative_error_percent(&self) -> f64 {
        let (est, gt) = self.referenced();
        if est.is_empty() {
            return f64::NAN;
        }
        metrics::relative_error_percent(&est, &gt)
    }

    /// Collects the in-loop [`ExecutionReport`]s carried by this log's
    /// records into an [`AcceleratedRun`] — the live counterpart of
    /// [`Executor::replay`](crate::executor::Executor::replay), giving
    /// modeled accelerated fps (pipelined/unpipelined), energy and
    /// offload rate straight from the instrumentation stream. For
    /// link-backed engines the run also carries the link-quality view:
    /// [`AcceleratedRun::fallback_rate`] and
    /// [`AcceleratedRun::frames_lost`] report how the channel degraded
    /// placement (offload rate vs link quality). `None`
    /// when no record carries a report (the default [`CpuEngine`]
    /// passthrough); frames without a report are skipped otherwise.
    ///
    /// [`CpuEngine`]: crate::engine::CpuEngine
    pub fn execution_run(&self) -> Option<AcceleratedRun> {
        let frames: Vec<_> = self
            .records
            .iter()
            .filter_map(|r| r.execution.as_ref().map(ExecutionReport::accelerated_frame))
            .collect();
        if frames.is_empty() {
            None
        } else {
            Some(AcceleratedRun { frames })
        }
    }

    /// Latency summary (total ms) over all frames or one mode.
    pub fn latency_summary(&self, mode: Option<Mode>) -> Summary {
        Summary::of(&self.total_ms(mode))
    }

    /// Effective frames per second of the measured run.
    pub fn fps(&self) -> f64 {
        let s = self.latency_summary(None);
        if s.mean <= 0.0 {
            0.0
        } else {
            1000.0 / s.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eudoxus_frontend::FrontendTiming;
    use std::time::Duration;

    fn record(mode: Mode, fe_ms: u64, kernels: Vec<KernelSample>) -> FrameRecord {
        FrameRecord {
            index: 0,
            t: 0.0,
            environment: Environment::OutdoorUnknown,
            mode,
            frontend_timing: FrontendTiming {
                detection: Duration::from_millis(fe_ms),
                ..Default::default()
            },
            frontend_stats: FrameStats::default(),
            backend_kernels: kernels,
            execution: None,
            directive: None,
            pose: Pose::identity(),
            ground_truth: Pose::identity(),
            has_ground_truth: true,
            tracking: true,
            health: None,
        }
    }

    #[test]
    fn latency_accounting() {
        let r = record(
            Mode::Vio,
            10,
            vec![
                KernelSample {
                    kernel: Kernel::KalmanGain,
                    millis: 5.0,
                    size: 60,
                },
                KernelSample {
                    kernel: Kernel::ImuIntegration,
                    millis: 2.0,
                    size: 20,
                },
            ],
        );
        assert!((r.frontend_ms() - 10.0).abs() < 1e-9);
        assert!((r.backend_ms() - 7.0).abs() < 1e-9);
        assert!((r.total_ms() - 17.0).abs() < 1e-9);
        assert_eq!(r.kernel_ms(Kernel::KalmanGain), 5.0);
    }

    #[test]
    fn log_filters_by_mode() {
        let mut log = RunLog::new();
        log.records.push(record(Mode::Vio, 10, vec![]));
        log.records.push(record(Mode::Slam, 20, vec![]));
        assert_eq!(log.frames_in_mode(Mode::Vio).len(), 1);
        assert_eq!(log.frontend_ms(Some(Mode::Slam)), vec![20.0]);
        assert_eq!(log.frontend_ms(None).len(), 2);
    }

    #[test]
    fn kernel_totals_sorted_descending() {
        let mut log = RunLog::new();
        log.records.push(record(
            Mode::Vio,
            0,
            vec![
                KernelSample {
                    kernel: Kernel::KalmanGain,
                    millis: 1.0,
                    size: 1,
                },
                KernelSample {
                    kernel: Kernel::ImuIntegration,
                    millis: 9.0,
                    size: 1,
                },
            ],
        ));
        let totals = log.kernel_totals(Mode::Vio);
        assert_eq!(totals[0].0, Kernel::ImuIntegration);
        assert_eq!(totals.len(), 2);
    }

    #[test]
    fn kernel_samples_collects_sizes() {
        let mut log = RunLog::new();
        log.records.push(record(
            Mode::Vio,
            0,
            vec![KernelSample {
                kernel: Kernel::KalmanGain,
                millis: 3.0,
                size: 44,
            }],
        ));
        assert_eq!(log.kernel_samples(Kernel::KalmanGain), vec![(44, 3.0)]);
        assert!(log.kernel_samples(Kernel::Solver).is_empty());
    }
}
