//! The unified Eudoxus localization framework.
//!
//! This crate assembles the paper's Fig. 4: one shared vision frontend
//! feeding an optimization backend that switches between three modes —
//! registration, VIO and SLAM — according to the operating environment
//! (Fig. 2 taxonomy: GPS availability × map availability). It provides:
//!
//! * [`session`] — the streaming API: a [`LocalizationSession`] fed one
//!   `SensorEvent` at a time through a registry of pluggable
//!   `Backend` estimators, and a [`SessionManager`] that round-robins
//!   many concurrent agents, ingests `eudoxus_stream::StreamMux`-merged
//!   event sources with bounded, backpressure-counted per-agent queues,
//!   and drains them across worker threads;
//! * [`builder`] — the one construction surface: a [`SessionBuilder`]
//!   that assembles sessions, managers and batch systems (engine, map,
//!   backends, agents, ingest bounds) in one fluent chain;
//! * [`engine`] — in-loop execution: the [`ExecutionEngine`] consulted
//!   by `push` for every frame, with the passthrough [`CpuEngine`], the
//!   always-offload [`ModeledAccelEngine`] and the paper's
//!   regression-scheduled [`ScheduledEngine`];
//! * [`mode`] — mode selection from the environment;
//! * [`pipeline`] — the batch adapter: `Eudoxus::process_dataset`
//!   replays a recorded dataset through a session, with full per-kernel
//!   instrumentation (needs the default `sim` feature — the streaming
//!   surface does not);
//! * [`instrument`] — the run log every experiment consumes;
//! * [`executor`] — replay of a measured CPU run through the accelerator
//!   models, producing the accelerated latency/energy numbers of
//!   Figs. 17–21;
//! * [`metrics`] — trajectory error metrics (RMSE/ATE);
//! * [`stats`] — summary statistics (mean/SD/RSD/percentiles);
//! * [`mapping`] — building a persisted map via a SLAM pass.
//!
//! # Batch example
//!
//! Replay a recorded dataset (the adapter drives the streaming session
//! internally):
//!
//! ```no_run
//! # #[cfg(feature = "sim")] {
//! use eudoxus_core::{PipelineConfig, SessionBuilder};
//! use eudoxus_sim::{ScenarioBuilder, ScenarioKind};
//!
//! let dataset = ScenarioBuilder::new(ScenarioKind::OutdoorUnknown)
//!     .frames(30)
//!     .build();
//! let mut system = SessionBuilder::new(PipelineConfig::default()).build_batch();
//! let log = system.process_dataset(&dataset);
//! println!("RMSE: {:.3} m", log.translation_rmse());
//! # }
//! ```
//!
//! # Streaming example
//!
//! Feed sensor events one at a time — the shape a live deployment uses
//! (here the events come from a replayed dataset). Attaching a modeled
//! engine makes every record carry a live accelerator estimate:
//!
//! ```no_run
//! use eudoxus_core::{ModeledAccelEngine, PipelineConfig, SessionBuilder};
//! use eudoxus_sim::{ScenarioBuilder, ScenarioKind};
//!
//! let dataset = ScenarioBuilder::new(ScenarioKind::OutdoorUnknown)
//!     .frames(30)
//!     .build();
//! let mut session = SessionBuilder::new(PipelineConfig::default())
//!     .engine(ModeledAccelEngine::edx_drone())
//!     .build();
//! for event in dataset.events() {
//!     if let Some(record) = session.push(event) {
//!         let accel = record.execution.as_ref().expect("modeled engine reports");
//!         println!(
//!             "frame {} via {}: measured {:.1} ms, modeled {:.1} ms on {}",
//!             record.index,
//!             record.mode,
//!             record.total_ms(),
//!             accel.total_ms(),
//!             accel.engine,
//!         );
//!     }
//! }
//! ```
//!
//! # Migrating to `SessionBuilder` (the in-loop offload redesign)
//!
//! Construction is now one fluent surface; the old constructors remain
//! as deprecated shims that forward to it:
//!
//! | Before | After |
//! |---|---|
//! | `LocalizationSession::new(cfg)` | `SessionBuilder::new(cfg).build()` |
//! | `LocalizationSession::new(cfg).with_map(map)` | `SessionBuilder::new(cfg).map(map).build()` |
//! | `LocalizationSession::with_registry(cfg, vec![Box::new(MyVio::new(v))])` | `SessionBuilder::new(cfg).without_default_backends().backend(move \|\| MyVio::new(v)).build()` |
//! | `Eudoxus::new(cfg)` | `SessionBuilder::new(cfg).build_batch()` |
//! | `Eudoxus::new(cfg).with_map(map)` | `SessionBuilder::new(cfg).map(map).build_batch()` |
//! | `manager.add_agent(id, session)` + `manager.set_ingest_limit(id, n, p)` | `SessionBuilder::new(cfg).ingest_limit(n, p).agent(id).build_manager()` |
//! | `manager.enqueue(id, event)` (lossy bool) | `manager.try_enqueue(id, event)` (reports, hands refusals back) |
//!
//! `register`, `add_agent` and `set_ingest_limit` stay un-deprecated:
//! they are *runtime mutation* (hot-swapping an estimator, an agent
//! joining a running manager), which the construction-time builder does
//! not replace. New with the redesign: `.engine(..)` selects the
//! in-loop [`ExecutionEngine`] (default [`CpuEngine`], a passthrough
//! that keeps sessions bit-identical to the pre-engine API), and
//! `RunLog::execution_run()` turns the engine's per-frame reports into
//! the same `AcceleratedRun` the replay executor produces.
//!
//! # Communication-adaptive offload (`SessionBuilder::link`)
//!
//! Since the link redesign, the accelerator can sit behind a modeled
//! communication channel instead of the on-board bus:
//! [`SessionBuilder::link`](builder::SessionBuilder::link) attaches any
//! `eudoxus_link::LinkModel` (with an optional per-frame deadline via
//! [`deadline_ms`](builder::SessionBuilder::deadline_ms)) to the
//! session's engine, and [`ScheduledEngine`] then advances the link
//! once per pushed frame and re-prices every offloadable kernel
//! against the current bandwidth/latency/loss state:
//!
//! ```no_run
//! use eudoxus_core::{
//!     LinkProfile, OffloadPolicy, PipelineConfig, ScheduledEngine, SessionBuilder,
//!     StochasticLink,
//! };
//! use eudoxus_accel::Platform;
//!
//! let mut session = SessionBuilder::new(PipelineConfig::anchored())
//!     .engine(ScheduledEngine::with_policy(
//!         Platform::edx_drone(),
//!         OffloadPolicy::Always,
//!     ))
//!     .link(StochasticLink::new(LinkProfile::urban_canyon_dropout(), 42))
//!     .deadline_ms(50.0)
//!     .build();
//! // ... push events; then inspect the shedding counters:
//! if let Some(stats) = session.engine().link_stats() {
//!     println!("{stats}");
//! }
//! ```
//!
//! Offload falls back to pure CPU in exactly two cases, recorded as the
//! report's [`FallbackCause`]: the link dropped the frame
//! (`FrameLost` — a dropout burst made transfers impossible), or the
//! modeled frame latency with offloads would blow the configured
//! deadline (`DeadlineExceeded` — the engine refuses to gamble on the
//! remote side). Everything stays deterministic: profiles
//! (`LinkProfile::{lan_stable, congested_uplink,
//! urban_canyon_dropout}`) drive seeded processes that replay bit
//! for bit, and a `StaticLink` mirroring the platform bus reproduces
//! the linkless engine exactly. The passthrough [`CpuEngine`] and the
//! fixed-bus [`ModeledAccelEngine`] ignore attached links (their
//! `attach_link` returns `false`); no-link sessions are bit-identical
//! to the pre-link API.
//!
//! # Surviving degraded sensors (`SessionBuilder::faults` / `::health`)
//!
//! Real deployments do not get the simulator's clean streams: cameras
//! drop frames in bursts, dust blacks out vision for seconds, IMUs
//! drift, GPS cuts out. Since the robustness redesign the session owns
//! both sides of that problem:
//!
//! * [`SessionBuilder::faults`](builder::SessionBuilder::faults)
//!   attaches a seeded `eudoxus_faults::FaultPlan` (canned
//!   `FaultProfile`s: `imu_drift` → `flaky_camera` → `dusty_site` →
//!   `sensor_storm`, mildest to worst) that degrades every pushed event
//!   deterministically — each built agent gets an independent identical
//!   fork, and the same `(plan, seed)` replays bit for bit.
//! * [`SessionBuilder::health`](builder::SessionBuilder::health) (also
//!   auto-enabled by `.faults(..)`) arms the [`HealthMonitor`]: per
//!   frame it folds vitals (tracked features, inter-frame gaps, pose
//!   innovation) through the `Nominal → Degraded → DeadReckoning →
//!   Recovering` [`DegradationState`] machine. While vision is starved
//!   the session serves poses by **dead-reckoning** on internal sensors
//!   (`Backend::dead_reckon`, IMU propagation only); when vision
//!   returns it re-anchors every estimator at the dead-reckoned pose
//!   and re-enters through the registry fallback chain. Each record
//!   then carries a [`HealthReport`], and
//!   [`LocalizationSession::health_stats`] /
//!   [`SessionManager::ingest_stats`] expose the cumulative
//!   [`SessionHealthStats`].
//!
//! Sessions without faults or health monitoring keep the historical
//! behavior bit for bit (`health: None` on every record). Frames whose
//! mode has no registered backend no longer panic: they come back as
//! unserved records (held pose, `tracking: false`).
//!
//! ```no_run
//! use eudoxus_core::{FaultProfile, PipelineConfig, SessionBuilder};
//!
//! let mut session = SessionBuilder::new(PipelineConfig::anchored())
//!     .faults(FaultProfile::dusty_site().plan, 42)
//!     .build();
//! // ... push events; every record now carries a health verdict:
//! // record.health.unwrap().state, .dead_reckoned, .served
//! println!("{}", session.health_stats());
//! ```
//!
//! # Closing the control loop (`SessionBuilder::throttle` / `::admission`)
//!
//! Engines *observe and price* each frame; since the control-loop PR
//! the verdict also **steers**. Three opt-in mechanisms close the loop
//! (default sessions remain bit-identical to the observe-only API):
//!
//! * **Kernel steering.** [`SessionBuilder::throttle`] arms a
//!   hysteretic [`ThrottleController`]: after every engine report the
//!   session feeds it the modeled frame period, and when the period
//!   exceeds `deadline_ms` for `enter_frames` consecutive frames it
//!   issues a [`FrameDirective`] that the frontend applies on the
//!   *next* frame — a shrunken feature budget (`max_keypoints`,
//!   `max_tracks`), a shallower pyramid, optionally the scalar KLT
//!   datapath. Directive caps only ever *shrink* the configured
//!   budget. The directive stays in force until the raw modeled period
//!   drops below `exit_margin × min(throttled baseline, deadline)` for
//!   `exit_frames` consecutive frames; on constant load the throttled
//!   period equals its own baseline and never clears that margin, so
//!   **the loop cannot oscillate**. Every throttled [`FrameRecord`]
//!   carries the applied directive, and
//!   [`LocalizationSession::throttle_stats`] exposes the
//!   entries/exits/throttled-frame counters.
//!
//! * **Admission control.** [`SessionBuilder::admission`] (or
//!   [`SessionManager::set_admission_control`]) gates image events at
//!   `try_enqueue`/`ingest` time against each agent's modeled frame
//!   period `P` (health-inflated by `health_penalty` for agents below
//!   `Nominal`):
//!
//!   | Evidence | Verdict |
//!   |---|---|
//!   | no modeled period yet | admit (the gate only acts on evidence) |
//!   | `P ≤ deadline` | admit |
//!   | `deadline < P ≤ shed_factor × deadline` | degrade: keep 1 image in `degrade_keep` |
//!   | `P > shed_factor × deadline` | shed ([`Enqueue::Shed`]) |
//!
//!   Sensor windows are never gated — starving them would corrupt the
//!   frames that *are* admitted. Counters conserve
//!   (`offered == admitted + degraded + shed`) and surface per agent in
//!   [`IngestSnapshot`].
//!
//! * **Fault-aware pricing.** The health verdict feeds the engine seam
//!   ([`FrameContext`]`::health`): dead-reckoned or unserved frames are
//!   priced as IMU-only work (no vision kernels, no offload
//!   decisions), frames still in the `DeadReckoning` state skip
//!   accelerator offload entirely, and a `ScheduledEngine` with a
//!   deadline (now armed with or without a link) re-plans overruns
//!   all-local and counts `deadline_missed` in its [`LinkStats`].
//!
//! [`SessionBuilder::throttle`]: builder::SessionBuilder::throttle
//! [`SessionBuilder::admission`]: builder::SessionBuilder::admission
//!
//! # Migrating from the pre-streaming API
//!
//! [`Eudoxus`] no longer exposes its concrete estimators (the old direct
//! `vio`/`slam`/`registration` fields and the `slam()` accessor are
//! gone): estimators live in the session's registry behind the
//! `eudoxus_backend::Backend` trait. Use
//! [`Eudoxus::persisted_map`] to export a SLAM map,
//! [`Eudoxus::session_mut`] to register custom backends, and
//! `session().backend(mode)` for read access to a specific estimator.
//! In `eudoxus_backend`, the old `BackendMode` *trait*
//! (`process`/`reset`/`name`) became the `Backend` trait
//! (`begin_segment`/`step`/`reset`/`mode`), `BackendMode` is now the
//! estimator-family *enum*, and `BackendReport` was renamed
//! `BackendEstimate`.
//!
//! # Migrating to `eudoxus-stream` ingestion
//!
//! The event model (`SensorEvent`, `ImageEvent`, `Environment`, …) moved
//! from `eudoxus-sim` to the leaf `eudoxus-stream` crate; `eudoxus_sim`
//! re-exports the same types, so existing imports keep compiling. This
//! crate's simulator dependency is now the optional default feature
//! `sim`, which gates only the batch surface ([`Eudoxus`]'s
//! `process_dataset` and [`mapping`]'s `build_map`): build with
//! `default-features = false` for a serving node that feeds sessions
//! from live `eudoxus_stream::EventSource`s and never links the
//! scenario generator. For many-agent serving, prefer the ingestion
//! path: register one `EventSource` per agent in a
//! `eudoxus_stream::StreamMux`, bound each agent's queue with
//! [`SessionManager::set_ingest_limit`], and drive everything with
//! [`SessionManager::pump`] (or `ingest` + `poll`/`poll_parallel` for
//! manual control); backpressure counters surface through
//! [`SessionManager::ingest_stats`].

pub mod builder;
pub mod control;
pub mod engine;
pub mod executor;
pub mod health;
pub mod instrument;
#[cfg(feature = "sim")]
pub mod mapping;
pub mod metrics;
pub mod mode;
pub mod pipeline;
pub mod session;
pub mod stats;

pub use builder::SessionBuilder;
pub use control::{
    AdmissionConfig, AdmissionStats, ThrottleConfig, ThrottleController, ThrottleStats,
};
pub use engine::{
    AccelModel, AcceleratedFrame, AcceleratedRun, CpuEngine, ExecutionEngine, ExecutionReport,
    ExecutionTarget, FallbackCause, FrameContext, KernelDecision, LinkStats, ModeledAccelEngine,
    OffloadPolicy, ScheduledEngine,
};
pub use executor::Executor;
pub use health::{
    DegradationState, FrameVitals, HealthConfig, HealthMonitor, HealthReport, SessionHealthStats,
};
pub use instrument::{FrameRecord, IngestSnapshot, RunLog};
#[cfg(feature = "sim")]
pub use mapping::build_map;
pub use metrics::{relative_error_percent, translation_rmse};
pub use mode::Mode;
pub use pipeline::{Eudoxus, PipelineConfig};
pub use session::{Enqueue, IngestReport, LocalizationSession, SessionManager};
pub use stats::Summary;

// The per-frame feature-budget directive, re-exported so control-loop
// consumers need only this crate (the type lives in `eudoxus-frontend`,
// where the pipeline applies it).
pub use eudoxus_frontend::FrameDirective;

// The streaming event types, re-exported so session consumers need only
// this crate. (They live in the leaf `eudoxus-stream` crate; the
// historical `eudoxus_sim` paths re-export the same types.)
pub use eudoxus_stream::{ImageEvent, SensorEvent};

// The channel model, re-exported so link-aware sessions need only this
// crate (the types live in the leaf `eudoxus-link` crate).
pub use eudoxus_link::{LinkModel, LinkProfile, LinkState, StaticLink, StochasticLink, TraceLink};

// The fault model, re-exported so degradation experiments need only this
// crate (the types live in the leaf `eudoxus-faults` crate).
pub use eudoxus_faults::{FaultCounters, FaultInjector, FaultPlan, FaultProcess, FaultProfile};

// The observation surface, re-exported so arming telemetry
// (`SessionBuilder::telemetry`) and draining its spans need only this
// crate (the types live in the leaf `eudoxus-telemetry` crate).
pub use eudoxus_telemetry::{
    chrome_trace_json, json_lines, validate_chrome_trace, CounterRegistry, Histogram, Span,
    SpanScope, Telemetry, TelemetryConfig, TelemetryHub,
};
