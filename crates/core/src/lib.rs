//! The unified Eudoxus localization framework.
//!
//! This crate assembles the paper's Fig. 4: one shared vision frontend
//! feeding an optimization backend that switches between three modes —
//! registration, VIO and SLAM — according to the operating environment
//! (Fig. 2 taxonomy: GPS availability × map availability). It provides:
//!
//! * [`session`] — the streaming API: a [`LocalizationSession`] fed one
//!   `SensorEvent` at a time through a registry of pluggable
//!   `Backend` estimators, and a [`SessionManager`] that round-robins
//!   many concurrent agents, ingests `eudoxus_stream::StreamMux`-merged
//!   event sources with bounded, backpressure-counted per-agent queues,
//!   and drains them across worker threads;
//! * [`mode`] — mode selection from the environment;
//! * [`pipeline`] — the batch adapter: `Eudoxus::process_dataset`
//!   replays a recorded dataset through a session, with full per-kernel
//!   instrumentation (needs the default `sim` feature — the streaming
//!   surface does not);
//! * [`instrument`] — the run log every experiment consumes;
//! * [`executor`] — replay of a measured CPU run through the accelerator
//!   models, producing the accelerated latency/energy numbers of
//!   Figs. 17–21;
//! * [`metrics`] — trajectory error metrics (RMSE/ATE);
//! * [`stats`] — summary statistics (mean/SD/RSD/percentiles);
//! * [`mapping`] — building a persisted map via a SLAM pass.
//!
//! # Batch example
//!
//! Replay a recorded dataset (the adapter drives the streaming session
//! internally):
//!
//! ```no_run
//! # #[cfg(feature = "sim")] {
//! use eudoxus_core::{Eudoxus, PipelineConfig};
//! use eudoxus_sim::{ScenarioBuilder, ScenarioKind};
//!
//! let dataset = ScenarioBuilder::new(ScenarioKind::OutdoorUnknown)
//!     .frames(30)
//!     .build();
//! let mut system = Eudoxus::new(PipelineConfig::default());
//! let log = system.process_dataset(&dataset);
//! println!("RMSE: {:.3} m", log.translation_rmse());
//! # }
//! ```
//!
//! # Streaming example
//!
//! Feed sensor events one at a time — the shape a live deployment uses
//! (here the events come from a replayed dataset):
//!
//! ```no_run
//! use eudoxus_core::{LocalizationSession, PipelineConfig};
//! use eudoxus_sim::{ScenarioBuilder, ScenarioKind};
//!
//! let dataset = ScenarioBuilder::new(ScenarioKind::OutdoorUnknown)
//!     .frames(30)
//!     .build();
//! let mut session = LocalizationSession::new(PipelineConfig::default());
//! for event in dataset.events() {
//!     if let Some(record) = session.push(event) {
//!         println!("frame {} via {}: {:?}", record.index, record.mode, record.pose);
//!     }
//! }
//! ```
//!
//! # Migrating from the pre-streaming API
//!
//! [`Eudoxus`] no longer exposes its concrete estimators (the old direct
//! `vio`/`slam`/`registration` fields and the `slam()` accessor are
//! gone): estimators live in the session's registry behind the
//! `eudoxus_backend::Backend` trait. Use
//! [`Eudoxus::persisted_map`] to export a SLAM map,
//! [`Eudoxus::session_mut`] to register custom backends, and
//! `session().backend(mode)` for read access to a specific estimator.
//! In `eudoxus_backend`, the old `BackendMode` *trait*
//! (`process`/`reset`/`name`) became the `Backend` trait
//! (`begin_segment`/`step`/`reset`/`mode`), `BackendMode` is now the
//! estimator-family *enum*, and `BackendReport` was renamed
//! `BackendEstimate`.
//!
//! # Migrating to `eudoxus-stream` ingestion
//!
//! The event model (`SensorEvent`, `ImageEvent`, `Environment`, …) moved
//! from `eudoxus-sim` to the leaf `eudoxus-stream` crate; `eudoxus_sim`
//! re-exports the same types, so existing imports keep compiling. This
//! crate's simulator dependency is now the optional default feature
//! `sim`, which gates only the batch surface ([`Eudoxus`]'s
//! `process_dataset` and [`mapping`]'s `build_map`): build with
//! `default-features = false` for a serving node that feeds sessions
//! from live `eudoxus_stream::EventSource`s and never links the
//! scenario generator. For many-agent serving, prefer the ingestion
//! path: register one `EventSource` per agent in a
//! `eudoxus_stream::StreamMux`, bound each agent's queue with
//! [`SessionManager::set_ingest_limit`], and drive everything with
//! [`SessionManager::pump`] (or `ingest` + `poll`/`poll_parallel` for
//! manual control); backpressure counters surface through
//! [`SessionManager::ingest_stats`].

pub mod executor;
pub mod instrument;
#[cfg(feature = "sim")]
pub mod mapping;
pub mod metrics;
pub mod mode;
pub mod pipeline;
pub mod session;
pub mod stats;

pub use executor::{AcceleratedFrame, AcceleratedRun, Executor};
pub use instrument::{FrameRecord, IngestSnapshot, RunLog};
#[cfg(feature = "sim")]
pub use mapping::build_map;
pub use metrics::{relative_error_percent, translation_rmse};
pub use mode::Mode;
pub use pipeline::{Eudoxus, PipelineConfig};
pub use session::{Enqueue, IngestReport, LocalizationSession, SessionManager};
pub use stats::Summary;

// The streaming event types, re-exported so session consumers need only
// this crate. (They live in the leaf `eudoxus-stream` crate; the
// historical `eudoxus_sim` paths re-export the same types.)
pub use eudoxus_stream::{ImageEvent, SensorEvent};
