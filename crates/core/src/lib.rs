//! The unified Eudoxus localization framework.
//!
//! This crate assembles the paper's Fig. 4: one shared vision frontend
//! feeding an optimization backend that switches between three modes —
//! registration, VIO and SLAM — according to the operating environment
//! (Fig. 2 taxonomy: GPS availability × map availability). It provides:
//!
//! * [`mode`] — mode selection from the environment;
//! * [`pipeline`] — the end-to-end per-frame pipeline over a dataset, with
//!   full per-kernel instrumentation;
//! * [`instrument`] — the run log every experiment consumes;
//! * [`executor`] — replay of a measured CPU run through the accelerator
//!   models, producing the accelerated latency/energy numbers of
//!   Figs. 17–21;
//! * [`metrics`] — trajectory error metrics (RMSE/ATE);
//! * [`stats`] — summary statistics (mean/SD/RSD/percentiles);
//! * [`mapping`] — building a persisted map via a SLAM pass.
//!
//! # Example
//!
//! ```no_run
//! use eudoxus_core::{Eudoxus, PipelineConfig};
//! use eudoxus_sim::{ScenarioBuilder, ScenarioKind};
//!
//! let dataset = ScenarioBuilder::new(ScenarioKind::OutdoorUnknown)
//!     .frames(30)
//!     .build();
//! let mut system = Eudoxus::new(PipelineConfig::default());
//! let log = system.process_dataset(&dataset);
//! println!("RMSE: {:.3} m", log.translation_rmse());
//! ```

pub mod executor;
pub mod instrument;
pub mod mapping;
pub mod metrics;
pub mod mode;
pub mod pipeline;
pub mod stats;

pub use executor::{AcceleratedFrame, AcceleratedRun, Executor};
pub use instrument::{FrameRecord, RunLog};
pub use mapping::build_map;
pub use metrics::{relative_error_percent, translation_rmse};
pub use mode::Mode;
pub use pipeline::{Eudoxus, PipelineConfig};
pub use stats::Summary;
