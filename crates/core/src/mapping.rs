//! Map construction via a SLAM pass.
//!
//! In deployment, "the robots would spend a few days mapping new
//! warehouses" (paper Sec. III) before registration can run there. This
//! helper performs that survey pass: run the pipeline in SLAM mode over a
//! dataset and persist the resulting map.

use crate::builder::SessionBuilder;
use crate::pipeline::PipelineConfig;
use eudoxus_backend::WorldMap;
use eudoxus_sim::{Dataset, Environment};

/// Runs a SLAM mapping pass over the dataset and returns the persisted
/// map. The dataset's environment labels are ignored — every frame is
/// treated as unmapped territory, exactly like a survey run.
pub fn build_map(dataset: &Dataset, config: &PipelineConfig) -> WorldMap {
    // Relabel every frame as indoor-unknown so the mode selector picks
    // SLAM throughout.
    let mut survey = dataset.clone();
    for f in &mut survey.frames {
        f.environment = Environment::IndoorUnknown;
    }
    for s in &mut survey.segments {
        s.environment = Environment::IndoorUnknown;
    }
    let mut system = SessionBuilder::new(config.clone()).build_batch();
    let _ = system.process_dataset(&survey);
    system
        .persisted_map()
        .expect("the default registry always includes a mapping (SLAM) backend")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eudoxus_sim::{Platform, ScenarioBuilder, ScenarioKind};

    #[test]
    fn survey_produces_nonempty_map() {
        let data = ScenarioBuilder::new(ScenarioKind::IndoorKnown)
            .frames(5)
            .seed(11)
            .platform(Platform::Drone)
            .build();
        let map = build_map(&data, &PipelineConfig::anchored());
        assert!(map.points.len() > 30, "only {} points", map.points.len());
        assert!(!map.keyframes.is_empty());
    }

    #[test]
    fn map_points_lie_in_the_room() {
        let data = ScenarioBuilder::new(ScenarioKind::IndoorUnknown)
            .frames(4)
            .seed(5)
            .platform(Platform::Drone)
            .build();
        let map = build_map(&data, &PipelineConfig::anchored());
        // Indoor room is 12×8×4 m centered at origin. Stereo depth noise
        // at low parallax can throw individual triangulated points well
        // past the walls, so require the bulk (90 %) of the map to lie
        // within a sane margin of the room rather than every point.
        let inside = map
            .points
            .iter()
            .filter(|p| {
                p.position.x.abs() < 10.0
                    && p.position.y.abs() < 8.0
                    && (-2.0..7.0).contains(&p.position.z)
            })
            .count();
        assert!(
            inside * 10 >= map.points.len() * 9,
            "only {inside}/{} map points near the room",
            map.points.len()
        );
    }
}
