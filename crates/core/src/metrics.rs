//! Trajectory accuracy metrics.
//!
//! The paper reports localization error as RMSE in meters against ground
//! truth (Fig. 3) and as relative trajectory error in percent of distance
//! traveled (Sec. IV-A accuracy: 0.28 %–0.42 % on EuRoC-class data).

use crate::stats::Summary;
use eudoxus_geometry::Pose;

/// RMSE of translational error between estimated and ground-truth pose
/// sequences (paired by index).
///
/// # Panics
///
/// Panics if the sequences have different lengths.
pub fn translation_rmse(estimated: &[Pose], ground_truth: &[Pose]) -> f64 {
    assert_eq!(
        estimated.len(),
        ground_truth.len(),
        "pose sequences must pair up"
    );
    let errors: Vec<f64> = estimated
        .iter()
        .zip(ground_truth)
        .map(|(e, g)| e.translation_distance(*g))
        .collect();
    Summary::rms(&errors)
}

/// Relative trajectory error: final-drift-normalized percentage — total
/// translational RMSE divided by trajectory length, × 100.
///
/// Returns 0 for trajectories shorter than 1 mm.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
pub fn relative_error_percent(estimated: &[Pose], ground_truth: &[Pose]) -> f64 {
    let rmse = translation_rmse(estimated, ground_truth);
    let length: f64 = ground_truth
        .windows(2)
        .map(|w| w[0].translation_distance(w[1]))
        .sum();
    if length < 1e-3 {
        0.0
    } else {
        rmse / length * 100.0
    }
}

/// Mean rotational error in radians.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
pub fn rotation_error_mean(estimated: &[Pose], ground_truth: &[Pose]) -> f64 {
    assert_eq!(estimated.len(), ground_truth.len());
    if estimated.is_empty() {
        return 0.0;
    }
    estimated
        .iter()
        .zip(ground_truth)
        .map(|(e, g)| e.rotation_distance(*g))
        .sum::<f64>()
        / estimated.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eudoxus_geometry::Vec3;

    fn line(n: usize, offset: f64) -> Vec<Pose> {
        (0..n)
            .map(|i| {
                Pose::from_rotation_vector(
                    Vec3::zero(),
                    Vec3::new(i as f64 + offset, 0.0, 0.0),
                )
            })
            .collect()
    }

    #[test]
    fn perfect_estimate_has_zero_error() {
        let gt = line(10, 0.0);
        assert_eq!(translation_rmse(&gt, &gt), 0.0);
        assert_eq!(relative_error_percent(&gt, &gt), 0.0);
        assert_eq!(rotation_error_mean(&gt, &gt), 0.0);
    }

    #[test]
    fn constant_offset_gives_that_rmse() {
        let gt = line(10, 0.0);
        let est = line(10, 0.5);
        assert!((translation_rmse(&est, &gt) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relative_error_normalizes_by_length() {
        let gt = line(11, 0.0); // 10 m long
        let est = line(11, 0.1);
        // 0.1 m RMSE over 10 m = 1 %.
        assert!((relative_error_percent(&est, &gt) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_panic() {
        let _ = translation_rmse(&line(3, 0.0), &line(4, 0.0));
    }

    #[test]
    fn stationary_trajectory_relative_error_is_zero() {
        let gt = vec![Pose::identity(); 5];
        let est = vec![Pose::identity(); 5];
        assert_eq!(relative_error_percent(&est, &gt), 0.0);
    }
}
