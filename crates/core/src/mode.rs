//! Backend mode selection (paper Fig. 2).

use eudoxus_stream::Environment;
use std::fmt;

/// The three backend modes of the unified algorithm (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Localize against a pre-built map (indoor, known).
    Registration,
    /// Filter-based odometry, GPS-corrected outdoors.
    Vio,
    /// Build the map while localizing (indoor, unknown).
    Slam,
}

impl Mode {
    /// All modes in paper order.
    pub const ALL: [Mode; 3] = [Mode::Registration, Mode::Vio, Mode::Slam];

    /// Selects the mode an environment prefers (the affinity the paper
    /// establishes in Sec. III): registration indoors with a map, SLAM
    /// indoors without, VIO (with GPS) outdoors — with or without a map,
    /// since VIO Pareto-dominates there (Fig. 3c/d).
    pub fn for_environment(env: Environment) -> Mode {
        match env {
            Environment::IndoorUnknown => Mode::Slam,
            Environment::IndoorKnown => Mode::Registration,
            Environment::OutdoorUnknown | Environment::OutdoorKnown => Mode::Vio,
        }
    }
}

// `Mode` (the environment-selection vocabulary, tied to
// `eudoxus_stream::Environment`) and `eudoxus_backend::BackendMode` (the
// estimator-registry vocabulary) intentionally stay separate enums: the
// backend crate cannot name the streaming `Environment`, and keeping the
// serving-side type free of selection policy lets third-party backends
// depend on `eudoxus-backend` alone. These conversions are the only
// coupling point.
impl From<eudoxus_backend::BackendMode> for Mode {
    fn from(mode: eudoxus_backend::BackendMode) -> Mode {
        match mode {
            eudoxus_backend::BackendMode::Registration => Mode::Registration,
            eudoxus_backend::BackendMode::Vio => Mode::Vio,
            eudoxus_backend::BackendMode::Slam => Mode::Slam,
        }
    }
}

impl From<Mode> for eudoxus_backend::BackendMode {
    fn from(mode: Mode) -> eudoxus_backend::BackendMode {
        match mode {
            Mode::Registration => eudoxus_backend::BackendMode::Registration,
            Mode::Vio => eudoxus_backend::BackendMode::Vio,
            Mode::Slam => eudoxus_backend::BackendMode::Slam,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mode::Registration => "registration",
            Mode::Vio => "vio",
            Mode::Slam => "slam",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_matches_figure2() {
        assert_eq!(Mode::for_environment(Environment::IndoorUnknown), Mode::Slam);
        assert_eq!(
            Mode::for_environment(Environment::IndoorKnown),
            Mode::Registration
        );
        assert_eq!(Mode::for_environment(Environment::OutdoorUnknown), Mode::Vio);
        assert_eq!(Mode::for_environment(Environment::OutdoorKnown), Mode::Vio);
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::Slam.to_string(), "slam");
        assert_eq!(Mode::ALL.len(), 3);
    }

    #[test]
    fn backend_mode_roundtrip() {
        use eudoxus_backend::BackendMode;
        for mode in Mode::ALL {
            assert_eq!(Mode::from(BackendMode::from(mode)), mode);
        }
    }
}
