//! The end-to-end unified localization pipeline (paper Fig. 4).
//!
//! Per frame: the shared frontend extracts and matches features; the
//! environment selects the backend mode; the chosen backend consumes the
//! correspondences plus the IMU/GPS windows. Estimators reset at dataset
//! segment boundaries (mixed datasets are concatenations of independent
//! traversals — see `eudoxus_sim::Dataset::concat`).

use crate::instrument::{FrameRecord, RunLog};
use crate::mode::Mode;
use eudoxus_backend::{
    BackendInput, BackendMode, GpsFix, ImuReading, Registration, RegistrationConfig, Slam,
    SlamConfig, Vio, VioConfig, WorldMap,
};
use eudoxus_frontend::{Frontend, FrontendConfig};
use eudoxus_geometry::Vec3;
use eudoxus_sim::{Dataset, FrameData};

/// Configuration of the full pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Frontend settings.
    pub frontend: FrontendConfig,
    /// VIO settings.
    pub vio: VioConfig,
    /// SLAM settings.
    pub slam: SlamConfig,
    /// Registration settings (only used when a map is installed).
    pub registration: RegistrationConfig,
    /// Initialize estimators from the dataset's first ground-truth pose of
    /// each segment (standard evaluation practice; VIO otherwise
    /// estimates a relative trajectory from identity).
    pub anchor_to_ground_truth: bool,
}

impl PipelineConfig {
    /// Default configuration with ground-truth anchoring enabled.
    pub fn anchored() -> Self {
        PipelineConfig {
            anchor_to_ground_truth: true,
            ..PipelineConfig::default()
        }
    }
}

/// The unified localization system.
pub struct Eudoxus {
    config: PipelineConfig,
    frontend: Frontend,
    vio: Vio,
    slam: Slam,
    registration: Option<Registration>,
}

impl std::fmt::Debug for Eudoxus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Eudoxus(map: {})",
            if self.registration.is_some() { "yes" } else { "no" }
        )
    }
}

impl Eudoxus {
    /// Creates a system without a map (registration mode unavailable; the
    /// mode selector then falls back to SLAM for indoor-known segments).
    pub fn new(config: PipelineConfig) -> Self {
        Eudoxus {
            frontend: Frontend::new(config.frontend),
            vio: Vio::new(config.vio),
            slam: Slam::new(config.slam),
            registration: None,
            config,
        }
    }

    /// Installs a persisted map, enabling registration mode.
    pub fn with_map(mut self, map: WorldMap) -> Self {
        self.registration = Some(Registration::new(map, self.config.registration));
        self
    }

    /// Read access to the SLAM backend (map persistence).
    pub fn slam(&self) -> &Slam {
        &self.slam
    }

    /// The mode that will run for a frame in `env`, given map
    /// availability.
    pub fn effective_mode(&self, env: eudoxus_sim::Environment) -> Mode {
        let preferred = Mode::for_environment(env);
        if preferred == Mode::Registration && self.registration.is_none() {
            // No map installed: the indoor-known segment degrades to SLAM.
            Mode::Slam
        } else {
            preferred
        }
    }

    /// Resets all estimators (segment boundary).
    pub fn reset(&mut self) {
        self.frontend.reset();
        self.vio.reset();
        self.slam.reset();
        if let Some(reg) = &mut self.registration {
            reg.reset();
        }
    }

    /// Processes one frame, returning its instrumentation record.
    pub fn process_frame(&mut self, dataset: &Dataset, frame: &FrameData) -> FrameRecord {
        let i = frame.index;
        if dataset.is_segment_start(i) {
            self.reset();
            if self.config.anchor_to_ground_truth {
                let gt = dataset.ground_truth[i];
                // Velocity from the first two ground-truth poses.
                let vel = if i + 1 < dataset.ground_truth.len() {
                    (dataset.ground_truth[i + 1].translation - gt.translation)
                        * dataset.fps
                } else {
                    Vec3::zero()
                };
                self.vio.set_initial_state(gt, vel);
                self.slam.set_initial_pose(gt);
            }
        }

        // Shared frontend.
        let fe = self.frontend.process(&frame.left, &frame.right);

        // Sensor windows since the previous frame.
        let t_prev = if i == 0 { -1.0 } else { dataset.frames[i - 1].t };
        let imu: Vec<ImuReading> = dataset
            .imu_between(t_prev, frame.t)
            .iter()
            .map(|s| ImuReading {
                t: s.t,
                gyro: s.gyro,
                accel: s.accel,
            })
            .collect();
        let gps: Vec<GpsFix> = dataset
            .gps_between(t_prev, frame.t)
            .iter()
            .map(|s| GpsFix {
                t: s.t,
                position: s.position,
                sigma: s.sigma,
            })
            .collect();

        let input = BackendInput {
            t: frame.t,
            observations: &fe.observations,
            imu: &imu,
            gps: &gps,
            rig: dataset.rig,
        };

        let mode = self.effective_mode(frame.environment);
        let report = match mode {
            Mode::Vio => self.vio.process(&input),
            Mode::Slam => self.slam.process(&input),
            Mode::Registration => self
                .registration
                .as_mut()
                .expect("effective_mode guarantees a map")
                .process(&input),
        };

        FrameRecord {
            index: i,
            t: frame.t,
            environment: frame.environment,
            mode,
            frontend_timing: fe.timing,
            frontend_stats: fe.stats,
            backend_kernels: report.kernels,
            pose: report.pose,
            ground_truth: dataset.ground_truth[i],
            tracking: report.tracking,
        }
    }

    /// Processes a whole dataset, producing the run log.
    pub fn process_dataset(&mut self, dataset: &Dataset) -> RunLog {
        let mut log = RunLog::new();
        for frame in &dataset.frames {
            log.records.push(self.process_frame(dataset, frame));
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eudoxus_sim::{Environment, Platform, ScenarioBuilder, ScenarioKind};

    fn dataset(kind: ScenarioKind, frames: usize) -> Dataset {
        ScenarioBuilder::new(kind)
            .frames(frames)
            .seed(7)
            .platform(Platform::Drone)
            .build()
    }

    #[test]
    fn outdoor_runs_vio_and_stays_accurate() {
        let data = dataset(ScenarioKind::OutdoorUnknown, 6);
        let mut system = Eudoxus::new(PipelineConfig::anchored());
        let log = system.process_dataset(&data);
        assert_eq!(log.len(), 6);
        assert!(log.records.iter().all(|r| r.mode == Mode::Vio));
        let rmse = log.translation_rmse();
        assert!(rmse < 1.5, "VIO RMSE {rmse} m");
    }

    #[test]
    fn indoor_unknown_runs_slam() {
        let data = dataset(ScenarioKind::IndoorUnknown, 5);
        let mut system = Eudoxus::new(PipelineConfig::anchored());
        let log = system.process_dataset(&data);
        assert!(log.records.iter().all(|r| r.mode == Mode::Slam));
        let rmse = log.translation_rmse();
        assert!(rmse < 1.0, "SLAM RMSE {rmse} m");
    }

    #[test]
    fn indoor_known_without_map_degrades_to_slam() {
        let data = dataset(ScenarioKind::IndoorKnown, 2);
        let mut system = Eudoxus::new(PipelineConfig::anchored());
        let log = system.process_dataset(&data);
        assert!(log.records.iter().all(|r| r.mode == Mode::Slam));
    }

    #[test]
    fn indoor_known_with_map_runs_registration() {
        let data = dataset(ScenarioKind::IndoorKnown, 6);
        // Mapping pass (SLAM over the same traversal), then registration.
        let map = crate::mapping::build_map(&data, &PipelineConfig::anchored());
        assert!(!map.points.is_empty());
        let mut system = Eudoxus::new(PipelineConfig::anchored()).with_map(map);
        let log = system.process_dataset(&data);
        assert!(log.records.iter().all(|r| r.mode == Mode::Registration));
        let tracked = log.records.iter().filter(|r| r.tracking).count();
        assert!(tracked >= log.len() / 2, "tracked {tracked}/{}", log.len());
    }

    #[test]
    fn mixed_dataset_switches_modes_at_segments() {
        let data = ScenarioBuilder::new(ScenarioKind::Mixed)
            .frames(12)
            .seed(3)
            .platform(Platform::Drone)
            .build();
        let mut system = Eudoxus::new(PipelineConfig::anchored());
        let log = system.process_dataset(&data);
        let modes: Vec<Mode> = log.records.iter().map(|r| r.mode).collect();
        assert!(modes.contains(&Mode::Vio));
        assert!(modes.contains(&Mode::Slam));
        // Environment labels drive the modes.
        for r in &log.records {
            if r.environment == Environment::OutdoorUnknown {
                assert_eq!(r.mode, Mode::Vio);
            }
        }
    }

    #[test]
    fn kernels_recorded_per_mode() {
        let data = dataset(ScenarioKind::OutdoorUnknown, 4);
        let mut system = Eudoxus::new(PipelineConfig::anchored());
        let log = system.process_dataset(&data);
        // Every VIO frame must at least run IMU integration.
        for r in &log.records {
            assert!(
                !r.backend_kernels.is_empty(),
                "frame {} has no kernel samples",
                r.index
            );
        }
        assert!(log.latency_summary(None).mean > 0.0);
    }
}
