//! The end-to-end unified localization pipeline (paper Fig. 4), as a
//! batch adapter over the streaming API.
//!
//! [`Eudoxus`] owns a single [`LocalizationSession`] and replays a
//! recorded `Dataset` into it via `Dataset::events`: per frame, the
//! shared frontend extracts and matches features, the environment selects
//! the backend mode through the session's estimator registry, and the
//! chosen backend consumes the correspondences plus the IMU/GPS windows.
//! Estimators reset at dataset segment boundaries (mixed datasets are
//! concatenations of independent traversals — see
//! `eudoxus_sim::Dataset::concat`), which arrive as
//! [`SensorEvent::SegmentBoundary`](eudoxus_stream::SensorEvent) events.
//!
//! The dataset-replay surface ([`Eudoxus::process_dataset`], available
//! with the default `sim` feature) is the only part of this crate that
//! needs the simulator; everything else consumes `eudoxus_stream` events
//! from any producer.

#[cfg(feature = "sim")]
use crate::instrument::RunLog;
use crate::mode::Mode;
use crate::session::LocalizationSession;
use eudoxus_backend::{Registration, RegistrationConfig, SlamConfig, VioConfig, WorldMap};
use eudoxus_frontend::FrontendConfig;
#[cfg(feature = "sim")]
use eudoxus_sim::Dataset;

/// Configuration of the full pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Frontend settings.
    pub frontend: FrontendConfig,
    /// VIO settings.
    pub vio: VioConfig,
    /// SLAM settings.
    pub slam: SlamConfig,
    /// Registration settings (only used when a map is installed).
    pub registration: RegistrationConfig,
    /// Apply the anchors carried by segment-boundary events when
    /// initializing estimators. In dataset replay the anchor is the
    /// segment's first ground-truth pose (standard evaluation practice);
    /// a live producer doing an estimator hand-off must also enable this
    /// for its anchors to take effect. Off (the default), every segment
    /// starts from identity and VIO estimates a relative trajectory.
    pub anchor_to_ground_truth: bool,
}

impl PipelineConfig {
    /// Default configuration with ground-truth anchoring enabled.
    pub fn anchored() -> Self {
        PipelineConfig {
            anchor_to_ground_truth: true,
            ..PipelineConfig::default()
        }
    }
}

/// The unified localization system, batch flavor: a thin adapter that
/// replays datasets through a [`LocalizationSession`].
///
/// Construct it from a built session —
/// `SessionBuilder::new(config).build_batch()` or
/// [`Eudoxus::from_session`] — so engine, map and backends are chosen in
/// one place. Prefer driving a [`LocalizationSession`] directly (or a
/// [`SessionManager`](crate::session::SessionManager) for many agents)
/// when the input is a live stream rather than a recorded dataset.
pub struct Eudoxus {
    session: LocalizationSession,
}

impl std::fmt::Debug for Eudoxus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Eudoxus({:?})", self.session)
    }
}

impl Eudoxus {
    /// Wraps an already-built streaming session — the construction path
    /// [`SessionBuilder::build_batch`](crate::builder::SessionBuilder::build_batch)
    /// uses.
    pub fn from_session(session: LocalizationSession) -> Self {
        Eudoxus { session }
    }

    /// Creates a system without a map (registration mode unavailable; the
    /// mode selector then falls back to SLAM for indoor-known segments).
    #[deprecated(
        since = "0.2.0",
        note = "use `SessionBuilder::new(config).build_batch()` — the builder \
                also selects the in-loop execution engine and a persisted map"
    )]
    pub fn new(config: PipelineConfig) -> Self {
        crate::builder::SessionBuilder::new(config).build_batch()
    }

    /// Installs a persisted map, enabling registration mode.
    #[deprecated(
        since = "0.2.0",
        note = "use `SessionBuilder::new(config).map(map).build_batch()`"
    )]
    pub fn with_map(mut self, map: WorldMap) -> Self {
        let cfg = self.session.config().registration;
        self.session
            .register(Box::new(Registration::new(map, cfg)));
        self
    }

    /// Read access to the underlying streaming session (estimator
    /// registry, persisted map, …).
    pub fn session(&self) -> &LocalizationSession {
        &self.session
    }

    /// Mutable access to the underlying session (e.g. to register a
    /// custom backend before replaying).
    pub fn session_mut(&mut self) -> &mut LocalizationSession {
        &mut self.session
    }

    /// The map persisted by the session's mapping backend (SLAM), if any.
    pub fn persisted_map(&self) -> Option<WorldMap> {
        self.session.persisted_map()
    }

    /// The mode that will run for a frame in `env`, given the registered
    /// backends (e.g. map availability).
    pub fn effective_mode(&self, env: eudoxus_stream::Environment) -> Mode {
        self.session.effective_mode(env)
    }

    /// Resets all estimators (segment boundary).
    pub fn reset(&mut self) {
        self.session.reset();
    }

    /// Processes a whole dataset by replaying it as an event stream,
    /// producing the run log. Needs the `sim` feature (on by default) —
    /// a simulator-free serving build drives the session through
    /// `eudoxus_stream` sources instead.
    #[cfg(feature = "sim")]
    pub fn process_dataset(&mut self, dataset: &Dataset) -> RunLog {
        // Each replay's records are indexed from 0, like the dataset's
        // frames (a session fed live events instead counts monotonically).
        self.session.rebase_frame_index(0);
        let mut log = RunLog::new();
        for event in dataset.events() {
            if let Some(record) = self.session.push(event) {
                log.records.push(record);
            }
        }
        log
    }
}

// The tests replay datasets, so they need the (default) `sim` feature;
// dev-deps make `eudoxus_sim` itself available either way, but not the
// feature-gated `process_dataset`/`build_map` items they drive.
#[cfg(all(test, feature = "sim"))]
mod tests {
    use super::*;
    use crate::builder::SessionBuilder;
    use eudoxus_sim::{Environment, Platform, ScenarioBuilder, ScenarioKind};

    fn dataset(kind: ScenarioKind, frames: usize) -> Dataset {
        ScenarioBuilder::new(kind)
            .frames(frames)
            .seed(7)
            .platform(Platform::Drone)
            .build()
    }

    #[test]
    fn outdoor_runs_vio_and_stays_accurate() {
        let data = dataset(ScenarioKind::OutdoorUnknown, 6);
        let mut system = SessionBuilder::new(PipelineConfig::anchored()).build_batch();
        let log = system.process_dataset(&data);
        assert_eq!(log.len(), 6);
        assert!(log.records.iter().all(|r| r.mode == Mode::Vio));
        let rmse = log.translation_rmse();
        assert!(rmse < 1.5, "VIO RMSE {rmse} m");
    }

    #[test]
    fn indoor_unknown_runs_slam() {
        let data = dataset(ScenarioKind::IndoorUnknown, 5);
        let mut system = SessionBuilder::new(PipelineConfig::anchored()).build_batch();
        let log = system.process_dataset(&data);
        assert!(log.records.iter().all(|r| r.mode == Mode::Slam));
        let rmse = log.translation_rmse();
        assert!(rmse < 1.0, "SLAM RMSE {rmse} m");
    }

    #[test]
    fn indoor_known_without_map_degrades_to_slam() {
        let data = dataset(ScenarioKind::IndoorKnown, 2);
        let mut system = SessionBuilder::new(PipelineConfig::anchored()).build_batch();
        let log = system.process_dataset(&data);
        assert!(log.records.iter().all(|r| r.mode == Mode::Slam));
    }

    #[test]
    fn indoor_known_with_map_runs_registration() {
        let data = dataset(ScenarioKind::IndoorKnown, 6);
        // Mapping pass (SLAM over the same traversal), then registration.
        let map = crate::mapping::build_map(&data, &PipelineConfig::anchored());
        assert!(!map.points.is_empty());
        let mut system = SessionBuilder::new(PipelineConfig::anchored()).map(map).build_batch();
        let log = system.process_dataset(&data);
        assert!(log.records.iter().all(|r| r.mode == Mode::Registration));
        let tracked = log.records.iter().filter(|r| r.tracking).count();
        assert!(tracked >= log.len() / 2, "tracked {tracked}/{}", log.len());
    }

    #[test]
    fn mixed_dataset_switches_modes_at_segments() {
        let data = ScenarioBuilder::new(ScenarioKind::Mixed)
            .frames(12)
            .seed(3)
            .platform(Platform::Drone)
            .build();
        let mut system = SessionBuilder::new(PipelineConfig::anchored()).build_batch();
        let log = system.process_dataset(&data);
        let modes: Vec<Mode> = log.records.iter().map(|r| r.mode).collect();
        assert!(modes.contains(&Mode::Vio));
        assert!(modes.contains(&Mode::Slam));
        // Environment labels drive the modes.
        for r in &log.records {
            if r.environment == Environment::OutdoorUnknown {
                assert_eq!(r.mode, Mode::Vio);
            }
        }
    }

    #[test]
    fn kernels_recorded_per_mode() {
        let data = dataset(ScenarioKind::OutdoorUnknown, 4);
        let mut system = SessionBuilder::new(PipelineConfig::anchored()).build_batch();
        let log = system.process_dataset(&data);
        // Every VIO frame must at least run IMU integration.
        for r in &log.records {
            assert!(
                !r.backend_kernels.is_empty(),
                "frame {} has no kernel samples",
                r.index
            );
        }
        assert!(log.latency_summary(None).mean > 0.0);
    }

    #[test]
    fn repeated_replays_restart_frame_indices() {
        let data = dataset(ScenarioKind::OutdoorUnknown, 3);
        let mut system = SessionBuilder::new(PipelineConfig::anchored()).build_batch();
        let first = system.process_dataset(&data);
        let second = system.process_dataset(&data);
        assert_eq!(first.records[0].index, 0);
        assert_eq!(second.records[0].index, 0);
        assert_eq!(second.records.last().unwrap().index, 2);
    }
}
