//! Streaming localization: event-fed sessions and multi-agent serving.
//!
//! The batch entry point (`Eudoxus::process_dataset`, available with the
//! `sim` feature) replays a recorded dataset; a production service
//! instead ingests live sensor streams from many concurrent agents. This
//! module provides that seam:
//!
//! * [`LocalizationSession`] — one agent's estimator state, fed one
//!   [`SensorEvent`] at a time via [`push`](LocalizationSession::push).
//!   Backends are held as a registry of `Box<dyn Backend>` keyed by
//!   [`BackendMode`], so any of the three estimator families can be
//!   swapped for a custom implementation and mode dispatch is a lookup
//!   (with the paper's degradation semantics: a mode without a
//!   registered backend falls back along [`BackendMode::fallback`]).
//! * [`SessionManager`] — owns N independent sessions keyed by agent id
//!   and services their event queues round-robin: the sharding unit for
//!   scaling the service across cores and machines. Its per-agent
//!   inboxes are bounded [`IngestQueue`]s (unbounded by default; see
//!   [`set_ingest_limit`](SessionManager::set_ingest_limit)), and
//!   [`ingest`](SessionManager::ingest) /
//!   [`pump`](SessionManager::pump) connect it to a
//!   [`StreamMux`] of per-agent [`EventSource`]s — the source-agnostic
//!   ingestion path (`eudoxus_stream`) a live deployment feeds.
//!
//! [`EventSource`]: eudoxus_stream::EventSource

use crate::control::{
    AdmissionConfig, AdmissionStats, ThrottleConfig, ThrottleController, ThrottleStats,
};
use crate::engine::{CpuEngine, ExecutionEngine, FrameContext};
use crate::health::{
    DegradationState, FrameVitals, HealthConfig, HealthMonitor, HealthReport, SessionHealthStats,
};
use crate::instrument::{FrameRecord, IngestSnapshot};
use crate::mode::Mode;
use crate::pipeline::PipelineConfig;
use eudoxus_backend::{
    Backend, BackendEstimate, BackendInput, BackendMode, GpsFix, ImuReading, Registration, Slam,
    Vio, WorldMap,
};
use eudoxus_faults::{FaultCounters, FaultProcess};
use eudoxus_frontend::{FrameDirective, Frontend};
use eudoxus_geometry::{Pose, PoseAnchor, Vec3};
use eudoxus_stream::{
    Admission, Environment, ImageEvent, IngestCounters, IngestQueue, MuxPoll, OverflowPolicy,
    SensorEvent, StreamMux,
};
use eudoxus_telemetry::{CounterRegistry, SpanScope, Telemetry, TelemetryConfig, TelemetryHub};
use std::collections::VecDeque;

/// One agent's streaming localization state.
///
/// Push sensor events in arrival order; every [`SensorEvent::Image`]
/// produces a [`FrameRecord`], other events buffer until the frame that
/// consumes them. Sessions are assembled by the
/// [`SessionBuilder`](crate::builder::SessionBuilder) — estimator
/// registry, persisted map, and the in-loop
/// [`ExecutionEngine`](crate::engine::ExecutionEngine) are all chosen at
/// construction time.
///
/// # Example
///
/// ```no_run
/// use eudoxus_core::{PipelineConfig, SessionBuilder};
/// use eudoxus_sim::{ScenarioBuilder, ScenarioKind};
///
/// let dataset = ScenarioBuilder::new(ScenarioKind::OutdoorUnknown)
///     .frames(10)
///     .build();
/// let mut session = SessionBuilder::new(PipelineConfig::anchored()).build();
/// for event in dataset.events() {
///     if let Some(record) = session.push(event) {
///         println!("frame {}: {} @ {:?}", record.index, record.mode, record.pose);
///     }
/// }
/// ```
pub struct LocalizationSession {
    config: PipelineConfig,
    frontend: Frontend,
    backends: Vec<Box<dyn Backend>>,
    engine: Box<dyn ExecutionEngine>,
    pending_imu: Vec<ImuReading>,
    pending_gps: Vec<GpsFix>,
    /// `Some(anchor)` when a segment boundary arrived and the next frame
    /// must re-initialize the estimators.
    pending_boundary: Option<Option<PoseAnchor>>,
    next_index: usize,
    /// In-session fault injection, applied to every pushed event before
    /// it reaches the estimators. `None` (the default) is a passthrough.
    faults: Option<FaultProcess>,
    /// Health monitoring + graceful degradation. `None` (the default)
    /// keeps the session's historical behavior exactly.
    health: Option<HealthMonitor>,
    health_stats: SessionHealthStats,
    /// Timestamp of the last served frame in the current segment.
    last_frame_t: Option<f64>,
    /// Last trusted pose (dead-reckoning starts from here).
    last_pose: Option<Pose>,
    /// Finite-difference world-frame velocity from the last two served
    /// poses — the velocity the recovery re-anchor hands the estimators
    /// (a stationary re-anchor mid-motion would make them drift).
    last_velocity: Vec3,
    /// The previous frame's pose jump — the lag-one innovation fed to
    /// the health monitor (this frame's estimate doesn't exist yet when
    /// the monitor runs).
    last_innovation: f64,
    /// The closed-loop throttle controller. `None` (the default) keeps
    /// the frontend untouched by engine verdicts — bit-identical to
    /// sessions that predate the control loop.
    throttle: Option<ThrottleController>,
    /// The directive the frontend applies on the next processed frame.
    next_directive: Option<FrameDirective>,
    /// EWMA of the engine's modeled frame period (ms) — the admission
    /// signal, updated on every engine report whether or not the
    /// throttle is armed. `None` for passthrough engines.
    modeled_period_ms: Option<f64>,
    /// Span recording. `None` (the default) never touches a clock;
    /// armed sessions stamp frame/kernel/backend/engine/health spans
    /// but stay bit-identical on every pose and modeled quantity —
    /// telemetry is observation only.
    telemetry: Option<TelemetryHub>,
}

/// Smoothing factor of the session-level modeled-period EWMA (the
/// admission-control signal).
const MODELED_PERIOD_ALPHA: f64 = 0.25;

impl std::fmt::Debug for LocalizationSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let modes: Vec<&str> = self.backends.iter().map(|b| b.name()).collect();
        write!(
            f,
            "LocalizationSession(backends: [{}], engine: {}, frames: {})",
            modes.join(", "),
            self.engine.name(),
            self.next_index
        )
    }
}

impl LocalizationSession {
    /// Creates a session with the default estimator registry: VIO and
    /// SLAM.
    #[deprecated(
        since = "0.2.0",
        note = "use `SessionBuilder::new(config).build()` — the builder also \
                selects the in-loop execution engine, a persisted map, and \
                custom backends"
    )]
    pub fn new(config: PipelineConfig) -> Self {
        let mut session =
            LocalizationSession::from_parts(config.clone(), Vec::new(), Box::new(CpuEngine));
        session.register(Box::new(Vio::new(config.vio)));
        session.register(Box::new(Slam::new(config.slam)));
        session
    }

    /// Creates a session over an explicit estimator registry (no defaults
    /// added).
    #[deprecated(
        since = "0.2.0",
        note = "use `SessionBuilder::new(config).without_default_backends()\
                .backend(..)` — see the crate-level migration notes"
    )]
    pub fn with_registry(config: PipelineConfig, backends: Vec<Box<dyn Backend>>) -> Self {
        LocalizationSession::from_parts(config, backends, Box::new(CpuEngine))
    }

    /// The primitive constructor every public construction path funnels
    /// into: explicit registry (no defaults added), explicit engine.
    /// Backends should cover the frames the stream will carry; an image
    /// frame no registered backend (nor its fallbacks) can serve is
    /// returned as an unserved record (held pose, `tracking: false`)
    /// rather than panicking.
    pub(crate) fn from_parts(
        config: PipelineConfig,
        backends: Vec<Box<dyn Backend>>,
        engine: Box<dyn ExecutionEngine>,
    ) -> Self {
        LocalizationSession {
            frontend: Frontend::new(config.frontend),
            config,
            backends,
            engine,
            pending_imu: Vec::new(),
            pending_gps: Vec::new(),
            // The first frame of a stream starts the first segment.
            pending_boundary: Some(None),
            next_index: 0,
            faults: None,
            health: None,
            health_stats: SessionHealthStats::default(),
            last_frame_t: None,
            last_pose: None,
            last_velocity: Vec3::zero(),
            last_innovation: 0.0,
            throttle: None,
            next_directive: None,
            modeled_period_ms: None,
            telemetry: None,
        }
    }

    /// Attaches a fault process: every subsequently pushed event passes
    /// through it before reaching the estimators (dropped events are
    /// swallowed and counted). Also enables health monitoring with
    /// default thresholds unless [`enable_health`](Self::enable_health)
    /// already configured it — a faulted session without its survival
    /// reflex would be pointless.
    pub fn attach_faults(&mut self, process: FaultProcess) -> &mut Self {
        self.faults = Some(process);
        if self.health.is_none() {
            self.enable_health(HealthConfig::default());
        }
        self
    }

    /// Enables health monitoring + graceful degradation with the given
    /// thresholds (see [`HealthMonitor`]). Sessions without it keep the
    /// historical serving behavior bit for bit.
    pub fn enable_health(&mut self, config: HealthConfig) -> &mut Self {
        self.health = Some(HealthMonitor::new(config));
        self
    }

    /// Whether a fault process is attached.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The attached fault process's counters, if any.
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.faults.as_ref().map(FaultProcess::counters)
    }

    /// The current degradation state; `None` when health monitoring is
    /// not enabled.
    pub fn degradation_state(&self) -> Option<DegradationState> {
        self.health.as_ref().map(HealthMonitor::state)
    }

    /// Cumulative degradation accounting (all zeros when health
    /// monitoring is not enabled).
    pub fn health_stats(&self) -> SessionHealthStats {
        self.health_stats
    }

    /// Arms the closed-loop throttle: after every engine report the
    /// controller compares the modeled frame period against
    /// `config.deadline_ms` and — hysteretically — issues a
    /// [`FrameDirective`] the *next* frame's frontend applies (see
    /// [`ThrottleController`]). Requires a reporting engine; with the
    /// [`CpuEngine`] passthrough the controller never observes a
    /// period and stays idle.
    pub fn enable_throttle(&mut self, config: ThrottleConfig) -> &mut Self {
        self.throttle = Some(ThrottleController::new(config));
        self
    }

    /// Throttle counters (all zeros when the loop is unarmed).
    pub fn throttle_stats(&self) -> ThrottleStats {
        self.throttle
            .as_ref()
            .map(ThrottleController::stats)
            .unwrap_or_default()
    }

    /// Whether a throttle directive is currently in force.
    pub fn is_throttled(&self) -> bool {
        self.throttle
            .as_ref()
            .is_some_and(ThrottleController::is_throttled)
    }

    /// EWMA of the engine's modeled frame period (ms); `None` until a
    /// reporting engine has observed a frame. This is the signal
    /// [`SessionManager`] admission control prices agents by.
    pub fn modeled_period_ms(&self) -> Option<f64> {
        self.modeled_period_ms
    }

    /// Arms span recording: every pushed image frame opens a
    /// [`SpanScope::Frame`] span with kernel / backend / engine / health
    /// sub-spans stamped against the same [`TelemetryHub`]. Off by
    /// default, and free to turn on — the armed session is bit-identical
    /// to a plain one on every pose and modeled quantity (telemetry is
    /// strictly observation; nothing it records is ever read back into
    /// estimation or control).
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) -> &mut Self {
        let hub = TelemetryHub::new(config);
        self.frontend.set_telemetry(Some(hub.clone()));
        self.telemetry = Some(hub);
        self
    }

    /// The armed telemetry hub (drain spans, snapshot histograms), if
    /// any.
    pub fn telemetry(&self) -> Option<&TelemetryHub> {
        self.telemetry.as_ref()
    }

    /// Publishes every stats surface this session owns into `reg` under
    /// dotted scopes (`health.*`, `throttle.*`, `faults.*`, `link.*`) —
    /// one call yields the session's whole state as a flat snapshot.
    pub fn publish_counters(&self, reg: &mut CounterRegistry) {
        reg.scoped("health", |r| self.health_stats().publish(r));
        reg.scoped("throttle", |r| self.throttle_stats().publish(r));
        if let Some(counters) = self.fault_counters() {
            reg.scoped("faults", |r| counters.publish(r));
        }
        if let Some(link) = self.engine.link_stats() {
            reg.scoped("link", |r| link.publish(r));
        }
        if let Some(period) = self.modeled_period_ms {
            reg.gauge("modeled_period_ms", period);
        }
        reg.counter("frames_processed", self.next_index as u64);
    }

    /// Installs a persisted map, registering a registration backend.
    #[deprecated(
        since = "0.2.0",
        note = "use `SessionBuilder::new(config).map(map).build()`"
    )]
    pub fn with_map(mut self, map: WorldMap) -> Self {
        let cfg = self.config.registration;
        self.register(Box::new(Registration::new(map, cfg)));
        self
    }

    /// Registers an estimator, replacing any existing backend of the same
    /// mode.
    pub fn register(&mut self, backend: Box<dyn Backend>) -> &mut Self {
        let mode = backend.mode();
        self.backends.retain(|b| b.mode() != mode);
        self.backends.push(backend);
        self
    }

    /// The in-loop execution engine consulted after every frame.
    pub fn engine(&self) -> &dyn ExecutionEngine {
        self.engine.as_ref()
    }

    /// Swaps the in-loop execution engine — e.g. to attach a freshly
    /// trained [`ScheduledEngine`](crate::engine::ScheduledEngine) once
    /// enough profiling frames have streamed through. Takes effect from
    /// the next pushed frame; past records keep their reports.
    pub fn set_engine(&mut self, engine: Box<dyn ExecutionEngine>) -> &mut Self {
        self.engine = engine;
        self
    }

    /// The session configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Modes with a registered backend.
    pub fn registered_modes(&self) -> Vec<BackendMode> {
        self.backends.iter().map(|b| b.mode()).collect()
    }

    /// Read access to the registered backend of one mode.
    pub fn backend(&self, mode: BackendMode) -> Option<&dyn Backend> {
        self.backends
            .iter()
            .find(|b| b.mode() == mode)
            .map(|b| b.as_ref())
    }

    fn backend_mut(&mut self, mode: BackendMode) -> Option<&mut Box<dyn Backend>> {
        self.backends.iter_mut().find(|b| b.mode() == mode)
    }

    /// Frames processed so far (the index the next frame record gets).
    pub fn frames_processed(&self) -> usize {
        self.next_index
    }

    /// Rebases the index assigned to the next frame record (used by the
    /// batch adapter so each replayed dataset's records start at 0).
    pub fn rebase_frame_index(&mut self, index: usize) {
        self.next_index = index;
    }

    /// The mode that will serve a frame in `env`: the environment's
    /// preferred mode, degraded along [`BackendMode::fallback`] until a
    /// registered backend is found. With the default registry and no map,
    /// indoor-known frames degrade from registration to SLAM — the
    /// behavior the paper's mode selector specifies.
    pub fn effective_mode(&self, env: Environment) -> Mode {
        let mut mode = BackendMode::from(Mode::for_environment(env));
        loop {
            if self.backends.iter().any(|b| b.mode() == mode) {
                return Mode::from(mode);
            }
            match mode.fallback() {
                Some(f) => mode = f,
                // Nothing registered along the chain; report the last
                // (floor) mode — such frames are served gracefully as
                // unserved (held pose, `tracking: false`).
                None => return Mode::from(mode),
            }
        }
    }

    /// The map persisted by whichever registered backend builds one
    /// (SLAM), if any.
    pub fn persisted_map(&self) -> Option<WorldMap> {
        self.backends.iter().find_map(|b| b.persist_map())
    }

    /// Resets the frontend and every backend (the next frame starts a
    /// fresh unanchored segment).
    pub fn reset(&mut self) {
        self.frontend.reset();
        for b in &mut self.backends {
            b.reset();
        }
        self.pending_imu.clear();
        self.pending_gps.clear();
        self.pending_boundary = Some(None);
        if let Some(monitor) = &mut self.health {
            monitor.reset();
        }
        self.last_frame_t = None;
        self.last_pose = None;
        self.last_velocity = Vec3::zero();
        self.last_innovation = 0.0;
        // Throttle state and the modeled-period EWMA deliberately
        // survive: they describe the modeled *load*, not the
        // trajectory, and the load does not reset with the segment.
    }

    /// Feeds one sensor event. Returns the frame record when the event
    /// was an [`Image`](SensorEvent::Image); sensor and boundary events
    /// buffer and return `None` — as do events an attached fault process
    /// dropped (counted in
    /// [`faulted_drops`](SessionHealthStats::faulted_drops)).
    ///
    /// An image frame whose mode (after walking the fallback chain) has
    /// no registered backend — a registry misconfiguration — still
    /// returns a record: the last trusted pose is held, `tracking` is
    /// `false`, and with health monitoring enabled the attached
    /// [`HealthReport`] reports `served: false`.
    pub fn push(&mut self, event: SensorEvent) -> Option<FrameRecord> {
        let event = match &mut self.faults {
            Some(process) => match process.apply(event) {
                Some(event) => event,
                None => {
                    self.health_stats.faulted_drops += 1;
                    return None;
                }
            },
            None => event,
        };
        match event {
            SensorEvent::Imu(s) => {
                self.pending_imu.push(ImuReading {
                    t: s.t,
                    gyro: s.gyro,
                    accel: s.accel,
                });
                None
            }
            SensorEvent::Gps(g) => {
                self.pending_gps.push(GpsFix {
                    t: g.t,
                    position: g.position,
                    sigma: g.sigma,
                });
                None
            }
            SensorEvent::SegmentBoundary { anchor } => {
                // Sensor data buffered before the boundary belongs to the
                // segment that just ended; the fresh estimators must not
                // consume it. (Replayed datasets emit the inter-frame
                // window after the boundary, so this never drops theirs.)
                self.pending_imu.clear();
                self.pending_gps.clear();
                self.pending_boundary = Some(anchor);
                None
            }
            SensorEvent::Image(image) => Some(self.process_image(image)),
        }
    }

    fn process_image(&mut self, image: ImageEvent) -> FrameRecord {
        if let Some(anchor) = self.pending_boundary.take() {
            self.frontend.reset();
            let applied = if self.config.anchor_to_ground_truth {
                anchor
            } else {
                None
            };
            for b in &mut self.backends {
                b.begin_segment(applied);
            }
            // A fresh segment starts with fresh vitals: no inter-frame
            // gap, no innovation carried over from the old trajectory.
            if let Some(monitor) = &mut self.health {
                monitor.reset();
            }
            self.last_frame_t = None;
            self.last_pose = None;
            self.last_velocity = Vec3::zero();
            self.last_innovation = 0.0;
        }

        // Close the loop: the directive the controller issued off the
        // previous frame's report steers this frame's frontend budget.
        self.frontend.set_directive(self.next_directive);

        // Open the frame span; the frontend's kernel spans and the
        // backend / engine / health sub-spans below all land on the
        // same hub, stamped with this frame's index.
        let telemetry = self.telemetry.clone();
        let span_frame = self.next_index as u64;
        self.frontend.set_telemetry_frame(span_frame);
        let frame_start = telemetry.as_ref().map(|hub| hub.start());

        // Shared frontend.
        let fe = self.frontend.process(&image.left, &image.right);

        // Sensor windows accumulated since the previous frame.
        let imu = std::mem::take(&mut self.pending_imu);
        let gps = std::mem::take(&mut self.pending_gps);

        let input = BackendInput {
            t: image.t,
            observations: &fe.observations,
            imu: &imu,
            gps: &gps,
            rig: image.rig,
        };

        let preferred = self.effective_mode(image.environment);

        // Health verdict (when enabled) runs *before* the backend: the
        // state in force decides how this frame is served.
        let health_start = if self.health.is_some() {
            telemetry.as_ref().map(|hub| hub.start())
        } else {
            None
        };
        let health = self.health.as_mut().map(|monitor| {
            let vitals = FrameVitals {
                tracked: fe.observations.len(),
                inliers: fe.stats.tracks_continued,
                frame_gap: self.last_frame_t.map_or(0.0, |t0| image.t - t0),
                innovation: self.last_innovation,
            };
            let previous = monitor.state();
            let state = monitor.observe(&vitals);
            (previous, state, vitals)
        });
        if let (Some(hub), Some(start)) = (telemetry.as_ref(), health_start) {
            hub.record(SpanScope::Health, "health_observe", span_frame, start);
        }

        let backend_start = telemetry.as_ref().map(|hub| hub.start());
        let last_pose = self.last_pose.unwrap_or_else(Pose::identity);
        let mut mode = preferred;
        let mut served = true;
        let mut dead_reckoned = false;
        let estimate = match health {
            Some((previous, DegradationState::DeadReckoning, _)) => {
                self.health_stats.dead_reckoned_frames += 1;
                if previous == DegradationState::Recovering {
                    self.health_stats.relapses += 1;
                }
                // Vision is useless: drop the stale tracks so recovery
                // re-detects from scratch instead of matching garbage.
                self.frontend.reset();
                dead_reckoned = true;
                let from = PoseAnchor::new(last_pose, self.last_velocity);
                match self.dead_reckon_along_chain(preferred, &input, from) {
                    Some((served_mode, estimate)) => {
                        mode = served_mode;
                        estimate
                    }
                    None => {
                        // No backend can propagate blind: hold the last
                        // trusted pose.
                        served = false;
                        BackendEstimate {
                            pose: last_pose,
                            kernels: Vec::new(),
                            tracking: false,
                        }
                    }
                }
            }
            other => {
                if let Some((previous, state, _)) = &other {
                    match state {
                        DegradationState::Degraded => self.health_stats.degraded_frames += 1,
                        DegradationState::Recovering => {
                            self.health_stats.recovering_frames += 1;
                            if *previous == DegradationState::DeadReckoning {
                                // Vision is back: re-anchor every
                                // estimator at the dead-reckoned pose —
                                // a self-anchor, independent of
                                // `anchor_to_ground_truth` (which gates
                                // *external* truth, not the session's
                                // own estimate).
                                self.health_stats.recoveries += 1;
                                let anchor = PoseAnchor::new(last_pose, self.last_velocity);
                                for b in &mut self.backends {
                                    b.begin_segment(Some(anchor));
                                }
                            }
                        }
                        _ => {}
                    }
                }
                match self.backend_mut(preferred.into()) {
                    Some(backend) => backend.step(&input),
                    // An empty registry is a misconfiguration, but a
                    // serving node must not die for it: hold the last
                    // trusted pose (identity on a fresh segment) and
                    // report the frame as not tracking.
                    None => {
                        served = false;
                        BackendEstimate {
                            pose: last_pose,
                            kernels: Vec::new(),
                            tracking: false,
                        }
                    }
                }
            }
        };
        if let (Some(hub), Some(start)) = (telemetry.as_ref(), backend_start) {
            hub.record(SpanScope::Backend, "backend_step", span_frame, start);
        }

        if health.is_some() {
            self.health_stats.frames += 1;
            if !served {
                self.health_stats.unserved_frames += 1;
            }
            // Fallback means *degradation* moved the frame off the mode
            // this session would otherwise serve it with (`preferred`
            // already folds in registry availability, e.g. a mapless
            // session preferring SLAM indoors) — not a configuration
            // quirk.
            if mode != preferred {
                self.health_stats.fallback_frames += 1;
            }
            // Lag-one innovation for the *next* frame's vitals. Only
            // meaningful once a real previous pose exists — on the first
            // frame of a segment the jump from the identity placeholder
            // to an anchored start would read as a spurious fault.
            self.last_innovation = self
                .last_pose
                .map_or(0.0, |p0| estimate.pose.translation_distance(p0));
            if let (Some(t0), Some(p0)) = (self.last_frame_t, self.last_pose) {
                let dt = image.t - t0;
                if dt > 1e-9 {
                    self.last_velocity =
                        (estimate.pose.translation - p0.translation) * (1.0 / dt);
                }
            }
            self.last_pose = Some(estimate.pose);
            self.last_frame_t = Some(image.t);
        }

        // The frame's health verdict, shared by the engine seam (fault-
        // aware pricing) and the record.
        let health_report = health.map(|(_, state, vitals)| HealthReport {
            state,
            vitals,
            dead_reckoned,
            served,
        });

        // The in-loop offload decision: the engine sees this frame's
        // workload, measured costs and health verdict, and reports
        // where the kernels ran (or would run) on the modeled
        // accelerator. Engines only observe — the estimate above is
        // already final — so every engine choice is pose-bit-identical
        // to the CPU passthrough.
        let engine_start = telemetry.as_ref().map(|hub| hub.start());
        let mut execution = self.engine.execute_frame(&FrameContext {
            stats: &fe.stats,
            timing: &fe.timing,
            backend_kernels: &estimate.kernels,
            health: health_report,
        });
        if let (Some(hub), Some(start)) = (telemetry.as_ref(), engine_start) {
            hub.record(SpanScope::Engine, "execute_frame", span_frame, start);
        }

        // The verdict steers the *next* frame: feed the modeled frame
        // period to the admission EWMA and the throttle hysteresis.
        if let Some(report) = &mut execution {
            let total = report.total_ms();
            self.modeled_period_ms = Some(match self.modeled_period_ms {
                Some(p) => p + MODELED_PERIOD_ALPHA * (total - p),
                None => total,
            });
            if let Some(controller) = &mut self.throttle {
                // Misses escalate the severity ladder; the period
                // drives entry/exit hysteresis.
                self.next_directive =
                    controller.observe_with_miss(total, report.deadline_missed);
                report.directive = self.next_directive;
            }
        }

        if let (Some(hub), Some(start)) = (telemetry.as_ref(), frame_start) {
            hub.record(SpanScope::Frame, "frame", span_frame, start);
        }

        let index = self.next_index;
        self.next_index += 1;
        FrameRecord {
            index,
            t: image.t,
            environment: image.environment,
            mode,
            frontend_timing: fe.timing,
            frontend_stats: fe.stats,
            backend_kernels: estimate.kernels,
            execution,
            // The directive that was in force for *this* frame's
            // frontend work (issued off the previous frame's report).
            directive: self.frontend.directive(),
            // Streams without a reference (live sensors) store the
            // estimate here, and the flag excludes the frame from error
            // metrics — "no reference" must not masquerade as accuracy.
            has_ground_truth: image.ground_truth.is_some(),
            ground_truth: image.ground_truth.unwrap_or(estimate.pose),
            pose: estimate.pose,
            tracking: estimate.tracking,
            health: health_report,
        }
    }

    /// Walks the fallback chain from `preferred` asking each registered
    /// backend to dead-reckon; returns the first taker and the mode that
    /// served.
    fn dead_reckon_along_chain(
        &mut self,
        preferred: Mode,
        input: &BackendInput<'_>,
        from: PoseAnchor,
    ) -> Option<(Mode, BackendEstimate)> {
        let mut mode = Some(BackendMode::from(preferred));
        while let Some(m) = mode {
            if let Some(backend) = self.backend_mut(m) {
                if let Some(estimate) = backend.dead_reckon(input, from) {
                    return Some((Mode::from(m), estimate));
                }
            }
            mode = m.fallback();
        }
        None
    }
}

/// One agent slot inside a [`SessionManager`].
struct AgentSlot {
    id: String,
    session: LocalizationSession,
    inbox: IngestQueue,
    /// Admission-control counters (all zeros while unarmed).
    admission: AdmissionStats,
    /// Degrade-mode decimation phase (which frame of the keep cycle
    /// this agent is on).
    degrade_phase: u32,
    /// Times this agent's queue was drained on the polling thread
    /// instead of a parallel worker (faulted agents in
    /// [`SessionManager::poll_parallel`]) — the once-silent loss of
    /// parallelism, surfaced.
    sequential_drains: u64,
}

/// Outcome of [`SessionManager::try_enqueue`]: what became of the
/// offered event.
#[derive(Debug)]
pub enum Enqueue {
    /// Queued for the agent.
    Accepted,
    /// The agent's queue was full with
    /// [`OverflowPolicy::DropNewest`]; the event was discarded (and
    /// counted in the agent's [`IngestCounters`]).
    Dropped,
    /// The agent's queue was full with [`OverflowPolicy::Defer`]; the
    /// event is handed back for a later retry.
    Deferred(SensorEvent),
    /// Admission control refused the image frame: the agent's modeled
    /// frame period cannot meet its deadline, so the frame was shed
    /// outright (or dropped by degrade-mode decimation) *before*
    /// reaching the queue. The event is intentionally discarded and
    /// counted in the agent's
    /// [`AdmissionStats`](crate::control::AdmissionStats).
    Shed,
    /// No agent with that id is registered; the event is handed back.
    UnknownAgent(SensorEvent),
}

/// Tally of one [`SessionManager::ingest`] pass over a [`StreamMux`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Events moved from the mux into agent queues.
    pub enqueued: u64,
    /// Events discarded by a full [`OverflowPolicy::DropNewest`] queue.
    pub dropped: u64,
    /// Events a full [`OverflowPolicy::Defer`] queue refused; they stay
    /// buffered in the mux (their source gated for this pass) and are
    /// re-offered by the next `ingest` call.
    pub deferred: u64,
    /// Events whose mux source names an agent this manager does not
    /// know; they are discarded.
    pub unknown_agent: u64,
    /// Image events refused by admission control (shed outright or
    /// dropped by degrade-mode decimation) before reaching a queue.
    pub shed: u64,
    /// Whether the mux finished (every source closed and drained). When
    /// false, more events may arrive: either a source reported pending
    /// or deferred events are waiting behind a gate.
    pub closed: bool,
}

/// Owns N independent [`LocalizationSession`]s keyed by agent id and
/// services their event queues round-robin.
///
/// This is the serving/sharding seam: each agent's stream is isolated in
/// its own session. [`enqueue`](SessionManager::enqueue) is the ingest
/// side; [`poll`](SessionManager::poll) advances one agent at a time so
/// no single chatty agent can starve the others, and
/// [`poll_parallel`](SessionManager::poll_parallel) drains all queues
/// with the agents sharded across worker threads — same records, same
/// order, multi-core throughput.
#[derive(Default)]
pub struct SessionManager {
    agents: Vec<AgentSlot>,
    cursor: usize,
    /// Deadline-aware admission control; `None` (the default) admits
    /// every offered event, as before the control loop existed.
    admission: Option<AdmissionConfig>,
}

/// Admission verdict for one image event offered to an agent: `true`
/// admits it toward the queue, `false` refuses it (counted in the
/// slot's [`AdmissionStats`]). Non-image events are never gated —
/// sensor windows are cheap, and starving them would corrupt the
/// frames that *are* admitted.
fn admit_image(config: &AdmissionConfig, slot: &mut AgentSlot) -> bool {
    slot.admission.offered += 1;
    let Some(period) = slot.session.modeled_period_ms() else {
        // No modeled signal yet (cold start, or a passthrough engine):
        // the gate only acts on evidence.
        slot.admission.admitted += 1;
        return true;
    };
    // An agent stuck below Nominal is deprioritized: its modeled
    // period is inflated before the deadline comparison, so it
    // degrades and sheds earlier than a healthy agent at equal load.
    let below_nominal = slot
        .session
        .degradation_state()
        .is_some_and(|s| s != DegradationState::Nominal);
    let effective = if below_nominal {
        period * config.health_penalty
    } else {
        period
    };
    if effective > config.deadline_ms * config.shed_factor {
        slot.admission.shed += 1;
        return false;
    }
    if effective > config.deadline_ms {
        // Degrade mode: keep one image frame in every `degrade_keep`.
        let phase = slot.degrade_phase;
        slot.degrade_phase = slot.degrade_phase.wrapping_add(1);
        if phase.is_multiple_of(config.degrade_keep.max(1)) {
            slot.admission.admitted += 1;
            return true;
        }
        slot.admission.degraded += 1;
        return false;
    }
    slot.degrade_phase = 0;
    slot.admission.admitted += 1;
    true
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SessionManager({} agents, {} events queued)",
            self.agents.len(),
            self.pending_events()
        )
    }
}

impl SessionManager {
    /// An empty manager.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Adds an agent with its session and an unbounded ingest queue
    /// (bound it afterwards with
    /// [`set_ingest_limit`](Self::set_ingest_limit)). Replaces the
    /// session and resets the queue (events, bounds and counters) if the
    /// id already exists.
    pub fn add_agent(&mut self, id: impl Into<String>, session: LocalizationSession) {
        let id = id.into();
        if let Some(pos) = self.agents.iter().position(|a| a.id == id) {
            let slot = &mut self.agents[pos];
            slot.session = session;
            slot.inbox = IngestQueue::unbounded();
            slot.admission = AdmissionStats::default();
            slot.degrade_phase = 0;
            slot.sequential_drains = 0;
            // Telemetry-armed agents get their slot index as the trace
            // track (chrome `tid`), so a fleet trace reads one lane per
            // agent.
            if let Some(hub) = self.agents[pos].session.telemetry() {
                hub.set_track(pos as u32);
            }
        } else {
            if let Some(hub) = session.telemetry() {
                hub.set_track(self.agents.len() as u32);
            }
            self.agents.push(AgentSlot {
                id,
                session,
                inbox: IngestQueue::unbounded(),
                admission: AdmissionStats::default(),
                degrade_phase: 0,
                sequential_drains: 0,
            });
        }
    }

    /// Removes an agent, returning its session (with any queued events
    /// dropped).
    pub fn remove_agent(&mut self, id: &str) -> Option<LocalizationSession> {
        let pos = self.agents.iter().position(|a| a.id == id)?;
        let slot = self.agents.remove(pos);
        if self.cursor > pos {
            self.cursor -= 1;
        }
        Some(slot.session)
    }

    /// Number of registered agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Registered agent ids, in round-robin order.
    pub fn agent_ids(&self) -> impl Iterator<Item = &str> {
        self.agents.iter().map(|a| a.id.as_str())
    }

    /// Read access to one agent's session.
    pub fn session(&self, id: &str) -> Option<&LocalizationSession> {
        self.agents.iter().find(|a| a.id == id).map(|a| &a.session)
    }

    /// Total events waiting across all agents.
    pub fn pending_events(&self) -> usize {
        self.agents.iter().map(|a| a.inbox.len()).sum()
    }

    /// Bounds one agent's ingest queue in place (queued events and
    /// counters survive; shrinking below the current depth only refuses
    /// *future* events until the queue drains; capacity 0 is clamped to
    /// 1 — a queue that can never admit would stall the stream). Returns
    /// `false` when the agent is unknown.
    pub fn set_ingest_limit(
        &mut self,
        id: &str,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> bool {
        match self.agents.iter_mut().find(|a| a.id == id) {
            Some(slot) => {
                slot.inbox.set_limit(capacity, policy);
                true
            }
            None => false,
        }
    }

    /// One agent's backpressure counters (accepted/dropped/deferred,
    /// high watermark). `None` when the agent is unknown.
    pub fn ingest_counters(&self, id: &str) -> Option<IngestCounters> {
        self.agents
            .iter()
            .find(|a| a.id == id)
            .map(|a| a.inbox.counters())
    }

    /// Arms deadline-aware admission control: image events offered via
    /// [`try_enqueue`](Self::try_enqueue) or [`ingest`](Self::ingest)
    /// for an agent whose modeled frame period cannot meet
    /// `config.deadline_ms` are degraded (decimated) or shed before
    /// they reach the queue, with per-agent counters in
    /// [`IngestSnapshot`]. Unarmed managers admit everything, as
    /// before.
    pub fn set_admission_control(&mut self, config: AdmissionConfig) -> &mut Self {
        self.admission = Some(config);
        self
    }

    /// The admission-control policy in force, if armed.
    pub fn admission_control(&self) -> Option<&AdmissionConfig> {
        self.admission.as_ref()
    }

    /// One agent's admission counters (all zeros while admission
    /// control is unarmed). `None` when the agent is unknown.
    pub fn admission_stats(&self, id: &str) -> Option<AdmissionStats> {
        self.agents.iter().find(|a| a.id == id).map(|a| a.admission)
    }

    /// A per-agent snapshot of queue depth and backpressure counters, in
    /// round-robin order — the ingestion health the serving layer
    /// monitors (see [`IngestSnapshot`]).
    pub fn ingest_stats(&self) -> Vec<IngestSnapshot> {
        self.agents
            .iter()
            .map(|a| IngestSnapshot {
                agent: a.id.clone(),
                queued: a.inbox.len(),
                capacity: a.inbox.capacity(),
                counters: a.inbox.counters(),
                health: a.session.health_stats(),
                admission: a.admission,
                throttle: a.session.throttle_stats(),
                sequential_drains: a.sequential_drains,
            })
            .collect()
    }

    /// Queues an event for one agent, reporting exactly what became of
    /// it; rejected events ([`Enqueue::Deferred`] /
    /// [`Enqueue::UnknownAgent`]) are handed back for the caller to
    /// retry or drop.
    pub fn try_enqueue(&mut self, id: &str, event: SensorEvent) -> Enqueue {
        let admission = self.admission;
        match self.agents.iter_mut().find(|a| a.id == id) {
            Some(slot) => {
                if let Some(config) = &admission {
                    if matches!(event, SensorEvent::Image(_)) && !admit_image(config, slot) {
                        return Enqueue::Shed;
                    }
                }
                match slot.inbox.offer(event) {
                    Admission::Accepted => Enqueue::Accepted,
                    Admission::Dropped => Enqueue::Dropped,
                    Admission::Deferred(event) => Enqueue::Deferred(event),
                }
            }
            None => Enqueue::UnknownAgent(event),
        }
    }

    /// Queues an event for one agent, fire-and-forget. Returns `true`
    /// only when the event was accepted; on `false` it is gone — the
    /// agent was unknown, or the bounded queue was full and the event
    /// was discarded and **counted as a drop** (regardless of the
    /// queue's policy: this API cannot hand an event back, so a `Defer`
    /// refusal here is a real loss and is accounted as one). Use
    /// [`try_enqueue`](Self::try_enqueue) to get refused events back
    /// and retry losslessly.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_enqueue`, which reports exactly what became of the \
                event and hands refused events back instead of silently \
                dropping them"
    )]
    pub fn enqueue(&mut self, id: &str, event: SensorEvent) -> bool {
        match self.agents.iter_mut().find(|a| a.id == id) {
            Some(slot) => slot.inbox.push_or_drop(event),
            None => false,
        }
    }

    /// Moves every currently-deliverable event out of `mux` into the
    /// agents' ingest queues (sources are matched to agents by the name
    /// they were [registered](StreamMux::add_source) under). Stops when
    /// the mux reports pending (a live source has nothing yet) or
    /// closes. A full [`OverflowPolicy::Defer`] queue pushes back: the
    /// refused event stays in the mux as its source's head, the source
    /// is gated for the rest of this pass, and provably-earlier events
    /// from other sources keep flowing — per-agent order is never
    /// violated. The next `ingest` call clears the gates and retries.
    pub fn ingest(&mut self, mux: &mut StreamMux<'_>) -> IngestReport {
        mux.clear_gates();
        // Source→agent-slot resolution once per pass, not per event: the
        // mux's sources and this manager's agents are both fixed for the
        // duration of the borrow, and streams carry far more events
        // (IMU/GPS windows) than either has entries.
        let slot_of: Vec<Option<usize>> = (0..mux.source_count())
            .map(|s| self.agents.iter().position(|a| a.id == mux.agent(s)))
            .collect();
        let mut report = IngestReport::default();
        loop {
            match mux.poll() {
                MuxPoll::Ready { source, event } => {
                    // Admission control gates image frames before the
                    // queue sees them (same policy as `try_enqueue`).
                    if let (Some(config), Some(i)) = (&self.admission, slot_of[source]) {
                        if matches!(event, SensorEvent::Image(_))
                            && !admit_image(config, &mut self.agents[i])
                        {
                            report.shed += 1;
                            continue;
                        }
                    }
                    match slot_of[source].map(|i| self.agents[i].inbox.offer(event)) {
                        Some(Admission::Accepted) => report.enqueued += 1,
                        Some(Admission::Dropped) => report.dropped += 1,
                        Some(Admission::Deferred(event)) => {
                            report.deferred += 1;
                            mux.unpop(source, event);
                            mux.gate(source);
                        }
                        None => report.unknown_agent += 1,
                    }
                }
                MuxPoll::Pending => break,
                MuxPoll::Closed => {
                    report.closed = true;
                    break;
                }
            }
        }
        report
    }

    /// Drives a [`StreamMux`] to completion: alternately
    /// [`ingest`](Self::ingest)s deliverable events and drains the
    /// queues with [`run_until_idle`](Self::run_until_idle), until the
    /// mux closes and every queue is empty — the streaming equivalent of
    /// replaying each agent's dataset. Backpressure works for free:
    /// bounded Defer queues fill, gate their sources, drain, and refill
    /// on the next round. Returns the records in round-robin order.
    ///
    /// Stops early (returning what was produced) if a pass makes no
    /// progress — e.g. every remaining source is a live producer
    /// currently pending; call again when producers advance.
    pub fn pump(&mut self, mux: &mut StreamMux<'_>) -> Vec<(String, FrameRecord)> {
        let mut out = Vec::new();
        loop {
            let report = self.ingest(mux);
            let drained = self.run_until_idle();
            let progressed = report.enqueued > 0 || !drained.is_empty();
            out.extend(drained);
            if report.closed && self.pending_events() == 0 {
                break;
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Services agents round-robin: each agent with queued events gets a
    /// turn, draining its queue until a frame record is produced or the
    /// queue empties (partial frames — sensor events without their image
    /// yet — hand the turn to the next agent). Returns `None` only once
    /// no queued event can produce a record, i.e. every queue has
    /// drained.
    pub fn poll(&mut self) -> Option<(String, FrameRecord)> {
        let n = self.agents.len();
        let start = self.cursor;
        for turn in 0..n {
            let idx = (start + turn) % n;
            if self.agents[idx].inbox.is_empty() {
                continue;
            }
            // This agent gets the turn; the next poll starts after it
            // regardless of whether a frame completes.
            self.cursor = (idx + 1) % n;
            let slot = &mut self.agents[idx];
            while let Some(event) = slot.inbox.pop() {
                if let Some(record) = slot.session.push(event) {
                    return Some((slot.id.clone(), record));
                }
            }
        }
        None
    }

    /// Polls until every queue is empty, collecting the records produced.
    pub fn run_until_idle(&mut self) -> Vec<(String, FrameRecord)> {
        let mut out = Vec::new();
        while let Some(produced) = self.poll() {
            out.push(produced);
        }
        // poll() returning None guarantees the queues drained (trailing
        // non-frame events are consumed into session buffers).
        debug_assert_eq!(self.pending_events(), 0);
        out
    }

    /// Drains every queue like [`run_until_idle`](Self::run_until_idle),
    /// but shards the *agents* across `n_workers` OS threads
    /// (`std::thread::scope`). Sessions are independent, so each worker
    /// drives its share of sessions sequentially with no locking; the
    /// per-agent record streams are then merged back into exactly the
    /// order sequential round-robin polling would have produced — the
    /// returned vector (ids, records, poses, bit for bit) and the final
    /// manager/session states are identical to the sequential path.
    ///
    /// Use [`poll`](Self::poll) when single-frame latency or external
    /// side-effect ordering matters; use this when throughput does.
    /// Worker-count guidance: sessions are CPU-bound, so `n_workers ≈
    /// min(agent_count, physical cores)` saturates the machine; more
    /// workers than agents is never useful (the extra threads idle), and
    /// `n_workers = 1` degenerates to the sequential path.
    pub fn poll_parallel(&mut self, n_workers: usize) -> Vec<(String, FrameRecord)> {
        let n = self.agents.len();
        if n == 0 {
            return Vec::new();
        }

        // The skeleton simulation below predicts one record per image
        // event — but a session with an attached fault process may drop
        // image events at push time, so its output cannot be predicted
        // from the queue alone. Partition: faulted agents are drained
        // *now*, on this thread, recording which of their events really
        // produced records (their exact skeleton); clean agents keep
        // the image-flag prediction and still shard across the workers.
        // Sessions are independent, so draining a faulted agent ahead
        // of its round-robin turns changes no record — only the merge
        // below decides the interleave.
        let mut eager_records: Vec<VecDeque<FrameRecord>> =
            (0..n).map(|_| VecDeque::new()).collect();
        let mut remaining: Vec<VecDeque<bool>> = Vec::with_capacity(n);
        for (idx, slot) in self.agents.iter_mut().enumerate() {
            if slot.session.has_faults() {
                if !slot.inbox.is_empty() {
                    // Surface the lost parallelism (see IngestSnapshot).
                    slot.sequential_drains += 1;
                }
                let mut flags = VecDeque::with_capacity(slot.inbox.len());
                while let Some(event) = slot.inbox.pop() {
                    match slot.session.push(event) {
                        Some(record) => {
                            flags.push_back(true);
                            eager_records[idx].push_back(record);
                        }
                        None => flags.push_back(false),
                    }
                }
                remaining.push(flags);
            } else {
                remaining.push(
                    slot.inbox
                        .iter()
                        .map(|e| matches!(e, SensorEvent::Image(_)))
                        .collect(),
                );
            }
        }
        let mut merge_order: Vec<usize> = Vec::new();
        let mut cursor = self.cursor;
        'polls: loop {
            let start = cursor;
            for turn in 0..n {
                let idx = (start + turn) % n;
                if remaining[idx].is_empty() {
                    continue;
                }
                cursor = (idx + 1) % n;
                let mut produced = false;
                while let Some(is_image) = remaining[idx].pop_front() {
                    if is_image {
                        produced = true;
                        break;
                    }
                }
                if produced {
                    merge_order.push(idx);
                    continue 'polls;
                }
            }
            break;
        }

        // Fan the *clean* agents out: each worker drains whole
        // sessions, so all per-session work stays single-threaded and
        // bit-identical. Faulted agents were already drained above.
        let mut per_agent = eager_records;
        let mut clean: Vec<(usize, &mut AgentSlot)> = self
            .agents
            .iter_mut()
            .enumerate()
            .filter(|(_, slot)| !slot.session.has_faults())
            .collect();
        if !clean.is_empty() {
            let n_workers = n_workers.clamp(1, clean.len());
            let chunk = clean.len().div_ceil(n_workers);
            let mut results: Vec<(usize, Vec<FrameRecord>)> = Vec::with_capacity(clean.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = clean
                    .chunks_mut(chunk)
                    .enumerate()
                    .map(|(worker, slots)| {
                        scope.spawn(move || {
                            slots
                                .iter_mut()
                                .map(|(idx, slot)| {
                                    // One Worker-scope span per drained
                                    // agent, tagged with the worker that
                                    // ran it (`frame_idx` carries the
                                    // worker index — kernel names must
                                    // stay `&'static`).
                                    let hub = slot.session.telemetry().cloned();
                                    let drain_start = hub.as_ref().map(|h| h.start());
                                    let mut records = Vec::new();
                                    while let Some(event) = slot.inbox.pop() {
                                        if let Some(record) = slot.session.push(event) {
                                            records.push(record);
                                        }
                                    }
                                    if let (Some(h), Some(start)) = (hub.as_ref(), drain_start)
                                    {
                                        h.record(
                                            SpanScope::Worker,
                                            "drain",
                                            worker as u64,
                                            start,
                                        );
                                    }
                                    (*idx, records)
                                })
                                .collect::<Vec<(usize, Vec<FrameRecord>)>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    results.extend(handle.join().expect("session worker panicked"));
                }
            });
            for (idx, records) in results {
                per_agent[idx] = records.into();
            }
        }

        // Deterministic merge: interleave the per-agent streams in the
        // simulated round-robin order.
        let out: Vec<(String, FrameRecord)> = merge_order
            .into_iter()
            .map(|idx| {
                let record = per_agent[idx]
                    .pop_front()
                    .expect("skeleton schedule matches session output");
                (self.agents[idx].id.clone(), record)
            })
            .collect();
        debug_assert!(per_agent.iter().all(|s| s.is_empty()));
        self.cursor = cursor;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SessionBuilder;
    use eudoxus_sim::{Platform, ScenarioBuilder, ScenarioKind};

    fn make_session() -> LocalizationSession {
        SessionBuilder::new(PipelineConfig::anchored()).build()
    }

    /// Test shorthand: queue an event that must be accepted.
    fn enq(manager: &mut SessionManager, id: &str, event: SensorEvent) {
        assert!(
            matches!(manager.try_enqueue(id, event), Enqueue::Accepted),
            "event for {id} must be accepted"
        );
    }

    fn dataset(kind: ScenarioKind, frames: usize, seed: u64) -> eudoxus_sim::Dataset {
        ScenarioBuilder::new(kind)
            .frames(frames)
            .seed(seed)
            .platform(Platform::Drone)
            .build()
    }

    #[test]
    fn default_registry_serves_vio_and_slam() {
        let session = make_session();
        assert_eq!(
            session.effective_mode(Environment::OutdoorUnknown),
            Mode::Vio
        );
        assert_eq!(
            session.effective_mode(Environment::IndoorUnknown),
            Mode::Slam
        );
    }

    #[test]
    fn registry_without_registration_degrades_indoor_known_to_slam() {
        // The satellite property: with no Registration backend
        // registered, IndoorKnown segments fall back to SLAM (the
        // pre-registry `effective_mode` behavior).
        let session = make_session();
        assert!(session.backend(BackendMode::Registration).is_none());
        assert_eq!(
            session.effective_mode(Environment::IndoorKnown),
            Mode::Slam
        );

        // End-to-end: every frame of an indoor-known stream runs SLAM.
        let data = dataset(ScenarioKind::IndoorKnown, 3, 7);
        let mut session = make_session();
        let records: Vec<FrameRecord> =
            data.events().filter_map(|e| session.push(e)).collect();
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.mode == Mode::Slam));
    }

    #[cfg(feature = "sim")]
    #[test]
    fn registry_with_map_serves_registration() {
        let data = dataset(ScenarioKind::IndoorKnown, 4, 7);
        let map = crate::mapping::build_map(&data, &PipelineConfig::anchored());
        let session = SessionBuilder::new(PipelineConfig::anchored()).map(map).build();
        assert!(session.backend(BackendMode::Registration).is_some());
        assert_eq!(
            session.effective_mode(Environment::IndoorKnown),
            Mode::Registration
        );
    }

    #[test]
    fn fallback_walks_past_missing_slam() {
        // Custom registry with only VIO: even indoor-unknown frames
        // degrade all the way to odometry.
        let config = PipelineConfig::anchored();
        let vio = config.vio;
        let session = SessionBuilder::new(config)
            .without_default_backends()
            .backend(move || eudoxus_backend::Vio::new(vio))
            .build();
        assert_eq!(
            session.effective_mode(Environment::IndoorUnknown),
            Mode::Vio
        );
        assert_eq!(session.effective_mode(Environment::IndoorKnown), Mode::Vio);
    }

    #[test]
    fn register_replaces_same_mode_backend() {
        let config = PipelineConfig::anchored();
        let mut session = SessionBuilder::new(config.clone()).build();
        assert_eq!(session.registered_modes().len(), 2);
        session.register(Box::new(eudoxus_backend::Vio::new(config.vio)));
        assert_eq!(session.registered_modes().len(), 2, "no duplicate modes");
    }

    #[test]
    fn boundary_drops_sensor_data_from_the_old_segment() {
        // IMU pushed before a segment boundary belongs to the segment
        // that ended; the new segment's first frame must not consume it.
        let data = dataset(ScenarioKind::IndoorUnknown, 1, 5);
        let image = data
            .events()
            .find_map(|e| match e {
                SensorEvent::Image(img) => Some(img),
                _ => None,
            })
            .expect("dataset has a frame");

        let anchor = eudoxus_geometry::PoseAnchor::stationary(
            eudoxus_geometry::Pose::identity(),
        );
        let mut session = make_session();
        // Violent stale IMU from the "previous segment".
        for i in 0..20 {
            session.push(SensorEvent::Imu(eudoxus_sim::ImuSample {
                t: -1.0 + i as f64 * 0.005,
                gyro: eudoxus_geometry::Vec3::new(3.0, -3.0, 3.0),
                accel: eudoxus_geometry::Vec3::new(50.0, 50.0, 50.0),
            }));
        }
        session.push(SensorEvent::SegmentBoundary {
            anchor: Some(anchor),
        });
        let polluted = session
            .push(SensorEvent::Image(image.clone()))
            .expect("image yields a record");

        // Reference: the same frame with no stale data.
        let mut clean = make_session();
        clean.push(SensorEvent::SegmentBoundary {
            anchor: Some(anchor),
        });
        let reference = clean
            .push(SensorEvent::Image(image))
            .expect("image yields a record");

        assert!(
            polluted
                .pose
                .translation_distance(reference.pose) < 1e-9,
            "stale pre-boundary IMU leaked into the new segment: {:?} vs {:?}",
            polluted.pose.translation,
            reference.pose.translation
        );
    }

    #[test]
    fn poll_skips_agents_with_partial_frames() {
        // Agent "a" has only a partial frame queued (no image); agent
        // "b" has a complete frame. poll() must hand the turn past "a"
        // and return "b"'s record rather than None.
        let mut manager = SessionManager::new();
        manager.add_agent("a", make_session());
        manager.add_agent("b", make_session());
        let db = dataset(ScenarioKind::OutdoorUnknown, 1, 4);
        enq(&mut manager, "a", SensorEvent::SegmentBoundary { anchor: None });
        for e in db.events() {
            enq(&mut manager, "b", e);
        }
        let (id, _) = manager.poll().expect("b's frame must be served");
        assert_eq!(id, "b");
        assert!(manager.poll().is_none());
        assert_eq!(manager.pending_events(), 0);
    }

    #[test]
    fn poll_parallel_matches_sequential_for_every_worker_count() {
        // Three agents with different scenario kinds and queue shapes
        // (one gets a trailing partial frame). The parallel drain must
        // reproduce the sequential record stream exactly for any worker
        // count, including workers > agents.
        let build = || {
            let mut manager = SessionManager::new();
            for id in ["a", "b", "c"] {
                manager.add_agent(id, make_session());
            }
            for (id, kind, seed) in [
                ("a", ScenarioKind::OutdoorUnknown, 1),
                ("b", ScenarioKind::IndoorUnknown, 2),
                ("c", ScenarioKind::Mixed, 3),
            ] {
                for e in dataset(kind, 3, seed).events() {
                    enq(&mut manager, id, e);
                }
            }
            // Trailing partial frame for "b": consumed, yields no record.
            enq(&mut manager, "b", SensorEvent::SegmentBoundary { anchor: None });
            manager
        };

        for workers in [1, 2, 8] {
            let mut sequential = build();
            let expected = sequential.run_until_idle();
            assert!(!expected.is_empty());

            let mut parallel = build();
            let got = parallel.poll_parallel(workers);
            assert_eq!(got.len(), expected.len(), "{workers} workers: count");
            for ((eid, er), (gid, gr)) in expected.iter().zip(&got) {
                assert_eq!(eid, gid, "{workers} workers: agent order");
                assert_eq!(er.index, gr.index);
                assert_eq!(er.mode, gr.mode);
                assert_eq!(
                    er.pose.translation.x.to_bits(),
                    gr.pose.translation.x.to_bits(),
                    "{workers} workers: pose bits"
                );
            }
            assert_eq!(parallel.pending_events(), 0);

            // Follow-up traffic sees identical manager state (cursor,
            // session buffers) on both paths.
            for m in [&mut sequential, &mut parallel] {
                for e in dataset(ScenarioKind::OutdoorUnknown, 1, 9).events() {
                    enq(m, "a", e);
                }
            }
            let s2 = sequential.run_until_idle();
            let p2 = parallel.run_until_idle();
            assert_eq!(s2.len(), p2.len());
            for ((_, a), (_, b)) in s2.iter().zip(&p2) {
                assert_eq!(
                    a.pose.translation.x.to_bits(),
                    b.pose.translation.x.to_bits()
                );
            }
        }
    }

    #[test]
    fn poll_parallel_on_empty_manager_is_empty() {
        let mut manager = SessionManager::new();
        assert!(manager.poll_parallel(4).is_empty());
        manager.add_agent("a", make_session());
        assert!(manager.poll_parallel(4).is_empty());
    }

    #[test]
    fn manager_round_robins_agents() {
        let mut manager = SessionManager::new();
        for id in ["a", "b"] {
            manager.add_agent(id, make_session());
        }
        let da = dataset(ScenarioKind::OutdoorUnknown, 2, 1);
        let db = dataset(ScenarioKind::IndoorUnknown, 2, 2);
        for e in da.events() {
            enq(&mut manager, "a", e);
        }
        for e in db.events() {
            enq(&mut manager, "b", e);
        }
        assert!(matches!(
            manager.try_enqueue("nobody", SensorEvent::SegmentBoundary { anchor: None }),
            Enqueue::UnknownAgent(_)
        ));

        let records = manager.run_until_idle();
        assert_eq!(records.len(), 4);
        // Fairness: the two agents alternate frames.
        let order: Vec<&str> = records.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(order, vec!["a", "b", "a", "b"]);
        // Streams stayed isolated: per-agent indices both run 0..2 and
        // modes match each agent's environment.
        for (id, rec) in &records {
            match id.as_str() {
                "a" => assert_eq!(rec.mode, Mode::Vio),
                _ => assert_eq!(rec.mode, Mode::Slam),
            }
        }
        assert_eq!(manager.session("a").unwrap().frames_processed(), 2);
        assert_eq!(manager.session("b").unwrap().frames_processed(), 2);
    }

    #[test]
    fn bounded_drop_queue_sheds_load_and_counts_it() {
        let mut manager = SessionManager::new();
        manager.add_agent("a", make_session());
        // A queue far too small for the stream: overflow drops events.
        assert!(manager.set_ingest_limit("a", 3, OverflowPolicy::DropNewest));
        assert!(!manager.set_ingest_limit("nobody", 3, OverflowPolicy::DropNewest));

        let data = dataset(ScenarioKind::OutdoorUnknown, 2, 6);
        let total = data.events().count();
        let mut accepted = 0;
        for e in data.events() {
            if matches!(manager.try_enqueue("a", e), Enqueue::Accepted) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 3, "only the first three events fit");
        let c = manager.ingest_counters("a").unwrap();
        assert_eq!(c.accepted, 3);
        assert_eq!(c.dropped(), total as u64 - 3);
        assert_eq!(c.high_watermark, 3);
        // The manager still serves what it kept (first frame's prefix may
        // not include an image; just require no panic and a drain).
        let _ = manager.run_until_idle();
        assert_eq!(manager.pending_events(), 0);
    }

    #[test]
    fn try_enqueue_hands_refusals_back() {
        let mut manager = SessionManager::new();
        manager.add_agent("a", make_session());
        manager.set_ingest_limit("a", 1, OverflowPolicy::Defer);

        let boundary = || SensorEvent::SegmentBoundary { anchor: None };
        assert!(matches!(manager.try_enqueue("a", boundary()), Enqueue::Accepted));
        let Enqueue::Deferred(back) = manager.try_enqueue("a", boundary()) else {
            panic!("full Defer queue must hand the event back");
        };
        assert_eq!(manager.ingest_counters("a").unwrap().deferred, 1);
        let Enqueue::UnknownAgent(_) = manager.try_enqueue("ghost", back) else {
            panic!("unknown agent must hand the event back");
        };
        // Fire-and-forget enqueue (the deprecated bool shim) on the same
        // full Defer queue is a real loss and must be counted as a drop,
        // not a deferral.
        #[allow(deprecated)]
        {
            assert!(!manager.enqueue("a", boundary()));
        }
        let c = manager.ingest_counters("a").unwrap();
        assert_eq!(c.deferred, 1, "only the try_enqueue refusal defers");
        assert_eq!(c.events_dropped, 1, "the enqueue refusal is a drop");
        // ingest_stats reflects the bound and the depth.
        let stats = manager.ingest_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].agent, "a");
        assert_eq!(stats[0].queued, 1);
        assert_eq!(stats[0].capacity, 1);
    }

    #[test]
    fn mux_pump_matches_direct_replay_even_under_backpressure() {
        // Reference: every event enqueued up front, drained sequentially.
        let kinds = [
            ("out", ScenarioKind::OutdoorUnknown, 41),
            ("in", ScenarioKind::IndoorUnknown, 42),
        ];
        let datasets: Vec<_> = kinds
            .iter()
            .map(|(id, kind, seed)| (*id, dataset(*kind, 3, *seed)))
            .collect();

        let mut reference = SessionManager::new();
        for (id, data) in &datasets {
            reference.add_agent(*id, make_session());
            for e in data.events() {
                enq(&mut reference, id, e);
            }
        }
        let expected = reference.run_until_idle();
        assert_eq!(expected.len(), 6);

        // Streaming path: per-agent DatasetSources through a StreamMux,
        // with tiny Defer queues so backpressure gating actually runs.
        let mut manager = SessionManager::new();
        let mut mux = StreamMux::new();
        for (id, data) in &datasets {
            manager.add_agent(*id, make_session());
            manager.set_ingest_limit(id, 4, OverflowPolicy::Defer);
            mux.add_source(*id, data.source());
        }
        let got = manager.pump(&mut mux);
        assert!(mux.is_finished());

        // Tight bounds change *when* each agent's frames complete, so the
        // global interleave may differ from the prefilled replay; each
        // agent's record stream must still match bit for bit.
        assert_eq!(expected.len(), got.len());
        for (id, _) in &datasets {
            let want: Vec<&FrameRecord> = expected
                .iter()
                .filter(|(eid, _)| eid == id)
                .map(|(_, r)| r)
                .collect();
            let have: Vec<&FrameRecord> = got
                .iter()
                .filter(|(gid, _)| gid == id)
                .map(|(_, r)| r)
                .collect();
            assert_eq!(want.len(), have.len(), "{id}: frame count");
            for (e, g) in want.iter().zip(&have) {
                assert_eq!(e.index, g.index, "{id}: index");
                assert_eq!(e.mode, g.mode, "{id}: mode");
                assert_eq!(
                    e.pose.translation.x.to_bits(),
                    g.pose.translation.x.to_bits(),
                    "{id}: pose bits"
                );
            }
        }
        // Lossless: deferrals happened (queues are tiny) but nothing was
        // dropped.
        let c = manager.ingest_counters("out").unwrap();
        assert_eq!(c.dropped(), 0);
        assert!(c.deferred > 0, "capacity-4 queues must have pushed back");
    }

    #[test]
    fn ingest_counts_unknown_agents() {
        let mut manager = SessionManager::new();
        manager.add_agent("known", make_session());
        let data = dataset(ScenarioKind::OutdoorUnknown, 1, 8);
        let mut mux = StreamMux::new();
        mux.add_source("known", data.source());
        mux.add_source("stranger", data.source());
        let report = manager.ingest(&mut mux);
        assert!(report.closed);
        assert_eq!(report.unknown_agent, data.events().count() as u64);
        assert_eq!(report.enqueued, data.events().count() as u64);
        assert_eq!(report.dropped + report.deferred, 0);
    }
}
