//! Summary statistics for latency characterization.
//!
//! The paper quantifies latency *variation* with the relative standard
//! deviation (RSD, "a.k.a. coefficient of variation, defined as the ratio
//! of the standard deviation to the mean", Sec. IV-B). [`Summary`] carries
//! every statistic the characterization figures report.

/// Summary of a sample set (latencies in milliseconds, errors in meters —
/// unit-agnostic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary; empty input produces all-zero statistics.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Summary {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Relative standard deviation (coefficient of variation), as a
    /// fraction of the mean.
    pub fn rsd(&self) -> f64 {
        if self.mean.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Worst-case over best-case ratio (the paper reports up to 4× in
    /// SLAM mode, Sec. IV-B).
    pub fn max_over_min(&self) -> f64 {
        if self.min <= 0.0 {
            f64::INFINITY
        } else {
            self.max / self.min
        }
    }

    /// Root mean square of the samples.
    pub fn rms(samples: &[f64]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        (samples.iter().map(|x| x * x).sum::<f64>() / samples.len() as f64).sqrt()
    }

    /// `p`-th percentile (0–100), by nearest-rank on a sorted copy.
    pub fn percentile(samples: &[f64], p: f64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert!((s.max_over_min() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rsd_is_scale_invariant() {
        let a = Summary::of(&[1.0, 2.0, 3.0]);
        let b = Summary::of(&[10.0, 20.0, 30.0]);
        assert!((a.rsd() - b.rsd()).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_safe() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.rsd(), 0.0);
        assert_eq!(Summary::rms(&[]), 0.0);
        assert_eq!(Summary::percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert_eq!(Summary::percentile(&v, 0.0), 0.0);
        assert_eq!(Summary::percentile(&v, 50.0), 50.0);
        assert_eq!(Summary::percentile(&v, 100.0), 100.0);
    }

    #[test]
    fn rms_of_constant() {
        assert!((Summary::rms(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }
}
