//! Control-loop contracts: the guarantees the closed-loop PR must keep,
//! end to end through `LocalizationSession` and `SessionManager`.
//!
//! 1. **Hysteresis.** The throttle loop is hysteretic: constant load
//!    yields at most one entry and never oscillates (property-tested
//!    over the closed loop, for any overload/relief pair).
//! 2. **Conservation.** Admission counters conserve:
//!    `offered == admitted + degraded + shed`, for any deadline and
//!    stream (property-tested through `try_enqueue`).
//! 3. **Opt-in is free.** A throttle-armed session under no deadline
//!    pressure is bit-identical to an unthrottled one — the loop
//!    observes until the deadline actually binds.
//! 4. **Binding deadlines bind.** Under a deadline between the
//!    throttled and unthrottled modeled periods the loop enters, stays
//!    (no oscillation), and converges the modeled frame period under
//!    the deadline, with the directive stamped on the records.
//! 5. **Fault-aware pricing.** Dead-reckoned / unserved frames are
//!    priced as IMU-only work: no offloadable kernels, no offload
//!    decisions, zero modeled frontend latency — at the engine seam and
//!    through a real blacked-out session.
//! 6. **Mixed fleets stay parallel.** `poll_parallel` over a fleet with
//!    faulted *and* clean agents matches sequential polling bit for bit
//!    (the faulted agents drain sequentially, surfaced in
//!    `sequential_drains`; the clean ones still shard).
//! 7. **Deadlines without links are armed.** A `ScheduledEngine` with
//!    only a deadline re-plans overruns to all-local, stamps
//!    `deadline_missed`, and counts misses in `LinkStats`.
//!
//! CI runs this suite by name (`cargo test -p eudoxus-core control_`).

use eudoxus_backend::{Kernel, KernelSample};
use eudoxus_core::{
    AdmissionConfig, DegradationState, Enqueue, ExecutionEngine, FallbackCause, FaultPlan,
    FaultProfile, FrameContext, FrameDirective, FrameRecord, FrameVitals, HealthReport,
    LocalizationSession, OffloadPolicy, PipelineConfig, ScheduledEngine, SessionBuilder,
    SessionManager, ThrottleConfig, ThrottleController,
};
use eudoxus_accel::Platform as AccelPlatform;
use eudoxus_frontend::{FrameStats, FrontendTiming};
use eudoxus_sim::{Dataset, ScenarioBuilder, ScenarioKind};
use proptest::prelude::*;
use std::time::Duration;

fn dataset(kind: ScenarioKind, frames: usize, seed: u64) -> Dataset {
    ScenarioBuilder::new(kind).frames(frames).seed(seed).build()
}

fn stream(session: &mut LocalizationSession, data: &Dataset) -> Vec<FrameRecord> {
    data.events().filter_map(|e| session.push(e)).collect()
}

/// Exact bit pattern of a pose.
fn pose_bits(pose: &eudoxus_geometry::Pose) -> [u64; 7] {
    [
        pose.translation.x.to_bits(),
        pose.translation.y.to_bits(),
        pose.translation.z.to_bits(),
        pose.rotation.w.to_bits(),
        pose.rotation.x.to_bits(),
        pose.rotation.y.to_bits(),
        pose.rotation.z.to_bits(),
    ]
}

/// A scheduled always-offload engine on the drone rig (the modeled
/// numbers are deterministic functions of the workload, so throttled
/// runs replay bit for bit).
fn drone_engine() -> ScheduledEngine {
    ScheduledEngine::with_policy(AccelPlatform::edx_drone(), OffloadPolicy::Always)
}

/// A synthetic frame context with offloadable backend work.
fn heavy_ctx<'a>(
    stats: &'a FrameStats,
    timing: &'a FrontendTiming,
    kernels: &'a [KernelSample],
    health: Option<HealthReport>,
) -> FrameContext<'a> {
    FrameContext {
        stats,
        timing,
        backend_kernels: kernels,
        health,
    }
}

fn heavy_stats() -> FrameStats {
    FrameStats {
        keypoints_left: 350,
        keypoints_right: 350,
        stereo_matches: 260,
        tracks_continued: 280,
        tracks_spawned: 40,
        tracks_lost: 30,
    }
}

fn heavy_timing() -> FrontendTiming {
    FrontendTiming {
        detection: Duration::from_millis(30),
        filtering: Duration::from_millis(20),
        description: Duration::from_millis(15),
        stereo: Duration::from_millis(25),
        temporal: Duration::from_millis(10),
    }
}

fn heavy_kernels() -> Vec<KernelSample> {
    vec![
        KernelSample {
            kernel: Kernel::ImuIntegration,
            millis: 2.0,
            size: 20,
        },
        KernelSample {
            kernel: Kernel::KalmanGain,
            millis: 8.0,
            size: 120,
        },
    ]
}

// ---------------------------------------------------------------------
// 1. Hysteresis (property).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The closed loop over the controller: while the directive is in
    /// force the modeled period is `throttled_period`, otherwise
    /// `raw_period`. For *any* constant load pair and exit margin the
    /// loop enters at most once and never exits — no oscillation.
    #[test]
    fn control_throttle_is_hysteretic_on_constant_load(
        deadline in 1.0f64..50.0,
        overload in 1.01f64..4.0,
        relief in 0.1f64..1.0,
        margin in 0.5f64..0.95,
    ) {
        let raw_period = deadline * overload; // always over the deadline
        let throttled_period = raw_period * relief; // directive helps (or not)
        let mut config = ThrottleConfig::new(deadline);
        config.exit_margin = margin;
        let mut tc = ThrottleController::new(config);
        let mut period = raw_period;
        for _ in 0..300 {
            let directive = tc.observe(period);
            period = if directive.is_some() {
                throttled_period
            } else {
                raw_period
            };
        }
        prop_assert_eq!(tc.stats().entries, 1, "constant overload enters exactly once");
        prop_assert_eq!(tc.stats().exits, 0, "constant load must never exit (oscillation)");
        prop_assert!(tc.is_throttled());
        // The severity ladder must not re-introduce oscillation: with
        // no deadline misses reported, the rung chosen on entry is the
        // rung the loop is still on 300 frames later.
        prop_assert_eq!(tc.stats().escalations, 0, "no misses, no escalation");
        prop_assert_eq!(tc.stats().deescalations, 0, "constant load never steps down");
    }

    /// Ladder half of the no-oscillation contract: under *persistent*
    /// deadline misses the rung climbs monotonically, saturates at the
    /// top, and never counts more escalations than rungs above the
    /// entry point — for any deadline and overshoot.
    #[test]
    fn control_ladder_escalates_monotonically_under_persistent_misses(
        deadline in 1.0f64..50.0,
        overload in 1.01f64..4.0,
    ) {
        let period = deadline * overload;
        let mut tc = ThrottleController::new(ThrottleConfig::new(deadline));
        let mut prev_level = 0u8;
        for _ in 0..300 {
            tc.observe_with_miss(period, true);
            let level = tc.level();
            prop_assert!(level >= prev_level, "rung must never drop while misses persist");
            prev_level = level;
        }
        prop_assert_eq!(tc.level(), 3, "persistent misses saturate the ladder");
        let entry_level = 3 - tc.stats().escalations;
        prop_assert!((1..=3).contains(&entry_level));
        prop_assert_eq!(tc.stats().entries, 1, "escalation is not re-entry");
        prop_assert_eq!(tc.stats().exits, 0);
        prop_assert_eq!(tc.stats().deescalations, 0);
    }
}

// ---------------------------------------------------------------------
// 2. Conservation (property).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every image frame offered through `try_enqueue` lands in exactly
    /// one admission counter: `offered == admitted + degraded + shed`,
    /// whatever the deadline makes the gate do.
    #[test]
    fn control_counters_conserve(
        frames in 4usize..10,
        seed in 0u64..1000,
        deadline_sel in 0usize..3,
    ) {
        // Impossible, borderline, and unreachable deadlines: the gate
        // sheds, degrades, or admits — conservation must hold in all.
        let deadline_ms = [1e-4, 5.0, 1e9][deadline_sel];
        let data = dataset(ScenarioKind::OutdoorUnknown, frames, seed);
        let mut manager = SessionManager::new();
        manager.set_admission_control(AdmissionConfig::new(deadline_ms));
        let mut session = SessionBuilder::new(PipelineConfig::anchored()).build();
        session.set_engine(Box::new(drone_engine()));
        manager.add_agent("solo", session);
        let mut offered_images = 0u64;
        for event in data.events() {
            if matches!(event, eudoxus_core::SensorEvent::Image(_)) {
                offered_images += 1;
            }
            let verdict = manager.try_enqueue("solo", event);
            prop_assert!(matches!(verdict, Enqueue::Accepted | Enqueue::Shed));
            // Drain as we go so the gate sees a live modeled period.
            while manager.poll().is_some() {}
        }
        let stats = manager.admission_stats("solo").expect("agent exists");
        prop_assert_eq!(stats.offered, offered_images);
        prop_assert_eq!(stats.offered, stats.admitted + stats.degraded + stats.shed);
        // The snapshot surfaces the same counters.
        let snapshot = &manager.ingest_stats()[0];
        prop_assert_eq!(snapshot.admission, stats);
    }
}

// ---------------------------------------------------------------------
// 3. Opt-in is free.

/// A throttle armed under a deadline that never binds is pure
/// observation: poses, workload counters, and every modeled execution
/// number are bit-identical to the unthrottled session.
#[test]
fn control_no_pressure_is_bit_identical() {
    let data = dataset(ScenarioKind::Mixed, 16, 11);

    let mut plain = SessionBuilder::new(PipelineConfig::anchored()).build();
    plain.set_engine(Box::new(drone_engine()));
    let a = stream(&mut plain, &data);

    let mut armed = SessionBuilder::new(PipelineConfig::anchored())
        .throttle(ThrottleConfig::new(1e9))
        .build();
    armed.set_engine(Box::new(drone_engine()));
    let b = stream(&mut armed, &data);

    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(pose_bits(&x.pose), pose_bits(&y.pose), "pose drifted");
        assert_eq!(
            x.frontend_stats.keypoints_left, y.frontend_stats.keypoints_left,
            "workload drifted"
        );
        assert_eq!(
            x.frontend_stats.tracks_continued, y.frontend_stats.tracks_continued,
            "workload drifted"
        );
        let (ex, ey) = (
            x.execution.as_ref().expect("engine reports"),
            y.execution.as_ref().expect("engine reports"),
        );
        // Only the *deterministic* report fields: backend_ms and energy
        // fold in measured wall-clock kernel times, which no two live
        // runs share.
        assert_eq!(ex.frontend_ms.to_bits(), ey.frontend_ms.to_bits());
        assert_eq!(ex.offloadable, ey.offloadable);
        assert_eq!(ex.offloaded, ey.offloaded);
        assert_eq!(ex.target, ey.target);
        assert!(y.directive.is_none(), "no pressure, no directive");
    }
    assert_eq!(armed.throttle_stats().entries, 0);
    assert!(!armed.is_throttled());
}

// ---------------------------------------------------------------------
// 4. Binding deadlines bind.

/// A deadline the session cannot possibly meet throttles after exactly
/// `enter_frames` frames, never exits, stamps the directive on every
/// throttled record, and *actually* caps the frontend budget — the
/// engine verdict steering the kernels.
#[test]
fn control_binding_deadline_throttles_and_steers() {
    let directive = FrameDirective {
        max_keypoints: 50,
        max_tracks: 30,
        max_pyramid_levels: 2,
        scalar_klt: false,
    };
    let data = dataset(ScenarioKind::OutdoorUnknown, 24, 5);
    let mut session = SessionBuilder::new(PipelineConfig::anchored())
        .throttle(ThrottleConfig::new(1e-4).with_directive(directive))
        .build();
    session.set_engine(Box::new(drone_engine()));
    let records = stream(&mut session, &data);

    let stats = session.throttle_stats();
    assert_eq!(stats.entries, 1, "permanent overload enters exactly once");
    assert_eq!(stats.exits, 0, "an unmeetable deadline never clears");
    assert!(stats.throttled_frames > 0);
    assert!(session.is_throttled());

    // Entry after `enter_frames` (2) observed frames; the directive
    // steers the frame *after* that.
    let throttled: Vec<_> = records.iter().filter(|r| r.directive.is_some()).collect();
    assert_eq!(throttled.len(), records.len() - 2, "all later frames throttled");
    for r in &throttled {
        assert_eq!(r.directive, Some(directive));
        assert!(
            r.frontend_stats.keypoints_left <= directive.max_keypoints,
            "frame {}: directive did not cap the detector ({} keypoints)",
            r.index,
            r.frontend_stats.keypoints_left
        );
    }
}

/// Convergence, on deterministic synthetic load: with a deadline
/// between the throttled and unthrottled operating points, the closed
/// loop (controller steering which workload the engine prices) enters
/// once, holds, and converges the smoothed modeled period under the
/// deadline.
#[test]
fn control_modeled_period_converges_under_deadline() {
    let timing = heavy_timing();
    let kernels = heavy_kernels();
    let full = heavy_stats();
    let lite = FrameStats {
        keypoints_left: 50,
        keypoints_right: 50,
        stereo_matches: 30,
        tracks_continued: 25,
        tracks_spawned: 5,
        tracks_lost: 2,
    };
    let mut engine = drone_engine();
    let full_total = engine
        .execute_frame(&heavy_ctx(&full, &timing, &kernels, None))
        .expect("scheduled engines report")
        .total_ms();
    let lite_total = engine
        .execute_frame(&heavy_ctx(&lite, &timing, &kernels, None))
        .expect("scheduled engines report")
        .total_ms();
    assert!(lite_total < full_total, "the smaller budget must be cheaper");

    let deadline = 0.5 * (full_total + lite_total);
    let mut tc = ThrottleController::new(ThrottleConfig::new(deadline));
    let mut throttled = false;
    for _ in 0..60 {
        let stats = if throttled { &lite } else { &full };
        let report = engine
            .execute_frame(&heavy_ctx(stats, &timing, &kernels, None))
            .expect("scheduled engines report");
        throttled = tc.observe(report.total_ms()).is_some();
    }
    assert_eq!(tc.stats().entries, 1);
    assert_eq!(tc.stats().exits, 0, "constant load must not oscillate");
    assert!(
        tc.modeled_period_ms().expect("frames observed") < deadline,
        "modeled period must converge under the deadline"
    );
}

// ---------------------------------------------------------------------
// 5. Fault-aware pricing.

/// At the engine seam: a dead-reckoned (or unserved) frame is IMU-only
/// work — no modeled frontend, no offloadable kernels, no decisions —
/// and a frame still in the `DeadReckoning` state skips offload even
/// when vision is back.
#[test]
fn control_dead_reckoning_prices_imu_only() {
    let stats = heavy_stats();
    let timing = heavy_timing();
    let kernels = heavy_kernels();
    let mut engine = drone_engine();

    let vitals = FrameVitals {
        tracked: 0,
        inliers: 0,
        frame_gap: 0.1,
        innovation: 0.0,
    };
    let dead_reckoned = HealthReport {
        state: DegradationState::DeadReckoning,
        vitals,
        dead_reckoned: true,
        served: true,
    };
    let report = engine
        .execute_frame(&heavy_ctx(&stats, &timing, &kernels, Some(dead_reckoned)))
        .expect("scheduled engines report");
    assert_eq!(report.offloadable, 0, "IMU-only frames offer no vision kernels");
    assert_eq!(report.offloaded, 0);
    assert!(report.decisions.is_empty());
    assert_eq!(report.frontend_ms, 0.0, "no vision, no frontend");

    // Vision back but the state machine still in DeadReckoning: the
    // frame runs, but accelerator offload is skipped entirely.
    let recovering = HealthReport {
        state: DegradationState::DeadReckoning,
        vitals,
        dead_reckoned: false,
        served: true,
    };
    let report = engine
        .execute_frame(&heavy_ctx(&stats, &timing, &kernels, Some(recovering)))
        .expect("scheduled engines report");
    assert_eq!(report.offloaded, 0, "DeadReckoning state skips offload");
    assert!(report.decisions.iter().all(|d| !d.offloaded));

    // Healthy frames price exactly as without the health seam.
    let nominal = HealthReport {
        state: DegradationState::Nominal,
        vitals,
        dead_reckoned: false,
        served: true,
    };
    let with_health = engine
        .execute_frame(&heavy_ctx(&stats, &timing, &kernels, Some(nominal)))
        .expect("scheduled engines report");
    let without = engine
        .execute_frame(&heavy_ctx(&stats, &timing, &kernels, None))
        .expect("scheduled engines report");
    assert_eq!(with_health.offloaded, without.offloaded);
    assert_eq!(
        with_health.backend_ms.to_bits(),
        without.backend_ms.to_bits()
    );
}

/// Through a real session: a blackout forces dead-reckoning, and every
/// dead-reckoned frame's execution report prices zero vision-kernel
/// offload decisions.
#[test]
fn control_blackout_session_prices_zero_offload() {
    let data = dataset(ScenarioKind::OutdoorUnknown, 24, 7);
    let plan = FaultPlan {
        blackout_start: 8,
        blackout_len: 5,
        blackout_period: 0,
        ..FaultPlan::default()
    };
    let mut session = SessionBuilder::new(PipelineConfig::anchored())
        .faults(plan, 1)
        .build();
    session.set_engine(Box::new(drone_engine()));
    let records = stream(&mut session, &data);

    let dead_reckoned: Vec<_> = records
        .iter()
        .filter(|r| r.health.is_some_and(|h| h.dead_reckoned))
        .collect();
    assert!(
        !dead_reckoned.is_empty(),
        "the blackout must force dead-reckoning"
    );
    for r in &dead_reckoned {
        let report = r.execution.as_ref().expect("engine reports every frame");
        assert_eq!(report.offloadable, 0, "frame {}: vision kernels priced", r.index);
        assert_eq!(report.offloaded, 0);
        assert!(report.decisions.is_empty());
        assert_eq!(report.frontend_ms, 0.0);
    }
}

// ---------------------------------------------------------------------
// 6. Mixed fleets stay parallel.

/// `poll_parallel` over a fleet mixing faulted and clean agents returns
/// exactly the sequential interleave, bit for bit, and surfaces the
/// faulted agents' lost parallelism in `sequential_drains`.
#[test]
fn control_mixed_fleet_poll_parallel_matches_sequential() {
    let kinds = [
        ScenarioKind::OutdoorUnknown,
        ScenarioKind::IndoorKnown,
        ScenarioKind::Mixed,
    ];
    let build_manager = || {
        let mut manager = SessionManager::new();
        for (i, kind) in kinds.into_iter().enumerate() {
            let data = dataset(kind, 10, 20 + i as u64);
            let mut builder = SessionBuilder::new(PipelineConfig::anchored());
            if i == 0 {
                // One agent behind a real fault plan: its record count
                // cannot be predicted from its queue alone.
                builder = builder.faults(FaultProfile::dusty_site().plan, 9);
            }
            manager.add_agent(format!("agent-{i}"), builder.build());
            for event in data.events() {
                assert!(matches!(
                    manager.try_enqueue(&format!("agent-{i}"), event),
                    Enqueue::Accepted
                ));
            }
        }
        manager
    };

    let mut sequential = build_manager();
    let seq = sequential.run_until_idle();
    let mut parallel = build_manager();
    let par = parallel.poll_parallel(2);

    assert_eq!(seq.len(), par.len(), "record counts diverged");
    for ((id_a, rec_a), (id_b, rec_b)) in seq.iter().zip(&par) {
        assert_eq!(id_a, id_b, "interleave diverged");
        assert_eq!(rec_a.index, rec_b.index);
        assert_eq!(pose_bits(&rec_a.pose), pose_bits(&rec_b.pose), "pose bits diverged");
        assert_eq!(rec_a.tracking, rec_b.tracking);
    }

    // The degraded path is surfaced, not silent: the faulted agent
    // drained sequentially, the clean ones did not.
    let stats = parallel.ingest_stats();
    assert!(stats[0].sequential_drains > 0, "faulted agent drains sequentially");
    assert_eq!(stats[1].sequential_drains, 0);
    assert_eq!(stats[2].sequential_drains, 0);
}

// ---------------------------------------------------------------------
// 7. Admission control sheds.

/// An agent whose modeled rate cannot possibly meet its deadline is
/// shed: the first frames are admitted cold (no modeled evidence yet),
/// everything after the first report is refused, and the counters and
/// snapshot agree.
#[test]
fn control_admission_sheds_overloaded_agents() {
    let data = dataset(ScenarioKind::OutdoorUnknown, 10, 3);
    let mut manager = SessionManager::new();
    // Microsecond deadline: any modeled period exceeds shed_factor × it.
    manager.set_admission_control(AdmissionConfig::new(1e-4));
    let mut session = SessionBuilder::new(PipelineConfig::anchored()).build();
    session.set_engine(Box::new(drone_engine()));
    manager.add_agent("hot", session);

    let mut shed = 0u64;
    for event in data.events() {
        match manager.try_enqueue("hot", event) {
            Enqueue::Accepted => {}
            Enqueue::Shed => shed += 1,
            other => panic!("unexpected verdict {other:?}"),
        }
        while manager.poll().is_some() {}
    }
    assert!(shed > 0, "an impossible deadline must shed");
    let stats = manager.admission_stats("hot").expect("agent exists");
    assert_eq!(stats.shed, shed);
    assert!(stats.admitted > 0, "cold frames admitted before evidence");
    assert_eq!(stats.offered, stats.admitted + stats.degraded + stats.shed);
    assert_eq!(manager.ingest_stats()[0].admission, stats);
}

// ---------------------------------------------------------------------
// 8. Deadlines without links are armed.

/// A `ScheduledEngine` with a deadline and *no* link still re-plans
/// overruns to all-local, stamps `deadline_missed` when even the local
/// plan is late, and counts the misses in its `LinkStats`.
#[test]
fn control_deadline_missed_counted_without_link() {
    let stats = heavy_stats();
    let timing = heavy_timing();
    let kernels = heavy_kernels();
    let mut engine = drone_engine().with_deadline_ms(1e-4);

    let report = engine
        .execute_frame(&heavy_ctx(&stats, &timing, &kernels, None))
        .expect("scheduled engines report");
    assert_eq!(
        report.fallback,
        Some(FallbackCause::DeadlineExceeded),
        "overrunning offloads re-plan to all-local"
    );
    assert_eq!(report.offloaded, 0);
    assert!(
        report.deadline_missed,
        "the all-local plan is still late and must say so"
    );

    let link_stats = engine.link_stats().expect("deadline arms the stats");
    assert_eq!(link_stats.frames, 1);
    assert_eq!(link_stats.deadline_missed, 1);
    assert_eq!(link_stats.frames_lost, 0, "no link, no channel losses");
}
