//! Graceful-degradation contracts: the guarantees the fault-injection
//! PR must keep, end to end through `LocalizationSession`.
//!
//! 1. **Opt-in is free.** Sessions without an injector — and sessions
//!    with health monitoring armed but a clean stream — are
//!    bit-identical to the plain pipeline across all five
//!    `ScenarioKind`s. The survival reflex costs nothing until a fault
//!    actually fires.
//! 2. **Determinism.** Two live runs behind the same fault profile and
//!    seed produce identical `HealthReport` traces and bit-identical
//!    poses.
//! 3. **Survival.** A forced blackout mid-run completes: the session
//!    dead-reckons on IMU through the blind window, recovers when
//!    vision returns, and the post-recovery error stays bounded.
//! 4. **Fallback.** Dead-reckoning walks the registry chain
//!    (registration → SLAM → VIO) to the first backend that can
//!    propagate blind — indoors, a blackout is served by VIO and
//!    counted as a fallback frame.
//! 5. **No panic on an empty registry.** A session with no backends
//!    holds the pose and counts the frame unserved instead of
//!    panicking.
//!
//! CI runs this suite by name (`cargo test -p eudoxus-core degradation`).

use eudoxus_core::{
    DegradationState, FaultPlan, FaultProfile, FrameRecord, HealthConfig, LocalizationSession,
    PipelineConfig, RunLog, SessionBuilder,
};
use eudoxus_sim::{Dataset, ScenarioBuilder, ScenarioKind};

const ALL_KINDS: [ScenarioKind; 5] = [
    ScenarioKind::OutdoorUnknown,
    ScenarioKind::OutdoorKnown,
    ScenarioKind::IndoorUnknown,
    ScenarioKind::IndoorKnown,
    ScenarioKind::Mixed,
];

fn dataset(kind: ScenarioKind, frames: usize) -> Dataset {
    ScenarioBuilder::new(kind).frames(frames).seed(7).build()
}

fn stream(session: &mut LocalizationSession, data: &Dataset) -> Vec<FrameRecord> {
    data.events().filter_map(|e| session.push(e)).collect()
}

/// Exact bit pattern of a pose.
fn pose_bits(pose: &eudoxus_geometry::Pose) -> [u64; 7] {
    [
        pose.translation.x.to_bits(),
        pose.translation.y.to_bits(),
        pose.translation.z.to_bits(),
        pose.rotation.w.to_bits(),
        pose.rotation.x.to_bits(),
        pose.rotation.y.to_bits(),
        pose.rotation.z.to_bits(),
    ]
}

fn assert_bit_identical(a: &[FrameRecord], b: &[FrameRecord], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: record counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.index, y.index, "{label}: frame index drifted");
        assert_eq!(x.mode, y.mode, "{label}: mode drifted at {}", x.index);
        assert_eq!(
            pose_bits(&x.pose),
            pose_bits(&y.pose),
            "{label}: pose bits drifted at frame {}",
            x.index
        );
        assert_eq!(
            x.tracking, y.tracking,
            "{label}: tracking flag drifted at {}",
            x.index
        );
    }
}

/// A blackout window long enough to force dead-reckoning, early enough
/// to leave room for a full recovery, one-shot so the tail stays clean.
fn blackout_plan() -> FaultPlan {
    FaultPlan {
        blackout_start: 8,
        blackout_len: 5,
        blackout_period: 0,
        ..FaultPlan::default()
    }
}

// ---------------------------------------------------------------------
// 1. Opt-in is free.

/// Arming the health monitor on a clean stream must not perturb a
/// single bit of any estimate: monitoring observes, it does not touch.
#[test]
fn health_monitoring_on_clean_stream_is_bit_identical() {
    for kind in ALL_KINDS {
        let data = dataset(kind, 24);
        let mut plain = SessionBuilder::new(PipelineConfig::anchored()).build();
        let mut watched = SessionBuilder::new(PipelineConfig::anchored())
            .health(HealthConfig::default())
            .build();
        let a = stream(&mut plain, &data);
        let b = stream(&mut watched, &data);
        assert_bit_identical(&a, &b, &format!("{kind:?} plain vs health-armed"));
        // The plain session never reports health; the armed one always
        // does, and a clean stream never leaves nominal serving.
        assert!(a.iter().all(|r| r.health.is_none()));
        for r in &b {
            let h = r.health.expect("armed session reports health");
            assert!(h.served && !h.dead_reckoned, "{kind:?}: clean stream degraded");
        }
        assert_eq!(watched.health_stats().dead_reckoned_frames, 0);
        assert_eq!(watched.health_stats().unserved_frames, 0);
    }
}

/// An attached injector with the empty plan is an exact passthrough —
/// the whole fault machinery in the loop, zero effect on the output.
#[test]
fn empty_fault_plan_is_bit_identical_passthrough() {
    for kind in ALL_KINDS {
        let data = dataset(kind, 24);
        let mut plain = SessionBuilder::new(PipelineConfig::anchored()).build();
        let mut faulted = SessionBuilder::new(PipelineConfig::anchored())
            .faults(FaultPlan::default(), 99)
            .build();
        let a = stream(&mut plain, &data);
        let b = stream(&mut faulted, &data);
        assert_bit_identical(&a, &b, &format!("{kind:?} plain vs empty-plan"));
        let counters = faulted.fault_counters().expect("injector attached");
        assert_eq!(counters.images_dropped, 0, "{kind:?}: empty plan dropped frames");
        assert_eq!(faulted.health_stats().faulted_drops, 0);
    }
}

// ---------------------------------------------------------------------
// 2. Determinism.

/// Two live runs behind the same profile and seed replay identically:
/// same poses (bit for bit), same `HealthReport` trace, same counters.
#[test]
fn same_seed_runs_replay_identical_health_traces() {
    let data = dataset(ScenarioKind::OutdoorUnknown, 30);
    let run = |seed: u64| {
        let mut session = SessionBuilder::new(PipelineConfig::anchored())
            .faults(FaultProfile::dusty_site().plan, seed)
            .build();
        let records = stream(&mut session, &data);
        let stats = session.health_stats();
        let counters = session.fault_counters().expect("injector attached");
        (records, stats, counters)
    };
    let (a, stats_a, counters_a) = run(42);
    let (b, stats_b, counters_b) = run(42);
    assert_bit_identical(&a, &b, "same-seed replay");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.health, y.health, "health trace drifted at frame {}", x.index);
    }
    assert_eq!(stats_a, stats_b, "health stats drifted between replays");
    assert_eq!(counters_a, counters_b, "fault counters drifted between replays");

    // A different seed must actually change the corruption (the plan
    // has stochastic processes), proving the seed is live.
    let (c, _, _) = run(43);
    assert!(
        a.iter().zip(&c).any(|(x, y)| pose_bits(&x.pose) != pose_bits(&y.pose)),
        "different fault seeds produced identical trajectories"
    );
}

// ---------------------------------------------------------------------
// 3. Survival: forced blackout completes, dead-reckons, recovers.

#[test]
fn forced_blackout_dead_reckons_and_recovers_bounded() {
    let data = dataset(ScenarioKind::OutdoorUnknown, 32);
    let mut session = SessionBuilder::new(PipelineConfig::anchored())
        .faults(blackout_plan(), 1)
        .build();
    let records = stream(&mut session, &data);
    assert_eq!(records.len(), 32, "blackout must not lose frames, only vision");

    let states: Vec<DegradationState> = records
        .iter()
        .map(|r| r.health.expect("health armed").state)
        .collect();
    // The blind window dead-reckons...
    assert!(
        states.contains(&DegradationState::DeadReckoning),
        "blackout never forced dead-reckoning: {states:?}"
    );
    // ...recovery probation follows...
    assert!(
        states.contains(&DegradationState::Recovering),
        "no recovery probation after the blackout: {states:?}"
    );
    // ...and the tail settles back to nominal serving.
    assert_eq!(
        *states.last().unwrap(),
        DegradationState::Nominal,
        "session never returned to nominal: {states:?}"
    );
    let stats = session.health_stats();
    // One fewer than the 5-frame window: tracks coast into the first
    // gray frame (KLT still matches against the last real pyramid);
    // starvation registers once the reference pyramid is gray too.
    assert_eq!(stats.dead_reckoned_frames, 4);
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.unserved_frames, 0);

    // Dead-reckoned frames are marked; every frame was served by *some*
    // estimator (VIO propagates blind — nothing falls through).
    for r in &records {
        let h = r.health.unwrap();
        assert!(h.served);
        assert_eq!(h.dead_reckoned, h.state == DegradationState::DeadReckoning);
    }

    // Bounded recovery: once nominal again, the error must not run away
    // (the velocity-aware re-anchor keeps the filter from drifting).
    let post_recovery: Vec<&FrameRecord> = records
        .iter()
        .skip(20)
        .filter(|r| r.health.unwrap().state == DegradationState::Nominal)
        .collect();
    assert!(!post_recovery.is_empty());
    let worst = post_recovery
        .iter()
        .map(|r| r.translation_error())
        .fold(0.0_f64, f64::max);
    let clean_rmse = {
        let mut clean = SessionBuilder::new(PipelineConfig::anchored()).build();
        RunLog { records: stream(&mut clean, &data) }.translation_rmse()
    };
    assert!(
        worst < clean_rmse + 2.0,
        "post-recovery error ran away: worst {worst:.3} m vs clean RMSE {clean_rmse:.3} m"
    );
}

// ---------------------------------------------------------------------
// 4. Fallback: indoors, a blackout walks registration → … → VIO.

#[test]
fn indoor_blackout_walks_fallback_chain_to_vio() {
    let data = dataset(ScenarioKind::IndoorKnown, 24);
    // A surveyed map makes registration the genuinely preferred indoor
    // mode — the blind walk below has the whole chain to descend.
    let map = eudoxus_core::build_map(&data, &PipelineConfig::anchored());
    let mut session = SessionBuilder::new(PipelineConfig::anchored())
        .map(map)
        .faults(blackout_plan(), 1)
        .build();
    let records = stream(&mut session, &data);

    let blind: Vec<&FrameRecord> = records
        .iter()
        .filter(|r| r.health.unwrap().dead_reckoned)
        .collect();
    assert!(!blind.is_empty(), "indoor blackout never dead-reckoned");
    for r in &blind {
        // Registration and SLAM cannot propagate blind; the chain ends
        // at VIO, which serves the frame IMU-only.
        assert_eq!(
            r.mode,
            eudoxus_core::Mode::Vio,
            "blind frame {} served by {} instead of walking to vio",
            r.index,
            r.mode
        );
        assert!(!r.tracking, "blind propagation must not claim tracking");
    }
    // Those frames are off the environment's preferred mode — counted.
    assert_eq!(
        session.health_stats().fallback_frames,
        blind.len() as u64,
        "every dead-reckoned indoor frame is a fallback frame"
    );
    // Healthy frames stay on the preferred indoor mode.
    assert!(records
        .iter()
        .filter(|r| r.health.unwrap().state == DegradationState::Nominal)
        .all(|r| r.mode == eudoxus_core::Mode::Registration));
}

// ---------------------------------------------------------------------
// 5. Empty registry: unserved, never a panic.

#[test]
fn empty_registry_holds_pose_instead_of_panicking() {
    let data = dataset(ScenarioKind::OutdoorUnknown, 6);
    let mut session = SessionBuilder::new(PipelineConfig::default())
        .without_default_backends()
        .build();
    // No injector, no health monitor: the graceful path must hold
    // unconditionally, not only when monitoring is armed.
    let records = stream(&mut session, &data);
    assert_eq!(records.len(), 6);
    for r in &records {
        assert!(!r.tracking, "no backend, yet frame {} claims tracking", r.index);
        assert_eq!(
            pose_bits(&r.pose),
            pose_bits(&eudoxus_geometry::Pose::identity()),
            "held pose must stay at the last trusted estimate (identity)"
        );
        assert!(r.health.is_none(), "health off ⇒ no report");
    }

    // With monitoring armed the same situation is visible: served=false
    // on every record, unserved_frames counts them.
    let mut watched = SessionBuilder::new(PipelineConfig::default())
        .without_default_backends()
        .health(HealthConfig::default())
        .build();
    let records = stream(&mut watched, &data);
    assert!(records.iter().all(|r| !r.health.unwrap().served));
    assert_eq!(watched.health_stats().unserved_frames, 6);
}
