//! Engine equivalence: the two contracts the in-loop offload redesign
//! must keep, across every construction path.
//!
//! 1. **Builder == legacy constructors.** A default
//!    (`CpuEngine`-backed) `SessionBuilder` session is bit-identical to
//!    the deprecated `LocalizationSession::new`/`with_map` (and
//!    `Eudoxus::new`) paths across all five `ScenarioKind`s — the shims
//!    are pure forwarding, and the engine seam observes without touching
//!    the estimate.
//! 2. **In-loop == replay.** A `ScheduledEngine` deciding inside
//!    `push` produces, frame for frame, exactly the `AcceleratedRun`
//!    that `Executor::replay` computes post hoc from the same `RunLog`
//!    — same decisions, same modeled latencies, same energy, bit for
//!    bit — because both run one shared `AccelModel::model_frame` code
//!    path.
//!
//! CI runs this suite by name (`cargo test -p eudoxus-core engine_`);
//! a drift between the deprecated constructors and the builder, or
//! between live and replayed offload decisions, fails the gate.

// Comparing the deprecated constructors against the builder is the
// point of this suite.
#![allow(deprecated)]

use eudoxus_core::{
    CpuEngine, Eudoxus, Executor, FrameRecord, LinkProfile, LocalizationSession,
    ModeledAccelEngine, OffloadPolicy, PipelineConfig, RunLog, ScheduledEngine, SessionBuilder,
    StochasticLink,
};
use eudoxus_accel::Platform as AccelPlatform;
use eudoxus_sim::{Dataset, Platform, ScenarioBuilder, ScenarioKind};

const ALL_KINDS: [ScenarioKind; 5] = [
    ScenarioKind::OutdoorUnknown,
    ScenarioKind::OutdoorKnown,
    ScenarioKind::IndoorUnknown,
    ScenarioKind::IndoorKnown,
    ScenarioKind::Mixed,
];

fn dataset(kind: ScenarioKind, frames: usize, seed: u64) -> Dataset {
    ScenarioBuilder::new(kind)
        .frames(frames)
        .seed(seed)
        .platform(Platform::Drone)
        .build()
}

fn stream(session: &mut LocalizationSession, data: &Dataset) -> Vec<FrameRecord> {
    data.events().filter_map(|e| session.push(e)).collect()
}

/// Exact bit pattern of a pose.
fn pose_bits(pose: &eudoxus_geometry::Pose) -> [u64; 7] {
    [
        pose.translation.x.to_bits(),
        pose.translation.y.to_bits(),
        pose.translation.z.to_bits(),
        pose.rotation.w.to_bits(),
        pose.rotation.x.to_bits(),
        pose.rotation.y.to_bits(),
        pose.rotation.z.to_bits(),
    ]
}

/// The deterministic (non-wall-clock) record fields must match bitwise.
fn assert_records_bit_identical(legacy: &[FrameRecord], built: &[FrameRecord], what: &str) {
    assert_eq!(legacy.len(), built.len(), "{what}: record count");
    for (l, b) in legacy.iter().zip(built) {
        assert_eq!(l.index, b.index, "{what}: index");
        assert_eq!(l.mode, b.mode, "{what}: mode");
        assert_eq!(l.environment, b.environment, "{what}: environment");
        assert_eq!(pose_bits(&l.pose), pose_bits(&b.pose), "{what}: pose bits");
        assert_eq!(
            pose_bits(&l.ground_truth),
            pose_bits(&b.ground_truth),
            "{what}: ground-truth bits"
        );
        assert_eq!(l.tracking, b.tracking, "{what}: tracking");
        assert_eq!(
            l.backend_kernels.len(),
            b.backend_kernels.len(),
            "{what}: kernel count"
        );
        for (lk, bk) in l.backend_kernels.iter().zip(&b.backend_kernels) {
            assert_eq!(lk.kernel, bk.kernel, "{what}: kernel kind");
            assert_eq!(lk.size, bk.size, "{what}: kernel size");
        }
    }
}

#[test]
fn engine_cpu_builder_is_bit_identical_to_legacy_constructor() {
    for (i, kind) in ALL_KINDS.into_iter().enumerate() {
        let data = dataset(kind, 4, 40 + i as u64);

        let mut legacy = LocalizationSession::new(PipelineConfig::anchored());
        let legacy_records = stream(&mut legacy, &data);

        let mut built = SessionBuilder::new(PipelineConfig::anchored()).build();
        let built_records = stream(&mut built, &data);

        assert_records_bit_identical(&legacy_records, &built_records, &format!("{kind:?}"));
        // The default engine is the passthrough: no reports attached,
        // exactly like the pre-engine records.
        assert!(built_records.iter().all(|r| r.execution.is_none()));
        assert_eq!(built.engine().name(), "cpu");
    }
}

#[test]
fn engine_batch_builder_matches_legacy_eudoxus() {
    let data = dataset(ScenarioKind::Mixed, 6, 3);
    let mut legacy = Eudoxus::new(PipelineConfig::anchored());
    let mut built = SessionBuilder::new(PipelineConfig::anchored()).build_batch();
    assert_records_bit_identical(
        &legacy.process_dataset(&data).records,
        &built.process_dataset(&data).records,
        "batch",
    );
}

#[cfg(feature = "sim")]
#[test]
fn engine_map_builder_matches_legacy_with_map() {
    let data = dataset(ScenarioKind::IndoorKnown, 4, 7);
    let map = eudoxus_core::build_map(&data, &PipelineConfig::anchored());

    let mut legacy = LocalizationSession::new(PipelineConfig::anchored()).with_map(map.clone());
    let legacy_records = stream(&mut legacy, &data);

    let mut built = SessionBuilder::new(PipelineConfig::anchored())
        .map(map)
        .build();
    let built_records = stream(&mut built, &data);

    assert!(legacy_records
        .iter()
        .all(|r| r.mode == eudoxus_core::Mode::Registration));
    assert_records_bit_identical(&legacy_records, &built_records, "with_map");
}

#[test]
fn engine_attached_session_keeps_poses_bit_identical() {
    // Engines observe, never steer: a modeled-engine session's poses
    // must equal the passthrough session's, with reports attached.
    let data = dataset(ScenarioKind::OutdoorUnknown, 5, 17);
    let mut plain = SessionBuilder::new(PipelineConfig::anchored()).build();
    let plain_records = stream(&mut plain, &data);

    let mut modeled = SessionBuilder::new(PipelineConfig::anchored())
        .engine(ModeledAccelEngine::edx_drone())
        .build();
    let modeled_records = stream(&mut modeled, &data);

    assert_records_bit_identical(&plain_records, &modeled_records, "modeled engine");
    assert!(modeled_records.iter().all(|r| r.execution.is_some()));
}

/// In-loop reports vs `Executor::replay` of the very log those reports
/// rode in on: every modeled quantity must agree at the bit level.
fn assert_in_loop_matches_replay(policy: OffloadPolicy) {
    let platform = AccelPlatform::edx_drone();
    let data = dataset(ScenarioKind::OutdoorUnknown, 8, 8);
    let mut session = SessionBuilder::new(PipelineConfig::anchored())
        .engine(ScheduledEngine::with_policy(platform, policy.clone()))
        .build();
    let log = RunLog {
        records: stream(&mut session, &data),
    };

    let replayed = Executor::new(platform).replay(&log, &policy);
    assert_eq!(replayed.frames.len(), log.len());
    for (record, frame) in log.records.iter().zip(&replayed.frames) {
        let report = record
            .execution
            .as_ref()
            .expect("scheduled engine reports every frame");
        assert_eq!(
            report.frontend_ms.to_bits(),
            frame.frontend_ms.to_bits(),
            "frontend latency"
        );
        assert_eq!(
            report.backend_ms.to_bits(),
            frame.backend_ms.to_bits(),
            "backend latency"
        );
        assert_eq!(report.offloadable, frame.offloadable, "offloadable count");
        assert_eq!(report.offloaded, frame.offloaded, "offload decisions");
        assert_eq!(
            report.energy.host_j.to_bits(),
            frame.energy.host_j.to_bits(),
            "host energy"
        );
        assert_eq!(
            report.energy.fpga_static_j.to_bits(),
            frame.energy.fpga_static_j.to_bits(),
            "static energy"
        );
        assert_eq!(
            report.energy.fpga_dynamic_j.to_bits(),
            frame.energy.fpga_dynamic_j.to_bits(),
            "dynamic energy"
        );
    }

    // The aggregated views agree too: execution_run() over the live
    // records is the replayed AcceleratedRun.
    let live_run = log.execution_run().expect("reports present");
    assert_eq!(
        live_run.summary().mean.to_bits(),
        replayed.summary().mean.to_bits()
    );
    assert_eq!(
        live_run.fps_pipelined().to_bits(),
        replayed.fps_pipelined().to_bits()
    );
    assert_eq!(
        live_run.mean_energy().to_bits(),
        replayed.mean_energy().to_bits()
    );
    assert_eq!(live_run.offload_rate(), replayed.offload_rate());
}

#[test]
fn engine_scheduled_in_loop_matches_replay_exactly() {
    // Train the scheduler the way the paper does: an offline CPU
    // profiling pass over the head of the stream.
    let data = dataset(ScenarioKind::OutdoorUnknown, 8, 8);
    let mut profiler = SessionBuilder::new(PipelineConfig::anchored()).build();
    let profile_log = RunLog {
        records: stream(&mut profiler, &data),
    };
    let exec = Executor::new(AccelPlatform::edx_drone());
    let policy = match exec.train_scheduler(&profile_log, 0.25) {
        Some(sched) => OffloadPolicy::Scheduled(sched),
        None => OffloadPolicy::Always,
    };
    assert_in_loop_matches_replay(policy);
}

#[test]
fn engine_fixed_policies_in_loop_match_replay_exactly() {
    assert_in_loop_matches_replay(OffloadPolicy::Always);
    assert_in_loop_matches_replay(OffloadPolicy::Never);
}

#[test]
fn engine_decisions_are_reproducible_across_runs() {
    // The offload decision depends only on deterministic inputs (kernel
    // sizes, workload counters) — never on this run's wall-clock — so
    // two independent live passes over the same stream must place every
    // kernel identically.
    let platform = AccelPlatform::edx_drone();
    let data = dataset(ScenarioKind::OutdoorUnknown, 6, 21);
    let mut profiler = SessionBuilder::new(PipelineConfig::anchored()).build();
    let profile_log = RunLog {
        records: stream(&mut profiler, &data),
    };
    let policy = match Executor::new(platform).train_scheduler(&profile_log, 0.25) {
        Some(sched) => OffloadPolicy::Scheduled(sched),
        None => OffloadPolicy::Always,
    };

    let run = |policy: &OffloadPolicy| {
        let mut session = SessionBuilder::new(PipelineConfig::anchored())
            .engine(ScheduledEngine::with_policy(platform, policy.clone()))
            .build();
        stream(&mut session, &data)
    };
    let first = run(&policy);
    let second = run(&policy);
    for (a, b) in first.iter().zip(&second) {
        let (ra, rb) = (a.execution.as_ref().unwrap(), b.execution.as_ref().unwrap());
        assert_eq!(ra.offloaded, rb.offloaded);
        assert_eq!(ra.target, rb.target);
        assert_eq!(ra.frontend_ms.to_bits(), rb.frontend_ms.to_bits());
        for (da, db) in ra.decisions.iter().zip(&rb.decisions) {
            assert_eq!(da.kind, db.kind);
            assert_eq!(da.size, db.size);
            assert_eq!(da.offloaded, db.offloaded);
            assert_eq!(da.accel_ms.to_bits(), db.accel_ms.to_bits());
        }
    }
}

#[test]
fn engine_static_link_matches_linkless_engine_bitwise_across_kinds() {
    // PCIe as just another link: putting the platform's own bus behind
    // the link seam must change nothing — poses, reports, decisions and
    // energy stay bit-identical to the linkless PR 5 engine on every
    // scenario kind, and the no-link session itself stays bit-identical
    // to the CpuEngine baseline in poses.
    let platform = AccelPlatform::edx_drone();
    for (i, kind) in ALL_KINDS.into_iter().enumerate() {
        let data = dataset(kind, 4, 60 + i as u64);

        let mut plain = SessionBuilder::new(PipelineConfig::anchored())
            .engine(ScheduledEngine::with_policy(platform, OffloadPolicy::Always))
            .build();
        let plain_records = stream(&mut plain, &data);

        let mut linked = SessionBuilder::new(PipelineConfig::anchored())
            .engine(ScheduledEngine::with_policy(platform, OffloadPolicy::Always))
            .link(platform.bus.as_link())
            .build();
        let linked_records = stream(&mut linked, &data);

        assert_records_bit_identical(&plain_records, &linked_records, &format!("{kind:?} link"));
        // Only the *modeled* quantities are comparable across two live
        // runs (measured kernel millis are wall-clock): frontend
        // latency, placements and the link-priced accel_ms must agree
        // bit for bit.
        for (p, l) in plain_records.iter().zip(&linked_records) {
            let (rp, rl) = (p.execution.as_ref().unwrap(), l.execution.as_ref().unwrap());
            assert_eq!(rp.frontend_ms.to_bits(), rl.frontend_ms.to_bits());
            assert_eq!(rp.offloadable, rl.offloadable);
            assert_eq!(rp.offloaded, rl.offloaded);
            assert_eq!(rl.fallback, None, "a static bus never sheds");
            for (dp, dl) in rp.decisions.iter().zip(&rl.decisions) {
                assert_eq!(dp.offloaded, dl.offloaded);
                assert_eq!(dp.accel_ms.to_bits(), dl.accel_ms.to_bits());
            }
        }
        // The link-backed engine exposes counters; the static bus never
        // drops or sheds anything.
        let stats = linked.engine().link_stats().expect("link attached");
        assert_eq!(stats.frames as usize, linked_records.len());
        assert_eq!(stats.frames_lost, 0);
        assert_eq!(stats.link_fallbacks, 0);

        // And the CpuEngine session of the same stream keeps identical
        // poses (no-link sessions unchanged by the link redesign).
        let mut cpu = SessionBuilder::new(PipelineConfig::anchored()).build();
        let cpu_records = stream(&mut cpu, &data);
        assert_records_bit_identical(&cpu_records, &plain_records, &format!("{kind:?} cpu"));
        assert!(cpu.engine().link_stats().is_none());
    }
}

#[test]
fn engine_seeded_link_replays_identical_decision_trace() {
    // Same (profile, seed) in two fully independent sessions: the whole
    // decision trace — link states, per-kernel placements, fallback
    // causes, link-priced latencies — must replay bit for bit. (No
    // deadline here: deadline shedding keys off *measured* frame
    // latency, which is wall-clock by design.)
    let platform = AccelPlatform::edx_drone();
    let data = dataset(ScenarioKind::Mixed, 8, 33);
    let run = || {
        let mut session = SessionBuilder::new(PipelineConfig::anchored())
            .engine(ScheduledEngine::with_policy(platform, OffloadPolicy::Always))
            .link(StochasticLink::new(LinkProfile::urban_canyon_dropout(), 77))
            .build();
        let records = stream(&mut session, &data);
        let stats = session.engine().link_stats().expect("link attached");
        (records, stats)
    };
    let (first, stats_a) = run();
    let (second, stats_b) = run();
    assert_eq!(stats_a, stats_b, "shedding counters replay");
    for (a, b) in first.iter().zip(&second) {
        let (ra, rb) = (a.execution.as_ref().unwrap(), b.execution.as_ref().unwrap());
        assert_eq!(ra.fallback, rb.fallback);
        assert_eq!(ra.offloaded, rb.offloaded);
        let (la, lb) = (ra.link.unwrap(), rb.link.unwrap());
        assert_eq!(la.bandwidth_bps.to_bits(), lb.bandwidth_bps.to_bits());
        assert_eq!(la.latency_s.to_bits(), lb.latency_s.to_bits());
        assert_eq!(la.lost, lb.lost);
        for (da, db) in ra.decisions.iter().zip(&rb.decisions) {
            assert_eq!(da.offloaded, db.offloaded);
            assert_eq!(da.accel_ms.to_bits(), db.accel_ms.to_bits());
        }
    }
}

#[test]
fn engine_fork_gives_manager_agents_independent_engines() {
    // build_manager forks the blueprint engine per agent; a CpuEngine
    // default manager must keep records report-free, a modeled one must
    // attach reports for every agent.
    let data = dataset(ScenarioKind::OutdoorUnknown, 2, 5);
    let mut manager = SessionBuilder::new(PipelineConfig::anchored())
        .engine(CpuEngine)
        .agent("a")
        .agent("b")
        .build_manager();
    for id in ["a", "b"] {
        for e in data.events() {
            assert!(matches!(
                manager.try_enqueue(id, e),
                eudoxus_core::Enqueue::Accepted
            ));
        }
    }
    let records = manager.run_until_idle();
    assert_eq!(records.len(), 4);
    assert!(records.iter().all(|(_, r)| r.execution.is_none()));

    let mut modeled = SessionBuilder::new(PipelineConfig::anchored())
        .engine(ModeledAccelEngine::edx_drone())
        .agent("a")
        .agent("b")
        .build_manager();
    for id in ["a", "b"] {
        for e in data.events() {
            assert!(matches!(
                modeled.try_enqueue(id, e),
                eudoxus_core::Enqueue::Accepted
            ));
        }
    }
    let records = modeled.run_until_idle();
    assert_eq!(records.len(), 4);
    assert!(records
        .iter()
        .all(|(_, r)| r.execution.as_ref().is_some_and(|x| x.engine == "edx-drone")));
}
