//! Telemetry equivalence: arming the observability subsystem must not
//! perturb estimation, and the instrumented surfaces must actually be
//! covered.
//!
//! 1. **Armed == plain.** A `SessionBuilder::telemetry(..)` session is
//!    bit-identical to a plain one across all five `ScenarioKind`s —
//!    telemetry observes (clock reads, ring stores, histogram feeds),
//!    it never steers.
//! 2. **Coverage.** Every pushed frame closes a `frame` span plus
//!    backend/engine sub-spans, and the frontend stamps its six compute
//!    kernels; the frame histogram counts exactly the served frames.
//! 3. **Determinism.** Under the model clock, two independent armed
//!    runs drain byte-identical span traces.
//! 4. **Export.** A session's drained trace round-trips the chrome-trace
//!    validator with one complete `frame` event per record.
//!
//! CI runs this suite by name (`cargo test -p eudoxus-core telemetry_`).

use eudoxus_core::{
    chrome_trace_json, validate_chrome_trace, CounterRegistry, FrameRecord, LocalizationSession,
    PipelineConfig, SessionBuilder, SpanScope, TelemetryConfig, ThrottleConfig,
};
use eudoxus_sim::{Dataset, Platform, ScenarioBuilder, ScenarioKind};

const ALL_KINDS: [ScenarioKind; 5] = [
    ScenarioKind::OutdoorUnknown,
    ScenarioKind::OutdoorKnown,
    ScenarioKind::IndoorUnknown,
    ScenarioKind::IndoorKnown,
    ScenarioKind::Mixed,
];

/// The six frontend compute kernels every processed frame stamps.
const FRONTEND_KERNELS: [&str; 6] = [
    "gaussian_blur",
    "detect_fast",
    "compute_orb",
    "match_stereo",
    "pyramid_rebuild",
    "track_pyramidal",
];

fn dataset(kind: ScenarioKind, frames: usize, seed: u64) -> Dataset {
    ScenarioBuilder::new(kind)
        .frames(frames)
        .seed(seed)
        .platform(Platform::Drone)
        .build()
}

fn stream(session: &mut LocalizationSession, data: &Dataset) -> Vec<FrameRecord> {
    data.events().filter_map(|e| session.push(e)).collect()
}

fn pose_bits(pose: &eudoxus_geometry::Pose) -> [u64; 7] {
    [
        pose.translation.x.to_bits(),
        pose.translation.y.to_bits(),
        pose.translation.z.to_bits(),
        pose.rotation.w.to_bits(),
        pose.rotation.x.to_bits(),
        pose.rotation.y.to_bits(),
        pose.rotation.z.to_bits(),
    ]
}

fn assert_records_bit_identical(plain: &[FrameRecord], armed: &[FrameRecord], what: &str) {
    assert_eq!(plain.len(), armed.len(), "{what}: record count");
    for (p, a) in plain.iter().zip(armed) {
        assert_eq!(p.index, a.index, "{what}: index");
        assert_eq!(p.mode, a.mode, "{what}: mode");
        assert_eq!(p.environment, a.environment, "{what}: environment");
        assert_eq!(pose_bits(&p.pose), pose_bits(&a.pose), "{what}: pose bits");
        assert_eq!(p.tracking, a.tracking, "{what}: tracking");
    }
}

#[test]
fn telemetry_armed_session_is_bit_identical_to_plain_across_kinds() {
    for (i, kind) in ALL_KINDS.into_iter().enumerate() {
        let data = dataset(kind, 4, 80 + i as u64);

        let mut plain = SessionBuilder::new(PipelineConfig::anchored()).build();
        let plain_records = stream(&mut plain, &data);

        let mut armed = SessionBuilder::new(PipelineConfig::anchored())
            .telemetry(TelemetryConfig::new())
            .build();
        let armed_records = stream(&mut armed, &data);

        assert_records_bit_identical(&plain_records, &armed_records, &format!("{kind:?}"));
        assert!(plain.telemetry().is_none(), "telemetry is opt-in");

        // Coverage: one frame span (and histogram sample) per served
        // record, and every frontend kernel seen at least once.
        let hub = armed.telemetry().expect("armed session exposes its hub");
        assert_eq!(hub.frame_histogram().count() as usize, armed_records.len());
        assert_eq!(hub.spans_dropped(), 0, "default capacity must not wrap");
        let kernels = hub.kernel_histograms();
        for name in FRONTEND_KERNELS {
            assert!(
                kernels.iter().any(|(k, h)| *k == name && !h.is_empty()),
                "{kind:?}: kernel {name} never recorded"
            );
        }
        let spans = hub.drain();
        let frames = spans
            .iter()
            .filter(|s| s.scope == SpanScope::Frame)
            .count();
        assert_eq!(frames, armed_records.len(), "{kind:?}: frame spans");
        assert!(
            spans.iter().any(|s| s.scope == SpanScope::Backend),
            "{kind:?}: backend spans missing"
        );
        assert!(
            spans.iter().any(|s| s.scope == SpanScope::Engine),
            "{kind:?}: engine spans missing"
        );
    }
}

#[test]
fn telemetry_model_clock_traces_replay_bit_for_bit() {
    let data = dataset(ScenarioKind::Mixed, 5, 23);
    let run = || {
        let mut session = SessionBuilder::new(PipelineConfig::anchored())
            .telemetry(TelemetryConfig::deterministic(1_000))
            .build();
        let records = stream(&mut session, &data);
        let hub = session.telemetry().expect("armed").clone();
        (records, hub.drain())
    };
    let (records_a, trace_a) = run();
    let (records_b, trace_b) = run();
    assert_records_bit_identical(&records_a, &records_b, "model clock");
    assert_eq!(trace_a, trace_b, "model-clock traces must replay exactly");
    assert!(!trace_a.is_empty());
}

#[test]
fn telemetry_session_trace_round_trips_the_chrome_validator() {
    let data = dataset(ScenarioKind::OutdoorUnknown, 4, 91);
    let mut session = SessionBuilder::new(PipelineConfig::anchored())
        .telemetry(TelemetryConfig::new())
        .build();
    let records = stream(&mut session, &data);
    let spans = session.telemetry().expect("armed").drain();
    let trace = chrome_trace_json(&spans);
    let summary = validate_chrome_trace(&trace).expect("exported trace must validate");
    assert_eq!(summary.events, spans.len());
    assert_eq!(summary.frame_spans, records.len());
    assert!(summary.frame_spans >= 1, "need at least one complete frame");
}

#[test]
fn telemetry_counter_snapshot_covers_every_session_surface() {
    // Arm everything a bare session can carry (throttle + telemetry) and
    // check the one flat snapshot holds each surface under its scope.
    let data = dataset(ScenarioKind::IndoorUnknown, 4, 13);
    let mut session = SessionBuilder::new(PipelineConfig::anchored())
        .throttle(ThrottleConfig::new(33.0))
        .telemetry(TelemetryConfig::new())
        .build();
    let records = stream(&mut session, &data);

    let mut reg = CounterRegistry::new();
    session.publish_counters(&mut reg);
    assert!(!reg.is_empty());
    let frames = reg.get("frames_processed").expect("frame counter");
    assert_eq!(frames.as_f64() as usize, records.len());
    assert!(reg.get("health.frames").is_some(), "health surface: {reg}");
    assert!(
        reg.get("throttle.frames").is_some(),
        "throttle surface: {reg}"
    );
    // Scoping a second agent's snapshot keeps keys disjoint.
    let mut fleet = CounterRegistry::new();
    fleet.scoped("agent-0", |r| session.publish_counters(r));
    fleet.scoped("agent-1", |r| session.publish_counters(r));
    assert_eq!(fleet.len(), 2 * reg.len(), "scoped snapshots stay disjoint");
}

#[test]
fn telemetry_manager_assigns_one_track_per_agent() {
    let a = dataset(ScenarioKind::OutdoorUnknown, 2, 1);
    let b = dataset(ScenarioKind::IndoorUnknown, 2, 2);
    let mut manager = SessionBuilder::new(PipelineConfig::anchored())
        .telemetry(TelemetryConfig::new())
        .agent("car")
        .agent("drone")
        .build_manager();
    for (id, data) in [("car", &a), ("drone", &b)] {
        for e in data.events() {
            assert!(matches!(
                manager.try_enqueue(id, e),
                eudoxus_core::Enqueue::Accepted
            ));
        }
    }
    let records = manager.run_until_idle();
    assert!(!records.is_empty());
    let track_of = |id: &str| {
        let hub = manager
            .session(id)
            .expect("agent exists")
            .telemetry()
            .expect("armed manager arms every agent");
        let spans = hub.drain();
        assert!(!spans.is_empty(), "{id}: no spans recorded");
        let track = spans[0].track;
        assert!(
            spans.iter().all(|s| s.track == track),
            "{id}: spans span multiple tracks"
        );
        track
    };
    assert_ne!(
        track_of("car"),
        track_of("drone"),
        "agents must land on distinct chrome-trace tracks"
    );
}
