//! # eudoxus-faults
//!
//! Deterministic sensor fault injection for Eudoxus: seeded degradation
//! processes that turn any clean event stream into a flaky one —
//! camera-drop bursts, exposure ramps, pixel noise, vision blackouts,
//! IMU bias random-walks, GPS outages and multipath — so the session's
//! graceful-degradation machinery (fallback chain, health monitor,
//! dead-reckoning) can be exercised and regression-tested under stress.
//!
//! Every scenario the pipeline ships is a clean stereo+IMU world; real
//! deployments are not. A bulldozer in dust, a drone behind a smeared
//! lens, a car in an urban canyon all see the same failure classes this
//! crate models. This leaf crate (deps: `eudoxus-stream`,
//! `eudoxus-image`, `eudoxus-geometry`, the offline `rand` shim) owns
//! the fault model; `eudoxus-core` consumes it at the session ingest
//! boundary.
//!
//! ## The model
//!
//! * [`FaultPlan`] — the knobs: Gilbert–Elliott camera-drop and
//!   GPS-outage burst processes, deterministic exposure triangle ramps
//!   and vision-blackout windows, per-pixel noise, IMU bias
//!   random-walks, GPS multipath. The default plan is the exact
//!   passthrough.
//! * [`FaultProcess`] — the plan as a seeded process:
//!   [`apply`](FaultProcess::apply) maps one [`SensorEvent`] to its
//!   faulted form (`None` when a burst swallowed it);
//!   [`fork`](FaultProcess::fork) restarts an identical process for
//!   per-agent stamping. A **fixed draw schedule** (images two draws,
//!   IMU six, GPS four, boundaries zero; pixel noise on a sub-generator)
//!   makes the faulted stream a pure function of
//!   `(plan, seed, input events)` — the same discipline as
//!   `eudoxus-link`'s `StochasticLink`.
//! * [`FaultInjector`] — an `EventSource` adapter wrapping any inner
//!   source, absorbing dropped events transparently.
//! * [`FaultProfile`] — canned personalities, mildest → worst:
//!   [`imu_drift`](FaultProfile::imu_drift) →
//!   [`flaky_camera`](FaultProfile::flaky_camera) →
//!   [`dusty_site`](FaultProfile::dusty_site) →
//!   [`sensor_storm`](FaultProfile::sensor_storm), with an in-crate
//!   severity-ordering pin test (`BENCH_robustness.json` sweeps them in
//!   this order).
//!
//! ```
//! use eudoxus_faults::{FaultInjector, FaultProfile};
//! use eudoxus_stream::{EventSource, IterSource, SourcePoll};
//!
//! let clean = IterSource::from_vec(Vec::new()); // any EventSource
//! let profile = FaultProfile::dusty_site();
//! let mut flaky = FaultInjector::new(clean, profile.plan, 42);
//! while let SourcePoll::Ready(event) = flaky.poll_event() {
//!     // degraded events; dropped frames never surface
//!     let _ = event;
//! }
//! println!("{}", flaky.counters());
//! ```
//!
//! [`SensorEvent`]: eudoxus_stream::SensorEvent

mod plan;
mod process;

pub use plan::{FaultPlan, FaultProfile};
pub use process::{FaultCounters, FaultInjector, FaultProcess, BLACKOUT_GRAY};
