//! Fault parameter sets: [`FaultPlan`] (the knobs) and [`FaultProfile`]
//! (named canned plans, ordered by severity).

/// Parameter set for a [`FaultProcess`](crate::FaultProcess): every
/// degradation the injector can apply, with zero/identity defaults so an
/// empty plan is an exact passthrough.
///
/// All stochastic processes are per-event and seeded. Camera drops and
/// GPS outages are two-state Gilbert–Elliott burst processes
/// (good→bad with `*_enter`, bad→good with `*_exit`; stationary loss is
/// `enter/(enter+exit)`, expected burst length `1/exit` frames).
/// Exposure ramps are deterministic triangle waves over the frame
/// counter; vision blackouts are deterministic frame windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Gilbert–Elliott good→bad transition probability for camera frame
    /// drops; 0 disables drops entirely.
    pub drop_enter: f64,
    /// Gilbert–Elliott bad→good transition probability (a drop burst
    /// ends each frame with this probability).
    pub drop_exit: f64,
    /// Period (frames) of the deterministic exposure ramp; 0 disables
    /// the ramp.
    pub exposure_period: u32,
    /// Peak fraction of brightness lost mid-ramp: pixel values scale by
    /// `1 - exposure_gain·r` with ramp intensity r ∈ [0, 1].
    pub exposure_gain: f64,
    /// Peak additive offset (gray levels) at full ramp intensity —
    /// models glare/washout when positive.
    pub exposure_bias: f64,
    /// Uniform per-pixel noise amplitude (gray levels): each pixel gets
    /// an independent seeded draw in `[-pixel_noise, pixel_noise)`;
    /// 0 disables pixel noise.
    pub pixel_noise: f64,
    /// Per-sample gyro bias random-walk step (rad/s per axis): each IMU
    /// event steps the bias by a uniform draw in `[-step, step)` and
    /// adds the accumulated bias to the reading; 0 disables.
    pub gyro_bias_walk: f64,
    /// Per-sample accelerometer bias random-walk step (m/s² per axis).
    pub accel_bias_walk: f64,
    /// Gilbert–Elliott good→bad transition probability for GPS outages
    /// (fixes inside an outage are dropped); 0 disables outages.
    pub gps_outage_enter: f64,
    /// Gilbert–Elliott bad→good transition probability for GPS outages.
    pub gps_outage_exit: f64,
    /// Multipath position error amplitude (meters): every surviving fix
    /// is offset per-axis by a uniform draw in `[-m, m)`; 0 disables.
    pub gps_multipath_m: f64,
    /// First frame (by source frame index, counting dropped frames) of
    /// the vision-blackout window.
    pub blackout_start: u32,
    /// Blackout window length in frames; 0 disables blackouts.
    pub blackout_len: u32,
    /// Blackout recurrence period in frames; 0 makes the window at
    /// `blackout_start` one-shot.
    pub blackout_period: u32,
}

impl Default for FaultPlan {
    /// The empty plan: no faults. Exit probabilities default to 1 so a
    /// (disabled) burst process that somehow entered the bad state
    /// would leave it immediately.
    fn default() -> Self {
        FaultPlan {
            drop_enter: 0.0,
            drop_exit: 1.0,
            exposure_period: 0,
            exposure_gain: 0.0,
            exposure_bias: 0.0,
            pixel_noise: 0.0,
            gyro_bias_walk: 0.0,
            accel_bias_walk: 0.0,
            gps_outage_enter: 0.0,
            gps_outage_exit: 1.0,
            gps_multipath_m: 0.0,
            blackout_start: 0,
            blackout_len: 0,
            blackout_period: 0,
        }
    }
}

impl FaultPlan {
    /// Whether this plan is the exact passthrough: no process enabled,
    /// every event emitted unmodified (and byte-identical — the injector
    /// short-circuits without touching payloads).
    pub fn is_empty(&self) -> bool {
        self.drop_enter == 0.0
            && (self.exposure_period == 0
                || (self.exposure_gain == 0.0 && self.exposure_bias == 0.0))
            && self.pixel_noise == 0.0
            && self.gyro_bias_walk == 0.0
            && self.accel_bias_walk == 0.0
            && self.gps_outage_enter == 0.0
            && self.gps_multipath_m == 0.0
            && self.blackout_len == 0
    }
}

/// A named [`FaultPlan`]: one canned degradation personality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Profile name, used for lookup and reporting.
    pub name: &'static str,
    /// The parameter set.
    pub plan: FaultPlan,
}

impl FaultProfile {
    /// Slow IMU bias drift with clean vision: the failure mode where
    /// dead-reckoning quality itself erodes. Mildest canned profile.
    pub fn imu_drift() -> FaultProfile {
        FaultProfile {
            name: "imu_drift",
            plan: FaultPlan {
                gyro_bias_walk: 1.5e-4,
                accel_bias_walk: 1.5e-3,
                ..FaultPlan::default()
            },
        }
    }

    /// Bursty camera frame drops (Gilbert–Elliott, ~6% stationary
    /// loss, expected bursts ≈ 2 frames) plus mild sensor noise.
    /// Outright drops are disproportionately costly — the consumer
    /// holds a stale pose with no dead-reckoning to bridge it — so the
    /// rate is kept low to sit below `dusty_site` on the measured
    /// degradation curve as well as the analytic one.
    pub fn flaky_camera() -> FaultProfile {
        FaultProfile {
            name: "flaky_camera",
            plan: FaultPlan {
                drop_enter: 0.03,
                drop_exit: 0.5,
                pixel_noise: 5.0,
                ..FaultPlan::default()
            },
        }
    }

    /// Construction-site dust: recurring multi-frame vision blackouts
    /// (8 of every 30 frames fully occluded), strong exposure swings,
    /// pixel noise, and mild IMU drift underneath.
    pub fn dusty_site() -> FaultProfile {
        FaultProfile {
            name: "dusty_site",
            plan: FaultPlan {
                exposure_period: 30,
                exposure_gain: 0.45,
                exposure_bias: 36.0,
                pixel_noise: 6.0,
                gyro_bias_walk: 5e-5,
                accel_bias_walk: 5e-4,
                blackout_start: 12,
                blackout_len: 8,
                blackout_period: 30,
                ..FaultPlan::default()
            },
        }
    }

    /// Everything at once: camera drop bursts, recurring blackouts,
    /// heavy exposure swings and noise, fast IMU drift (fast enough
    /// that blind propagation through the blackouts erodes too — the
    /// dead-reckoning fallback cannot launder this profile), GPS
    /// outages with heavy multipath. The worst canned profile.
    pub fn sensor_storm() -> FaultProfile {
        FaultProfile {
            name: "sensor_storm",
            plan: FaultPlan {
                drop_enter: 0.08,
                drop_exit: 0.4,
                exposure_period: 22,
                exposure_gain: 0.6,
                exposure_bias: 48.0,
                pixel_noise: 10.0,
                gyro_bias_walk: 1e-3,
                accel_bias_walk: 1e-2,
                gps_outage_enter: 0.1,
                gps_outage_exit: 0.3,
                gps_multipath_m: 6.0,
                blackout_start: 10,
                blackout_len: 8,
                blackout_period: 26,
            },
        }
    }

    /// The four canned profiles, ordered mildest → most severe
    /// (`imu_drift`, `flaky_camera`, `dusty_site`, `sensor_storm`) —
    /// the order the severity pin test and the robustness bench sweep.
    pub fn canned() -> [FaultProfile; 4] {
        [
            FaultProfile::imu_drift(),
            FaultProfile::flaky_camera(),
            FaultProfile::dusty_site(),
            FaultProfile::sensor_storm(),
        ]
    }

    /// Looks a canned profile up by name (the exact `name` field).
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        FaultProfile::canned().into_iter().find(|p| p.name == name)
    }

    /// Analytic severity score: a dimensionless heuristic combining the
    /// stationary duty cycles of the burst/blackout processes with the
    /// corruption amplitudes, weighted by how hard each fault class
    /// hits localization (losing vision outright outweighs noise).
    /// One-shot blackout windows (`blackout_period == 0`) are transient
    /// and contribute nothing to this stationary score. Used only to
    /// pin the canned ordering and label bench output.
    pub fn severity(&self) -> f64 {
        let p = &self.plan;
        let duty = |enter: f64, exit: f64| {
            if enter > 0.0 {
                enter / (enter + exit)
            } else {
                0.0
            }
        };
        let blackout_duty = if p.blackout_len > 0 && p.blackout_period > 0 {
            f64::from(p.blackout_len) / f64::from(p.blackout_period)
        } else {
            0.0
        };
        let exposure = if p.exposure_period > 0 {
            p.exposure_gain + p.exposure_bias / 255.0
        } else {
            0.0
        };
        3.0 * blackout_duty
            + 2.0 * duty(p.drop_enter, p.drop_exit)
            + exposure
            + p.pixel_noise / 32.0
            + p.gyro_bias_walk * 500.0
            + p.accel_bias_walk * 50.0
            + duty(p.gps_outage_enter, p.gps_outage_exit)
            + p.gps_multipath_m / 10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_profiles_order_by_severity() {
        // The canned array is the severity axis the robustness bench
        // sweeps; any retuning must preserve a strict ordering.
        let canned = FaultProfile::canned();
        for pair in canned.windows(2) {
            assert!(
                pair[0].severity() < pair[1].severity(),
                "{} ({:.3}) must be milder than {} ({:.3})",
                pair[0].name,
                pair[0].severity(),
                pair[1].name,
                pair[1].severity(),
            );
        }
        // And every canned profile actually does something.
        for profile in canned {
            assert!(!profile.plan.is_empty(), "{} is a no-op", profile.name);
            assert!(profile.severity() > 0.0);
        }
    }

    #[test]
    fn by_name_round_trips() {
        for profile in FaultProfile::canned() {
            assert_eq!(FaultProfile::by_name(profile.name), Some(profile));
        }
        assert_eq!(FaultProfile::by_name("nope"), None);
    }

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultProfile::imu_drift().plan.is_empty());
        // A plan whose only nonzero knob is gated off is still empty.
        let gated = FaultPlan {
            exposure_period: 10,
            ..FaultPlan::default()
        };
        assert!(gated.is_empty());
    }
}
