//! The seeded fault process and the [`EventSource`] adapter that applies
//! it to a stream.
//!
//! Every random effect is driven by a single seeded [`StdRng`]
//! (SplitMix64 in the offline shim) with a **fixed draw schedule**: each
//! event kind consumes an exact number of draws regardless of which
//! effects the plan enables — image events two (drop transition, pixel
//! noise sub-seed), IMU events six (three gyro + three accel walk
//! steps), GPS events four (outage transition, three multipath axes),
//! segment boundaries zero. Per-pixel noise runs on a *sub*-generator
//! seeded from the schedule, so its draw count (which varies with image
//! size) never shifts the main stream. The faulted stream is therefore
//! a pure function of `(plan, seed, event sequence)` — two processes
//! built alike replay bit-identical traces, which is what makes
//! degradation experiments reproducible.

use std::sync::Arc;

use eudoxus_geometry::Vec3;
use eudoxus_image::GrayImage;
use eudoxus_stream::{EventSource, SensorEvent, SourcePoll};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::plan::FaultPlan;

/// Gray level vision-blackout frames are filled with: featureless
/// mid-gray, the worst case for a corner detector.
pub const BLACKOUT_GRAY: u8 = 127;

/// Running tally of what a [`FaultProcess`] has done to its stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Image events swallowed by a drop burst.
    pub images_dropped: u64,
    /// Image events replaced with featureless blackout frames.
    pub images_blacked_out: u64,
    /// Image events with pixels altered (exposure ramp / pixel noise).
    pub images_corrupted: u64,
    /// GPS fixes swallowed by an outage burst.
    pub gps_dropped: u64,
}

impl std::fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dropped {} frames, blacked out {}, corrupted {}, dropped {} GPS fixes",
            self.images_dropped, self.images_blacked_out, self.images_corrupted, self.gps_dropped
        )
    }
}

impl eudoxus_telemetry::Telemetry for FaultCounters {
    fn publish(&self, reg: &mut eudoxus_telemetry::CounterRegistry) {
        reg.counter("images_dropped", self.images_dropped);
        reg.counter("images_blacked_out", self.images_blacked_out);
        reg.counter("images_corrupted", self.images_corrupted);
        reg.counter("gps_dropped", self.gps_dropped);
    }
}

/// A seeded, deterministic sensor-degradation process: feeds every
/// [`SensorEvent`] through the faults a [`FaultPlan`] enables.
///
/// Stateless transport-wise — it owns no source; [`apply`] maps one
/// event to its faulted form (`None` when the event is dropped). Wrap a
/// source with [`FaultInjector`] to fault a whole stream, or hand the
/// process to a session for ingest-side injection.
///
/// Deterministic: the output trace is a pure function of
/// `(plan, seed, input events)`, and [`fork`] restarts the process from
/// event zero so per-agent copies replay the identical schedule.
///
/// [`apply`]: FaultProcess::apply
/// [`fork`]: FaultProcess::fork
#[derive(Debug, Clone)]
pub struct FaultProcess {
    plan: FaultPlan,
    seed: u64,
    rng: StdRng,
    /// Source frame index (counts every image event seen, including
    /// dropped ones) — the clock blackout windows and exposure ramps
    /// run on.
    frame: u32,
    dropping: bool,
    gps_out: bool,
    gyro_bias: Vec3,
    accel_bias: Vec3,
    counters: FaultCounters,
}

impl FaultProcess {
    /// A process applying `plan` under the given seed.
    pub fn new(plan: FaultPlan, seed: u64) -> FaultProcess {
        FaultProcess {
            plan,
            seed,
            rng: StdRng::seed_from_u64(seed),
            frame: 0,
            dropping: false,
            gps_out: false,
            gyro_bias: Vec3::zero(),
            accel_bias: Vec3::zero(),
            counters: FaultCounters::default(),
        }
    }

    /// The plan this process applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The seed the process was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// What the process has done so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// A fresh process with the same `(plan, seed)`, restarted at event
    /// zero — per-agent copies replay the identical fault schedule, the
    /// same discipline as `LinkModel::fork`.
    pub fn fork(&self) -> FaultProcess {
        FaultProcess::new(self.plan, self.seed)
    }

    /// One uniform draw in `[-1, 1)`.
    fn draw_sym(&mut self) -> f64 {
        self.rng.random::<f64>() * 2.0 - 1.0
    }

    /// Whether source frame `frame` falls in a vision-blackout window.
    /// Deterministic — consumes no draws.
    fn in_blackout(&self, frame: u32) -> bool {
        let p = &self.plan;
        if p.blackout_len == 0 || frame < p.blackout_start {
            return false;
        }
        let off = frame - p.blackout_start;
        if p.blackout_period == 0 {
            off < p.blackout_len
        } else {
            off % p.blackout_period < p.blackout_len
        }
    }

    /// Exposure-ramp intensity in `[0, 1]` for source frame `frame`:
    /// a deterministic triangle wave that is 0 at each period start and
    /// peaks at 1 mid-period (pure integer/f64 arithmetic, no libm, so
    /// the factor is bit-portable — same discipline as the link ramp).
    fn ramp_intensity(&self, frame: u32) -> f64 {
        let p = &self.plan;
        if p.exposure_period == 0 {
            return 0.0;
        }
        let phase = f64::from(frame % p.exposure_period) / f64::from(p.exposure_period);
        let tri = if phase < 0.5 {
            1.0 - 2.0 * phase
        } else {
            2.0 * phase - 1.0
        };
        1.0 - tri
    }

    /// Applies the plan to one event: the faulted event, or `None` when
    /// a burst process swallowed it. Events the plan does not touch are
    /// returned unmodified — byte-identical, image `Arc`s included — so
    /// an empty plan is an exact passthrough.
    pub fn apply(&mut self, event: SensorEvent) -> Option<SensorEvent> {
        match event {
            // Boundaries are markers, not sensor data: zero draws, pure
            // passthrough. The frame clock keeps running across them —
            // blackout windows are indexed on the source's absolute
            // frame count, not per segment.
            SensorEvent::SegmentBoundary { .. } => Some(event),
            SensorEvent::Imu(mut sample) => {
                // Fixed schedule: six draws (three per sensor), even
                // when both walks are disabled.
                let g = [self.draw_sym(), self.draw_sym(), self.draw_sym()];
                let a = [self.draw_sym(), self.draw_sym(), self.draw_sym()];
                let p = &self.plan;
                // Gate the additions on a live walk so a disabled axis
                // stays byte-identical (`x + 0.0` can flip `-0.0`).
                if p.gyro_bias_walk != 0.0 {
                    let s = p.gyro_bias_walk;
                    self.gyro_bias += Vec3::new(s * g[0], s * g[1], s * g[2]);
                    sample.gyro += self.gyro_bias;
                }
                if p.accel_bias_walk != 0.0 {
                    let s = p.accel_bias_walk;
                    self.accel_bias += Vec3::new(s * a[0], s * a[1], s * a[2]);
                    sample.accel += self.accel_bias;
                }
                Some(SensorEvent::Imu(sample))
            }
            SensorEvent::Gps(mut fix) => {
                // Fixed schedule: four draws (outage transition, three
                // multipath axes), drawn before the outage verdict.
                let u_out: f64 = self.rng.random();
                let m = [self.draw_sym(), self.draw_sym(), self.draw_sym()];
                let p = &self.plan;
                self.gps_out = if self.gps_out {
                    u_out >= p.gps_outage_exit
                } else {
                    u_out < p.gps_outage_enter
                };
                if self.gps_out {
                    self.counters.gps_dropped += 1;
                    return None;
                }
                if p.gps_multipath_m != 0.0 {
                    let s = p.gps_multipath_m;
                    fix.position += Vec3::new(s * m[0], s * m[1], s * m[2]);
                }
                Some(SensorEvent::Gps(fix))
            }
            SensorEvent::Image(mut image) => {
                // Fixed schedule: two draws (drop transition, noise
                // sub-seed), drawn before any verdict so dropped and
                // delivered frames cost the same.
                let u_drop: f64 = self.rng.random();
                let noise_seed: u64 = self.rng.random();
                let frame = self.frame;
                self.frame = self.frame.wrapping_add(1);
                let p = self.plan;
                self.dropping = if self.dropping {
                    u_drop >= p.drop_exit
                } else {
                    u_drop < p.drop_enter
                };
                if self.dropping {
                    self.counters.images_dropped += 1;
                    return None;
                }
                if self.in_blackout(frame) {
                    let (lw, lh) = image.left.dimensions();
                    let (rw, rh) = image.right.dimensions();
                    image.left = Arc::new(GrayImage::filled(lw, lh, BLACKOUT_GRAY));
                    image.right = Arc::new(GrayImage::filled(rw, rh, BLACKOUT_GRAY));
                    self.counters.images_blacked_out += 1;
                    return Some(SensorEvent::Image(image));
                }
                let r = self.ramp_intensity(frame);
                let exposing =
                    r > 0.0 && (p.exposure_gain != 0.0 || p.exposure_bias != 0.0);
                let noisy = p.pixel_noise != 0.0;
                if !exposing && !noisy {
                    // Untouched: the original `Arc`s pass through.
                    return Some(SensorEvent::Image(image));
                }
                let gain = if exposing { 1.0 - p.exposure_gain * r } else { 1.0 };
                let bias = if exposing { p.exposure_bias * r } else { 0.0 };
                let noise = if noisy { p.pixel_noise } else { 0.0 };
                let mut pixel_rng = StdRng::seed_from_u64(noise_seed);
                image.left = Arc::new(corrupt_image(&image.left, gain, bias, noise, &mut pixel_rng));
                image.right =
                    Arc::new(corrupt_image(&image.right, gain, bias, noise, &mut pixel_rng));
                self.counters.images_corrupted += 1;
                Some(SensorEvent::Image(image))
            }
        }
    }
}

/// One corrupted copy of `img`: `v ↦ clamp(v·gain + bias + n)` with
/// per-pixel uniform noise `n ∈ [-noise, noise)` from `rng`.
fn corrupt_image(
    img: &GrayImage,
    gain: f64,
    bias: f64,
    noise: f64,
    rng: &mut StdRng,
) -> GrayImage {
    let (w, h) = img.dimensions();
    let data = img
        .as_raw()
        .iter()
        .map(|&v| {
            let n = if noise != 0.0 {
                noise * (rng.random::<f64>() * 2.0 - 1.0)
            } else {
                0.0
            };
            (f64::from(v) * gain + bias + n).clamp(0.0, 255.0) as u8
        })
        .collect();
    GrayImage::from_vec(w, h, data)
}

/// An [`EventSource`] adapter applying a [`FaultProcess`] to everything
/// an inner source produces: the stream-side way to degrade a replay or
/// a live producer without the consumer knowing.
///
/// Dropped events are absorbed transparently — the injector keeps
/// polling the inner source until it has a deliverable event, a
/// [`Pending`](SourcePoll::Pending), or [`Closed`](SourcePoll::Closed),
/// so consumers never observe a hole in the poll protocol, only in the
/// data.
#[derive(Debug, Clone)]
pub struct FaultInjector<S> {
    inner: S,
    process: FaultProcess,
}

impl<S: EventSource> FaultInjector<S> {
    /// Wraps `inner`, degrading it per `plan` under `seed`.
    pub fn new(inner: S, plan: FaultPlan, seed: u64) -> FaultInjector<S> {
        FaultInjector {
            inner,
            process: FaultProcess::new(plan, seed),
        }
    }

    /// Wraps `inner` with an existing process (mid-stream state and
    /// counters included).
    pub fn from_process(inner: S, process: FaultProcess) -> FaultInjector<S> {
        FaultInjector { inner, process }
    }

    /// The underlying fault process.
    pub fn process(&self) -> &FaultProcess {
        &self.process
    }

    /// What the injector has done so far.
    pub fn counters(&self) -> FaultCounters {
        self.process.counters()
    }

    /// Unwraps the inner source, discarding the process.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EventSource> EventSource for FaultInjector<S> {
    fn poll_event(&mut self) -> SourcePoll {
        loop {
            match self.inner.poll_event() {
                SourcePoll::Ready(ev) => match self.process.apply(ev) {
                    Some(out) => return SourcePoll::Ready(out),
                    None => continue,
                },
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultProfile;
    use eudoxus_geometry::{PinholeCamera, Pose, StereoRig};
    use eudoxus_stream::{Environment, GpsSample, ImageEvent, ImuSample, IterSource};

    fn image_event(t: f64, seed: u8) -> SensorEvent {
        let img = Arc::new(GrayImage::from_fn(16, 12, |x, y| {
            (x * 13 + y * 7) as u8 ^ seed
        }));
        SensorEvent::Image(ImageEvent {
            t,
            environment: Environment::IndoorUnknown,
            left: Arc::clone(&img),
            right: img,
            rig: StereoRig::new(PinholeCamera::centered(100.0, 16, 12), 0.1),
            ground_truth: Some(Pose::identity()),
        })
    }

    fn synthetic_stream(frames: u32) -> Vec<SensorEvent> {
        let mut events = vec![SensorEvent::SegmentBoundary { anchor: None }];
        for i in 0..frames {
            let t = f64::from(i) * 0.1;
            for k in 0..3 {
                events.push(SensorEvent::Imu(ImuSample {
                    t: t - 0.05 + f64::from(k) * 0.02,
                    gyro: Vec3::new(0.01, -0.02, 0.005),
                    accel: Vec3::new(0.1, 9.81, -0.2),
                }));
            }
            events.push(SensorEvent::Gps(GpsSample {
                t: t - 0.01,
                position: Vec3::new(f64::from(i), 0.0, 1.0),
                sigma: 1.5,
            }));
            events.push(image_event(t, i as u8));
        }
        events
    }

    #[test]
    fn blackout_window_is_deterministic_and_recurs() {
        let plan = FaultPlan {
            blackout_start: 4,
            blackout_len: 2,
            blackout_period: 8,
            ..FaultPlan::default()
        };
        let mut process = FaultProcess::new(plan, 3);
        let mut blacked = Vec::new();
        for (i, ev) in synthetic_stream(20).into_iter().enumerate() {
            let before = process.counters().images_blacked_out;
            let out = process.apply(ev);
            assert!(out.is_some(), "nothing drops under a pure blackout plan");
            if process.counters().images_blacked_out > before {
                blacked.push(i);
            }
        }
        // Window recurs every 8 frames from frame 4: frames 4, 5, 12,
        // 13 of the 20-frame stream. Each frame is 5 events after the
        // boundary; the image closes it at stream index 5·f + 5.
        assert_eq!(blacked, vec![25, 30, 65, 70]);
        assert_eq!(process.counters().images_blacked_out, 4);
        // One-shot variant: period 0 fires the window once.
        let plan = FaultPlan {
            blackout_period: 0,
            ..plan
        };
        let mut process = FaultProcess::new(plan, 3);
        for ev in synthetic_stream(20) {
            process.apply(ev);
        }
        assert_eq!(process.counters().images_blacked_out, 2);
    }

    #[test]
    fn blackout_frames_are_featureless() {
        let plan = FaultPlan {
            blackout_start: 0,
            blackout_len: 1,
            ..FaultPlan::default()
        };
        let mut process = FaultProcess::new(plan, 1);
        let Some(SensorEvent::Image(ev)) = process.apply(image_event(0.0, 9)) else {
            panic!("blackout delivers the frame");
        };
        assert!(ev.left.as_raw().iter().all(|&v| v == BLACKOUT_GRAY));
        assert!(ev.right.as_raw().iter().all(|&v| v == BLACKOUT_GRAY));
        // Timestamp and ground truth survive the blackout.
        assert_eq!(ev.t, 0.0);
        assert!(ev.ground_truth.is_some());
    }

    #[test]
    fn drop_bursts_hit_a_bursty_fraction() {
        let plan = FaultPlan {
            drop_enter: 0.06,
            drop_exit: 0.45,
            ..FaultPlan::default()
        };
        let mut process = FaultProcess::new(plan, 5);
        let mut delivered = 0u32;
        for i in 0..4096 {
            if process.apply(image_event(f64::from(i) * 0.1, i as u8)).is_some() {
                delivered += 1;
            }
        }
        let dropped = process.counters().images_dropped;
        assert_eq!(u64::from(delivered) + dropped, 4096);
        // Stationary loss ≈ enter/(enter+exit) = 0.06/0.51 ≈ 0.118.
        let rate = dropped as f64 / 4096.0;
        assert!((0.06..0.20).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn imu_bias_walk_accumulates() {
        let plan = FaultProfile::imu_drift().plan;
        let mut process = FaultProcess::new(plan, 11);
        let clean = ImuSample {
            t: 0.0,
            gyro: Vec3::zero(),
            accel: Vec3::zero(),
        };
        let mut last = 0.0;
        for _ in 0..200 {
            let Some(SensorEvent::Imu(s)) = process.apply(SensorEvent::Imu(clean)) else {
                panic!("IMU events never drop");
            };
            last = s.gyro.norm();
        }
        // A random walk wanders away from zero; 200 steps of 1.5e-4
        // amplitude land far above one step.
        assert!(last > 1.5e-4, "bias walk stuck at {last}");
    }

    #[test]
    fn gps_outage_drops_and_multipath_offsets() {
        let plan = FaultPlan {
            gps_outage_enter: 0.2,
            gps_outage_exit: 0.3,
            gps_multipath_m: 2.0,
            ..FaultPlan::default()
        };
        let mut process = FaultProcess::new(plan, 21);
        let mut offsets = 0u32;
        for i in 0..512 {
            let fix = GpsSample {
                t: f64::from(i) * 0.1,
                position: Vec3::zero(),
                sigma: 1.0,
            };
            if let Some(SensorEvent::Gps(out)) = process.apply(SensorEvent::Gps(fix)) {
                let d = out.position.norm();
                assert!(d < 2.0 * 3.0f64.sqrt() + 1e-9);
                if d > 0.0 {
                    offsets += 1;
                }
            }
        }
        let dropped = process.counters().gps_dropped;
        assert!(dropped > 50, "outage dropped only {dropped} fixes");
        assert!(offsets > 100, "multipath offset only {offsets} fixes");
    }

    #[test]
    fn injector_absorbs_drops_transparently() {
        let plan = FaultPlan {
            drop_enter: 0.5,
            drop_exit: 0.2,
            ..FaultPlan::default()
        };
        let events = synthetic_stream(64);
        let total_images = events.iter().filter(|e| e.is_image()).count() as u64;
        let mut injector = FaultInjector::new(IterSource::from_vec(events), plan, 77);
        let mut seen = 0u64;
        loop {
            match injector.poll_event() {
                SourcePoll::Ready(ev) => {
                    if ev.is_image() {
                        seen += 1;
                    }
                }
                SourcePoll::Pending => {}
                SourcePoll::Closed => break,
            }
        }
        assert_eq!(seen + injector.counters().images_dropped, total_images);
        assert!(injector.counters().images_dropped > 10);
    }
}
