//! Property tests for injector determinism and transparency: a faulted
//! stream is a pure function of `(plan, seed, input events)`, an empty
//! plan is a byte-identical passthrough, and no profile ever reorders
//! events or breaks per-source timestamp monotonicity — the guarantees
//! degradation experiments and no-fault bit-identity rest on.

use std::sync::Arc;

use eudoxus_faults::{FaultInjector, FaultPlan, FaultProfile};
use eudoxus_geometry::{PinholeCamera, Pose, StereoRig, Vec3};
use eudoxus_image::GrayImage;
use eudoxus_stream::{
    Environment, EventSource, GpsSample, ImageEvent, ImuSample, IterSource, SensorEvent,
    SourcePoll,
};
use proptest::prelude::*;

/// A synthetic clean stream: boundary, then per frame a handful of IMU
/// samples, a GPS fix, and the image — the Dataset event order.
fn synthetic_stream(frames: u32, texture: u64) -> Vec<SensorEvent> {
    let mut events = vec![SensorEvent::SegmentBoundary { anchor: None }];
    for i in 0..frames {
        let t = f64::from(i) * 0.1;
        for k in 0..3u32 {
            events.push(SensorEvent::Imu(ImuSample {
                // Offsets chosen so the stream is strictly monotone in
                // f64 (0.02-steps from t−0.05 can land above t−0.01).
                t: t - 0.08 + f64::from(k) * 0.02,
                gyro: Vec3::new(0.01, -0.02, 0.005),
                accel: Vec3::new(0.1, 9.81, -0.2),
            }));
        }
        events.push(SensorEvent::Gps(GpsSample {
            t: t - 0.01,
            position: Vec3::new(f64::from(i), 0.5, 1.0),
            sigma: 1.5,
        }));
        let img = Arc::new(GrayImage::from_fn(24, 16, |x, y| {
            (u64::from(x * 31 + y * 17) ^ texture ^ u64::from(i)) as u8
        }));
        events.push(SensorEvent::Image(ImageEvent {
            t,
            environment: Environment::IndoorUnknown,
            left: Arc::clone(&img),
            right: img,
            rig: StereoRig::new(PinholeCamera::centered(120.0, 24, 16), 0.1),
            ground_truth: Some(Pose::identity()),
        }));
    }
    events
}

/// Bit-exact fingerprint of one event: every f64 by bits, every pixel
/// byte included. Two equal fingerprints mean byte-identical events.
fn fingerprint(event: &SensorEvent) -> Vec<u64> {
    match event {
        SensorEvent::SegmentBoundary { anchor } => {
            let mut v = vec![0];
            if let Some(a) = anchor {
                for f in [
                    a.pose.translation.x,
                    a.pose.translation.y,
                    a.pose.translation.z,
                    a.velocity.x,
                    a.velocity.y,
                    a.velocity.z,
                ] {
                    v.push(f.to_bits());
                }
            }
            v
        }
        SensorEvent::Imu(s) => vec![
            1,
            s.t.to_bits(),
            s.gyro.x.to_bits(),
            s.gyro.y.to_bits(),
            s.gyro.z.to_bits(),
            s.accel.x.to_bits(),
            s.accel.y.to_bits(),
            s.accel.z.to_bits(),
        ],
        SensorEvent::Gps(g) => vec![
            2,
            g.t.to_bits(),
            g.position.x.to_bits(),
            g.position.y.to_bits(),
            g.position.z.to_bits(),
            g.sigma.to_bits(),
        ],
        SensorEvent::Image(img) => {
            let mut v = vec![3, img.t.to_bits()];
            for raw in [img.left.as_raw(), img.right.as_raw()] {
                v.push(raw.len() as u64);
                v.extend(raw.iter().map(|&b| u64::from(b)));
            }
            v
        }
    }
}

/// Drains an injector over `events`, returning the delivered stream.
fn faulted(events: Vec<SensorEvent>, plan: FaultPlan, seed: u64) -> Vec<SensorEvent> {
    let mut injector = FaultInjector::new(IterSource::from_vec(events), plan, seed);
    let mut out = Vec::new();
    loop {
        match injector.poll_event() {
            SourcePoll::Ready(ev) => out.push(ev),
            SourcePoll::Pending => {}
            SourcePoll::Closed => break,
        }
    }
    out
}

/// All plans a proptest case can pick: the four canned profiles plus
/// the empty plan.
fn plan_for(which: usize) -> FaultPlan {
    if which < 4 {
        FaultProfile::canned()[which].plan
    } else {
        FaultPlan::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn same_plan_and_seed_replays_identical_stream(
        seed in any::<u64>(),
        which in 0usize..5,
        frames in 1u32..48,
        texture in any::<u64>(),
    ) {
        // Two fully independent injectors over clones of the same
        // input: the faulted streams must be bit-identical.
        let plan = plan_for(which);
        let events = synthetic_stream(frames, texture);
        let a = faulted(events.clone(), plan, seed);
        let b = faulted(events, plan, seed);
        prop_assert_eq!(a.len(), b.len());
        for (ea, eb) in a.iter().zip(&b) {
            prop_assert_eq!(fingerprint(ea), fingerprint(eb));
        }
    }

    #[test]
    fn empty_plan_is_byte_identical_passthrough(
        seed in any::<u64>(),
        frames in 1u32..48,
        texture in any::<u64>(),
    ) {
        // An empty plan must not merely be value-equal: pixel Arcs pass
        // through untouched (no copies) and every payload bit survives.
        let events = synthetic_stream(frames, texture);
        let out = faulted(events.clone(), FaultPlan::default(), seed);
        prop_assert_eq!(out.len(), events.len());
        for (clean, faulted) in events.iter().zip(&out) {
            prop_assert_eq!(fingerprint(clean), fingerprint(faulted));
            if let (SensorEvent::Image(c), SensorEvent::Image(f)) = (clean, faulted) {
                prop_assert!(Arc::ptr_eq(&c.left, &f.left), "left pixels copied");
                prop_assert!(Arc::ptr_eq(&c.right, &f.right), "right pixels copied");
            }
        }
    }

    #[test]
    fn every_profile_preserves_order_and_monotonic_timestamps(
        seed in any::<u64>(),
        which in 0usize..5,
        frames in 1u32..48,
        texture in any::<u64>(),
    ) {
        // The injector may drop or alter events but never reorder them:
        // the delivered stream is a subsequence of the input (by kind
        // and timestamp) and timestamps stay non-decreasing.
        let plan = plan_for(which);
        let events = synthetic_stream(frames, texture);
        let input: Vec<(u8, Option<u64>)> = events
            .iter()
            .map(|e| (kind_of(e), e.timestamp().map(f64::to_bits)))
            .collect();
        let out = faulted(events, plan, seed);
        let mut cursor = 0usize;
        let mut last_t = f64::NEG_INFINITY;
        for ev in &out {
            let key = (kind_of(ev), ev.timestamp().map(f64::to_bits));
            // Timestamps are untouched by every fault class, so keying
            // on (kind, t-bits) matches each output to its source slot.
            while cursor < input.len() && input[cursor] != key {
                cursor += 1;
            }
            prop_assert!(cursor < input.len(), "event not found in order: {key:?}");
            cursor += 1;
            if let Some(t) = ev.timestamp() {
                prop_assert!(t >= last_t, "timestamp regressed: {t} < {last_t}");
                last_t = t;
            }
        }
    }

    #[test]
    fn fork_restarts_the_schedule_from_event_zero(
        seed in any::<u64>(),
        which in 0usize..4,
        burn in 0usize..40,
        frames in 1u32..32,
        texture in any::<u64>(),
    ) {
        // Burn part of a stream through one process, fork it, and the
        // fork must behave exactly like a fresh injector.
        let plan = plan_for(which);
        let burn_events = synthetic_stream(8, texture);
        let mut burner = eudoxus_faults::FaultProcess::new(plan, seed);
        for ev in burn_events.into_iter().take(burn) {
            let _ = burner.apply(ev);
        }
        let events = synthetic_stream(frames, texture.wrapping_add(1));
        let mut forked = burner.fork();
        let mut fresh = eudoxus_faults::FaultProcess::new(plan, seed);
        for ev in events {
            let a = forked.apply(ev.clone());
            let b = fresh.apply(ev);
            match (&a, &b) {
                (Some(ea), Some(eb)) => prop_assert_eq!(fingerprint(ea), fingerprint(eb)),
                (None, None) => {}
                _ => prop_assert!(false, "fork diverged from fresh process"),
            }
        }
    }
}

fn kind_of(event: &SensorEvent) -> u8 {
    match event {
        SensorEvent::SegmentBoundary { .. } => 0,
        SensorEvent::Imu(_) => 1,
        SensorEvent::Gps(_) => 2,
        SensorEvent::Image(_) => 3,
    }
}
