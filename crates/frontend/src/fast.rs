//! FAST corner detection (the FD task of paper Fig. 12).
//!
//! Implements the FAST-9 segment test of Rosten & Drummond \[74\]: a pixel is
//! a corner when at least 9 contiguous pixels on the 16-pixel Bresenham
//! circle are all brighter than `center + t` or all darker than
//! `center − t`. Non-maximum suppression keeps the locally strongest
//! responses, and a bucketing pass spreads key points across the image the
//! way production frontends do.

use crate::feature::KeyPoint;
use eudoxus_image::GrayImage;

/// Offsets of the 16-pixel Bresenham circle of radius 3, clockwise from
/// 12 o'clock.
pub const CIRCLE: [(i64, i64); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// Minimum contiguous arc length for the segment test (FAST-9).
const ARC: usize = 9;

/// FAST detector parameters.
#[derive(Debug, Clone, Copy)]
pub struct FastConfig {
    /// Intensity threshold `t` of the segment test.
    pub threshold: u8,
    /// Cap on returned key points (strongest kept, spread via grid cells).
    pub max_keypoints: usize,
    /// Grid cell edge for spatial bucketing (pixels).
    pub cell_size: u32,
}

impl Default for FastConfig {
    fn default() -> Self {
        FastConfig {
            threshold: 22,
            max_keypoints: 800,
            cell_size: 40,
        }
    }
}

/// Segment-test classification of one pixel; returns the corner response
/// (0 when not a corner). The response is the sum of absolute differences
/// beyond the threshold over the circle — the score used for NMS.
///
/// The caller's scan loop keeps `(x, y)` at least 3 pixels inside every
/// border, so each circle tap is in bounds and the per-tap clamp of the
/// seed implementation reduces to an unchecked read (same pixels, same
/// arithmetic — the clamp never fired on the interior). The caller has
/// also already passed the compass quick-reject (FAST-9 needs ≥ 2
/// consistent extremes among the 4 compass points for any length-9 arc),
/// so this evaluates the full wrap-around segment test directly — for a
/// pixel that passed the pre-test, the seed code reached the same point
/// with the same state.
fn corner_response(img: &GrayImage, x: u32, y: u32, t: u8) -> f32 {
    debug_assert!(
        x >= 3 && y >= 3 && x + 3 < img.width() && y + 3 < img.height(),
        "corner_response requires a 3-pixel interior margin"
    );
    // SAFETY: the interior margin asserted above keeps every offset tap
    // of the radius-3 Bresenham circle in bounds.
    let tap = |dx: i64, dy: i64| unsafe {
        img.get_unchecked((x as i64 + dx) as u32, (y as i64 + dy) as u32) as i32
    };
    let c = tap(0, 0);
    let t = t as i32;

    // Full segment test with wrap-around (scan 16 + ARC positions).
    let mut ring = [0i32; 16];
    for (slot, &(dx, dy)) in ring.iter_mut().zip(CIRCLE.iter()) {
        *slot = tap(dx, dy);
    }
    let mut bright_run = 0usize;
    let mut dark_run = 0usize;
    let mut is_corner = false;
    for k in 0..(16 + ARC) {
        let p = ring[k % 16];
        if p > c + t {
            bright_run += 1;
            dark_run = 0;
        } else if p < c - t {
            dark_run += 1;
            bright_run = 0;
        } else {
            bright_run = 0;
            dark_run = 0;
        }
        if bright_run >= ARC || dark_run >= ARC {
            is_corner = true;
            break;
        }
    }
    if !is_corner {
        return 0.0;
    }
    ring.iter()
        .map(|&p| ((p - c).abs() - t).max(0))
        .sum::<i32>() as f32
}

/// Reusable workspaces for [`detect_fast_into`]: the full-image response
/// map, the NMS candidate list, and the bucketing buffers. One warm-up
/// call at a given image size makes every subsequent call allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FastScratch {
    responses: Vec<f32>,
    candidates: Vec<KeyPoint>,
    sort_buf: Vec<KeyPoint>,
    cell_counts: Vec<u32>,
    spill: Vec<KeyPoint>,
}

/// Detects FAST-9 corners with 3×3 non-maximum suppression and grid
/// bucketing.
///
/// Returns key points sorted by descending response. Thin wrapper over
/// [`detect_fast_into`] with throwaway buffers; steady-state callers
/// (e.g. the frontend, once per frame per eye) should hold a
/// [`FastScratch`] and call the `_into` form instead.
pub fn detect_fast(img: &GrayImage, cfg: &FastConfig) -> Vec<KeyPoint> {
    let mut scratch = FastScratch::default();
    let mut out = Vec::new();
    detect_fast_into(img, cfg, &mut scratch, &mut out);
    out
}

/// [`detect_fast`] into a reusable output vector with reusable internal
/// buffers. Bit-identical results (same key points in the same order);
/// zero heap allocations once `scratch` and `out` are warm.
pub fn detect_fast_into(
    img: &GrayImage,
    cfg: &FastConfig,
    scratch: &mut FastScratch,
    out: &mut Vec<KeyPoint>,
) {
    out.clear();
    let (w, h) = img.dimensions();
    if w < 8 || h < 8 {
        return;
    }
    // Response map over the valid interior (cleared to zero so NMS reads
    // of the untouched border ring see no stale responses).
    scratch.responses.clear();
    scratch.responses.resize((w * h) as usize, 0.0);
    // Row-sliced quick rejection: the compass pre-test of the segment
    // test, run over raw rows so the ~95 % of pixels that fail it never
    // pay for the full ring evaluation. Pixels that fail score 0 in the
    // full test too, so the response map is unchanged.
    let raw = img.as_raw();
    let wu = w as usize;
    let t = cfg.threshold as i32;
    for y in 3..(h - 3) {
        let yy = y as usize;
        let mid = &raw[yy * wu..][..wu];
        let up3 = &raw[(yy - 3) * wu..][..wu];
        let dn3 = &raw[(yy + 3) * wu..][..wu];
        for x in 3..(w - 3) {
            let xu = x as usize;
            let c = mid[xu] as i32;
            let p0 = up3[xu] as i32;
            let p4 = mid[xu + 3] as i32;
            let p8 = dn3[xu] as i32;
            let p12 = mid[xu - 3] as i32;
            let bright = u8::from(p0 > c + t)
                + u8::from(p4 > c + t)
                + u8::from(p8 > c + t)
                + u8::from(p12 > c + t);
            let dark = u8::from(p0 < c - t)
                + u8::from(p4 < c - t)
                + u8::from(p8 < c - t)
                + u8::from(p12 < c - t);
            if bright >= 2 || dark >= 2 {
                scratch.responses[(y * w + x) as usize] =
                    corner_response(img, x, y, cfg.threshold);
            }
        }
    }
    // 3×3 non-maximum suppression.
    scratch.candidates.clear();
    for y in 3..(h - 3) {
        for x in 3..(w - 3) {
            let r = scratch.responses[(y * w + x) as usize];
            if r <= 0.0 {
                continue;
            }
            let mut is_max = true;
            'nms: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let n = scratch.responses
                        [((y as i64 + dy) as u32 * w + (x as i64 + dx) as u32) as usize];
                    if n > r || (n == r && (dy < 0 || (dy == 0 && dx < 0))) {
                        is_max = false;
                        break 'nms;
                    }
                }
            }
            if is_max {
                scratch.candidates.push(KeyPoint::new(x as f32, y as f32, r));
            }
        }
    }
    bucket_keypoints_into(scratch, w, h, cfg, out);
}

/// Stable descending-by-response sort into place, using a caller-owned
/// merge buffer instead of the hidden allocation `slice::sort_by` makes
/// per call. Stable sorts are order-unique for a given comparator, so the
/// result is identical to
/// `v.sort_by(|a, b| b.response.total_cmp(&a.response))`.
fn sort_desc_by_response(v: &mut [KeyPoint], buf: &mut Vec<KeyPoint>) {
    let n = v.len();
    if n < 2 {
        return;
    }
    buf.clear();
    buf.resize(n, KeyPoint::new(0.0, 0.0, 0.0));
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo < n {
            let mid = usize::min(lo + width, n);
            let hi = usize::min(lo + 2 * width, n);
            let (mut i, mut j) = (lo, mid);
            for slot in buf[lo..hi].iter_mut() {
                // Take the right run only when it is strictly stronger —
                // ties keep the left (earlier) element, i.e. stability.
                let take_right = j < hi
                    && (i >= mid
                        || v[j].response.total_cmp(&v[i].response) == std::cmp::Ordering::Greater);
                if take_right {
                    *slot = v[j];
                    j += 1;
                } else {
                    *slot = v[i];
                    i += 1;
                }
            }
            lo = hi;
        }
        v.copy_from_slice(&buf[..n]);
        width *= 2;
    }
}

/// Spreads key points over the image: keeps the strongest per grid cell
/// first, then fills remaining quota by global response order. Operates on
/// `scratch.candidates`, writing the selection into `out`.
fn bucket_keypoints_into(
    scratch: &mut FastScratch,
    w: u32,
    h: u32,
    cfg: &FastConfig,
    out: &mut Vec<KeyPoint>,
) {
    sort_desc_by_response(&mut scratch.candidates, &mut scratch.sort_buf);
    if scratch.candidates.len() <= cfg.max_keypoints {
        out.extend_from_slice(&scratch.candidates);
        return;
    }
    let cell = cfg.cell_size.max(8);
    let cols = w.div_ceil(cell);
    let rows = h.div_ceil(cell);
    scratch.cell_counts.clear();
    scratch.cell_counts.resize((cols * rows) as usize, 0);
    let per_cell = ((cfg.max_keypoints as u32) / (cols * rows).max(1)).max(1);
    scratch.spill.clear();
    for &kp in &scratch.candidates {
        let ci = (kp.y as u32 / cell) * cols + (kp.x as u32 / cell);
        if scratch.cell_counts[ci as usize] < per_cell {
            scratch.cell_counts[ci as usize] += 1;
            out.push(kp);
        } else {
            scratch.spill.push(kp);
        }
        if out.len() == cfg.max_keypoints {
            break;
        }
    }
    // Fill remaining quota with the strongest spilled points.
    for &kp in &scratch.spill {
        if out.len() >= cfg.max_keypoints {
            break;
        }
        out.push(kp);
    }
    sort_desc_by_response(out, &mut scratch.sort_buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bright disc on dark background — an unambiguous corner source.
    fn disc_image() -> GrayImage {
        GrayImage::from_fn(40, 40, |x, y| {
            let dx = x as f32 - 20.0;
            let dy = y as f32 - 20.0;
            if dx * dx + dy * dy < 9.0 {
                220
            } else {
                30
            }
        })
    }

    #[test]
    fn detects_disc_boundary() {
        let kps = detect_fast(&disc_image(), &FastConfig::default());
        assert!(!kps.is_empty());
        // All detections near the disc.
        for kp in &kps {
            let dx = kp.x - 20.0;
            let dy = kp.y - 20.0;
            assert!(dx * dx + dy * dy < 49.0, "stray detection at {kp:?}");
        }
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::filled(64, 64, 100);
        assert!(detect_fast(&img, &FastConfig::default()).is_empty());
    }

    #[test]
    fn low_contrast_below_threshold_ignored() {
        let img = GrayImage::from_fn(40, 40, |x, _| if x < 20 { 100 } else { 110 });
        let cfg = FastConfig {
            threshold: 25,
            ..FastConfig::default()
        };
        assert!(detect_fast(&img, &cfg).is_empty());
    }

    #[test]
    fn dark_corner_also_detected() {
        // Dark disc on bright background (tests the "darker" arc branch).
        let img = GrayImage::from_fn(40, 40, |x, y| {
            let dx = x as f32 - 20.0;
            let dy = y as f32 - 20.0;
            if dx * dx + dy * dy < 9.0 {
                20
            } else {
                200
            }
        });
        assert!(!detect_fast(&img, &FastConfig::default()).is_empty());
    }

    #[test]
    fn max_keypoints_is_respected() {
        // A dense grid of bright discs — every disc produces corners.
        let img = GrayImage::from_fn(160, 160, |x, y| {
            let dx = (x % 16) as f32 - 8.0;
            let dy = (y % 16) as f32 - 8.0;
            if dx * dx + dy * dy < 9.0 {
                210
            } else {
                40
            }
        });
        let cfg = FastConfig {
            max_keypoints: 50,
            ..FastConfig::default()
        };
        let kps = detect_fast(&img, &cfg);
        assert!(kps.len() <= 50);
        assert!(kps.len() > 20);
        // Sorted by response.
        for w in kps.windows(2) {
            assert!(w[0].response >= w[1].response);
        }
    }

    #[test]
    fn tiny_image_is_safe() {
        let img = GrayImage::new(6, 6);
        assert!(detect_fast(&img, &FastConfig::default()).is_empty());
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One FastScratch reused across images of different content and
        // size must match fresh-buffer detection exactly, point for point.
        let dense = GrayImage::from_fn(160, 160, |x, y| {
            let dx = (x % 16) as f32 - 8.0;
            let dy = (y % 16) as f32 - 8.0;
            if dx * dx + dy * dy < 9.0 {
                210
            } else {
                40
            }
        });
        let cfg_small = FastConfig {
            max_keypoints: 50,
            ..FastConfig::default()
        };
        let mut scratch = FastScratch::default();
        let mut out = Vec::new();
        for (img, cfg) in [
            (&disc_image(), &FastConfig::default()),
            (&dense, &cfg_small), // exercises the bucketing (spill) path
            (&disc_image(), &FastConfig::default()),
            (&GrayImage::filled(64, 64, 100), &FastConfig::default()),
        ] {
            detect_fast_into(img, cfg, &mut scratch, &mut out);
            let fresh = detect_fast(img, cfg);
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
                assert_eq!(a.response.to_bits(), b.response.to_bits());
            }
        }
    }

    #[test]
    fn scratch_sort_matches_std_stable_sort() {
        // Deliberately includes ties so stability is exercised.
        let mut kps: Vec<KeyPoint> = (0..257)
            .map(|i| KeyPoint::new(i as f32, 0.0, ((i * 7919) % 23) as f32))
            .collect();
        let mut reference = kps.clone();
        reference.sort_by(|a, b| b.response.total_cmp(&a.response));
        let mut buf = Vec::new();
        sort_desc_by_response(&mut kps, &mut buf);
        for (a, b) in kps.iter().zip(&reference) {
            assert_eq!((a.x, a.response), (b.x, b.response));
        }
    }

    #[test]
    fn nms_keeps_single_peak_per_corner() {
        let kps = detect_fast(&disc_image(), &FastConfig::default());
        // No two detections closer than 2 px.
        for i in 0..kps.len() {
            for j in (i + 1)..kps.len() {
                assert!(kps[i].distance_squared(&kps[j]) >= 2.0);
            }
        }
    }
}
