//! FAST corner detection (the FD task of paper Fig. 12).
//!
//! Implements the FAST-9 segment test of Rosten & Drummond \[74\]: a pixel is
//! a corner when at least 9 contiguous pixels on the 16-pixel Bresenham
//! circle are all brighter than `center + t` or all darker than
//! `center − t`. Non-maximum suppression keeps the locally strongest
//! responses, and a bucketing pass spreads key points across the image the
//! way production frontends do.

use crate::feature::KeyPoint;
use eudoxus_image::GrayImage;

/// Offsets of the 16-pixel Bresenham circle of radius 3, clockwise from
/// 12 o'clock.
pub const CIRCLE: [(i64, i64); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// Minimum contiguous arc length for the segment test (FAST-9).
const ARC: usize = 9;

/// FAST detector parameters.
#[derive(Debug, Clone, Copy)]
pub struct FastConfig {
    /// Intensity threshold `t` of the segment test.
    pub threshold: u8,
    /// Cap on returned key points (strongest kept, spread via grid cells).
    pub max_keypoints: usize,
    /// Grid cell edge for spatial bucketing (pixels).
    pub cell_size: u32,
}

impl Default for FastConfig {
    fn default() -> Self {
        FastConfig {
            threshold: 22,
            max_keypoints: 800,
            cell_size: 40,
        }
    }
}

/// Segment-test classification of one pixel; returns the corner response
/// (0 when not a corner). The response is the sum of absolute differences
/// beyond the threshold over the circle — the score used for NMS.
fn corner_response(img: &GrayImage, x: u32, y: u32, t: u8) -> f32 {
    let c = img.get(x, y) as i32;
    let t = t as i32;
    let (xi, yi) = (x as i64, y as i64);

    // Quick rejection: among the 4 compass points, FAST-9 requires at least
    // 2 consistent extremes for a valid arc of length 9.
    let p0 = img.get_clamped(xi, yi - 3) as i32;
    let p8 = img.get_clamped(xi, yi + 3) as i32;
    let p4 = img.get_clamped(xi + 3, yi) as i32;
    let p12 = img.get_clamped(xi - 3, yi) as i32;
    let bright_quick = [p0, p4, p8, p12].iter().filter(|&&p| p > c + t).count();
    let dark_quick = [p0, p4, p8, p12].iter().filter(|&&p| p < c - t).count();
    if bright_quick < 2 && dark_quick < 2 {
        return 0.0;
    }

    // Full segment test with wrap-around (scan 16 + ARC positions).
    let mut ring = [0i32; 16];
    for (slot, &(dx, dy)) in ring.iter_mut().zip(CIRCLE.iter()) {
        *slot = img.get_clamped(xi + dx, yi + dy) as i32;
    }
    let mut bright_run = 0usize;
    let mut dark_run = 0usize;
    let mut is_corner = false;
    for k in 0..(16 + ARC) {
        let p = ring[k % 16];
        if p > c + t {
            bright_run += 1;
            dark_run = 0;
        } else if p < c - t {
            dark_run += 1;
            bright_run = 0;
        } else {
            bright_run = 0;
            dark_run = 0;
        }
        if bright_run >= ARC || dark_run >= ARC {
            is_corner = true;
            break;
        }
    }
    if !is_corner {
        return 0.0;
    }
    ring.iter()
        .map(|&p| ((p - c).abs() - t).max(0))
        .sum::<i32>() as f32
}

/// Detects FAST-9 corners with 3×3 non-maximum suppression and grid
/// bucketing.
///
/// Returns key points sorted by descending response.
pub fn detect_fast(img: &GrayImage, cfg: &FastConfig) -> Vec<KeyPoint> {
    let (w, h) = img.dimensions();
    if w < 8 || h < 8 {
        return Vec::new();
    }
    // Response map over the valid interior.
    let mut responses = vec![0.0f32; (w * h) as usize];
    for y in 3..(h - 3) {
        for x in 3..(w - 3) {
            responses[(y * w + x) as usize] = corner_response(img, x, y, cfg.threshold);
        }
    }
    // 3×3 non-maximum suppression.
    let mut candidates: Vec<KeyPoint> = Vec::new();
    for y in 3..(h - 3) {
        for x in 3..(w - 3) {
            let r = responses[(y * w + x) as usize];
            if r <= 0.0 {
                continue;
            }
            let mut is_max = true;
            'nms: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let n = responses[((y as i64 + dy) as u32 * w + (x as i64 + dx) as u32) as usize];
                    if n > r || (n == r && (dy < 0 || (dy == 0 && dx < 0))) {
                        is_max = false;
                        break 'nms;
                    }
                }
            }
            if is_max {
                candidates.push(KeyPoint::new(x as f32, y as f32, r));
            }
        }
    }
    bucket_keypoints(candidates, w, h, cfg)
}

/// Spreads key points over the image: keeps the strongest per grid cell
/// first, then fills remaining quota by global response order.
fn bucket_keypoints(mut kps: Vec<KeyPoint>, w: u32, h: u32, cfg: &FastConfig) -> Vec<KeyPoint> {
    if kps.len() <= cfg.max_keypoints {
        kps.sort_by(|a, b| b.response.total_cmp(&a.response));
        return kps;
    }
    let cell = cfg.cell_size.max(8);
    let cols = w.div_ceil(cell);
    let rows = h.div_ceil(cell);
    kps.sort_by(|a, b| b.response.total_cmp(&a.response));
    let mut cell_counts = vec![0u32; (cols * rows) as usize];
    let per_cell = ((cfg.max_keypoints as u32) / (cols * rows).max(1)).max(1);
    let mut picked = Vec::with_capacity(cfg.max_keypoints);
    let mut spill = Vec::new();
    for kp in kps {
        let ci = (kp.y as u32 / cell) * cols + (kp.x as u32 / cell);
        if cell_counts[ci as usize] < per_cell {
            cell_counts[ci as usize] += 1;
            picked.push(kp);
        } else {
            spill.push(kp);
        }
        if picked.len() == cfg.max_keypoints {
            break;
        }
    }
    // Fill remaining quota with the strongest spilled points.
    for kp in spill {
        if picked.len() >= cfg.max_keypoints {
            break;
        }
        picked.push(kp);
    }
    picked.sort_by(|a, b| b.response.total_cmp(&a.response));
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bright disc on dark background — an unambiguous corner source.
    fn disc_image() -> GrayImage {
        GrayImage::from_fn(40, 40, |x, y| {
            let dx = x as f32 - 20.0;
            let dy = y as f32 - 20.0;
            if dx * dx + dy * dy < 9.0 {
                220
            } else {
                30
            }
        })
    }

    #[test]
    fn detects_disc_boundary() {
        let kps = detect_fast(&disc_image(), &FastConfig::default());
        assert!(!kps.is_empty());
        // All detections near the disc.
        for kp in &kps {
            let dx = kp.x - 20.0;
            let dy = kp.y - 20.0;
            assert!(dx * dx + dy * dy < 49.0, "stray detection at {kp:?}");
        }
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::filled(64, 64, 100);
        assert!(detect_fast(&img, &FastConfig::default()).is_empty());
    }

    #[test]
    fn low_contrast_below_threshold_ignored() {
        let img = GrayImage::from_fn(40, 40, |x, _| if x < 20 { 100 } else { 110 });
        let cfg = FastConfig {
            threshold: 25,
            ..FastConfig::default()
        };
        assert!(detect_fast(&img, &cfg).is_empty());
    }

    #[test]
    fn dark_corner_also_detected() {
        // Dark disc on bright background (tests the "darker" arc branch).
        let img = GrayImage::from_fn(40, 40, |x, y| {
            let dx = x as f32 - 20.0;
            let dy = y as f32 - 20.0;
            if dx * dx + dy * dy < 9.0 {
                20
            } else {
                200
            }
        });
        assert!(!detect_fast(&img, &FastConfig::default()).is_empty());
    }

    #[test]
    fn max_keypoints_is_respected() {
        // A dense grid of bright discs — every disc produces corners.
        let img = GrayImage::from_fn(160, 160, |x, y| {
            let dx = (x % 16) as f32 - 8.0;
            let dy = (y % 16) as f32 - 8.0;
            if dx * dx + dy * dy < 9.0 {
                210
            } else {
                40
            }
        });
        let cfg = FastConfig {
            max_keypoints: 50,
            ..FastConfig::default()
        };
        let kps = detect_fast(&img, &cfg);
        assert!(kps.len() <= 50);
        assert!(kps.len() > 20);
        // Sorted by response.
        for w in kps.windows(2) {
            assert!(w[0].response >= w[1].response);
        }
    }

    #[test]
    fn tiny_image_is_safe() {
        let img = GrayImage::new(6, 6);
        assert!(detect_fast(&img, &FastConfig::default()).is_empty());
    }

    #[test]
    fn nms_keeps_single_peak_per_corner() {
        let kps = detect_fast(&disc_image(), &FastConfig::default());
        // No two detections closer than 2 px.
        for i in 0..kps.len() {
            for j in (i + 1)..kps.len() {
                assert!(kps[i].distance_squared(&kps[j]) >= 2.0);
            }
        }
    }
}
