//! Key points and binary descriptors.

use std::fmt;

/// A detected key point in image coordinates (sub-pixel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyPoint {
    /// Horizontal position (pixels).
    pub x: f32,
    /// Vertical position (pixels).
    pub y: f32,
    /// Detector response (corner strength); larger is stronger.
    pub response: f32,
}

impl KeyPoint {
    /// Creates a key point.
    pub fn new(x: f32, y: f32, response: f32) -> Self {
        KeyPoint { x, y, response }
    }

    /// Squared distance to another key point.
    pub fn distance_squared(&self, other: &KeyPoint) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// A 256-bit ORB descriptor stored as four 64-bit words.
///
/// # Example
///
/// ```
/// use eudoxus_frontend::OrbDescriptor;
/// let a = OrbDescriptor::from_words([0, 0, 0, 0]);
/// let b = OrbDescriptor::from_words([0b1011, 0, 0, 0]);
/// assert_eq!(a.hamming(&b), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrbDescriptor {
    words: [u64; 4],
}

impl OrbDescriptor {
    /// Builds from raw 64-bit words.
    pub const fn from_words(words: [u64; 4]) -> Self {
        OrbDescriptor { words }
    }

    /// The all-zero descriptor (useful as a placeholder in tests).
    pub const fn zero() -> Self {
        OrbDescriptor { words: [0; 4] }
    }

    /// Raw words.
    pub fn words(&self) -> &[u64; 4] {
        &self.words
    }

    /// Sets bit `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn set_bit(&mut self, i: usize) {
        assert!(i < 256, "descriptor bit index out of range");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "descriptor bit index out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Hamming distance (number of differing bits, 0–256).
    pub fn hamming(&self, other: &OrbDescriptor) -> u32 {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }
}

impl fmt::Debug for OrbDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OrbDescriptor({:016x}{:016x}{:016x}{:016x})",
            self.words[0], self.words[1], self.words[2], self.words[3]
        )
    }
}

/// A key point paired with its descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Feature {
    /// Where the feature was detected.
    pub keypoint: KeyPoint,
    /// Its binary appearance descriptor.
    pub descriptor: OrbDescriptor,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_distance_counts_bits() {
        let mut a = OrbDescriptor::zero();
        let mut b = OrbDescriptor::zero();
        a.set_bit(0);
        a.set_bit(100);
        a.set_bit(255);
        b.set_bit(100);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(OrbDescriptor::zero().hamming(&a), 3);
    }

    #[test]
    fn bit_roundtrip() {
        let mut d = OrbDescriptor::zero();
        for i in [0usize, 63, 64, 127, 128, 200, 255] {
            assert!(!d.bit(i));
            d.set_bit(i);
            assert!(d.bit(i));
        }
    }

    #[test]
    fn keypoint_distance() {
        let a = KeyPoint::new(0.0, 0.0, 1.0);
        let b = KeyPoint::new(3.0, 4.0, 1.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_index_bounds() {
        let d = OrbDescriptor::zero();
        let _ = d.bit(256);
    }
}
