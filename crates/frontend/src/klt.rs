//! Pyramidal Lucas–Kanade optical flow (the DC + LSS tasks of Fig. 12).
//!
//! Temporal matching "tracks feature points across frames using the classic
//! Lucas–Kanade optical flow method" (paper Sec. IV-A). The accelerator
//! splits it into derivatives calculation (DC) and a linear least-squares
//! solve (LSS); the CPU implementation below has the same two phases per
//! iteration: template gradients once per level, then iterative 2×2 normal
//! equation solves.
//!
//! # The batched solve
//!
//! The paper's DC→LSS pipeline is a *regular per-track* computation — the
//! accelerator exploits that by streaming tracks through fixed hardware
//! lanes (Sec. V, `tm_per_track` cycles each). The CPU hot path mirrors
//! the structure: [`track_pyramidal_into`] solves tracks in batches of
//! [`KLT_LANES`], holding per-track state (positions, 2×2 normal matrices,
//! residuals, convergence masks) as parallel SoA arrays in a `TrackBatch`
//! inside [`KltScratch`]. Each LSS iteration gathers the search windows of
//! all lanes from the shared f32 plane with a row-hoisted bilinear gather
//! (`eudoxus_image::RowGather`) and updates the lane accumulators in a
//! fixed-width unrolled inner loop. Per-lane arithmetic is exactly the
//! scalar sequence, so the batch is **bit-identical** to solving each
//! track alone — lanes only add independent instruction-level
//! parallelism where the scalar solve serializes on its `f32` accumulator
//! chains.
//!
//! **Masking contract**: a lane that converges (update norm below
//! `epsilon`) or goes degenerate (determinant test) stops updating its
//! state but *stays in the batch* — it is not compacted out; the
//! per-lane mask simply skips its gather and its update, so a batch
//! performs exactly the scalar solve's total sample count (not
//! `lanes × max(iterations)`). The mask is loop-invariant within one
//! iteration, so the skip branch predicts perfectly. The iteration loop
//! ends when every lane is masked or `max_iterations` is reached.
//!
//! **Scalar fallback**: [`track_one`]/[`track_one_with`] run the original
//! scalar solve (one track, no lanes); inside the batch, any window row
//! whose lanes are not all interior falls back to the per-lane clamped
//! sampler for that row (bit-identical by construction). The seed solve
//! itself is preserved verbatim in `eudoxus_bench::baseline` as the
//! golden reference.

use eudoxus_image::{FloatImage, GrayImage, Pyramid, RowGather, RowSampler};

/// Lane width of the batched KLT solve: tracks are solved
/// [`KLT_LANES`] at a time with SoA state. Eight `f32` lanes fill one
/// 256-bit vector register and, more importantly on scalar targets, give
/// the out-of-order core eight independent accumulator chains where the
/// per-track solve has one.
pub const KLT_LANES: usize = 8;

/// LK tracker parameters.
#[derive(Debug, Clone, Copy)]
pub struct KltConfig {
    /// Half-size of the tracking window (window is `(2w+1)²`).
    pub window_radius: i64,
    /// Pyramid levels (1 = no pyramid).
    pub levels: usize,
    /// Max Gauss–Newton iterations per level.
    pub max_iterations: usize,
    /// Convergence threshold on the update norm (pixels).
    pub epsilon: f32,
    /// Minimum acceptable eigenvalue proxy of the 2×2 normal matrix
    /// (rejects textureless windows).
    pub min_determinant: f32,
    /// Maximum residual per pixel for a track to be declared good.
    pub max_residual: f32,
}

impl Default for KltConfig {
    fn default() -> Self {
        KltConfig {
            window_radius: 7,
            levels: 3,
            max_iterations: 15,
            epsilon: 0.03,
            min_determinant: 1e-4,
            max_residual: 18.0,
        }
    }
}

/// Result of tracking one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrackOutcome {
    /// Converged; carries the position in the new frame.
    Tracked {
        /// New x (pixels).
        x: f32,
        /// New y (pixels).
        y: f32,
        /// Mean absolute residual over the window (intensity units).
        residual: f32,
    },
    /// The point left the image bounds.
    OutOfBounds,
    /// The window had too little texture to constrain the solve.
    Degenerate,
    /// The iteration failed to converge or the residual stayed large.
    Lost,
}

impl TrackOutcome {
    /// The tracked position, if successful.
    pub fn position(&self) -> Option<(f32, f32)> {
        match *self {
            TrackOutcome::Tracked { x, y, .. } => Some((x, y)),
            _ => None,
        }
    }
}

/// SoA state of one batch of up to [`KLT_LANES`] tracks: parallel arrays
/// indexed by lane. The window buffers are lane-interleaved
/// (`buf[pixel * KLT_LANES + lane]`) so the LSS inner loop reads each
/// pixel's lane vector from contiguous memory.
#[derive(Debug, Clone, Default)]
struct TrackBatch {
    /// Full-resolution input positions.
    x: [f32; KLT_LANES],
    y: [f32; KLT_LANES],
    /// Level-scaled positions.
    px: [f32; KLT_LANES],
    py: [f32; KLT_LANES],
    /// Accumulated displacement estimate at the current level.
    gx: [f32; KLT_LANES],
    gy: [f32; KLT_LANES],
    /// 2×2 structure tensor and its inverse determinant (DC output).
    a11: [f32; KLT_LANES],
    a12: [f32; KLT_LANES],
    a22: [f32; KLT_LANES],
    inv: [f32; KLT_LANES],
    /// Mean absolute residual of the last executed iteration.
    residual: [f32; KLT_LANES],
    /// Lane holds a real, non-degenerate track (padding lanes and
    /// degenerate lanes are dead: they stay resident but are masked out
    /// of every gather and update).
    live: [bool; KLT_LANES],
    /// Lane failed the determinant test at some level.
    degenerate: [bool; KLT_LANES],
    /// Lane is still iterating at the current level (convergence mask).
    iterating: [bool; KLT_LANES],
    /// LSS iterations executed per lane, summed over levels.
    iters: [u32; KLT_LANES],
    /// Lane-interleaved template window values, `(2r+1)² × KLT_LANES`.
    template: Vec<f32>,
    /// Lane-interleaved template gradients.
    grad_x: Vec<f32>,
    grad_y: Vec<f32>,
    /// Lane-interleaved per-column sample x positions (`px + dx`).
    txs: Vec<f32>,
}

/// Reusable state for the LK solve: per-track window buffers (scalar
/// path), the SoA `TrackBatch` (batched path), and the f32 plane copies
/// of the pyramids. One warm-up call makes every subsequent track
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct KltScratch {
    template: Vec<f32>,
    grad_x: Vec<f32>,
    grad_y: Vec<f32>,
    /// Extended `(w+2)²` sample grid of the template window (the DC
    /// phase shares samples between the template and the central
    /// differences instead of re-sampling five times per pixel).
    samples: Vec<f32>,
    /// Per-column proof that the gradient sample positions `tx ± 1.0`
    /// equal the neighboring grid positions `px + (dx ± 1)` bit for bit
    /// (f32 addition rounds, so this can fail near binade boundaries —
    /// those columns fall back to direct sampling).
    exact_x: Vec<(bool, bool)>,
    /// f32 copies of the pyramid levels being tracked between. Every
    /// `u8` is exact in `f32`, so sampling the planes is bit-identical
    /// to sampling the `u8` levels — without the four integer→float
    /// converts inside the innermost loop of the solve.
    prev_planes: Vec<FloatImage>,
    next_planes: Vec<FloatImage>,
    /// Per-column sample x positions `px + dx` (identical computation to
    /// the inline form, hoisted out of the iteration loops).
    txs: Vec<f32>,
    /// SoA state of the batched solve.
    batch: TrackBatch,
    /// Per-point LSS iteration counts of the most recent call (see
    /// [`iteration_counts`](Self::iteration_counts)).
    iterations: Vec<u32>,
}

impl KltScratch {
    /// LSS iteration counts of the most recent [`track_pyramidal_into`]
    /// (one entry per input point, in order) or [`track_one_with`] (one
    /// entry) call, summed over pyramid levels. Diagnostic surface for
    /// the bit-identity harness: the batched and scalar solves must
    /// execute exactly the same number of iterations per track, not just
    /// land on the same positions.
    pub fn iteration_counts(&self) -> &[u32] {
        &self.iterations
    }
}

/// Copies pyramid levels into reusable f32 planes (allocation-free once
/// the plane buffers are warm at the stream's image size).
fn pyramid_to_planes(pyr: &Pyramid, planes: &mut Vec<FloatImage>) {
    planes.truncate(pyr.levels());
    while planes.len() < pyr.levels() {
        planes.push(FloatImage::default());
    }
    for (plane, i) in planes.iter_mut().zip(0..pyr.levels()) {
        plane.copy_from_gray(pyr.level(i));
    }
}

/// DC micro-kernel: samples the extended `(w+2)²` grid around `(px, py)`
/// on `prev` once (the inner `w×w` block is the template, the one-pixel
/// ring holds the out-of-window central-difference taps), proves per
/// column/row that the gradient positions `tx ± 1.0` equal the grid
/// positions bit for bit (falling back to direct sampling where f32
/// rounding breaks the equality), and writes the template, gradients and
/// per-column x positions at `stride`-spaced slots starting at `offset`.
/// `stride = 1` is the scalar layout; the batch passes
/// `stride = KLT_LANES, offset = lane`. Returns the structure tensor
/// `(a11, a12, a22)`; every slot value and the tensor are bit-identical
/// to the seed DC phase regardless of layout.
#[allow(clippy::too_many_arguments)]
fn dc_window(
    prev: &FloatImage,
    px: f32,
    py: f32,
    r: i64,
    samples: &mut Vec<f32>,
    exact_x: &mut Vec<(bool, bool)>,
    template: &mut [f32],
    grad_x: &mut [f32],
    grad_y: &mut [f32],
    txs: &mut [f32],
    stride: usize,
    offset: usize,
) -> (f32, f32, f32) {
    let w = (2 * r + 1) as usize;
    let we = w + 2;
    samples.clear();
    samples.resize(we * we, 0.0);
    for (erow, edy) in (-(r + 1)..=(r + 1)).enumerate() {
        let s = RowSampler::new(prev, py + edy as f32);
        let row_out = &mut samples[erow * we..][..we];
        if s.run_interior(px + (-(r + 1)) as f32, px + (r + 1) as f32) {
            for (slot, edx) in row_out.iter_mut().zip(-(r + 1)..=(r + 1)) {
                // SAFETY: run_interior proved the whole run.
                *slot = unsafe { s.sample_interior(px + edx as f32) };
            }
        } else {
            for (slot, edx) in row_out.iter_mut().zip(-(r + 1)..=(r + 1)) {
                *slot = s.sample(px + edx as f32);
            }
        }
    }
    exact_x.clear();
    exact_x.extend((-r..=r).map(|dx| {
        let tx = px + dx as f32;
        (
            tx + 1.0 == px + (dx + 1) as f32,
            tx - 1.0 == px + (dx - 1) as f32,
        )
    }));
    for (col, dx) in (-r..=r).enumerate() {
        txs[col * stride + offset] = px + dx as f32;
    }
    let mut a11 = 0.0f32;
    let mut a12 = 0.0f32;
    let mut a22 = 0.0f32;
    for (row, dy) in (-r..=r).enumerate() {
        let ty = py + dy as f32;
        let y_exact_dn = ty + 1.0 == py + (dy + 1) as f32;
        let y_exact_up = ty - 1.0 == py + (dy - 1) as f32;
        // Fallback samplers (only consulted when an exactness proof
        // fails, i.e. almost never).
        let s_mid = RowSampler::new(prev, ty);
        let s_up = RowSampler::new(prev, ty - 1.0);
        let s_dn = RowSampler::new(prev, ty + 1.0);
        for (col, dx) in (-r..=r).enumerate() {
            let tx = px + dx as f32;
            let idx = (row * w + col) * stride + offset;
            let e = (row + 1) * we + (col + 1);
            template[idx] = samples[e];
            let (x_exact_r, x_exact_l) = exact_x[col];
            let right = if x_exact_r { samples[e + 1] } else { s_mid.sample(tx + 1.0) };
            let left = if x_exact_l { samples[e - 1] } else { s_mid.sample(tx - 1.0) };
            let ix = (right - left) * 0.5;
            let down = if y_exact_dn { samples[e + we] } else { s_dn.sample(tx) };
            let up = if y_exact_up { samples[e - we] } else { s_up.sample(tx) };
            let iy = (down - up) * 0.5;
            grad_x[idx] = ix;
            grad_y[idx] = iy;
            a11 += ix * ix;
            a12 += ix * iy;
            a22 += iy * iy;
        }
    }
    (a11, a12, a22)
}

/// Tracks one point on a single pyramid level; `(gx, gy)` is the initial
/// displacement estimate. Returns `(dx, dy, residual, iterations)` on
/// success. This is the scalar fallback path — the batched solve in
/// [`track_pyramidal_into`] executes the identical per-lane arithmetic.
///
/// The DC phase samples template values and central-difference gradients
/// *within the window only* — computing full-image gradient maps per
/// track would dominate the frame time, and the accelerator's DC block
/// likewise operates on windowed data (paper Fig. 12).
#[allow(clippy::too_many_arguments)]
fn track_level(
    prev: &FloatImage,
    next: &FloatImage,
    px: f32,
    py: f32,
    mut gx: f32,
    mut gy: f32,
    cfg: &KltConfig,
    scratch: &mut KltScratch,
) -> Option<(f32, f32, f32, u32)> {
    let r = cfg.window_radius;
    let w = (2 * r + 1) as usize;
    let n_px = (w * w) as f32;

    // DC phase: template values, window gradients and the 2×2 structure
    // tensor (constant across iterations: linearized at the template).
    scratch.template.clear();
    scratch.template.resize(w * w, 0.0);
    scratch.grad_x.clear();
    scratch.grad_x.resize(w * w, 0.0);
    scratch.grad_y.clear();
    scratch.grad_y.resize(w * w, 0.0);
    scratch.txs.clear();
    scratch.txs.resize(w, 0.0);
    let (a11, a12, a22) = dc_window(
        prev,
        px,
        py,
        r,
        &mut scratch.samples,
        &mut scratch.exact_x,
        &mut scratch.template,
        &mut scratch.grad_x,
        &mut scratch.grad_y,
        &mut scratch.txs,
        1,
        0,
    );
    let det = a11 * a22 - a12 * a12;
    if det < cfg.min_determinant * n_px * n_px {
        return None;
    }
    let inv = 1.0 / det;

    let template = &scratch.template;
    let grad_x = &scratch.grad_x;
    let grad_y = &scratch.grad_y;

    // LSS phase: iterate the 2×2 solve.
    let txs = &scratch.txs;
    let mut residual = f32::MAX;
    let mut iters = 0u32;
    for _ in 0..cfg.max_iterations {
        iters += 1;
        let mut b1 = 0.0f32;
        let mut b2 = 0.0f32;
        let mut res_acc = 0.0f32;
        for (row, dy) in (-r..=r).enumerate() {
            let ty = py + dy as f32;
            let s = RowSampler::new(next, ty + gy);
            let base = row * w;
            let trow = &template[base..][..w];
            let grow = &grad_x[base..][..w];
            let hrow = &grad_y[base..][..w];
            let taps = txs.iter().zip(trow).zip(grow.iter().zip(hrow));
            if s.run_interior(txs[0] + gx, txs[w - 1] + gx) {
                // Whole row interior: no per-sample bounds branches.
                for ((&tx, &t), (&gxv, &gyv)) in taps {
                    // SAFETY: run_interior proved both endpoints (and by
                    // monotonicity of floor, every column between) are
                    // interior on this row.
                    let it = unsafe { s.sample_interior(tx + gx) } - t;
                    b1 += it * gxv;
                    b2 += it * gyv;
                    res_acc += it.abs();
                }
            } else {
                for ((&tx, &t), (&gxv, &gyv)) in taps {
                    let it = s.sample(tx + gx) - t;
                    b1 += it * gxv;
                    b2 += it * gyv;
                    res_acc += it.abs();
                }
            }
        }
        residual = res_acc / n_px;
        let ux = (a22 * b1 - a12 * b2) * inv;
        let uy = (a11 * b2 - a12 * b1) * inv;
        gx -= ux;
        gy -= uy;
        if (ux * ux + uy * uy).sqrt() < cfg.epsilon {
            break;
        }
    }
    Some((gx, gy, residual, iters))
}

/// One LSS iteration of the batched solve: accumulates the 2×2 normal
/// equation right-hand sides and the absolute-residual sums for every
/// lane still iterating. Each active lane's accumulation visits the
/// window in the same row-major order as the scalar solve with the same
/// arithmetic, so per-lane results are bit-identical to
/// [`track_level`]'s iteration.
///
/// Masked lanes (converged, degenerate, padding) stay resident in the
/// batch but are skipped by the gather — their accumulators would be
/// discarded anyway, and skipping keeps the batch's total sample count
/// equal to the scalar solve's instead of `lanes × max(iterations)`.
/// The fast path requires every *active* lane's sample run on the
/// current window row to be interior; rows that fail fall back to the
/// per-lane clamped sampler — the scalar row structure, verbatim.
fn lss_batch_iteration(
    next: &FloatImage,
    b: &TrackBatch,
    w: usize,
    r: i64,
) -> ([f32; KLT_LANES], [f32; KLT_LANES], [f32; KLT_LANES]) {
    let mut b1 = [0.0f32; KLT_LANES];
    let mut b2 = [0.0f32; KLT_LANES];
    let mut res = [0.0f32; KLT_LANES];
    let active = b.iterating;
    let full = active == [true; KLT_LANES];
    // Hoisted lane state and window buffers (read-only for the whole
    // iteration; local copies free the optimizer from aliasing doubts).
    let gx = b.gx;
    let gy = b.gy;
    let py = b.py;
    let tmpl: &[f32] = &b.template;
    let gradx: &[f32] = &b.grad_x;
    let grady: &[f32] = &b.grad_y;
    let txs: &[f32] = &b.txs;
    debug_assert!(tmpl.len() >= w * w * KLT_LANES);
    debug_assert!(gradx.len() >= w * w * KLT_LANES && grady.len() >= w * w * KLT_LANES);
    debug_assert!(txs.len() >= w * KLT_LANES);
    for (row, dy) in (-r..=r).enumerate() {
        let mut ys = [0.0f32; KLT_LANES];
        for l in 0..KLT_LANES {
            // Same association as the scalar path: `(py + dy) + gy`.
            ys[l] = py[l] + dy as f32 + gy[l];
        }
        let gather = RowGather::<KLT_LANES>::new_masked(next, &ys, &active);
        let mut all_interior = true;
        for l in 0..KLT_LANES {
            all_interior &= !active[l]
                || gather.lane_run_interior(
                    l,
                    txs[l] + gx[l],
                    txs[(w - 1) * KLT_LANES + l] + gx[l],
                );
        }
        let base = row * w;
        if all_interior && full {
            // Branch-free lane-parallel micro-kernel: per pixel column,
            // gather one sample per lane and update the eight
            // independent accumulator chains where the scalar solve
            // serializes on one.
            for col in 0..w {
                let pix = (base + col) * KLT_LANES;
                let txc = col * KLT_LANES;
                for l in 0..KLT_LANES {
                    // SAFETY: lane_run_interior proved every lane's whole
                    // run on this row (floor is monotone over the run);
                    // buffer indices are below `w²·KLT_LANES`, the
                    // resize length (debug-asserted above).
                    let (sv, t, gxv, gyv) = unsafe {
                        let xv = *txs.get_unchecked(txc + l) + gx[l];
                        (
                            gather.gather_unchecked(l, xv),
                            *tmpl.get_unchecked(pix + l),
                            *gradx.get_unchecked(pix + l),
                            *grady.get_unchecked(pix + l),
                        )
                    };
                    let it = sv - t;
                    b1[l] += it * gxv;
                    b2[l] += it * gyv;
                    res[l] += it.abs();
                }
            }
        } else if all_interior {
            // Same micro-kernel with the convergence mask applied: the
            // mask is loop-invariant for the whole iteration, so the
            // skip branch predicts perfectly and masked lanes cost
            // nothing but the test.
            for col in 0..w {
                let pix = (base + col) * KLT_LANES;
                let txc = col * KLT_LANES;
                for l in 0..KLT_LANES {
                    if !active[l] {
                        continue;
                    }
                    // SAFETY: as in the branch-free loop above.
                    let (sv, t, gxv, gyv) = unsafe {
                        let xv = *txs.get_unchecked(txc + l) + gx[l];
                        (
                            gather.gather_unchecked(l, xv),
                            *tmpl.get_unchecked(pix + l),
                            *gradx.get_unchecked(pix + l),
                            *grady.get_unchecked(pix + l),
                        )
                    };
                    let it = sv - t;
                    b1[l] += it * gxv;
                    b2[l] += it * gyv;
                    res[l] += it.abs();
                }
            }
        } else {
            // Per-lane scalar fallback row, identical to the seed row
            // structure (interior runs unchecked, borders clamped).
            for l in 0..KLT_LANES {
                if !active[l] {
                    continue;
                }
                let s = RowSampler::new(next, ys[l]);
                let x_first = txs[l] + gx[l];
                let x_last = txs[(w - 1) * KLT_LANES + l] + gx[l];
                if s.run_interior(x_first, x_last) {
                    for col in 0..w {
                        let pix = (base + col) * KLT_LANES + l;
                        let xv = txs[col * KLT_LANES + l] + gx[l];
                        // SAFETY: run_interior proved the whole run.
                        let it = unsafe { s.sample_interior(xv) } - tmpl[pix];
                        b1[l] += it * gradx[pix];
                        b2[l] += it * grady[pix];
                        res[l] += it.abs();
                    }
                } else {
                    for col in 0..w {
                        let pix = (base + col) * KLT_LANES + l;
                        let xv = txs[col * KLT_LANES + l] + gx[l];
                        let it = s.sample(xv) - tmpl[pix];
                        b1[l] += it * gradx[pix];
                        b2[l] += it * grady[pix];
                        res[l] += it.abs();
                    }
                }
            }
        }
    }
    (b1, b2, res)
}

/// Solves one batch of up to [`KLT_LANES`] tracks through the pyramid,
/// coarse to fine, and appends one [`TrackOutcome`] per input point to
/// `out` (and its iteration count to the scratch diagnostics).
///
/// Per-lane state follows exactly the scalar recurrence of
/// [`track_one_planes`]; lanes beyond `pts.len()` are padding (dead from
/// the start) and lanes that fail the determinant test die in place.
/// Dead and converged lanes stay resident in the batch but are masked
/// out of every gather and update.
fn track_batch_planes(
    prev: &[FloatImage],
    next: &[FloatImage],
    pts: &[(f32, f32)],
    cfg: &KltConfig,
    scratch: &mut KltScratch,
    out: &mut Vec<TrackOutcome>,
) {
    debug_assert!(!pts.is_empty() && pts.len() <= KLT_LANES);
    let n = pts.len();
    let r = cfg.window_radius;
    let w = (2 * r + 1) as usize;
    let n_px = (w * w) as f32;
    let levels = prev.len().min(next.len());

    let scratch = &mut *scratch;
    let b = &mut scratch.batch;
    b.template.resize(w * w * KLT_LANES, 0.0);
    b.grad_x.resize(w * w * KLT_LANES, 0.0);
    b.grad_y.resize(w * w * KLT_LANES, 0.0);
    b.txs.resize(w * KLT_LANES, 0.0);
    for l in 0..KLT_LANES {
        let (x, y) = if l < n { pts[l] } else { (0.0, 0.0) };
        b.x[l] = x;
        b.y[l] = y;
        b.gx[l] = 0.0;
        b.gy[l] = 0.0;
        b.residual[l] = f32::MAX;
        b.live[l] = l < n;
        b.degenerate[l] = false;
        b.iters[l] = 0;
    }

    for li in (0..levels).rev() {
        // Same scale law as `Pyramid::scale`.
        let scale = (1u32 << li) as f32;
        let prev_p = &prev[li];
        let next_p = &next[li];
        for l in 0..KLT_LANES {
            if b.live[l] {
                b.px[l] = b.x[l] / scale;
                b.py[l] = b.y[l] / scale;
            }
            // Dead lanes (padding, degenerate) keep stale positions —
            // they are masked out of every gather, so the values are
            // never sampled.
        }

        // DC micro-kernel per live lane.
        for l in 0..KLT_LANES {
            if !b.live[l] {
                continue;
            }
            let (a11, a12, a22) = dc_window(
                prev_p,
                b.px[l],
                b.py[l],
                r,
                &mut scratch.samples,
                &mut scratch.exact_x,
                &mut b.template,
                &mut b.grad_x,
                &mut b.grad_y,
                &mut b.txs,
                KLT_LANES,
                l,
            );
            let det = a11 * a22 - a12 * a12;
            if det < cfg.min_determinant * n_px * n_px {
                // Scalar path stops this track at the first degenerate
                // level; the lane dies in place.
                b.live[l] = false;
                b.degenerate[l] = true;
                continue;
            }
            b.a11[l] = a11;
            b.a12[l] = a12;
            b.a22[l] = a22;
            b.inv[l] = 1.0 / det;
        }

        // LSS phase: lane-masked Gauss–Newton iterations.
        b.iterating = b.live;
        for _ in 0..cfg.max_iterations {
            if !b.iterating.contains(&true) {
                break;
            }
            let (b1, b2, res) = lss_batch_iteration(next_p, b, w, r);
            for l in 0..KLT_LANES {
                if !b.iterating[l] {
                    continue;
                }
                b.iters[l] += 1;
                b.residual[l] = res[l] / n_px;
                let ux = (b.a22[l] * b1[l] - b.a12[l] * b2[l]) * b.inv[l];
                let uy = (b.a11[l] * b2[l] - b.a12[l] * b1[l]) * b.inv[l];
                b.gx[l] -= ux;
                b.gy[l] -= uy;
                if (ux * ux + uy * uy).sqrt() < cfg.epsilon {
                    b.iterating[l] = false;
                }
            }
        }

        if li > 0 {
            for l in 0..KLT_LANES {
                if b.live[l] {
                    b.gx[l] *= 2.0;
                    b.gy[l] *= 2.0;
                }
            }
        }
    }

    let base = &next[0];
    let m = cfg.window_radius as f32;
    for l in 0..n {
        let outcome = if b.degenerate[l] {
            TrackOutcome::Degenerate
        } else {
            let nx = b.x[l] + b.gx[l];
            let ny = b.y[l] + b.gy[l];
            if nx < m || ny < m || nx >= base.width() as f32 - m || ny >= base.height() as f32 - m
            {
                TrackOutcome::OutOfBounds
            } else if b.residual[l] > cfg.max_residual {
                TrackOutcome::Lost
            } else {
                TrackOutcome::Tracked {
                    x: nx,
                    y: ny,
                    residual: b.residual[l],
                }
            }
        };
        out.push(outcome);
        scratch.iterations.push(b.iters[l]);
    }
}

/// Tracks points from `prev` to `next` using pyramids built internally.
///
/// `points` are positions in `prev`; the result has one [`TrackOutcome`]
/// per input point, in order.
///
/// Thin wrapper over [`track_pyramidal_into`] that builds both pyramids
/// and throwaway scratch per call. Steady-state callers should cache the
/// pyramids (the previous frame's pyramid is reusable as-is) and hold a
/// [`KltScratch`].
pub fn track_pyramidal(
    prev: &GrayImage,
    next: &GrayImage,
    points: &[(f32, f32)],
    cfg: &KltConfig,
) -> Vec<TrackOutcome> {
    let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
    let next_pyr = Pyramid::build(next.clone(), cfg.levels);
    let mut scratch = KltScratch::default();
    let mut out = Vec::new();
    track_pyramidal_into(&prev_pyr, &next_pyr, points, cfg, &mut scratch, &mut out);
    out
}

/// Tracks points between two pre-built pyramids into a reusable output
/// vector, solving the points in lane-parallel batches of [`KLT_LANES`]
/// (the final batch may be a masked remainder). Bit-identical to
/// [`track_pyramidal`] and to tracking each point alone with
/// [`track_one_with`]; zero heap allocations once `scratch` and `out`
/// are warm.
pub fn track_pyramidal_into(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    points: &[(f32, f32)],
    cfg: &KltConfig,
    scratch: &mut KltScratch,
    out: &mut Vec<TrackOutcome>,
) {
    out.clear();
    scratch.iterations.clear();
    let mut prev_planes = std::mem::take(&mut scratch.prev_planes);
    let mut next_planes = std::mem::take(&mut scratch.next_planes);
    pyramid_to_planes(prev_pyr, &mut prev_planes);
    pyramid_to_planes(next_pyr, &mut next_planes);
    for chunk in points.chunks(KLT_LANES) {
        track_batch_planes(&prev_planes, &next_planes, chunk, cfg, scratch, out);
    }
    scratch.prev_planes = prev_planes;
    scratch.next_planes = next_planes;
}

/// [`track_pyramidal_into`] on the lane-sequential (scalar) datapath:
/// every point is solved alone by the scalar per-point solve instead of
/// in batches of [`KLT_LANES`]. Bit-identical to the batched path (the
/// batch is proven equal to the scalar solve lane by lane) — the
/// control loop uses this to model a platform without the SIMD
/// micro-kernels, not to change results.
pub fn track_pyramidal_scalar_into(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    points: &[(f32, f32)],
    cfg: &KltConfig,
    scratch: &mut KltScratch,
    out: &mut Vec<TrackOutcome>,
) {
    out.clear();
    scratch.iterations.clear();
    let mut prev_planes = std::mem::take(&mut scratch.prev_planes);
    let mut next_planes = std::mem::take(&mut scratch.next_planes);
    pyramid_to_planes(prev_pyr, &mut prev_planes);
    pyramid_to_planes(next_pyr, &mut next_planes);
    for &(x, y) in points {
        let outcome = track_one_planes(&prev_planes, &next_planes, x, y, cfg, scratch);
        out.push(outcome);
    }
    scratch.prev_planes = prev_planes;
    scratch.next_planes = next_planes;
}

/// Tracks a single point through the pyramid, coarse to fine.
pub fn track_one(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    x: f32,
    y: f32,
    cfg: &KltConfig,
) -> TrackOutcome {
    track_one_with(prev_pyr, next_pyr, x, y, cfg, &mut KltScratch::default())
}

/// [`track_one`] with caller-owned window buffers (allocation-free once
/// `scratch` is warm). This is the scalar fallback path: one track, no
/// lane batching — bit-identical to the lane the batched solve would
/// give the same point. Converts both pyramids to f32 planes per call —
/// when tracking many points between the same pyramids, use
/// [`track_pyramidal_into`], which converts once and batches the solve.
pub fn track_one_with(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    x: f32,
    y: f32,
    cfg: &KltConfig,
    scratch: &mut KltScratch,
) -> TrackOutcome {
    scratch.iterations.clear();
    let mut prev_planes = std::mem::take(&mut scratch.prev_planes);
    let mut next_planes = std::mem::take(&mut scratch.next_planes);
    pyramid_to_planes(prev_pyr, &mut prev_planes);
    pyramid_to_planes(next_pyr, &mut next_planes);
    let outcome = track_one_planes(&prev_planes, &next_planes, x, y, cfg, scratch);
    scratch.prev_planes = prev_planes;
    scratch.next_planes = next_planes;
    outcome
}

/// Tracks one point between pre-converted f32 pyramid planes (the scalar
/// solve).
fn track_one_planes(
    prev: &[FloatImage],
    next: &[FloatImage],
    x: f32,
    y: f32,
    cfg: &KltConfig,
    scratch: &mut KltScratch,
) -> TrackOutcome {
    let levels = prev.len().min(next.len());
    let mut gx = 0.0f32;
    let mut gy = 0.0f32;
    let mut residual = f32::MAX;
    let mut degenerate = false;
    let mut iters_total = 0u32;
    for li in (0..levels).rev() {
        // Same scale law as `Pyramid::scale`.
        let scale = (1u32 << li) as f32;
        let (lx, ly) = (x / scale, y / scale);
        match track_level(&prev[li], &next[li], lx, ly, gx, gy, cfg, scratch) {
            Some((dx, dy, res, iters)) => {
                residual = res;
                iters_total += iters;
                if li > 0 {
                    gx = dx * 2.0;
                    gy = dy * 2.0;
                } else {
                    gx = dx;
                    gy = dy;
                }
            }
            None => {
                degenerate = true;
                break;
            }
        }
    }
    scratch.iterations.push(iters_total);
    if degenerate {
        return TrackOutcome::Degenerate;
    }
    let nx = x + gx;
    let ny = y + gy;
    let base = &next[0];
    let m = cfg.window_radius as f32;
    if nx < m || ny < m || nx >= base.width() as f32 - m || ny >= base.height() as f32 - m {
        return TrackOutcome::OutOfBounds;
    }
    if residual > cfg.max_residual {
        return TrackOutcome::Lost;
    }
    TrackOutcome::Tracked {
        x: nx,
        y: ny,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A textured image with a smooth per-pixel pattern, shifted by
    /// `(sx, sy)` pixels.
    fn textured(sx: f32, sy: f32) -> GrayImage {
        GrayImage::from_fn(96, 96, |x, y| {
            let u = x as f32 - sx;
            let v = y as f32 - sy;
            let val = 128.0
                + 50.0 * ((u * 0.35).sin() * (v * 0.28).cos())
                + 30.0 * ((u * 0.11 + v * 0.17).sin());
            val.clamp(0.0, 255.0) as u8
        })
    }

    /// Asserts two outcome slices are bit-identical (positions and
    /// residuals compared at the bit level).
    fn assert_bit_identical(a: &[TrackOutcome], b: &[TrackOutcome]) {
        assert_eq!(a.len(), b.len());
        for (i, (oa, ob)) in a.iter().zip(b).enumerate() {
            match (oa, ob) {
                (
                    TrackOutcome::Tracked { x: ax, y: ay, residual: ar },
                    TrackOutcome::Tracked { x: bx, y: by, residual: br },
                ) => {
                    assert_eq!(ax.to_bits(), bx.to_bits(), "point {i}: x");
                    assert_eq!(ay.to_bits(), by.to_bits(), "point {i}: y");
                    assert_eq!(ar.to_bits(), br.to_bits(), "point {i}: residual");
                }
                _ => assert_eq!(oa, ob, "point {i}"),
            }
        }
    }

    /// Scalar reference: tracks every point alone through
    /// [`track_one_with`] and collects outcomes + iteration counts.
    fn scalar_reference(
        prev_pyr: &Pyramid,
        next_pyr: &Pyramid,
        pts: &[(f32, f32)],
        cfg: &KltConfig,
    ) -> (Vec<TrackOutcome>, Vec<u32>) {
        let mut scratch = KltScratch::default();
        let mut outcomes = Vec::new();
        let mut iters = Vec::new();
        for &(x, y) in pts {
            outcomes.push(track_one_with(prev_pyr, next_pyr, x, y, cfg, &mut scratch));
            iters.push(scratch.iteration_counts()[0]);
        }
        (outcomes, iters)
    }

    #[test]
    fn tracks_small_shift() {
        let prev = textured(0.0, 0.0);
        let next = textured(1.7, -0.8);
        let pts = [(40.0, 40.0), (55.0, 30.0), (30.0, 60.0)];
        let out = track_pyramidal(&prev, &next, &pts, &KltConfig::default());
        for (i, o) in out.iter().enumerate() {
            let (nx, ny) = o.position().unwrap_or_else(|| panic!("point {i} lost: {o:?}"));
            assert!((nx - (pts[i].0 + 1.7)).abs() < 0.25, "x err {}", nx - pts[i].0);
            assert!((ny - (pts[i].1 - 0.8)).abs() < 0.25, "y err {}", ny - pts[i].1);
        }
    }

    #[test]
    fn tracks_large_shift_via_pyramid() {
        let prev = textured(0.0, 0.0);
        let next = textured(9.0, 6.0);
        let out = track_pyramidal(&prev, &next, &[(45.0, 45.0)], &KltConfig::default());
        let (nx, ny) = out[0].position().expect("tracked");
        assert!((nx - 54.0).abs() < 0.6, "nx={nx}");
        assert!((ny - 51.0).abs() < 0.6, "ny={ny}");
    }

    #[test]
    fn flat_region_is_degenerate() {
        let prev = GrayImage::filled(64, 64, 120);
        let next = GrayImage::filled(64, 64, 120);
        let out = track_pyramidal(&prev, &next, &[(32.0, 32.0)], &KltConfig::default());
        assert_eq!(out[0], TrackOutcome::Degenerate);
    }

    #[test]
    fn point_leaving_image_is_out_of_bounds() {
        // Aperiodic texture (quadratic phase) so large shifts cannot alias
        // onto a false in-bounds match.
        let tex = |s: f32| {
            GrayImage::from_fn(96, 96, |x, y| {
                let u = x as f32 - s;
                let v = y as f32;
                let val = 128.0 + 60.0 * ((u * u * 0.01 + v * 0.3).sin());
                val.clamp(0.0, 255.0) as u8
            })
        };
        let prev = tex(0.0);
        let next = tex(30.0);
        // Point near the right edge moves out of the frame.
        let out = track_pyramidal(&prev, &next, &[(90.0, 48.0)], &KltConfig::default());
        assert!(
            matches!(out[0], TrackOutcome::OutOfBounds | TrackOutcome::Lost),
            "outcome {:?}",
            out[0]
        );
    }

    #[test]
    fn appearance_change_is_lost() {
        let prev = textured(0.0, 0.0);
        // Completely different content.
        let next = GrayImage::from_fn(96, 96, |x, y| (((x / 2) ^ (y / 3)) * 53 % 256) as u8);
        let out = track_pyramidal(&prev, &next, &[(48.0, 48.0)], &KltConfig::default());
        assert!(out[0].position().is_none(), "outcome {:?}", out[0]);
    }

    #[test]
    fn cached_pyramids_and_scratch_are_bit_identical() {
        // Tracking through pre-built pyramids with a reused scratch (the
        // frontend's steady-state path) must equal the build-per-call
        // wrapper exactly.
        let prev = textured(0.0, 0.0);
        let next = textured(1.7, -0.8);
        let pts = [(40.0, 40.0), (55.0, 30.0), (30.0, 60.0), (32.0, 32.0)];
        let cfg = KltConfig::default();
        let reference = track_pyramidal(&prev, &next, &pts, &cfg);

        let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
        let next_pyr = Pyramid::build(next.clone(), cfg.levels);
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();
        // Twice: the second run exercises fully warm buffers.
        for _ in 0..2 {
            track_pyramidal_into(&prev_pyr, &next_pyr, &pts, &cfg, &mut scratch, &mut out);
            assert_bit_identical(&out, &reference);
        }
    }

    #[test]
    fn absurd_coordinates_do_not_misbehave() {
        // Far-out finite positions saturate the float→int casts inside
        // the row samplers; they must take the clamped fallback (never
        // the unchecked path) and report a failed track.
        let prev = textured(0.0, 0.0);
        let next = textured(1.0, 0.0);
        let pts = [(1e19f32, 1e19f32), (-1e19, 48.0), (48.0, -1e19)];
        let out = track_pyramidal(&prev, &next, &pts, &KltConfig::default());
        for (p, o) in pts.iter().zip(&out) {
            assert!(o.position().is_none(), "point {p:?} tracked: {o:?}");
        }
    }

    #[test]
    fn zero_motion_stays_put() {
        let prev = textured(0.0, 0.0);
        let out = track_pyramidal(&prev, &prev, &[(50.0, 50.0)], &KltConfig::default());
        let (nx, ny) = out[0].position().expect("tracked");
        assert!((nx - 50.0).abs() < 0.05);
        assert!((ny - 50.0).abs() < 0.05);
    }

    #[test]
    fn batch_matches_scalar_for_every_remainder_width() {
        // Track counts 1..=2·LANES+1 cover a lone lane, partial batches,
        // exactly one full batch, and full-batch-plus-tail — positions,
        // outcomes and iteration counts must all match the scalar solve.
        let prev = textured(0.0, 0.0);
        let next = textured(1.7, -0.8);
        let cfg = KltConfig::default();
        let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
        let next_pyr = Pyramid::build(next.clone(), cfg.levels);
        let all_pts: Vec<(f32, f32)> = (0..(2 * KLT_LANES + 1))
            .map(|i| {
                let fi = i as f32;
                (12.0 + fi * 4.1, 80.0 - fi * 3.3)
            })
            .collect();
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();
        for n in 1..=all_pts.len() {
            let pts = &all_pts[..n];
            let (reference, ref_iters) = scalar_reference(&prev_pyr, &next_pyr, pts, &cfg);
            track_pyramidal_into(&prev_pyr, &next_pyr, pts, &cfg, &mut scratch, &mut out);
            assert_bit_identical(&out, &reference);
            assert_eq!(scratch.iteration_counts(), &ref_iters[..], "iterations, n={n}");
        }
    }

    #[test]
    fn mixed_batch_with_degenerate_and_border_lanes_matches_scalar() {
        // One batch mixing healthy lanes, low-texture (degenerate) lanes
        // inside a flat patch, and lanes whose window leaves the border:
        // masking one lane must not perturb its neighbors.
        let prev = GrayImage::from_fn(96, 96, |x, y| {
            if (30..60).contains(&x) && (30..60).contains(&y) {
                120 // flat patch: degenerate windows
            } else {
                let u = x as f32;
                let v = y as f32;
                (128.0 + 60.0 * ((u * 0.37).sin() * (v * 0.23).cos())).clamp(0.0, 255.0) as u8
            }
        });
        let next = prev.clone();
        let cfg = KltConfig::default();
        let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
        let next_pyr = Pyramid::build(next.clone(), cfg.levels);
        let pts = [
            (12.0, 12.0),  // healthy
            (45.0, 45.0),  // flat → degenerate
            (2.0, 48.0),   // window over the left border → out of bounds
            (80.0, 80.0),  // healthy
            (44.0, 46.0),  // flat → degenerate
            (93.0, 5.0),   // window over the corner → out of bounds
            (20.0, 70.0),  // healthy
        ];
        let (reference, ref_iters) = scalar_reference(&prev_pyr, &next_pyr, &pts, &cfg);
        assert!(
            reference.contains(&TrackOutcome::Degenerate),
            "fixture must exercise degenerate lanes: {reference:?}"
        );
        assert!(
            reference.contains(&TrackOutcome::OutOfBounds),
            "fixture must exercise border lanes: {reference:?}"
        );
        assert!(
            reference.iter().any(|o| o.position().is_some()),
            "fixture must keep healthy lanes: {reference:?}"
        );
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();
        track_pyramidal_into(&prev_pyr, &next_pyr, &pts, &cfg, &mut scratch, &mut out);
        assert_bit_identical(&out, &reference);
        assert_eq!(scratch.iteration_counts(), &ref_iters[..]);
    }

    #[test]
    fn full_batch_converging_on_first_iteration() {
        // Zero motion: the first LSS update is exactly zero, so every
        // lane of a full batch converges on iteration 1 of every level.
        let prev = textured(0.0, 0.0);
        let cfg = KltConfig::default();
        let pyr = Pyramid::build(prev.clone(), cfg.levels);
        let pts: Vec<(f32, f32)> = (0..KLT_LANES)
            .map(|i| (30.0 + 5.0 * i as f32, 40.0 + 3.0 * i as f32))
            .collect();
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();
        track_pyramidal_into(&pyr, &pyr, &pts, &cfg, &mut scratch, &mut out);
        let (reference, ref_iters) = scalar_reference(&pyr, &pyr, &pts, &cfg);
        assert_bit_identical(&out, &reference);
        assert_eq!(scratch.iteration_counts(), &ref_iters[..]);
        for (o, &it) in out.iter().zip(scratch.iteration_counts()) {
            assert!(o.position().is_some(), "outcome {o:?}");
            // One iteration per pyramid level.
            assert_eq!(it, cfg.levels as u32, "iterations {it}");
        }
    }

    #[test]
    fn zero_iteration_budget_matches_scalar() {
        // max_iterations = 0 leaves the residual at MAX (→ Lost) on both
        // paths; the batch must not diverge on the empty LSS loop.
        let prev = textured(0.0, 0.0);
        let next = textured(1.0, 0.5);
        let cfg = KltConfig {
            max_iterations: 0,
            ..KltConfig::default()
        };
        let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
        let next_pyr = Pyramid::build(next.clone(), cfg.levels);
        let pts = [(40.0, 40.0), (50.0, 50.0), (60.0, 30.0)];
        let (reference, ref_iters) = scalar_reference(&prev_pyr, &next_pyr, &pts, &cfg);
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();
        track_pyramidal_into(&prev_pyr, &next_pyr, &pts, &cfg, &mut scratch, &mut out);
        assert_bit_identical(&out, &reference);
        assert_eq!(scratch.iteration_counts(), &ref_iters[..]);
        assert!(ref_iters.iter().all(|&i| i == 0));
    }
}
