//! Pyramidal Lucas–Kanade optical flow (the DC + LSS tasks of Fig. 12).
//!
//! Temporal matching "tracks feature points across frames using the classic
//! Lucas–Kanade optical flow method" (paper Sec. IV-A). The accelerator
//! splits it into derivatives calculation (DC) and a linear least-squares
//! solve (LSS); the CPU implementation below has the same two phases per
//! iteration: template gradients once per level, then iterative 2×2 normal
//! equation solves.

use eudoxus_image::{FloatImage, GrayImage, Pyramid};

/// LK tracker parameters.
#[derive(Debug, Clone, Copy)]
pub struct KltConfig {
    /// Half-size of the tracking window (window is `(2w+1)²`).
    pub window_radius: i64,
    /// Pyramid levels (1 = no pyramid).
    pub levels: usize,
    /// Max Gauss–Newton iterations per level.
    pub max_iterations: usize,
    /// Convergence threshold on the update norm (pixels).
    pub epsilon: f32,
    /// Minimum acceptable eigenvalue proxy of the 2×2 normal matrix
    /// (rejects textureless windows).
    pub min_determinant: f32,
    /// Maximum residual per pixel for a track to be declared good.
    pub max_residual: f32,
}

impl Default for KltConfig {
    fn default() -> Self {
        KltConfig {
            window_radius: 7,
            levels: 3,
            max_iterations: 15,
            epsilon: 0.03,
            min_determinant: 1e-4,
            max_residual: 18.0,
        }
    }
}

/// Result of tracking one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrackOutcome {
    /// Converged; carries the position in the new frame.
    Tracked {
        /// New x (pixels).
        x: f32,
        /// New y (pixels).
        y: f32,
        /// Mean absolute residual over the window (intensity units).
        residual: f32,
    },
    /// The point left the image bounds.
    OutOfBounds,
    /// The window had too little texture to constrain the solve.
    Degenerate,
    /// The iteration failed to converge or the residual stayed large.
    Lost,
}

impl TrackOutcome {
    /// The tracked position, if successful.
    pub fn position(&self) -> Option<(f32, f32)> {
        match *self {
            TrackOutcome::Tracked { x, y, .. } => Some((x, y)),
            _ => None,
        }
    }
}

/// Reusable window buffers for the LK solve (template values and
/// gradients). One warm-up call makes every subsequent track
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct KltScratch {
    template: Vec<f32>,
    grad_x: Vec<f32>,
    grad_y: Vec<f32>,
    /// Extended `(w+2)²` sample grid of the template window (the DC
    /// phase shares samples between the template and the central
    /// differences instead of re-sampling five times per pixel).
    samples: Vec<f32>,
    /// Per-column proof that the gradient sample positions `tx ± 1.0`
    /// equal the neighboring grid positions `px + (dx ± 1)` bit for bit
    /// (f32 addition rounds, so this can fail near binade boundaries —
    /// those columns fall back to direct sampling).
    exact_x: Vec<(bool, bool)>,
    /// f32 copies of the pyramid levels being tracked between. Every
    /// `u8` is exact in `f32`, so sampling the planes is bit-identical
    /// to sampling the `u8` levels — without the four integer→float
    /// converts inside the innermost loop of the solve.
    prev_planes: Vec<FloatImage>,
    next_planes: Vec<FloatImage>,
    /// Per-column sample x positions `px + dx` (identical computation to
    /// the inline form, hoisted out of the iteration loops).
    txs: Vec<f32>,
}

/// Bilinear sampling along one image row: the y-dependent terms
/// (`y.floor()`, the fractional weight, the row offset) are computed once
/// per row instead of per sample. `sample(x)` is bit-identical to
/// `img.sample_bilinear(x, y)` — the hoisted values come from the same
/// inputs through the same operations, and border samples fall back to
/// the clamped path verbatim. The LK window loops sample hundreds of
/// points per row-pair, which makes this the solve's hottest code.
struct RowSampler<'a> {
    img: &'a FloatImage,
    raw: &'a [f32],
    w: i64,
    /// Flat index of `(0, y0)`; only valid when `y_interior`.
    row0: usize,
    fy: f32,
    y: f32,
    y_interior: bool,
}

impl<'a> RowSampler<'a> {
    #[inline]
    fn new(img: &'a FloatImage, y: f32) -> Self {
        let y0f = y.floor();
        let fy = y - y0f;
        let y0 = y0f as i64;
        let w = img.width() as i64;
        // `y0 < h - 1`, not `y0 + 1 < h`: the saturated cast of a huge
        // finite y (i64::MAX) must not overflow into a false positive.
        let y_interior = y0 >= 0 && y0 < img.height() as i64 - 1;
        RowSampler {
            img,
            raw: img.as_raw(),
            w,
            row0: if y_interior { (y0 * w) as usize } else { 0 },
            fy,
            y,
            y_interior,
        }
    }

    #[inline]
    fn sample(&self, x: f32) -> f32 {
        if self.y_interior {
            let x0f = x.floor();
            let fx = x - x0f;
            let x0 = x0f as i64;
            // `x0 < w - 1`, not `x0 + 1 < w` (saturated-cast overflow).
            if x0 >= 0 && x0 < self.w - 1 {
                // SAFETY: x0 and y0 (plus one) are inside the image.
                return unsafe { self.tap(x0 as usize, fx) };
            }
        }
        self.img.sample_bilinear(x, self.y)
    }

    /// Whether every sample in `[x_first, x_last]` (both on this row)
    /// takes the interior path — `floor` is monotonic, so checking the
    /// endpoints covers the run.
    #[inline]
    fn run_interior(&self, x_first: f32, x_last: f32) -> bool {
        // `< w - 1`, not `+ 1 < w` (saturated-cast overflow).
        self.y_interior
            && x_first.floor() as i64 >= 0
            && (x_last.floor() as i64) < self.w - 1
    }

    /// Interior sample without the bounds branch (callers prove the run
    /// is interior via [`run_interior`](Self::run_interior)). Identical
    /// arithmetic to [`sample`](Self::sample)'s interior path.
    ///
    /// # Safety
    ///
    /// `x.floor()` must be in `[0, width - 2]` and the sampler's row
    /// must be interior.
    #[inline]
    unsafe fn sample_interior(&self, x: f32) -> f32 {
        let x0f = x.floor();
        let fx = x - x0f;
        debug_assert!(x0f as i64 >= 0 && (x0f as i64) < self.w - 1 && self.y_interior);
        self.tap(x0f as usize, fx)
    }

    /// # Safety
    ///
    /// `x0 + 1 < width` and the row must be interior.
    #[inline]
    unsafe fn tap(&self, x0: usize, fx: f32) -> f32 {
        let idx = self.row0 + x0;
        let (p00, p10, p01, p11) = (
            *self.raw.get_unchecked(idx),
            *self.raw.get_unchecked(idx + 1),
            *self.raw.get_unchecked(idx + self.w as usize),
            *self.raw.get_unchecked(idx + self.w as usize + 1),
        );
        let fy = self.fy;
        p00 * (1.0 - fx) * (1.0 - fy)
            + p10 * fx * (1.0 - fy)
            + p01 * (1.0 - fx) * fy
            + p11 * fx * fy
    }
}

/// Copies pyramid levels into reusable f32 planes (allocation-free once
/// the plane buffers are warm at the stream's image size).
fn pyramid_to_planes(pyr: &Pyramid, planes: &mut Vec<FloatImage>) {
    planes.truncate(pyr.levels());
    while planes.len() < pyr.levels() {
        planes.push(FloatImage::default());
    }
    for (plane, i) in planes.iter_mut().zip(0..pyr.levels()) {
        plane.copy_from_gray(pyr.level(i));
    }
}

/// Tracks one point on a single pyramid level; `(gx, gy)` is the initial
/// displacement estimate. Returns `(dx, dy, residual)` on success.
///
/// The DC phase samples template values and central-difference gradients
/// *within the window only* — computing full-image gradient maps per
/// track would dominate the frame time, and the accelerator's DC block
/// likewise operates on windowed data (paper Fig. 12).
#[allow(clippy::too_many_arguments)]
fn track_level(
    prev: &FloatImage,
    next: &FloatImage,
    px: f32,
    py: f32,
    mut gx: f32,
    mut gy: f32,
    cfg: &KltConfig,
    scratch: &mut KltScratch,
) -> Option<(f32, f32, f32)> {
    let r = cfg.window_radius;
    let w = (2 * r + 1) as usize;
    let n_px = (w * w) as f32;

    // DC phase: template values, window gradients and the 2×2 structure
    // tensor (constant across iterations: linearized at the template).
    scratch.template.clear();
    scratch.template.resize(w * w, 0.0);
    scratch.grad_x.clear();
    scratch.grad_x.resize(w * w, 0.0);
    scratch.grad_y.clear();
    scratch.grad_y.resize(w * w, 0.0);
    let template = &mut scratch.template;
    let grad_x = &mut scratch.grad_x;
    let grad_y = &mut scratch.grad_y;

    // Sample the extended (w+2)² grid once: position (erow, ecol) is
    // `(px + edx, py + edy)` for `edx, edy ∈ -(r+1)..=(r+1)` — the inner
    // w×w block is exactly the template positions, the one-pixel ring
    // holds the out-of-window central-difference taps.
    let we = w + 2;
    scratch.samples.clear();
    scratch.samples.resize(we * we, 0.0);
    for (erow, edy) in (-(r + 1)..=(r + 1)).enumerate() {
        let s = RowSampler::new(prev, py + edy as f32);
        let row_out = &mut scratch.samples[erow * we..][..we];
        if s.run_interior(px + (-(r + 1)) as f32, px + (r + 1) as f32) {
            for (slot, edx) in row_out.iter_mut().zip(-(r + 1)..=(r + 1)) {
                // SAFETY: run_interior proved the whole run.
                *slot = unsafe { s.sample_interior(px + edx as f32) };
            }
        } else {
            for (slot, edx) in row_out.iter_mut().zip(-(r + 1)..=(r + 1)) {
                *slot = s.sample(px + edx as f32);
            }
        }
    }
    // The direct form samples gradients at `tx ± 1.0`; the grid holds
    // samples at `px + (dx ± 1)`. Equal positions give bit-equal samples,
    // so prove the equality per column (and per row below) and resample
    // directly when f32 rounding makes them differ.
    scratch.exact_x.clear();
    scratch.exact_x.extend((-r..=r).map(|dx| {
        let tx = px + dx as f32;
        (
            tx + 1.0 == px + (dx + 1) as f32,
            tx - 1.0 == px + (dx - 1) as f32,
        )
    }));
    // Hoisted per-column x positions (`px + dx`, the same computation the
    // inline form performs per pixel).
    scratch.txs.clear();
    scratch.txs.extend((-r..=r).map(|dx| px + dx as f32));
    let samples = &scratch.samples;
    let mut a11 = 0.0f32;
    let mut a12 = 0.0f32;
    let mut a22 = 0.0f32;
    for (row, dy) in (-r..=r).enumerate() {
        let ty = py + dy as f32;
        let y_exact_dn = ty + 1.0 == py + (dy + 1) as f32;
        let y_exact_up = ty - 1.0 == py + (dy - 1) as f32;
        // Fallback samplers (only consulted when an exactness proof
        // fails, i.e. almost never).
        let s_mid = RowSampler::new(prev, ty);
        let s_up = RowSampler::new(prev, ty - 1.0);
        let s_dn = RowSampler::new(prev, ty + 1.0);
        for (col, dx) in (-r..=r).enumerate() {
            let tx = px + dx as f32;
            let idx = row * w + col;
            let e = (row + 1) * we + (col + 1);
            template[idx] = samples[e];
            let (x_exact_r, x_exact_l) = scratch.exact_x[col];
            let right = if x_exact_r { samples[e + 1] } else { s_mid.sample(tx + 1.0) };
            let left = if x_exact_l { samples[e - 1] } else { s_mid.sample(tx - 1.0) };
            let ix = (right - left) * 0.5;
            let down = if y_exact_dn { samples[e + we] } else { s_dn.sample(tx) };
            let up = if y_exact_up { samples[e - we] } else { s_up.sample(tx) };
            let iy = (down - up) * 0.5;
            grad_x[idx] = ix;
            grad_y[idx] = iy;
            a11 += ix * ix;
            a12 += ix * iy;
            a22 += iy * iy;
        }
    }
    let det = a11 * a22 - a12 * a12;
    if det < cfg.min_determinant * n_px * n_px {
        return None;
    }
    let inv = 1.0 / det;

    // LSS phase: iterate the 2×2 solve.
    let txs = &scratch.txs;
    let mut residual = f32::MAX;
    for _ in 0..cfg.max_iterations {
        let mut b1 = 0.0f32;
        let mut b2 = 0.0f32;
        let mut res_acc = 0.0f32;
        for (row, dy) in (-r..=r).enumerate() {
            let ty = py + dy as f32;
            let s = RowSampler::new(next, ty + gy);
            let base = row * w;
            let trow = &template[base..][..w];
            let grow = &grad_x[base..][..w];
            let hrow = &grad_y[base..][..w];
            let taps = txs.iter().zip(trow).zip(grow.iter().zip(hrow));
            if s.run_interior(txs[0] + gx, txs[w - 1] + gx) {
                // Whole row interior: no per-sample bounds branches.
                for ((&tx, &t), (&gxv, &gyv)) in taps {
                    // SAFETY: run_interior proved both endpoints (and by
                    // monotonicity of floor, every column between) are
                    // interior on this row.
                    let it = unsafe { s.sample_interior(tx + gx) } - t;
                    b1 += it * gxv;
                    b2 += it * gyv;
                    res_acc += it.abs();
                }
            } else {
                for ((&tx, &t), (&gxv, &gyv)) in taps {
                    let it = s.sample(tx + gx) - t;
                    b1 += it * gxv;
                    b2 += it * gyv;
                    res_acc += it.abs();
                }
            }
        }
        residual = res_acc / n_px;
        let ux = (a22 * b1 - a12 * b2) * inv;
        let uy = (a11 * b2 - a12 * b1) * inv;
        gx -= ux;
        gy -= uy;
        if (ux * ux + uy * uy).sqrt() < cfg.epsilon {
            break;
        }
    }
    Some((gx, gy, residual))
}

/// Tracks points from `prev` to `next` using pyramids built internally.
///
/// `points` are positions in `prev`; the result has one [`TrackOutcome`]
/// per input point, in order.
///
/// Thin wrapper over [`track_pyramidal_into`] that builds both pyramids
/// and throwaway scratch per call. Steady-state callers should cache the
/// pyramids (the previous frame's pyramid is reusable as-is) and hold a
/// [`KltScratch`].
pub fn track_pyramidal(
    prev: &GrayImage,
    next: &GrayImage,
    points: &[(f32, f32)],
    cfg: &KltConfig,
) -> Vec<TrackOutcome> {
    let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
    let next_pyr = Pyramid::build(next.clone(), cfg.levels);
    let mut scratch = KltScratch::default();
    let mut out = Vec::new();
    track_pyramidal_into(&prev_pyr, &next_pyr, points, cfg, &mut scratch, &mut out);
    out
}

/// Tracks points between two pre-built pyramids into a reusable output
/// vector. Bit-identical to [`track_pyramidal`] given the same pyramids;
/// zero heap allocations once `scratch` and `out` are warm.
pub fn track_pyramidal_into(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    points: &[(f32, f32)],
    cfg: &KltConfig,
    scratch: &mut KltScratch,
    out: &mut Vec<TrackOutcome>,
) {
    out.clear();
    let mut prev_planes = std::mem::take(&mut scratch.prev_planes);
    let mut next_planes = std::mem::take(&mut scratch.next_planes);
    pyramid_to_planes(prev_pyr, &mut prev_planes);
    pyramid_to_planes(next_pyr, &mut next_planes);
    out.extend(
        points
            .iter()
            .map(|&(x, y)| track_one_planes(&prev_planes, &next_planes, x, y, cfg, scratch)),
    );
    scratch.prev_planes = prev_planes;
    scratch.next_planes = next_planes;
}

/// Tracks a single point through the pyramid, coarse to fine.
pub fn track_one(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    x: f32,
    y: f32,
    cfg: &KltConfig,
) -> TrackOutcome {
    track_one_with(prev_pyr, next_pyr, x, y, cfg, &mut KltScratch::default())
}

/// [`track_one`] with caller-owned window buffers (allocation-free once
/// `scratch` is warm). Converts both pyramids to f32 planes per call —
/// when tracking many points between the same pyramids, use
/// [`track_pyramidal_into`], which converts once.
pub fn track_one_with(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    x: f32,
    y: f32,
    cfg: &KltConfig,
    scratch: &mut KltScratch,
) -> TrackOutcome {
    let mut prev_planes = std::mem::take(&mut scratch.prev_planes);
    let mut next_planes = std::mem::take(&mut scratch.next_planes);
    pyramid_to_planes(prev_pyr, &mut prev_planes);
    pyramid_to_planes(next_pyr, &mut next_planes);
    let outcome = track_one_planes(&prev_planes, &next_planes, x, y, cfg, scratch);
    scratch.prev_planes = prev_planes;
    scratch.next_planes = next_planes;
    outcome
}

/// Tracks one point between pre-converted f32 pyramid planes.
fn track_one_planes(
    prev: &[FloatImage],
    next: &[FloatImage],
    x: f32,
    y: f32,
    cfg: &KltConfig,
    scratch: &mut KltScratch,
) -> TrackOutcome {
    let levels = prev.len().min(next.len());
    let mut gx = 0.0f32;
    let mut gy = 0.0f32;
    let mut residual = f32::MAX;
    let mut degenerate = false;
    for li in (0..levels).rev() {
        // Same scale law as `Pyramid::scale`.
        let scale = (1u32 << li) as f32;
        let (lx, ly) = (x / scale, y / scale);
        match track_level(&prev[li], &next[li], lx, ly, gx, gy, cfg, scratch) {
            Some((dx, dy, res)) => {
                residual = res;
                if li > 0 {
                    gx = dx * 2.0;
                    gy = dy * 2.0;
                } else {
                    gx = dx;
                    gy = dy;
                }
            }
            None => {
                degenerate = true;
                break;
            }
        }
    }
    if degenerate {
        return TrackOutcome::Degenerate;
    }
    let nx = x + gx;
    let ny = y + gy;
    let base = &next[0];
    let m = cfg.window_radius as f32;
    if nx < m || ny < m || nx >= base.width() as f32 - m || ny >= base.height() as f32 - m {
        return TrackOutcome::OutOfBounds;
    }
    if residual > cfg.max_residual {
        return TrackOutcome::Lost;
    }
    TrackOutcome::Tracked {
        x: nx,
        y: ny,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A textured image with a smooth per-pixel pattern, shifted by
    /// `(sx, sy)` pixels.
    fn textured(sx: f32, sy: f32) -> GrayImage {
        GrayImage::from_fn(96, 96, |x, y| {
            let u = x as f32 - sx;
            let v = y as f32 - sy;
            let val = 128.0
                + 50.0 * ((u * 0.35).sin() * (v * 0.28).cos())
                + 30.0 * ((u * 0.11 + v * 0.17).sin());
            val.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn tracks_small_shift() {
        let prev = textured(0.0, 0.0);
        let next = textured(1.7, -0.8);
        let pts = [(40.0, 40.0), (55.0, 30.0), (30.0, 60.0)];
        let out = track_pyramidal(&prev, &next, &pts, &KltConfig::default());
        for (i, o) in out.iter().enumerate() {
            let (nx, ny) = o.position().unwrap_or_else(|| panic!("point {i} lost: {o:?}"));
            assert!((nx - (pts[i].0 + 1.7)).abs() < 0.25, "x err {}", nx - pts[i].0);
            assert!((ny - (pts[i].1 - 0.8)).abs() < 0.25, "y err {}", ny - pts[i].1);
        }
    }

    #[test]
    fn tracks_large_shift_via_pyramid() {
        let prev = textured(0.0, 0.0);
        let next = textured(9.0, 6.0);
        let out = track_pyramidal(&prev, &next, &[(45.0, 45.0)], &KltConfig::default());
        let (nx, ny) = out[0].position().expect("tracked");
        assert!((nx - 54.0).abs() < 0.6, "nx={nx}");
        assert!((ny - 51.0).abs() < 0.6, "ny={ny}");
    }

    #[test]
    fn flat_region_is_degenerate() {
        let prev = GrayImage::filled(64, 64, 120);
        let next = GrayImage::filled(64, 64, 120);
        let out = track_pyramidal(&prev, &next, &[(32.0, 32.0)], &KltConfig::default());
        assert_eq!(out[0], TrackOutcome::Degenerate);
    }

    #[test]
    fn point_leaving_image_is_out_of_bounds() {
        // Aperiodic texture (quadratic phase) so large shifts cannot alias
        // onto a false in-bounds match.
        let tex = |s: f32| {
            GrayImage::from_fn(96, 96, |x, y| {
                let u = x as f32 - s;
                let v = y as f32;
                let val = 128.0 + 60.0 * ((u * u * 0.01 + v * 0.3).sin());
                val.clamp(0.0, 255.0) as u8
            })
        };
        let prev = tex(0.0);
        let next = tex(30.0);
        // Point near the right edge moves out of the frame.
        let out = track_pyramidal(&prev, &next, &[(90.0, 48.0)], &KltConfig::default());
        assert!(
            matches!(out[0], TrackOutcome::OutOfBounds | TrackOutcome::Lost),
            "outcome {:?}",
            out[0]
        );
    }

    #[test]
    fn appearance_change_is_lost() {
        let prev = textured(0.0, 0.0);
        // Completely different content.
        let next = GrayImage::from_fn(96, 96, |x, y| (((x / 2) ^ (y / 3)) * 53 % 256) as u8);
        let out = track_pyramidal(&prev, &next, &[(48.0, 48.0)], &KltConfig::default());
        assert!(out[0].position().is_none(), "outcome {:?}", out[0]);
    }

    #[test]
    fn cached_pyramids_and_scratch_are_bit_identical() {
        // Tracking through pre-built pyramids with a reused scratch (the
        // frontend's steady-state path) must equal the build-per-call
        // wrapper exactly.
        let prev = textured(0.0, 0.0);
        let next = textured(1.7, -0.8);
        let pts = [(40.0, 40.0), (55.0, 30.0), (30.0, 60.0), (32.0, 32.0)];
        let cfg = KltConfig::default();
        let reference = track_pyramidal(&prev, &next, &pts, &cfg);

        let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
        let next_pyr = Pyramid::build(next.clone(), cfg.levels);
        let mut scratch = KltScratch::default();
        let mut out = Vec::new();
        // Twice: the second run exercises fully warm buffers.
        for _ in 0..2 {
            track_pyramidal_into(&prev_pyr, &next_pyr, &pts, &cfg, &mut scratch, &mut out);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                match (a, b) {
                    (
                        TrackOutcome::Tracked { x: ax, y: ay, residual: ar },
                        TrackOutcome::Tracked { x: bx, y: by, residual: br },
                    ) => {
                        assert_eq!(ax.to_bits(), bx.to_bits());
                        assert_eq!(ay.to_bits(), by.to_bits());
                        assert_eq!(ar.to_bits(), br.to_bits());
                    }
                    _ => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn absurd_coordinates_do_not_misbehave() {
        // Far-out finite positions saturate the float→int casts inside
        // the row samplers; they must take the clamped fallback (never
        // the unchecked path) and report a failed track.
        let prev = textured(0.0, 0.0);
        let next = textured(1.0, 0.0);
        let pts = [(1e19f32, 1e19f32), (-1e19, 48.0), (48.0, -1e19)];
        let out = track_pyramidal(&prev, &next, &pts, &KltConfig::default());
        for (p, o) in pts.iter().zip(&out) {
            assert!(o.position().is_none(), "point {p:?} tracked: {o:?}");
        }
    }

    #[test]
    fn zero_motion_stays_put() {
        let prev = textured(0.0, 0.0);
        let out = track_pyramidal(&prev, &prev, &[(50.0, 50.0)], &KltConfig::default());
        let (nx, ny) = out[0].position().expect("tracked");
        assert!((nx - 50.0).abs() < 0.05);
        assert!((ny - 50.0).abs() < 0.05);
    }
}
