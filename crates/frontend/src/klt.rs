//! Pyramidal Lucas–Kanade optical flow (the DC + LSS tasks of Fig. 12).
//!
//! Temporal matching "tracks feature points across frames using the classic
//! Lucas–Kanade optical flow method" (paper Sec. IV-A). The accelerator
//! splits it into derivatives calculation (DC) and a linear least-squares
//! solve (LSS); the CPU implementation below has the same two phases per
//! iteration: template gradients once per level, then iterative 2×2 normal
//! equation solves.

use eudoxus_image::{GrayImage, Pyramid};

/// LK tracker parameters.
#[derive(Debug, Clone, Copy)]
pub struct KltConfig {
    /// Half-size of the tracking window (window is `(2w+1)²`).
    pub window_radius: i64,
    /// Pyramid levels (1 = no pyramid).
    pub levels: usize,
    /// Max Gauss–Newton iterations per level.
    pub max_iterations: usize,
    /// Convergence threshold on the update norm (pixels).
    pub epsilon: f32,
    /// Minimum acceptable eigenvalue proxy of the 2×2 normal matrix
    /// (rejects textureless windows).
    pub min_determinant: f32,
    /// Maximum residual per pixel for a track to be declared good.
    pub max_residual: f32,
}

impl Default for KltConfig {
    fn default() -> Self {
        KltConfig {
            window_radius: 7,
            levels: 3,
            max_iterations: 15,
            epsilon: 0.03,
            min_determinant: 1e-4,
            max_residual: 18.0,
        }
    }
}

/// Result of tracking one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrackOutcome {
    /// Converged; carries the position in the new frame.
    Tracked {
        /// New x (pixels).
        x: f32,
        /// New y (pixels).
        y: f32,
        /// Mean absolute residual over the window (intensity units).
        residual: f32,
    },
    /// The point left the image bounds.
    OutOfBounds,
    /// The window had too little texture to constrain the solve.
    Degenerate,
    /// The iteration failed to converge or the residual stayed large.
    Lost,
}

impl TrackOutcome {
    /// The tracked position, if successful.
    pub fn position(&self) -> Option<(f32, f32)> {
        match *self {
            TrackOutcome::Tracked { x, y, .. } => Some((x, y)),
            _ => None,
        }
    }
}

/// Tracks one point on a single pyramid level; `(gx, gy)` is the initial
/// displacement estimate. Returns `(dx, dy, residual)` on success.
///
/// The DC phase samples template values and central-difference gradients
/// *within the window only* — computing full-image gradient maps per
/// track would dominate the frame time, and the accelerator's DC block
/// likewise operates on windowed data (paper Fig. 12).
#[allow(clippy::too_many_arguments)]
fn track_level(
    prev: &GrayImage,
    next: &GrayImage,
    px: f32,
    py: f32,
    mut gx: f32,
    mut gy: f32,
    cfg: &KltConfig,
) -> Option<(f32, f32, f32)> {
    let r = cfg.window_radius;
    let w = (2 * r + 1) as usize;
    let n_px = (w * w) as f32;

    // DC phase: template values, window gradients and the 2×2 structure
    // tensor (constant across iterations: linearized at the template).
    let mut template = vec![0.0f32; w * w];
    let mut grad_x = vec![0.0f32; w * w];
    let mut grad_y = vec![0.0f32; w * w];
    let mut a11 = 0.0f32;
    let mut a12 = 0.0f32;
    let mut a22 = 0.0f32;
    for (row, dy) in (-r..=r).enumerate() {
        for (col, dx) in (-r..=r).enumerate() {
            let tx = px + dx as f32;
            let ty = py + dy as f32;
            let idx = row * w + col;
            template[idx] = prev.sample_bilinear(tx, ty);
            let ix = (prev.sample_bilinear(tx + 1.0, ty) - prev.sample_bilinear(tx - 1.0, ty))
                * 0.5;
            let iy = (prev.sample_bilinear(tx, ty + 1.0) - prev.sample_bilinear(tx, ty - 1.0))
                * 0.5;
            grad_x[idx] = ix;
            grad_y[idx] = iy;
            a11 += ix * ix;
            a12 += ix * iy;
            a22 += iy * iy;
        }
    }
    let det = a11 * a22 - a12 * a12;
    if det < cfg.min_determinant * n_px * n_px {
        return None;
    }
    let inv = 1.0 / det;

    // LSS phase: iterate the 2×2 solve.
    let mut residual = f32::MAX;
    for _ in 0..cfg.max_iterations {
        let mut b1 = 0.0f32;
        let mut b2 = 0.0f32;
        let mut res_acc = 0.0f32;
        for (row, dy) in (-r..=r).enumerate() {
            for (col, dx) in (-r..=r).enumerate() {
                let idx = row * w + col;
                let tx = px + dx as f32;
                let ty = py + dy as f32;
                let it = next.sample_bilinear(tx + gx, ty + gy) - template[idx];
                b1 += it * grad_x[idx];
                b2 += it * grad_y[idx];
                res_acc += it.abs();
            }
        }
        residual = res_acc / n_px;
        let ux = (a22 * b1 - a12 * b2) * inv;
        let uy = (a11 * b2 - a12 * b1) * inv;
        gx -= ux;
        gy -= uy;
        if (ux * ux + uy * uy).sqrt() < cfg.epsilon {
            break;
        }
    }
    Some((gx, gy, residual))
}

/// Tracks points from `prev` to `next` using pyramids built internally.
///
/// `points` are positions in `prev`; the result has one [`TrackOutcome`]
/// per input point, in order.
pub fn track_pyramidal(
    prev: &GrayImage,
    next: &GrayImage,
    points: &[(f32, f32)],
    cfg: &KltConfig,
) -> Vec<TrackOutcome> {
    let prev_pyr = Pyramid::build(prev.clone(), cfg.levels);
    let next_pyr = Pyramid::build(next.clone(), cfg.levels);
    points
        .iter()
        .map(|&(x, y)| track_one(&prev_pyr, &next_pyr, x, y, cfg))
        .collect()
}

/// Tracks a single point through the pyramid, coarse to fine.
pub fn track_one(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    x: f32,
    y: f32,
    cfg: &KltConfig,
) -> TrackOutcome {
    let levels = prev_pyr.levels().min(next_pyr.levels());
    let mut gx = 0.0f32;
    let mut gy = 0.0f32;
    let mut residual = f32::MAX;
    let mut degenerate = false;
    for li in (0..levels).rev() {
        let scale = prev_pyr.scale(li);
        let (lx, ly) = (x / scale, y / scale);
        match track_level(prev_pyr.level(li), next_pyr.level(li), lx, ly, gx, gy, cfg) {
            Some((dx, dy, res)) => {
                residual = res;
                if li > 0 {
                    gx = dx * 2.0;
                    gy = dy * 2.0;
                } else {
                    gx = dx;
                    gy = dy;
                }
            }
            None => {
                degenerate = true;
                break;
            }
        }
    }
    if degenerate {
        return TrackOutcome::Degenerate;
    }
    let nx = x + gx;
    let ny = y + gy;
    let base = next_pyr.level(0);
    let m = cfg.window_radius as f32;
    if nx < m || ny < m || nx >= base.width() as f32 - m || ny >= base.height() as f32 - m {
        return TrackOutcome::OutOfBounds;
    }
    if residual > cfg.max_residual {
        return TrackOutcome::Lost;
    }
    TrackOutcome::Tracked {
        x: nx,
        y: ny,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A textured image with a smooth per-pixel pattern, shifted by
    /// `(sx, sy)` pixels.
    fn textured(sx: f32, sy: f32) -> GrayImage {
        GrayImage::from_fn(96, 96, |x, y| {
            let u = x as f32 - sx;
            let v = y as f32 - sy;
            let val = 128.0
                + 50.0 * ((u * 0.35).sin() * (v * 0.28).cos())
                + 30.0 * ((u * 0.11 + v * 0.17).sin());
            val.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn tracks_small_shift() {
        let prev = textured(0.0, 0.0);
        let next = textured(1.7, -0.8);
        let pts = [(40.0, 40.0), (55.0, 30.0), (30.0, 60.0)];
        let out = track_pyramidal(&prev, &next, &pts, &KltConfig::default());
        for (i, o) in out.iter().enumerate() {
            let (nx, ny) = o.position().unwrap_or_else(|| panic!("point {i} lost: {o:?}"));
            assert!((nx - (pts[i].0 + 1.7)).abs() < 0.25, "x err {}", nx - pts[i].0);
            assert!((ny - (pts[i].1 - 0.8)).abs() < 0.25, "y err {}", ny - pts[i].1);
        }
    }

    #[test]
    fn tracks_large_shift_via_pyramid() {
        let prev = textured(0.0, 0.0);
        let next = textured(9.0, 6.0);
        let out = track_pyramidal(&prev, &next, &[(45.0, 45.0)], &KltConfig::default());
        let (nx, ny) = out[0].position().expect("tracked");
        assert!((nx - 54.0).abs() < 0.6, "nx={nx}");
        assert!((ny - 51.0).abs() < 0.6, "ny={ny}");
    }

    #[test]
    fn flat_region_is_degenerate() {
        let prev = GrayImage::filled(64, 64, 120);
        let next = GrayImage::filled(64, 64, 120);
        let out = track_pyramidal(&prev, &next, &[(32.0, 32.0)], &KltConfig::default());
        assert_eq!(out[0], TrackOutcome::Degenerate);
    }

    #[test]
    fn point_leaving_image_is_out_of_bounds() {
        // Aperiodic texture (quadratic phase) so large shifts cannot alias
        // onto a false in-bounds match.
        let tex = |s: f32| {
            GrayImage::from_fn(96, 96, |x, y| {
                let u = x as f32 - s;
                let v = y as f32;
                let val = 128.0 + 60.0 * ((u * u * 0.01 + v * 0.3).sin());
                val.clamp(0.0, 255.0) as u8
            })
        };
        let prev = tex(0.0);
        let next = tex(30.0);
        // Point near the right edge moves out of the frame.
        let out = track_pyramidal(&prev, &next, &[(90.0, 48.0)], &KltConfig::default());
        assert!(
            matches!(out[0], TrackOutcome::OutOfBounds | TrackOutcome::Lost),
            "outcome {:?}",
            out[0]
        );
    }

    #[test]
    fn appearance_change_is_lost() {
        let prev = textured(0.0, 0.0);
        // Completely different content.
        let next = GrayImage::from_fn(96, 96, |x, y| (((x / 2) ^ (y / 3)) * 53 % 256) as u8);
        let out = track_pyramidal(&prev, &next, &[(48.0, 48.0)], &KltConfig::default());
        assert!(out[0].position().is_none(), "outcome {:?}", out[0]);
    }

    #[test]
    fn zero_motion_stays_put() {
        let prev = textured(0.0, 0.0);
        let out = track_pyramidal(&prev, &prev, &[(50.0, 50.0)], &KltConfig::default());
        let (nx, ny) = out[0].position().expect("tracked");
        assert!((nx - 50.0).abs() < 0.05);
        assert!((ny - 50.0).abs() < 0.05);
    }
}
