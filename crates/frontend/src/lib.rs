//! The Eudoxus vision frontend: visual feature matching.
//!
//! The unified localization algorithm (paper Fig. 4) shares one visual
//! frontend across all three backend modes. It establishes feature
//! correspondences both *spatially* (between the stereo pair) and
//! *temporally* (between consecutive frames):
//!
//! * **Feature extraction** — FAST key points ([`fast`]) with ORB
//!   descriptors ([`orb`]), the combination the paper adopts from
//!   ORB-SLAM-class systems.
//! * **Stereo matching** — Hamming-distance matching of ORB descriptors
//!   followed by block-matching disparity refinement ([`stereo`]).
//! * **Temporal matching** — pyramidal Lucas–Kanade optical flow
//!   ([`klt`]).
//!
//! [`pipeline::Frontend`] wires the blocks together, manages persistent
//! track identities, and reports per-task wall-clock timings matching the
//! accelerator task graph (FD, IF, FC, MO, DR, DC, LSS of paper Fig. 12) so
//! the characterization experiments (Figs. 5–11) can attribute latency.
//!
//! # Performance: the scratch-reuse contract
//!
//! The per-frame kernels come in two forms. The plain functions
//! ([`detect_fast`], [`track_pyramidal`], `eudoxus_image::gaussian_blur`)
//! allocate their working memory per call — convenient for one-off use
//! and tests. Each has an `*_into` twin ([`detect_fast_into`],
//! [`track_pyramidal_into`], `eudoxus_image::gaussian_blur_into`) that
//! takes a caller-owned scratch ([`FastScratch`], [`KltScratch`],
//! `eudoxus_image::FilterScratch`) plus an output buffer, and is
//! **bit-identical** to its twin while performing **zero heap
//! allocations** once the buffers are warm (one call at the stream's
//! image size).
//!
//! `*_into` is worth it exactly when the same kernel runs repeatedly at a
//! fixed image size — the streaming steady state, where the allocator
//! otherwise sits on the critical path of every frame. For a single call
//! the wrappers cost the same (they *are* one cold `_into` call).
//!
//! [`Frontend`] owns a [`FrontendScratch`] and uses the `_into` forms
//! throughout; it also caches the previous left-image pyramid, so each
//! frame builds exactly one pyramid (the current left, into a recycled
//! slot) instead of two from full-image clones. After warm-up,
//! [`Frontend::process`] makes no allocations for response maps, blur
//! buffers, or pyramids; remaining per-frame allocations are the returned
//! observation list and the stereo matcher's internals.
//!
//! # Performance: the batched KLT solve
//!
//! The dominant frontend kernel after the scratch work is the KLT solve
//! (the paper's DC + LSS "temporal" tasks, ~60 % of frame time).
//! [`track_pyramidal_into`] therefore solves tracks in lane-parallel
//! batches of [`KLT_LANES`] (= 8): per-track positions, 2×2 normal
//! matrices, residuals and convergence masks live as SoA arrays in
//! [`KltScratch`], the search windows of all lanes are gathered from a
//! shared f32 plane by a row-hoisted bilinear gather
//! (`eudoxus_image::RowGather`), and each LSS iteration runs as a
//! fixed-width unrolled micro-kernel over the lanes. Eight lanes give
//! the core eight independent `f32` accumulator chains where the scalar
//! solve serializes on one — and the interior gather replaces the
//! per-sample `floorf` libcall with a truncating cast (bit-equal for the
//! proven `x ≥ 0` domain). Converged/degenerate lanes are masked, not
//! compacted: they stay resident but skip their gathers and updates, so
//! a batch performs exactly the scalar solve's total sample count. The
//! scalar path survives as [`track_one`]/[`track_one_with`] and as the
//! per-row border fallback inside the batch; everything is
//! **bit-identical** to the seed solve (golden + property tests in
//! `eudoxus-bench`, all five scenario kinds). See
//! `crates/frontend/src/README.md` for the design notes and
//! `BENCH_throughput.json` for the trajectory (mean frontend speedup
//! ~2.2× vs the in-run seed baseline, temporal share down to ~55 %).
//!
//! # Example
//!
//! ```
//! use eudoxus_frontend::{Frontend, FrontendConfig};
//! use eudoxus_image::GrayImage;
//!
//! let mut frontend = Frontend::new(FrontendConfig::default());
//! let left = GrayImage::filled(64, 48, 120);
//! let right = left.clone();
//! let frame = frontend.process(&left, &right);
//! // A textureless frame yields no features but a valid (empty) result.
//! assert_eq!(frame.observations.len(), 0);
//! ```

pub mod fast;
pub mod feature;
pub mod klt;
pub mod orb;
pub mod pipeline;
pub mod stereo;

pub use fast::{detect_fast, detect_fast_into, FastConfig, FastScratch};
pub use feature::{Feature, KeyPoint, OrbDescriptor};
pub use klt::{
    track_one, track_one_with, track_pyramidal, track_pyramidal_into,
    track_pyramidal_scalar_into, KltConfig, KltScratch, TrackOutcome, KLT_LANES,
};
pub use orb::{compute_orb, OrbConfig};
pub use pipeline::{
    FrameDirective, FrameStats, Frontend, FrontendConfig, FrontendFrame, FrontendScratch,
    FrontendTiming, Observation, Tuning,
};
pub use stereo::{match_stereo, StereoConfig, StereoMatch};
