//! The Eudoxus vision frontend: visual feature matching.
//!
//! The unified localization algorithm (paper Fig. 4) shares one visual
//! frontend across all three backend modes. It establishes feature
//! correspondences both *spatially* (between the stereo pair) and
//! *temporally* (between consecutive frames):
//!
//! * **Feature extraction** — FAST key points ([`fast`]) with ORB
//!   descriptors ([`orb`]), the combination the paper adopts from
//!   ORB-SLAM-class systems.
//! * **Stereo matching** — Hamming-distance matching of ORB descriptors
//!   followed by block-matching disparity refinement ([`stereo`]).
//! * **Temporal matching** — pyramidal Lucas–Kanade optical flow
//!   ([`klt`]).
//!
//! [`pipeline::Frontend`] wires the blocks together, manages persistent
//! track identities, and reports per-task wall-clock timings matching the
//! accelerator task graph (FD, IF, FC, MO, DR, DC, LSS of paper Fig. 12) so
//! the characterization experiments (Figs. 5–11) can attribute latency.
//!
//! # Performance: the scratch-reuse contract
//!
//! The per-frame kernels come in two forms. The plain functions
//! ([`detect_fast`], [`track_pyramidal`], `eudoxus_image::gaussian_blur`)
//! allocate their working memory per call — convenient for one-off use
//! and tests. Each has an `*_into` twin ([`detect_fast_into`],
//! [`track_pyramidal_into`], `eudoxus_image::gaussian_blur_into`) that
//! takes a caller-owned scratch ([`FastScratch`], [`KltScratch`],
//! `eudoxus_image::FilterScratch`) plus an output buffer, and is
//! **bit-identical** to its twin while performing **zero heap
//! allocations** once the buffers are warm (one call at the stream's
//! image size).
//!
//! `*_into` is worth it exactly when the same kernel runs repeatedly at a
//! fixed image size — the streaming steady state, where the allocator
//! otherwise sits on the critical path of every frame. For a single call
//! the wrappers cost the same (they *are* one cold `_into` call).
//!
//! [`Frontend`] owns a [`FrontendScratch`] and uses the `_into` forms
//! throughout; it also caches the previous left-image pyramid, so each
//! frame builds exactly one pyramid (the current left, into a recycled
//! slot) instead of two from full-image clones. After warm-up,
//! [`Frontend::process`] makes no allocations for response maps, blur
//! buffers, or pyramids; remaining per-frame allocations are the returned
//! observation list and the stereo matcher's internals.
//!
//! # Example
//!
//! ```
//! use eudoxus_frontend::{Frontend, FrontendConfig};
//! use eudoxus_image::GrayImage;
//!
//! let mut frontend = Frontend::new(FrontendConfig::default());
//! let left = GrayImage::filled(64, 48, 120);
//! let right = left.clone();
//! let frame = frontend.process(&left, &right);
//! // A textureless frame yields no features but a valid (empty) result.
//! assert_eq!(frame.observations.len(), 0);
//! ```

pub mod fast;
pub mod feature;
pub mod klt;
pub mod orb;
pub mod pipeline;
pub mod stereo;

pub use fast::{detect_fast, detect_fast_into, FastConfig, FastScratch};
pub use feature::{Feature, KeyPoint, OrbDescriptor};
pub use klt::{
    track_one, track_one_with, track_pyramidal, track_pyramidal_into, KltConfig, KltScratch,
    TrackOutcome,
};
pub use orb::{compute_orb, OrbConfig};
pub use pipeline::{
    FrameStats, Frontend, FrontendConfig, FrontendFrame, FrontendScratch, FrontendTiming,
    Observation, Tuning,
};
pub use stereo::{match_stereo, StereoConfig, StereoMatch};
