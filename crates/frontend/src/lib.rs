//! The Eudoxus vision frontend: visual feature matching.
//!
//! The unified localization algorithm (paper Fig. 4) shares one visual
//! frontend across all three backend modes. It establishes feature
//! correspondences both *spatially* (between the stereo pair) and
//! *temporally* (between consecutive frames):
//!
//! * **Feature extraction** — FAST key points ([`fast`]) with ORB
//!   descriptors ([`orb`]), the combination the paper adopts from
//!   ORB-SLAM-class systems.
//! * **Stereo matching** — Hamming-distance matching of ORB descriptors
//!   followed by block-matching disparity refinement ([`stereo`]).
//! * **Temporal matching** — pyramidal Lucas–Kanade optical flow
//!   ([`klt`]).
//!
//! [`pipeline::Frontend`] wires the blocks together, manages persistent
//! track identities, and reports per-task wall-clock timings matching the
//! accelerator task graph (FD, IF, FC, MO, DR, DC, LSS of paper Fig. 12) so
//! the characterization experiments (Figs. 5–11) can attribute latency.
//!
//! # Example
//!
//! ```
//! use eudoxus_frontend::{Frontend, FrontendConfig};
//! use eudoxus_image::GrayImage;
//!
//! let mut frontend = Frontend::new(FrontendConfig::default());
//! let left = GrayImage::filled(64, 48, 120);
//! let right = left.clone();
//! let frame = frontend.process(&left, &right);
//! // A textureless frame yields no features but a valid (empty) result.
//! assert_eq!(frame.observations.len(), 0);
//! ```

pub mod fast;
pub mod feature;
pub mod klt;
pub mod orb;
pub mod pipeline;
pub mod stereo;

pub use fast::{detect_fast, FastConfig};
pub use feature::{Feature, KeyPoint, OrbDescriptor};
pub use klt::{track_pyramidal, KltConfig, TrackOutcome};
pub use orb::{compute_orb, OrbConfig};
pub use pipeline::{FrameStats, Frontend, FrontendConfig, FrontendFrame, FrontendTiming, Observation, Tuning};
pub use stereo::{match_stereo, StereoConfig, StereoMatch};
