//! ORB descriptors (the FC task of paper Fig. 12).
//!
//! Rublee et al.'s ORB \[75\]: an orientation assigned by the intensity
//! centroid of the patch, then rotated-BRIEF — 256 pairwise intensity
//! comparisons at a fixed sampling pattern, rotated by the patch
//! orientation. The comparison pattern here is generated once from a
//! deterministic PRNG, mimicking ORB's learned pattern; what matters for
//! matching is that the *same* pattern is used everywhere.

use crate::feature::{KeyPoint, OrbDescriptor};
use eudoxus_image::GrayImage;

/// Patch half-size used for orientation and sampling.
const PATCH_RADIUS: i64 = 9;
/// Sampling offsets must stay within this radius so rotated samples remain
/// inside the patch.
const SAMPLE_RADIUS: f32 = 8.0;

/// ORB parameters.
#[derive(Debug, Clone, Copy)]
pub struct OrbConfig {
    /// When true (default), rotate the sampling pattern by the patch
    /// orientation (rotation-invariant descriptors).
    pub oriented: bool,
}

impl Default for OrbConfig {
    fn default() -> Self {
        OrbConfig { oriented: true }
    }
}

/// The 256 comparison pairs, generated deterministically at first use.
fn sampling_pattern() -> &'static [((f32, f32), (f32, f32)); 256] {
    use std::sync::OnceLock;
    static PATTERN: OnceLock<[((f32, f32), (f32, f32)); 256]> = OnceLock::new();
    PATTERN.get_or_init(|| {
        // xorshift64* PRNG — fixed seed, so every build uses one pattern.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545F4914F6CDD1D);
            // Map to [-1, 1).
            (state >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0
        };
        let mut pairs = [((0.0f32, 0.0f32), (0.0f32, 0.0f32)); 256];
        for pair in &mut pairs {
            // Approximate Gaussian via average of uniforms, scaled to the
            // sample radius (BRIEF uses Gaussian-distributed offsets).
            let mut g = || (next() + next() + next()) / 3.0 * SAMPLE_RADIUS;
            loop {
                let a = (g(), g());
                let b = (g(), g());
                let r2 = SAMPLE_RADIUS * SAMPLE_RADIUS;
                if a.0 * a.0 + a.1 * a.1 <= r2 && b.0 * b.0 + b.1 * b.1 <= r2 {
                    *pair = (a, b);
                    break;
                }
            }
        }
        pairs
    })
}

/// Orientation of the patch by intensity centroid: `θ = atan2(m01, m10)`.
///
/// [`compute_orb`] rejects key points within `PATCH_RADIUS + 1` of the
/// border before calling this, so every tap is in bounds and reads the
/// raw row directly (same pixels the clamped form would return).
fn patch_orientation(img: &GrayImage, cx: i64, cy: i64) -> f32 {
    let w = img.width() as i64;
    debug_assert!(
        cx > PATCH_RADIUS
            && cy > PATCH_RADIUS
            && cx + PATCH_RADIUS < w
            && cy + PATCH_RADIUS < img.height() as i64,
        "patch_orientation requires an interior patch"
    );
    let raw = img.as_raw();
    let mut m01 = 0.0f64;
    let mut m10 = 0.0f64;
    for dy in -PATCH_RADIUS..=PATCH_RADIUS {
        // The circular mask `dx² + dy² ≤ R²` is a contiguous dx range per
        // row; iterating exactly that range visits the same pixels in the
        // same order as testing every offset.
        let span = ((PATCH_RADIUS * PATCH_RADIUS - dy * dy) as f64).sqrt() as i64;
        let base = ((cy + dy) * w + cx) as usize;
        for dx in -span..=span {
            debug_assert!(dx * dx + dy * dy <= PATCH_RADIUS * PATCH_RADIUS);
            // SAFETY: the interior margin asserted above keeps
            // `(cx + dx, cy + dy)` inside the image.
            let v = unsafe { *raw.get_unchecked((base as i64 + dx) as usize) } as f64;
            m10 += dx as f64 * v;
            m01 += dy as f64 * v;
        }
    }
    (m01.atan2(m10)) as f32
}

/// Computes an ORB descriptor at a key point on the (pre-smoothed) image.
///
/// Returns `None` when the patch would fall outside the image (callers
/// should drop such border key points rather than describe unreliable
/// content).
pub fn compute_orb(img: &GrayImage, kp: &KeyPoint, cfg: &OrbConfig) -> Option<OrbDescriptor> {
    let (w, h) = img.dimensions();
    let cx = kp.x.round() as i64;
    let cy = kp.y.round() as i64;
    let margin = PATCH_RADIUS + 1;
    if cx < margin || cy < margin || cx >= w as i64 - margin || cy >= h as i64 - margin {
        return None;
    }
    let (sin_t, cos_t) = if cfg.oriented {
        patch_orientation(img, cx, cy).sin_cos()
    } else {
        (0.0, 1.0)
    };
    let mut desc = OrbDescriptor::zero();
    for (i, &((ax, ay), (bx, by))) in sampling_pattern().iter().enumerate() {
        // Rotate offsets by the patch orientation.
        let ra = (
            (cos_t * ax - sin_t * ay) + kp.x,
            (sin_t * ax + cos_t * ay) + kp.y,
        );
        let rb = (
            (cos_t * bx - sin_t * by) + kp.x,
            (sin_t * bx + cos_t * by) + kp.y,
        );
        let va = img.sample_bilinear(ra.0, ra.1);
        let vb = img.sample_bilinear(rb.0, rb.1);
        if va < vb {
            desc.set_bit(i);
        }
    }
    Some(desc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders a deterministic textured blob at `(cx, cy)`, rotated by
    /// `angle`. The texture has a dominant gradient direction so the
    /// intensity-centroid orientation is well defined.
    fn blob_image(cx: f32, cy: f32, angle: f32) -> GrayImage {
        GrayImage::from_fn(64, 64, |x, y| {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            // Rotate the texture lookup by -angle.
            let (s, c) = (-angle).sin_cos();
            let u = c * dx - s * dy;
            let v = s * dx + c * dy;
            let val = 120.0 + 3.5 * u + 35.0 * ((u * 0.6).sin() * (v * 0.5).cos());
            val.clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn descriptor_is_reproducible() {
        let img = blob_image(32.0, 32.0, 0.0);
        let kp = KeyPoint::new(32.0, 32.0, 1.0);
        let a = compute_orb(&img, &kp, &OrbConfig::default()).unwrap();
        let b = compute_orb(&img, &kp, &OrbConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_patch_matches_translated_copy() {
        let a_img = blob_image(30.0, 30.0, 0.0);
        let b_img = blob_image(34.0, 28.0, 0.0);
        let a = compute_orb(&a_img, &KeyPoint::new(30.0, 30.0, 1.0), &OrbConfig::default()).unwrap();
        let b = compute_orb(&b_img, &KeyPoint::new(34.0, 28.0, 1.0), &OrbConfig::default()).unwrap();
        assert!(a.hamming(&b) < 40, "distance {}", a.hamming(&b));
    }

    #[test]
    fn different_patches_do_not_match() {
        let a_img = blob_image(32.0, 32.0, 0.0);
        // A very different texture.
        let b_img = GrayImage::from_fn(64, 64, |x, y| (((x / 3) ^ (y / 5)) * 37 % 256) as u8);
        let a = compute_orb(&a_img, &KeyPoint::new(32.0, 32.0, 1.0), &OrbConfig::default()).unwrap();
        let b = compute_orb(&b_img, &KeyPoint::new(32.0, 32.0, 1.0), &OrbConfig::default()).unwrap();
        assert!(a.hamming(&b) > 70, "distance {}", a.hamming(&b));
    }

    #[test]
    fn rotation_invariance_with_orientation() {
        let a_img = blob_image(32.0, 32.0, 0.0);
        let b_img = blob_image(32.0, 32.0, 0.9);
        let kp = KeyPoint::new(32.0, 32.0, 1.0);
        let oriented = OrbConfig { oriented: true };
        let plain = OrbConfig { oriented: false };
        let a_o = compute_orb(&a_img, &kp, &oriented).unwrap();
        let b_o = compute_orb(&b_img, &kp, &oriented).unwrap();
        let a_p = compute_orb(&a_img, &kp, &plain).unwrap();
        let b_p = compute_orb(&b_img, &kp, &plain).unwrap();
        // Oriented descriptors must match much better under rotation.
        assert!(
            a_o.hamming(&b_o) + 25 < a_p.hamming(&b_p),
            "oriented {} vs plain {}",
            a_o.hamming(&b_o),
            a_p.hamming(&b_p)
        );
    }

    #[test]
    fn border_keypoints_rejected() {
        let img = blob_image(32.0, 32.0, 0.0);
        assert!(compute_orb(&img, &KeyPoint::new(3.0, 3.0, 1.0), &OrbConfig::default()).is_none());
        assert!(compute_orb(&img, &KeyPoint::new(62.0, 32.0, 1.0), &OrbConfig::default()).is_none());
    }

    #[test]
    fn pattern_offsets_stay_in_patch() {
        for &((ax, ay), (bx, by)) in sampling_pattern() {
            assert!(ax * ax + ay * ay <= SAMPLE_RADIUS * SAMPLE_RADIUS + 1e-3);
            assert!(bx * bx + by * by <= SAMPLE_RADIUS * SAMPLE_RADIUS + 1e-3);
        }
    }
}
