//! The assembled frontend pipeline with track management and per-task
//! timing.
//!
//! Mirrors the block structure of paper Fig. 12: image filtering (IF) and
//! feature detection (FD) feed descriptor calculation (FC); descriptors
//! from both eyes feed stereo matching (MO + DR); the previous left frame
//! feeds temporal matching (DC + LSS). The pipeline also owns *track
//! identities*: a feature tracked across frames keeps a stable `track_id`,
//! which is what the MSCKF and SLAM backends key their observations on.

use crate::fast::{detect_fast_into, FastConfig, FastScratch};
use crate::feature::{Feature, KeyPoint, OrbDescriptor};
use crate::klt::{
    track_pyramidal_into, track_pyramidal_scalar_into, KltConfig, KltScratch, TrackOutcome,
};
use crate::orb::{compute_orb, OrbConfig};
use crate::stereo::{match_stereo, StereoConfig};
use eudoxus_image::{gaussian_blur_into, FilterScratch, GrayImage, Pyramid};
use eudoxus_telemetry::{SpanScope, TelemetryHub};
use std::time::{Duration, Instant};

/// Frontend parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontendConfig {
    /// FAST detector settings.
    pub fast: FastConfig,
    /// ORB descriptor settings.
    pub orb: OrbConfig,
    /// Stereo matcher settings.
    pub stereo: StereoConfig,
    /// LK tracker settings.
    pub klt: KltConfig,
    /// Extra knobs with defaults.
    pub tuning: Tuning,
}

/// Secondary frontend knobs.
#[derive(Debug, Clone, Copy)]
pub struct Tuning {
    /// Gaussian σ applied before descriptor calculation (the IF task).
    pub blur_sigma: f32,
    /// Max distance (pixels) to snap an LK-tracked point to a detection.
    pub snap_radius: f32,
    /// Cap on simultaneously live tracks.
    pub max_tracks: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            blur_sigma: 1.2,
            snap_radius: 3.0,
            max_tracks: 420,
        }
    }
}

/// A per-frame throttling directive issued by the execution engine's
/// control loop and applied by [`Frontend::process`] on the *next* frame.
///
/// Each field caps (never raises) the corresponding [`FrontendConfig`]
/// knob, so a directive can only shrink the workload: the effective
/// budget is `min(config, directive)`. `scalar_klt` selects the
/// lane-sequential KLT solve, which is bit-identical to the batched
/// path (proven by the scalar/batch property tests) but models the
/// scalar datapath an accelerator-less platform would run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameDirective {
    /// Cap on FAST detections per image (clamps `FastConfig::max_keypoints`).
    pub max_keypoints: usize,
    /// Cap on simultaneously live tracks (clamps `Tuning::max_tracks`).
    pub max_tracks: usize,
    /// Cap on KLT pyramid levels (clamps `KltConfig::levels`, min 1).
    pub max_pyramid_levels: usize,
    /// Route temporal matching through the scalar KLT solve.
    pub scalar_klt: bool,
}

impl FrameDirective {
    /// The mildest throttled operating point: a modest trim of the
    /// feature budget with the full pyramid, on the SIMD path. First
    /// rung of the control loop's severity ladder.
    pub fn mild() -> Self {
        FrameDirective {
            max_keypoints: 600,
            max_tracks: 320,
            max_pyramid_levels: 3,
            scalar_klt: false,
        }
    }

    /// The default throttled operating point: roughly half the default
    /// feature budget and one fewer pyramid level, on the SIMD path.
    pub fn throttled() -> Self {
        FrameDirective {
            max_keypoints: 400,
            max_tracks: 210,
            max_pyramid_levels: 2,
            scalar_klt: false,
        }
    }

    /// The deepest cut: a quarter of the default feature budget on a
    /// single pyramid level. Last rung of the severity ladder, for
    /// frames that keep missing their deadline under
    /// [`throttled`](Self::throttled).
    pub fn severe() -> Self {
        FrameDirective {
            max_keypoints: 250,
            max_tracks: 130,
            max_pyramid_levels: 1,
            scalar_klt: false,
        }
    }
}

/// Wall-clock time spent in each frontend block for one frame.
///
/// Names follow the accelerator task graph: FD + IF + FC form feature
/// extraction; MO + DR form stereo matching; DC + LSS form temporal
/// matching (paper Fig. 12).
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontendTiming {
    /// Feature point detection (FD) over both images.
    pub detection: Duration,
    /// Image filtering (IF) over both images.
    pub filtering: Duration,
    /// Feature descriptor calculation (FC) over both images.
    pub description: Duration,
    /// Stereo matching: matching optimization + disparity refinement
    /// (MO + DR).
    pub stereo: Duration,
    /// Temporal matching: derivatives + least-squares solves (DC + LSS).
    pub temporal: Duration,
}

impl FrontendTiming {
    /// Total frontend time.
    pub fn total(&self) -> Duration {
        self.detection + self.filtering + self.description + self.stereo + self.temporal
    }

    /// Feature-extraction share (FD + IF + FC).
    pub fn feature_extraction(&self) -> Duration {
        self.detection + self.filtering + self.description
    }
}

/// One per-frame feature observation handed to the backends.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// Persistent track identity (stable across frames while tracked).
    pub track_id: u64,
    /// Sub-pixel position in the left image.
    pub x: f32,
    /// Sub-pixel position in the left image.
    pub y: f32,
    /// Stereo disparity when the feature matched across the pair.
    pub disparity: Option<f32>,
    /// ORB descriptor from the left image.
    pub descriptor: OrbDescriptor,
}

/// Counters describing one processed frame (inputs to the accelerator's
/// analytical model and the runtime scheduler's regressors).
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameStats {
    /// FAST detections in the left image (after bucketing).
    pub keypoints_left: usize,
    /// FAST detections in the right image.
    pub keypoints_right: usize,
    /// Accepted stereo matches.
    pub stereo_matches: usize,
    /// Tracks carried over from the previous frame.
    pub tracks_continued: usize,
    /// Newly spawned tracks this frame.
    pub tracks_spawned: usize,
    /// Tracks that died this frame.
    pub tracks_lost: usize,
}

/// Output of [`Frontend::process`] for one stereo frame.
#[derive(Debug, Clone)]
pub struct FrontendFrame {
    /// Features visible this frame, with persistent identities.
    pub observations: Vec<Observation>,
    /// Per-task wall-clock timings.
    pub timing: FrontendTiming,
    /// Workload counters.
    pub stats: FrameStats,
}

/// A live track (internal state).
#[derive(Debug, Clone, Copy)]
struct Track {
    id: u64,
    x: f32,
    y: f32,
}

/// Per-frame workspaces owned by [`Frontend`], reused across frames so the
/// steady-state hot path performs no heap allocations for the FAST
/// response map, the blur intermediates, the KLT window buffers, or the
/// image pyramids. Buffers grow to the high-water mark of the stream
/// (first frame at each new image size) and stay warm from then on.
///
/// The contract each kernel-level scratch upholds: results are
/// bit-identical to the allocating wrappers, regardless of what the
/// buffers held before the call.
#[derive(Debug, Default)]
pub struct FrontendScratch {
    filter: FilterScratch,
    left_blur: GrayImage,
    right_blur: GrayImage,
    fast: FastScratch,
    kps_left: Vec<KeyPoint>,
    kps_right: Vec<KeyPoint>,
    feats_left: Vec<Feature>,
    feats_right: Vec<Feature>,
    disparity_of: Vec<Option<f32>>,
    klt: KltScratch,
    points: Vec<(f32, f32)>,
    tracked: Vec<TrackOutcome>,
    claimed: Vec<Option<u64>>,
    new_tracks: Vec<Track>,
    /// Pyramid slot the *current* frame's left image is built into; after
    /// the frame it swaps with `Frontend::prev_pyr`, so the two slots
    /// alternate and no pyramid is ever rebuilt for the same image twice.
    spare_pyr: Pyramid,
    /// Optional span recorder: when armed, [`Frontend::process`] stamps
    /// one [`SpanScope::Kernel`] span per kernel invocation (blur, FAST,
    /// ORB, stereo, pyramid rebuild, KLT). Pure observation — the armed
    /// and unarmed paths are bit-identical on every output.
    telemetry: Option<TelemetryHub>,
    /// Frame index stamped on kernel spans (set by the session per frame).
    telemetry_frame: u64,
}

/// The stateful frontend.
///
/// # Example
///
/// ```
/// use eudoxus_frontend::{Frontend, FrontendConfig};
/// use eudoxus_image::GrayImage;
///
/// let mut fe = Frontend::new(FrontendConfig::default());
/// let img = GrayImage::filled(64, 64, 100);
/// let out = fe.process(&img, &img);
/// assert!(out.observations.is_empty()); // textureless input
/// ```
#[derive(Debug)]
pub struct Frontend {
    config: FrontendConfig,
    /// Pyramid of the previous frame's left image — the temporal-matching
    /// template. Cached so KLT builds one pyramid per frame (the current
    /// left) instead of two plus a full-image clone.
    prev_pyr: Option<Pyramid>,
    tracks: Vec<Track>,
    next_id: u64,
    scratch: FrontendScratch,
    /// Throttle directive in force for the next processed frame; `None`
    /// leaves every budget at its configured value (the untouched path
    /// is bit-identical to a frontend that has never seen a directive).
    directive: Option<FrameDirective>,
}

impl Frontend {
    /// Creates a frontend with the given configuration.
    pub fn new(config: FrontendConfig) -> Self {
        Frontend {
            config,
            prev_pyr: None,
            tracks: Vec::new(),
            next_id: 0,
            scratch: FrontendScratch::default(),
            directive: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// Sets (or clears) the throttle directive applied to the next frame.
    pub fn set_directive(&mut self, directive: Option<FrameDirective>) {
        self.directive = directive;
    }

    /// The directive currently in force, if any.
    pub fn directive(&self) -> Option<FrameDirective> {
        self.directive
    }

    /// Arms (or disarms) per-kernel span recording. The handle lives in
    /// the scratch: the kernels themselves keep their signatures, and a
    /// disarmed frontend never touches the clock.
    pub fn set_telemetry(&mut self, telemetry: Option<TelemetryHub>) {
        self.scratch.telemetry = telemetry;
    }

    /// Sets the frame index stamped on subsequent kernel spans.
    pub fn set_telemetry_frame(&mut self, frame_idx: u64) {
        self.scratch.telemetry_frame = frame_idx;
    }

    /// Number of currently live tracks.
    pub fn live_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Resets all state (used at dataset segment boundaries). Scratch
    /// buffers stay warm — reuse across segments cannot affect results
    /// (every buffer is fully rewritten or cleared per frame).
    pub fn reset(&mut self) {
        // Park the cached pyramid for reuse rather than dropping it.
        if let Some(pyr) = self.prev_pyr.take() {
            self.scratch.spare_pyr = pyr;
        }
        self.tracks.clear();
    }

    /// Processes one stereo frame, returning observations with persistent
    /// track identities plus timing and workload counters.
    ///
    /// Steady state (after the first frame at a given image size) this
    /// performs no heap allocations for the FAST response maps, the blur
    /// buffers, or the image pyramids: all of that lives in the owned
    /// [`FrontendScratch`], and the previous left pyramid is carried over
    /// from the last frame instead of being rebuilt from a clone.
    pub fn process(&mut self, left: &GrayImage, right: &GrayImage) -> FrontendFrame {
        let cfg = &self.config;
        let directive = self.directive;
        // Effective budgets: a directive can only shrink the configured
        // ones, never raise them.
        let fast_cfg = match directive {
            Some(d) => FastConfig {
                max_keypoints: cfg.fast.max_keypoints.min(d.max_keypoints),
                ..cfg.fast
            },
            None => cfg.fast,
        };
        let klt_levels = match directive {
            Some(d) => cfg.klt.levels.min(d.max_pyramid_levels.max(1)),
            None => cfg.klt.levels,
        };
        let max_tracks = match directive {
            Some(d) => cfg.tuning.max_tracks.min(d.max_tracks),
            None => cfg.tuning.max_tracks,
        };
        let mut timing = FrontendTiming::default();
        let mut stats = FrameStats::default();

        // Span bracketing: an Arc bump per frame when armed, nothing at
        // all when not. Spans are stamped by the hub's clock (wall or
        // model) independently of the `Instant` timing fields.
        let telemetry = self.scratch.telemetry.clone();
        let span_frame = self.scratch.telemetry_frame;
        let span_open = || telemetry.as_ref().map(|hub| hub.start());
        let span_close = |kernel: &'static str, start: Option<u64>| {
            if let (Some(hub), Some(start)) = (telemetry.as_ref(), start) {
                hub.record(SpanScope::Kernel, kernel, span_frame, start);
            }
        };

        // IF: smooth both images for descriptor sampling.
        let s = span_open();
        let t = Instant::now();
        gaussian_blur_into(
            left,
            cfg.tuning.blur_sigma,
            &mut self.scratch.filter,
            &mut self.scratch.left_blur,
        );
        gaussian_blur_into(
            right,
            cfg.tuning.blur_sigma,
            &mut self.scratch.filter,
            &mut self.scratch.right_blur,
        );
        timing.filtering = t.elapsed();
        span_close("gaussian_blur", s);

        // FD: detect on both raw images.
        let s = span_open();
        let t = Instant::now();
        detect_fast_into(left, &fast_cfg, &mut self.scratch.fast, &mut self.scratch.kps_left);
        detect_fast_into(right, &fast_cfg, &mut self.scratch.fast, &mut self.scratch.kps_right);
        timing.detection = t.elapsed();
        span_close("detect_fast", s);
        stats.keypoints_left = self.scratch.kps_left.len();
        stats.keypoints_right = self.scratch.kps_right.len();

        // FC: describe on the blurred images; drop border points.
        let s = span_open();
        let t = Instant::now();
        self.scratch.feats_left.clear();
        self.scratch.feats_left.extend(self.scratch.kps_left.iter().filter_map(|kp| {
            compute_orb(&self.scratch.left_blur, kp, &cfg.orb).map(|descriptor| Feature {
                keypoint: *kp,
                descriptor,
            })
        }));
        self.scratch.feats_right.clear();
        self.scratch.feats_right.extend(self.scratch.kps_right.iter().filter_map(|kp| {
            compute_orb(&self.scratch.right_blur, kp, &cfg.orb).map(|descriptor| Feature {
                keypoint: *kp,
                descriptor,
            })
        }));
        timing.description = t.elapsed();
        span_close("compute_orb", s);

        // MO + DR: spatial correspondences.
        let s = span_open();
        let t = Instant::now();
        let stereo = match_stereo(
            &self.scratch.feats_left,
            &self.scratch.feats_right,
            left,
            right,
            &cfg.stereo,
        );
        timing.stereo = t.elapsed();
        span_close("match_stereo", s);
        stats.stereo_matches = stereo.len();
        self.scratch.disparity_of.clear();
        self.scratch.disparity_of.resize(self.scratch.feats_left.len(), None);
        for m in &stereo {
            self.scratch.disparity_of[m.left_index] = Some(m.disparity);
        }

        // DC + LSS: temporal correspondences for live tracks. The current
        // left pyramid is built once into the spare slot; the previous
        // frame's pyramid (cached, not rebuilt) provides the template.
        let t = Instant::now();
        let s = span_open();
        let mut cur_pyr = std::mem::take(&mut self.scratch.spare_pyr);
        cur_pyr.rebuild_from(left, klt_levels);
        span_close("pyramid_rebuild", s);
        let s = span_open();
        self.scratch.tracked.clear();
        if let Some(prev_pyr) = &self.prev_pyr {
            if !self.tracks.is_empty() {
                self.scratch.points.clear();
                self.scratch.points.extend(self.tracks.iter().map(|tr| (tr.x, tr.y)));
                // The scalar and batched solves are bit-identical; the
                // directive chooses which datapath is modeled/executed.
                if directive.is_some_and(|d| d.scalar_klt) {
                    track_pyramidal_scalar_into(
                        prev_pyr,
                        &cur_pyr,
                        &self.scratch.points,
                        &cfg.klt,
                        &mut self.scratch.klt,
                        &mut self.scratch.tracked,
                    );
                } else {
                    track_pyramidal_into(
                        prev_pyr,
                        &cur_pyr,
                        &self.scratch.points,
                        &cfg.klt,
                        &mut self.scratch.klt,
                        &mut self.scratch.tracked,
                    );
                }
            }
        }
        timing.temporal = t.elapsed();
        span_close("track_pyramidal", s);

        // Associate: snap each tracked point to the nearest detection.
        let snap2 = cfg.tuning.snap_radius * cfg.tuning.snap_radius;
        self.scratch.claimed.clear();
        self.scratch.claimed.resize(self.scratch.feats_left.len(), None);
        self.scratch.new_tracks.clear();
        let mut observations: Vec<Observation> = Vec::new();
        for (ti, track) in self.tracks.iter().enumerate() {
            // `tracked` is empty (not length-matched) when temporal
            // matching did not run; every track then counts as lost,
            // matching the pre-scratch behavior.
            let Some((tx, ty)) = self.scratch.tracked.get(ti).and_then(|o| o.position()) else {
                stats.tracks_lost += 1;
                continue;
            };
            // Nearest unclaimed detection within the snap radius.
            let probe = KeyPoint::new(tx, ty, 0.0);
            let mut best: Option<(usize, f32)> = None;
            for (fi, f) in self.scratch.feats_left.iter().enumerate() {
                if self.scratch.claimed[fi].is_some() {
                    continue;
                }
                let d2 = f.keypoint.distance_squared(&probe);
                if d2 <= snap2 && best.is_none_or(|(_, bd)| d2 < bd) {
                    best = Some((fi, d2));
                }
            }
            match best {
                Some((fi, _)) => {
                    self.scratch.claimed[fi] = Some(track.id);
                    let f = &self.scratch.feats_left[fi];
                    observations.push(Observation {
                        track_id: track.id,
                        x: f.keypoint.x,
                        y: f.keypoint.y,
                        disparity: self.scratch.disparity_of[fi],
                        descriptor: f.descriptor,
                    });
                    self.scratch.new_tracks.push(Track {
                        id: track.id,
                        x: f.keypoint.x,
                        y: f.keypoint.y,
                    });
                    stats.tracks_continued += 1;
                }
                None => {
                    // No detection nearby (the detector's spatial
                    // bucketing is view-dependent); keep the track alive at
                    // the LK position, as production frontends do —
                    // detection only *replenishes* tracks, it does not
                    // gate them.
                    let kp = KeyPoint::new(tx, ty, 0.0);
                    match compute_orb(&self.scratch.left_blur, &kp, &cfg.orb) {
                        Some(descriptor) => {
                            observations.push(Observation {
                                track_id: track.id,
                                x: tx,
                                y: ty,
                                disparity: None,
                                descriptor,
                            });
                            self.scratch.new_tracks.push(Track {
                                id: track.id,
                                x: tx,
                                y: ty,
                            });
                            stats.tracks_continued += 1;
                        }
                        None => stats.tracks_lost += 1,
                    }
                }
            }
        }

        // Spawn tracks on unclaimed detections (strongest first — the
        // detection list is already response-ordered).
        for (fi, f) in self.scratch.feats_left.iter().enumerate() {
            if self.scratch.new_tracks.len() >= max_tracks {
                break;
            }
            if self.scratch.claimed[fi].is_some() {
                continue;
            }
            let id = self.next_id;
            self.next_id += 1;
            self.scratch.claimed[fi] = Some(id);
            observations.push(Observation {
                track_id: id,
                x: f.keypoint.x,
                y: f.keypoint.y,
                disparity: self.scratch.disparity_of[fi],
                descriptor: f.descriptor,
            });
            self.scratch.new_tracks.push(Track {
                id,
                x: f.keypoint.x,
                y: f.keypoint.y,
            });
            stats.tracks_spawned += 1;
        }

        std::mem::swap(&mut self.tracks, &mut self.scratch.new_tracks);
        // Rotate pyramid slots: the old template becomes next frame's
        // spare buffer, the current left pyramid becomes the template.
        self.scratch.spare_pyr = self.prev_pyr.take().unwrap_or_default();
        self.prev_pyr = Some(cur_pyr);

        FrontendFrame {
            observations,
            timing,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An image with a grid of distinct textured blobs, shifted by
    /// `(sx, sy)` — a miniature of what `eudoxus-sim` renders.
    fn blob_grid(sx: f32, sy: f32) -> GrayImage {
        let mut img = GrayImage::filled(160, 120, 110);
        for by in 0..3u64 {
            for bx in 0..4u64 {
                let cx = 24.0 + bx as f32 * 36.0 + sx;
                let cy = 20.0 + by as f32 * 36.0 + sy;
                let id = by * 4 + bx;
                for dy in -6i64..=6 {
                    for dx in -6i64..=6 {
                        let px = (cx + dx as f32).round() as i64;
                        let py = (cy + dy as f32).round() as i64;
                        if px < 0 || py < 0 || px >= 160 || py >= 120 {
                            continue;
                        }
                        if dx * dx + dy * dy > 36 {
                            continue;
                        }
                        let tex = eudoxus_sim::rng::hash_u8(id, dx as u64, dy as u64) as i64;
                        let v = (110 + (tex - 128)).clamp(0, 255) as u8;
                        img.put(px as u32, py as u32, v);
                    }
                }
            }
        }
        img
    }

    fn stereo_pair(shift: f32, disparity: f32) -> (GrayImage, GrayImage) {
        (blob_grid(shift, 0.0), blob_grid(shift - disparity, 0.0))
    }

    #[test]
    fn first_frame_spawns_tracks() {
        let mut fe = Frontend::new(FrontendConfig::default());
        let (l, r) = stereo_pair(0.0, 6.0);
        let out = fe.process(&l, &r);
        assert!(out.observations.len() >= 8, "only {} obs", out.observations.len());
        assert_eq!(out.stats.tracks_spawned, out.observations.len());
        assert_eq!(out.stats.tracks_continued, 0);
        // Most features should have stereo depth.
        let with_depth = out.observations.iter().filter(|o| o.disparity.is_some()).count();
        assert!(with_depth * 2 >= out.observations.len());
    }

    #[test]
    fn second_frame_continues_tracks() {
        let mut fe = Frontend::new(FrontendConfig::default());
        let (l0, r0) = stereo_pair(0.0, 6.0);
        let first = fe.process(&l0, &r0);
        let (l1, r1) = stereo_pair(2.0, 6.0);
        let second = fe.process(&l1, &r1);
        assert!(
            second.stats.tracks_continued >= first.observations.len() / 2,
            "continued {} of {}",
            second.stats.tracks_continued,
            first.observations.len()
        );
        // Continued observations keep their ids.
        let ids0: std::collections::HashSet<u64> =
            first.observations.iter().map(|o| o.track_id).collect();
        let kept = second
            .observations
            .iter()
            .filter(|o| ids0.contains(&o.track_id))
            .count();
        assert_eq!(kept, second.stats.tracks_continued);
    }

    #[test]
    fn stereo_disparity_is_recovered() {
        let mut fe = Frontend::new(FrontendConfig::default());
        let (l, r) = stereo_pair(0.0, 6.0);
        let out = fe.process(&l, &r);
        let disparities: Vec<f32> = out.observations.iter().filter_map(|o| o.disparity).collect();
        assert!(!disparities.is_empty());
        for d in disparities {
            assert!((d - 6.0).abs() < 1.0, "disparity {d}");
        }
    }

    #[test]
    fn reset_clears_tracks() {
        let mut fe = Frontend::new(FrontendConfig::default());
        let (l, r) = stereo_pair(0.0, 6.0);
        fe.process(&l, &r);
        assert!(fe.live_tracks() > 0);
        fe.reset();
        assert_eq!(fe.live_tracks(), 0);
        let out = fe.process(&l, &r);
        assert_eq!(out.stats.tracks_continued, 0);
    }

    #[test]
    fn timing_fields_are_populated() {
        let mut fe = Frontend::new(FrontendConfig::default());
        let (l, r) = stereo_pair(0.0, 6.0);
        let out = fe.process(&l, &r);
        assert!(out.timing.total() > Duration::ZERO);
        assert!(out.timing.feature_extraction() >= out.timing.detection);
    }

    #[test]
    fn directive_caps_the_feature_budget() {
        let mut fe = Frontend::new(FrontendConfig::default());
        fe.set_directive(Some(FrameDirective {
            max_keypoints: 6,
            max_tracks: 4,
            max_pyramid_levels: 1,
            scalar_klt: false,
        }));
        let (l, r) = stereo_pair(0.0, 6.0);
        let out = fe.process(&l, &r);
        assert!(out.stats.keypoints_left <= 6, "kp {}", out.stats.keypoints_left);
        assert!(out.observations.len() <= 4, "obs {}", out.observations.len());
        // Clearing the directive restores the configured budgets.
        fe.set_directive(None);
        let out = fe.process(&l, &r);
        assert!(out.stats.keypoints_left > 6);
    }

    #[test]
    fn scalar_klt_directive_is_bit_identical() {
        let mut batched = Frontend::new(FrontendConfig::default());
        let mut scalar = Frontend::new(FrontendConfig::default());
        scalar.set_directive(Some(FrameDirective {
            max_keypoints: usize::MAX,
            max_tracks: usize::MAX,
            max_pyramid_levels: usize::MAX,
            scalar_klt: true,
        }));
        for shift in [0.0f32, 2.0, 4.0] {
            let (l, r) = stereo_pair(shift, 6.0);
            let a = batched.process(&l, &r);
            let b = scalar.process(&l, &r);
            assert_eq!(a.observations.len(), b.observations.len());
            for (oa, ob) in a.observations.iter().zip(&b.observations) {
                assert_eq!(oa.track_id, ob.track_id);
                assert_eq!(oa.x.to_bits(), ob.x.to_bits());
                assert_eq!(oa.y.to_bits(), ob.y.to_bits());
            }
        }
    }

    #[test]
    fn telemetry_spans_cover_every_kernel_and_change_nothing() {
        use eudoxus_telemetry::TelemetryConfig;

        let mut plain = Frontend::new(FrontendConfig::default());
        let mut armed = Frontend::new(FrontendConfig::default());
        let hub = TelemetryHub::new(TelemetryConfig::deterministic(1_000));
        armed.set_telemetry(Some(hub.clone()));
        for (i, shift) in [0.0f32, 2.0, 4.0].into_iter().enumerate() {
            armed.set_telemetry_frame(i as u64);
            let (l, r) = stereo_pair(shift, 6.0);
            let a = plain.process(&l, &r);
            let b = armed.process(&l, &r);
            // Observation-only: arming never perturbs the outputs.
            assert_eq!(a.observations.len(), b.observations.len());
            for (oa, ob) in a.observations.iter().zip(&b.observations) {
                assert_eq!(oa.track_id, ob.track_id);
                assert_eq!(oa.x.to_bits(), ob.x.to_bits());
                assert_eq!(oa.y.to_bits(), ob.y.to_bits());
            }
        }
        let spans = hub.drain();
        // Six kernel spans per frame, stamped with the frame index.
        assert_eq!(spans.len(), 3 * 6);
        for kernel in [
            "gaussian_blur",
            "detect_fast",
            "compute_orb",
            "match_stereo",
            "pyramid_rebuild",
            "track_pyramidal",
        ] {
            assert_eq!(
                spans.iter().filter(|s| s.kernel == kernel).count(),
                3,
                "missing spans for {kernel}"
            );
        }
        assert!(spans.iter().all(|s| s.scope == SpanScope::Kernel));
        assert_eq!(spans.iter().filter(|s| s.frame_idx == 2).count(), 6);
    }

    #[test]
    fn track_cap_is_enforced() {
        let mut cfg = FrontendConfig::default();
        cfg.tuning.max_tracks = 5;
        let mut fe = Frontend::new(cfg);
        let (l, r) = stereo_pair(0.0, 6.0);
        let out = fe.process(&l, &r);
        assert!(out.observations.len() <= 5);
    }
}
