//! Stereo matching (the MO and DR tasks of paper Fig. 12).
//!
//! Two stages, exactly as the accelerator splits them:
//!
//! * **Matching optimization (MO)** — for every left feature, find the right
//!   feature with minimum Hamming distance inside the epipolar band and
//!   admissible disparity range.
//! * **Disparity refinement (DR)** — refine the matched disparity to
//!   sub-pixel precision by block matching: a SAD parabola fit around the
//!   integer disparity \[48\].

use crate::feature::Feature;
use eudoxus_image::GrayImage;

/// Stereo matcher parameters.
#[derive(Debug, Clone, Copy)]
pub struct StereoConfig {
    /// Maximum Hamming distance to accept a match.
    pub max_hamming: u32,
    /// Epipolar tolerance: maximum row difference (pixels).
    pub epipolar_tolerance: f32,
    /// Minimum admissible disparity (pixels).
    pub min_disparity: f32,
    /// Maximum admissible disparity (pixels).
    pub max_disparity: f32,
    /// Lowe-style ratio: best distance must be below `ratio × second best`.
    pub ratio: f32,
    /// Half-size of the SAD block used by refinement.
    pub block_radius: i64,
}

impl Default for StereoConfig {
    fn default() -> Self {
        StereoConfig {
            max_hamming: 60,
            epipolar_tolerance: 1.5,
            min_disparity: 0.3,
            max_disparity: 200.0,
            ratio: 0.9,
            block_radius: 4,
        }
    }
}

/// One spatial correspondence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StereoMatch {
    /// Index into the left feature list.
    pub left_index: usize,
    /// Index into the right feature list.
    pub right_index: usize,
    /// Refined sub-pixel disparity (pixels, positive).
    pub disparity: f32,
    /// Hamming distance of the accepted match.
    pub distance: u32,
}

/// Sum of absolute differences between blocks centered at `(lx, ly)` in the
/// left image and `(rx, ly)` in the right image.
fn block_sad(left: &GrayImage, right: &GrayImage, lx: f32, ly: f32, rx: f32, radius: i64) -> f32 {
    let mut sad = 0.0f32;
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let lv = left.sample_bilinear(lx + dx as f32, ly + dy as f32);
            let rv = right.sample_bilinear(rx + dx as f32, ly + dy as f32);
            sad += (lv - rv).abs();
        }
    }
    sad
}

/// Sub-pixel disparity refinement by SAD parabola fit at `d−1, d, d+1`.
fn refine_disparity(
    left: &GrayImage,
    right: &GrayImage,
    lx: f32,
    ly: f32,
    d0: f32,
    cfg: &StereoConfig,
) -> f32 {
    let r = cfg.block_radius;
    let s_m = block_sad(left, right, lx, ly, lx - d0 + 1.0, r);
    let s_0 = block_sad(left, right, lx, ly, lx - d0, r);
    let s_p = block_sad(left, right, lx, ly, lx - d0 - 1.0, r);
    // Parabola vertex of the three SAD samples; offset bounded to ±0.5.
    let denom = s_m - 2.0 * s_0 + s_p;
    if denom.abs() < 1e-6 {
        return d0;
    }
    let offset = 0.5 * (s_p - s_m) / denom;
    // Note the sign convention: larger disparity = right patch farther left.
    (d0 - offset.clamp(-0.5, 0.5)).max(cfg.min_disparity)
}

/// Matches left features against right features (MO), then refines the
/// accepted disparities (DR). Returns matches sorted by left index; each
/// right feature is used at most once (greedy best-distance assignment).
pub fn match_stereo(
    left_features: &[Feature],
    right_features: &[Feature],
    left_img: &GrayImage,
    right_img: &GrayImage,
    cfg: &StereoConfig,
) -> Vec<StereoMatch> {
    // Sort right features by row for banded lookup.
    let mut right_order: Vec<usize> = (0..right_features.len()).collect();
    right_order.sort_by(|&a, &b| right_features[a].keypoint.y.total_cmp(&right_features[b].keypoint.y));
    let rows: Vec<f32> = right_order
        .iter()
        .map(|&i| right_features[i].keypoint.y)
        .collect();

    let mut proposals: Vec<StereoMatch> = Vec::new();
    for (li, lf) in left_features.iter().enumerate() {
        let y = lf.keypoint.y;
        let lo = rows.partition_point(|&r| r < y - cfg.epipolar_tolerance);
        let hi = rows.partition_point(|&r| r <= y + cfg.epipolar_tolerance);
        let mut best: Option<(usize, u32)> = None;
        let mut second = u32::MAX;
        for &ri in &right_order[lo..hi] {
            let rf = &right_features[ri];
            let disparity = lf.keypoint.x - rf.keypoint.x;
            if disparity < cfg.min_disparity || disparity > cfg.max_disparity {
                continue;
            }
            let d = lf.descriptor.hamming(&rf.descriptor);
            match best {
                None => best = Some((ri, d)),
                Some((_, bd)) if d < bd => {
                    second = bd;
                    best = Some((ri, d));
                }
                Some(_) => second = second.min(d),
            }
        }
        if let Some((ri, d)) = best {
            let pass_ratio = second == u32::MAX || (d as f32) < cfg.ratio * second as f32;
            if d <= cfg.max_hamming && pass_ratio {
                let d0 = lf.keypoint.x - right_features[ri].keypoint.x;
                let refined = refine_disparity(left_img, right_img, lf.keypoint.x, lf.keypoint.y, d0, cfg);
                proposals.push(StereoMatch {
                    left_index: li,
                    right_index: ri,
                    disparity: refined,
                    distance: d,
                });
            }
        }
    }

    // Enforce one-to-one on right features: keep the smallest distance.
    proposals.sort_by_key(|m| m.distance);
    let mut right_used = vec![false; right_features.len()];
    let mut accepted: Vec<StereoMatch> = Vec::new();
    for m in proposals {
        if !right_used[m.right_index] {
            right_used[m.right_index] = true;
            accepted.push(m);
        }
    }
    accepted.sort_by_key(|m| m.left_index);
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{KeyPoint, OrbDescriptor};

    fn desc_with_bits(bits: &[usize]) -> OrbDescriptor {
        let mut d = OrbDescriptor::zero();
        for &b in bits {
            d.set_bit(b);
        }
        d
    }

    fn feat(x: f32, y: f32, bits: &[usize]) -> Feature {
        Feature {
            keypoint: KeyPoint::new(x, y, 1.0),
            descriptor: desc_with_bits(bits),
        }
    }

    fn flat() -> GrayImage {
        GrayImage::filled(64, 64, 100)
    }

    #[test]
    fn matches_identical_descriptors_on_epipolar_line() {
        let left = vec![feat(40.0, 20.0, &[1, 2, 3])];
        let right = vec![feat(30.0, 20.0, &[1, 2, 3])];
        let m = match_stereo(&left, &right, &flat(), &flat(), &StereoConfig::default());
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].left_index, 0);
        assert_eq!(m[0].right_index, 0);
        assert!((m[0].disparity - 10.0).abs() <= 0.5);
        assert_eq!(m[0].distance, 0);
    }

    #[test]
    fn rejects_row_violation() {
        let left = vec![feat(40.0, 20.0, &[1])];
        let right = vec![feat(30.0, 26.0, &[1])];
        assert!(match_stereo(&left, &right, &flat(), &flat(), &StereoConfig::default()).is_empty());
    }

    #[test]
    fn rejects_negative_disparity() {
        // Right feature to the right of the left feature — impossible for a
        // physical point.
        let left = vec![feat(30.0, 20.0, &[1])];
        let right = vec![feat(40.0, 20.0, &[1])];
        assert!(match_stereo(&left, &right, &flat(), &flat(), &StereoConfig::default()).is_empty());
    }

    #[test]
    fn rejects_large_hamming() {
        let left = vec![feat(40.0, 20.0, &(0..100).collect::<Vec<_>>())];
        let right = vec![feat(30.0, 20.0, &(100..200).collect::<Vec<_>>())];
        assert!(match_stereo(&left, &right, &flat(), &flat(), &StereoConfig::default()).is_empty());
    }

    #[test]
    fn one_to_one_assignment_keeps_best() {
        // Two left features compete for one right feature; the closer
        // descriptor (exact match) must win.
        let left = vec![
            feat(40.0, 20.0, &[1, 2, 3]),
            feat(42.0, 20.0, &[1, 2, 3, 4, 5, 6, 7, 8]),
        ];
        let right = vec![feat(30.0, 20.0, &[1, 2, 3])];
        let cfg = StereoConfig {
            ratio: 1.0,
            ..StereoConfig::default()
        };
        let m = match_stereo(&left, &right, &flat(), &flat(), &cfg);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].left_index, 0);
    }

    #[test]
    fn subpixel_refinement_on_rendered_edge() {
        // Left image: step edge at x = 32.3; right image: same edge shifted
        // by disparity 4.6 (at x = 27.7).
        let edge = |x0: f32| {
            GrayImage::from_fn(64, 64, |x, _| {
                let v = 60.0 + 140.0 / (1.0 + (-(x as f32 - x0) * 2.0).exp());
                v as u8
            })
        };
        let left_img = edge(32.3);
        let right_img = edge(27.7);
        let left = vec![feat(32.0, 32.0, &[1])];
        let right = vec![feat(27.0, 32.0, &[1])];
        let m = match_stereo(&left, &right, &left_img, &right_img, &StereoConfig::default());
        assert_eq!(m.len(), 1);
        assert!(
            (m[0].disparity - 4.6).abs() < 0.35,
            "refined disparity {}",
            m[0].disparity
        );
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(match_stereo(&[], &[], &flat(), &flat(), &StereoConfig::default()).is_empty());
    }
}
