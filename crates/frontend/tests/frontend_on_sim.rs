//! End-to-end frontend validation on simulator-rendered stereo frames:
//! the rendered landmark stamps must be detected, stereo-matched with
//! metrically correct depth, and tracked across frames.

use eudoxus_frontend::{Frontend, FrontendConfig};
use eudoxus_sim::{ScenarioBuilder, ScenarioKind};

#[test]
fn frontend_recovers_depth_and_tracks_on_synthetic_frames() {
    let data = ScenarioBuilder::new(ScenarioKind::IndoorUnknown)
        .frames(5)
        .fps(10.0)
        .seed(42)
        .build();
    let mut fe = Frontend::new(FrontendConfig::default());

    let mut continued_total = 0usize;
    for (i, frame) in data.frames.iter().enumerate() {
        let out = fe.process(&frame.left, &frame.right);
        assert!(
            out.observations.len() >= 25,
            "frame {i}: only {} observations",
            out.observations.len()
        );
        let with_disp = out
            .observations
            .iter()
            .filter(|o| o.disparity.is_some())
            .count();
        assert!(
            with_disp * 3 >= out.observations.len(),
            "frame {i}: only {with_disp}/{} stereo matches",
            out.observations.len()
        );
        if i > 0 {
            continued_total += out.stats.tracks_continued;
        }

        // Depth sanity: indoor room depths are bounded by room size. A
        // small fraction of wrong stereo matches is expected (the backends
        // gate them), so require a large majority to be plausible.
        let depths: Vec<f64> = out
            .observations
            .iter()
            .filter_map(|o| o.disparity)
            .map(|d| data.rig.depth_from_disparity(d as f64).unwrap())
            .collect();
        let plausible = depths.iter().filter(|d| (0.2..20.0).contains(*d)).count();
        assert!(
            plausible * 10 >= depths.len() * 9,
            "frame {i}: only {plausible}/{} plausible depths",
            depths.len()
        );
    }
    assert!(
        continued_total >= 4 * 15,
        "too few continued tracks overall: {continued_total}"
    );
}

#[test]
fn stereo_depth_matches_geometry_on_outdoor_frames() {
    let data = ScenarioBuilder::new(ScenarioKind::OutdoorUnknown)
        .frames(2)
        .seed(11)
        .build();
    let mut fe = Frontend::new(FrontendConfig::default());
    let out = fe.process(&data.frames[0].left, &data.frames[0].right);

    // For each stereo observation, the implied depth must be within the
    // street scene's depth band — allowing a small mismatch tail that the
    // backends gate out.
    let depths: Vec<f64> = out
        .observations
        .iter()
        .filter_map(|o| o.disparity)
        .map(|d| data.rig.depth_from_disparity(d as f64).unwrap())
        .collect();
    let plausible = depths.iter().filter(|d| (0.5..120.0).contains(*d)).count();
    assert!(depths.len() >= 20, "only {} stereo observations", depths.len());
    assert!(
        plausible * 10 >= depths.len() * 9,
        "only {plausible}/{} plausible street depths",
        depths.len()
    );
}

#[test]
fn frontend_is_deterministic_across_runs() {
    let data = ScenarioBuilder::new(ScenarioKind::IndoorUnknown)
        .frames(2)
        .seed(3)
        .build();
    let run = || {
        let mut fe = Frontend::new(FrontendConfig::default());
        let mut ids = Vec::new();
        for frame in &data.frames {
            let out = fe.process(&frame.left, &frame.right);
            ids.push(
                out.observations
                    .iter()
                    .map(|o| (o.track_id, o.x.to_bits(), o.y.to_bits()))
                    .collect::<Vec<_>>(),
            );
        }
        ids
    };
    assert_eq!(run(), run());
}
