//! Pin-hole and stereo camera models.
//!
//! Conventions: the camera frame has `+z` forward (optical axis), `+x`
//! right, `+y` down; pixels are `u = fx·x/z + cx`, `v = fy·y/z + cy`. The
//! stereo rig places the right camera at `+baseline` along the left camera's
//! x-axis, so disparity `d = u_left − u_right = fx·baseline / depth`.

use crate::pose::Pose;
use crate::vec::{Vec2, Vec3};

/// Intrinsic pin-hole camera model.
///
/// # Example
///
/// ```
/// use eudoxus_geometry::{PinholeCamera, Vec3};
///
/// let cam = PinholeCamera::new(500.0, 500.0, 320.0, 240.0, 640, 480);
/// let px = cam.project(Vec3::new(0.0, 0.0, 2.0)).unwrap();
/// assert_eq!((px.x, px.y), (320.0, 240.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinholeCamera {
    /// Focal length in pixels, horizontal.
    pub fx: f64,
    /// Focal length in pixels, vertical.
    pub fy: f64,
    /// Principal point, horizontal.
    pub cx: f64,
    /// Principal point, vertical.
    pub cy: f64,
    /// Sensor width in pixels.
    pub width: u32,
    /// Sensor height in pixels.
    pub height: u32,
}

impl PinholeCamera {
    /// Builds an intrinsic model.
    pub const fn new(fx: f64, fy: f64, cx: f64, cy: f64, width: u32, height: u32) -> Self {
        PinholeCamera {
            fx,
            fy,
            cx,
            cy,
            width,
            height,
        }
    }

    /// A model with the principal point at the image center and a field of
    /// view determined by `focal_px`. Matches the synthetic rigs used in
    /// the EDX-CAR (1280×720) and EDX-DRONE (640×480) configurations.
    pub fn centered(focal_px: f64, width: u32, height: u32) -> Self {
        PinholeCamera::new(
            focal_px,
            focal_px,
            width as f64 * 0.5,
            height as f64 * 0.5,
            width,
            height,
        )
    }

    /// Projects a camera-frame point to pixel coordinates. Returns `None`
    /// when the point is behind the camera (`z <= min_depth`).
    pub fn project(&self, p_cam: Vec3) -> Option<Vec2> {
        const MIN_DEPTH: f64 = 1e-3;
        if p_cam.z <= MIN_DEPTH {
            return None;
        }
        Some(Vec2::new(
            self.fx * p_cam.x / p_cam.z + self.cx,
            self.fy * p_cam.y / p_cam.z + self.cy,
        ))
    }

    /// Projects and additionally requires the pixel to land on the sensor.
    pub fn project_in_bounds(&self, p_cam: Vec3) -> Option<Vec2> {
        self.project(p_cam).filter(|px| self.contains(*px))
    }

    /// True when the pixel lies on the sensor.
    pub fn contains(&self, px: Vec2) -> bool {
        px.x >= 0.0 && px.y >= 0.0 && px.x < self.width as f64 && px.y < self.height as f64
    }

    /// Back-projects a pixel to the unit-depth ray direction in the camera
    /// frame (z = 1).
    pub fn unproject(&self, px: Vec2) -> Vec3 {
        Vec3::new((px.x - self.cx) / self.fx, (px.y - self.cy) / self.fy, 1.0)
    }

    /// Back-projects a pixel at a known depth.
    pub fn unproject_depth(&self, px: Vec2, depth: f64) -> Vec3 {
        self.unproject(px) * depth
    }

    /// Jacobian of the projection with respect to the camera-frame point:
    /// a 2×3 matrix in row-major order
    /// `[fx/z, 0, −fx·x/z²; 0, fy/z, −fy·y/z²]`.
    ///
    /// # Panics
    ///
    /// Panics if `p_cam.z <= 0` (callers must cull behind-camera points
    /// before linearizing).
    pub fn projection_jacobian(&self, p_cam: Vec3) -> [[f64; 3]; 2] {
        assert!(p_cam.z > 0.0, "cannot linearize behind the camera");
        let iz = 1.0 / p_cam.z;
        let iz2 = iz * iz;
        [
            [self.fx * iz, 0.0, -self.fx * p_cam.x * iz2],
            [0.0, self.fy * iz, -self.fy * p_cam.y * iz2],
        ]
    }
}

/// A calibrated stereo camera pair.
///
/// # Example
///
/// ```
/// use eudoxus_geometry::{PinholeCamera, StereoRig, Vec3};
///
/// let rig = StereoRig::new(PinholeCamera::centered(500.0, 640, 480), 0.12);
/// let (l, r) = rig.project(Vec3::new(0.0, 0.0, 3.0)).unwrap();
/// let disparity = l.x - r.x;
/// assert!((rig.depth_from_disparity(disparity).unwrap() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StereoRig {
    /// Shared intrinsics of both cameras (rectified pair).
    pub camera: PinholeCamera,
    /// Baseline in meters (right camera at `+x` of the left).
    pub baseline: f64,
}

impl StereoRig {
    /// Builds a rig from intrinsics and baseline.
    pub const fn new(camera: PinholeCamera, baseline: f64) -> Self {
        StereoRig { camera, baseline }
    }

    /// Projects a *left-camera-frame* point into both cameras. `None` if
    /// either projection fails.
    pub fn project(&self, p_left: Vec3) -> Option<(Vec2, Vec2)> {
        let l = self.camera.project(p_left)?;
        let r = self
            .camera
            .project(p_left - Vec3::new(self.baseline, 0.0, 0.0))?;
        Some((l, r))
    }

    /// Projects requiring both pixels on-sensor.
    pub fn project_in_bounds(&self, p_left: Vec3) -> Option<(Vec2, Vec2)> {
        let (l, r) = self.project(p_left)?;
        (self.camera.contains(l) && self.camera.contains(r)).then_some((l, r))
    }

    /// Depth from a (positive) disparity; `None` for non-positive input.
    pub fn depth_from_disparity(&self, disparity: f64) -> Option<f64> {
        (disparity > 1e-9).then(|| self.camera.fx * self.baseline / disparity)
    }

    /// Disparity a point at `depth` produces.
    pub fn disparity_from_depth(&self, depth: f64) -> f64 {
        self.camera.fx * self.baseline / depth
    }

    /// Reconstructs the left-camera-frame point from a matched pixel pair.
    /// `None` when disparity is non-positive.
    pub fn reconstruct(&self, left_px: Vec2, right_px: Vec2) -> Option<Vec3> {
        let depth = self.depth_from_disparity(left_px.x - right_px.x)?;
        Some(self.camera.unproject_depth(left_px, depth))
    }

    /// The pose of the right camera in the left camera's frame.
    pub fn right_in_left(&self) -> Pose {
        Pose::new(
            crate::quaternion::Quaternion::identity(),
            Vec3::new(self.baseline, 0.0, 0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> PinholeCamera {
        PinholeCamera::centered(450.0, 640, 480)
    }

    #[test]
    fn project_unproject_roundtrip() {
        let c = cam();
        let p = Vec3::new(0.5, -0.3, 4.0);
        let px = c.project(p).unwrap();
        let back = c.unproject_depth(px, 4.0);
        assert!((back - p).norm() < 1e-12);
    }

    #[test]
    fn behind_camera_rejected() {
        assert!(cam().project(Vec3::new(0.0, 0.0, -1.0)).is_none());
        assert!(cam().project(Vec3::new(0.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn bounds_check() {
        let c = cam();
        // Far off-axis point projects off-sensor.
        assert!(c.project_in_bounds(Vec3::new(100.0, 0.0, 1.0)).is_none());
        assert!(c.project_in_bounds(Vec3::new(0.0, 0.0, 1.0)).is_some());
    }

    #[test]
    fn jacobian_matches_finite_difference() {
        let c = cam();
        let p = Vec3::new(0.4, 0.2, 3.0);
        let j = c.projection_jacobian(p);
        let eps = 1e-7;
        for axis in 0..3 {
            let dp = match axis {
                0 => Vec3::new(eps, 0.0, 0.0),
                1 => Vec3::new(0.0, eps, 0.0),
                _ => Vec3::new(0.0, 0.0, eps),
            };
            let f0 = c.project(p).unwrap();
            let f1 = c.project(p + dp).unwrap();
            let du = (f1.x - f0.x) / eps;
            let dv = (f1.y - f0.y) / eps;
            assert!((du - j[0][axis]).abs() < 1e-4, "axis {axis}");
            assert!((dv - j[1][axis]).abs() < 1e-4, "axis {axis}");
        }
    }

    #[test]
    fn stereo_depth_disparity_roundtrip() {
        let rig = StereoRig::new(cam(), 0.2);
        for depth in [0.5, 2.0, 10.0, 50.0] {
            let d = rig.disparity_from_depth(depth);
            assert!((rig.depth_from_disparity(d).unwrap() - depth).abs() < 1e-9);
        }
        assert!(rig.depth_from_disparity(0.0).is_none());
        assert!(rig.depth_from_disparity(-1.0).is_none());
    }

    #[test]
    fn stereo_reconstruct_roundtrip() {
        let rig = StereoRig::new(cam(), 0.12);
        let p = Vec3::new(0.7, -0.4, 5.0);
        let (l, r) = rig.project(p).unwrap();
        let rec = rig.reconstruct(l, r).unwrap();
        assert!((rec - p).norm() < 1e-9);
    }

    #[test]
    fn epipolar_rows_match() {
        // Rectified pair: matched points share the same row.
        let rig = StereoRig::new(cam(), 0.12);
        let (l, r) = rig.project(Vec3::new(0.3, 0.25, 2.0)).unwrap();
        assert!((l.y - r.y).abs() < 1e-12);
        assert!(l.x > r.x, "disparity must be positive");
    }
}
