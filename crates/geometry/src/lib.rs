//! Rigid-body geometry for the Eudoxus localization stack.
//!
//! Localization estimates the 6-DoF pose of the machine — three translational
//! and three rotational degrees of freedom (paper Fig. 1). This crate
//! provides the geometric vocabulary every other crate builds on: fixed-size
//! vectors and 3×3 matrices, unit quaternions, the SO(3)/SE(3) exponential
//! and logarithm maps, pin-hole and stereo camera models, multi-view
//! triangulation, and the projection Jacobians the optimization backends
//! linearize against.
//!
//! # Example
//!
//! ```
//! use eudoxus_geometry::{Pose, Vec3};
//!
//! let pose = Pose::from_rotation_vector(Vec3::new(0.0, 0.0, 0.1), Vec3::new(1.0, 0.0, 0.0));
//! let p_world = pose.transform(Vec3::new(1.0, 0.0, 0.0));
//! assert!((p_world.y - 0.1f64.sin() - 0.0).abs() < 1e-9);
//! ```

pub mod camera;
pub mod mat3;
pub mod pose;
pub mod quaternion;
pub mod so3;
pub mod triangulate;
pub mod vec;

pub use camera::{PinholeCamera, StereoRig};
pub use mat3::Mat3;
pub use pose::{Pose, PoseAnchor};
pub use quaternion::Quaternion;
pub use so3::{exp_so3, log_so3};
pub use triangulate::{triangulate_multi_view, triangulate_stereo, TriangulationError};
pub use vec::{Vec2, Vec3};
