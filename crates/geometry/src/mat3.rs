//! Fixed 3×3 matrices (rotation matrices, small Jacobian blocks).

use crate::vec::Vec3;
use eudoxus_math::Matrix;
use std::ops::{Add, Mul, Sub};

/// A copyable 3×3 matrix in row-major order.
///
/// # Example
///
/// ```
/// use eudoxus_geometry::{Mat3, Vec3};
/// let r = Mat3::identity();
/// assert_eq!(r * Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Row-major entries.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// Identity matrix.
    pub const fn identity() -> Self {
        Mat3 {
            m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Zero matrix.
    pub const fn zero() -> Self {
        Mat3 { m: [[0.0; 3]; 3] }
    }

    /// Builds from rows.
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { m: [r0, r1, r2] }
    }

    /// Diagonal matrix.
    pub const fn from_diag(d: [f64; 3]) -> Self {
        Mat3 {
            m: [[d[0], 0.0, 0.0], [0.0, d[1], 0.0], [0.0, 0.0, d[2]]],
        }
    }

    /// Skew-symmetric (hat) matrix of `v`, so that `hat(v)·w = v × w`.
    pub fn hat(v: Vec3) -> Self {
        Mat3::from_rows(
            [0.0, -v.z, v.y],
            [v.z, 0.0, -v.x],
            [-v.y, v.x, 0.0],
        )
    }

    /// Outer product `a·bᵀ`.
    pub fn outer(a: Vec3, b: Vec3) -> Self {
        Mat3::from_rows(
            [a.x * b.x, a.x * b.y, a.x * b.z],
            [a.y * b.x, a.y * b.y, a.y * b.z],
            [a.z * b.x, a.z * b.y, a.z * b.z],
        )
    }

    /// Transpose.
    pub fn transpose(self) -> Mat3 {
        let m = self.m;
        Mat3::from_rows(
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        )
    }

    /// Determinant.
    pub fn det(self) -> f64 {
        let m = self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse via the adjugate; `None` when (numerically) singular.
    pub fn inverse(self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() < 1e-15 {
            return None;
        }
        let m = self.m;
        let inv_det = 1.0 / d;
        Some(Mat3::from_rows(
            [
                (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det,
                (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det,
                (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det,
            ],
            [
                (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det,
                (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det,
                (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det,
            ],
            [
                (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det,
                (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det,
                (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det,
            ],
        ))
    }

    /// Row `i` as a [`Vec3`].
    ///
    /// # Panics
    ///
    /// Panics for `i > 2`.
    pub fn row(self, i: usize) -> Vec3 {
        Vec3::new(self.m[i][0], self.m[i][1], self.m[i][2])
    }

    /// Column `j` as a [`Vec3`].
    ///
    /// # Panics
    ///
    /// Panics for `j > 2`.
    pub fn col(self, j: usize) -> Vec3 {
        Vec3::new(self.m[0][j], self.m[1][j], self.m[2][j])
    }

    /// Scales every entry.
    pub fn scale(self, s: f64) -> Mat3 {
        let mut out = self;
        for row in &mut out.m {
            for v in row {
                *v *= s;
            }
        }
        out
    }

    /// Max-absolute-entry norm.
    pub fn norm_max(self) -> f64 {
        self.m
            .iter()
            .flatten()
            .fold(0.0f64, |acc, &v| acc.max(v.abs()))
    }

    /// Converts to a dense [`Matrix`] for interop with `eudoxus-math`.
    pub fn to_matrix(self) -> Matrix {
        Matrix::from_fn(3, 3, |i, j| self.m[i][j])
    }

    /// Builds from the top-left 3×3 of a dense [`Matrix`].
    ///
    /// # Panics
    ///
    /// Panics if `m` is smaller than 3×3.
    pub fn from_matrix(m: &Matrix) -> Self {
        assert!(m.rows() >= 3 && m.cols() >= 3, "matrix too small for Mat3");
        Mat3 {
            m: [
                [m[(0, 0)], m[(0, 1)], m[(0, 2)]],
                [m[(1, 0)], m[(1, 1)], m[(1, 2)]],
                [m[(2, 0)], m[(2, 1)], m[(2, 2)]],
            ],
        }
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::identity()
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = (0..3).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] + rhs.m[i][j];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] - rhs.m[i][j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hat_encodes_cross_product() {
        let v = Vec3::new(0.3, -1.2, 2.0);
        let w = Vec3::new(1.0, 0.5, -0.7);
        let lhs = Mat3::hat(v) * w;
        let rhs = v.cross(w);
        assert!((lhs - rhs).norm() < 1e-14);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Mat3::from_rows([2.0, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 1.5]);
        let inv = a.inverse().unwrap();
        let eye = a * inv;
        assert!((eye - Mat3::identity()).norm_max() < 1e-12);
    }

    #[test]
    fn singular_has_no_inverse() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn det_of_diag() {
        assert_eq!(Mat3::from_diag([2.0, 3.0, 4.0]).det(), 24.0);
    }

    #[test]
    fn transpose_and_outer() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        let o = Mat3::outer(a, b);
        assert_eq!(o.m[1][2], 12.0);
        assert_eq!(o.transpose().m[2][1], 12.0);
    }

    #[test]
    fn matrix_interop() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]);
        let dense = a.to_matrix();
        assert_eq!(Mat3::from_matrix(&dense), a);
    }
}
