//! SE(3) rigid-body poses.

use crate::mat3::Mat3;
use crate::quaternion::Quaternion;
use crate::so3::{exp_so3, log_so3};
use crate::vec::Vec3;
use std::ops::Mul;

/// A 6-DoF rigid-body pose: rotation plus translation (paper Fig. 1).
///
/// Convention: `pose.transform(p)` maps a point from the *body/camera* frame
/// to the *world* frame, i.e. the pose stores the body-to-world transform
/// `p_w = R·p_b + t` and `t` is the body origin expressed in world
/// coordinates.
///
/// # Example
///
/// ```
/// use eudoxus_geometry::{Pose, Quaternion, Vec3};
///
/// let pose = Pose::new(Quaternion::identity(), Vec3::new(1.0, 2.0, 3.0));
/// assert_eq!(pose.transform(Vec3::zero()), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose {
    /// Body-to-world rotation.
    pub rotation: Quaternion,
    /// Body origin in world coordinates.
    pub translation: Vec3,
}

impl Pose {
    /// Builds a pose from rotation and translation.
    pub fn new(rotation: Quaternion, translation: Vec3) -> Self {
        Pose {
            rotation,
            translation,
        }
    }

    /// The identity pose.
    pub fn identity() -> Self {
        Pose::default()
    }

    /// Builds from a rotation vector (axis–angle) and translation.
    pub fn from_rotation_vector(rv: Vec3, translation: Vec3) -> Self {
        Pose::new(Quaternion::from_rotation_vector(rv), translation)
    }

    /// Maps a body-frame point into the world frame.
    pub fn transform(self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p) + self.translation
    }

    /// Maps a world-frame point into the body frame.
    pub fn inverse_transform(self, p: Vec3) -> Vec3 {
        self.rotation.conjugate().rotate(p - self.translation)
    }

    /// The inverse pose.
    pub fn inverse(self) -> Pose {
        let rinv = self.rotation.conjugate();
        Pose::new(rinv, -rinv.rotate(self.translation))
    }

    /// Rotation as a matrix.
    pub fn rotation_matrix(self) -> Mat3 {
        self.rotation.to_matrix()
    }

    /// SE(3)-style logarithm split into `(rotation_vector, translation)`.
    ///
    /// Note: the translation component is the raw translation difference
    /// (the "pseudo-log" used by trajectory-error metrics), not the full
    /// SE(3) log's `V⁻¹·t`.
    pub fn to_vector(self) -> [f64; 6] {
        let rv = self.rotation.to_rotation_vector();
        [
            rv.x,
            rv.y,
            rv.z,
            self.translation.x,
            self.translation.y,
            self.translation.z,
        ]
    }

    /// Inverse of [`Pose::to_vector`].
    pub fn from_vector(v: [f64; 6]) -> Self {
        Pose::from_rotation_vector(Vec3::new(v[0], v[1], v[2]), Vec3::new(v[3], v[4], v[5]))
    }

    /// Right-multiplies by a small SE(3) perturbation given as
    /// `(δφ, δt)` in the *body* frame: `T ← T · exp(δ)`.
    pub fn perturb_local(self, dphi: Vec3, dt: Vec3) -> Pose {
        let dq = Quaternion::from_rotation_vector(dphi);
        Pose::new(self.rotation * dq, self.translation + self.rotation.rotate(dt))
    }

    /// Left-multiplies by a small world-frame perturbation:
    /// `T ← exp(δ) · T`.
    pub fn perturb_global(self, dphi: Vec3, dt: Vec3) -> Pose {
        let dr = exp_so3(dphi);
        Pose::new(
            Quaternion::from_matrix(dr) * self.rotation,
            dr * self.translation + dt,
        )
    }

    /// Relative pose `self⁻¹ · other` (expresses `other` in `self`'s frame).
    pub fn between(self, other: Pose) -> Pose {
        self.inverse() * other
    }

    /// Translational distance to another pose.
    pub fn translation_distance(self, other: Pose) -> f64 {
        (self.translation - other.translation).norm()
    }

    /// Rotational distance (radians) to another pose.
    pub fn rotation_distance(self, other: Pose) -> f64 {
        self.rotation.angle_to(other.rotation)
    }

    /// Minimal 6-vector of the relative pose to `other`, useful as an error
    /// term: `[log(R_selfᵀ R_other), t_other − t_self]`.
    pub fn error_to(self, other: Pose) -> [f64; 6] {
        let dr = log_so3((self.rotation.conjugate() * other.rotation).to_matrix());
        let dt = other.translation - self.translation;
        [dr.x, dr.y, dr.z, dt.x, dt.y, dt.z]
    }
}

impl Mul for Pose {
    type Output = Pose;
    /// Pose composition: `(a * b).transform(p) == a.transform(b.transform(p))`.
    fn mul(self, rhs: Pose) -> Pose {
        Pose::new(
            self.rotation * rhs.rotation,
            self.rotation.rotate(rhs.translation) + self.translation,
        )
    }
}

/// A known kinematic state — pose plus linear velocity — used to anchor an
/// estimator at the start of a trajectory segment (e.g. the surveyed start
/// of an evaluation run, or a hand-off point between estimators).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseAnchor {
    /// Body pose at the anchor instant.
    pub pose: Pose,
    /// World-frame linear velocity at the anchor instant (m/s).
    pub velocity: Vec3,
}

impl PoseAnchor {
    /// Anchor with a known velocity.
    pub fn new(pose: Pose, velocity: Vec3) -> Self {
        PoseAnchor { pose, velocity }
    }

    /// Anchor at rest.
    pub fn stationary(pose: Pose) -> Self {
        PoseAnchor {
            pose,
            velocity: Vec3::zero(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn sample_pose() -> Pose {
        Pose::from_rotation_vector(Vec3::new(0.2, -0.5, 0.8), Vec3::new(1.0, -2.0, 0.5))
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = sample_pose();
        let e = p * p.inverse();
        assert!(e.translation.norm() < 1e-12);
        assert!(e.rotation.angle_to(Quaternion::identity()) < 1e-12);
    }

    #[test]
    fn composition_matches_sequential_transform() {
        let a = sample_pose();
        let b = Pose::from_rotation_vector(Vec3::new(-0.1, 0.3, 0.0), Vec3::new(0.0, 1.0, 1.0));
        let p = Vec3::new(0.3, 0.7, -1.2);
        let seq = a.transform(b.transform(p));
        let comp = (a * b).transform(p);
        assert!((seq - comp).norm() < 1e-12);
    }

    #[test]
    fn transform_inverse_roundtrip() {
        let p = sample_pose();
        let x = Vec3::new(4.0, 5.0, 6.0);
        assert!((p.inverse_transform(p.transform(x)) - x).norm() < 1e-12);
    }

    #[test]
    fn vector_roundtrip() {
        let p = sample_pose();
        let q = Pose::from_vector(p.to_vector());
        assert!(p.translation_distance(q) < 1e-12);
        assert!(p.rotation_distance(q) < 1e-9);
    }

    #[test]
    fn between_recovers_relative() {
        let a = sample_pose();
        let b = Pose::from_rotation_vector(Vec3::new(0.0, 0.0, FRAC_PI_2), Vec3::new(2.0, 0.0, 0.0));
        let rel = a.between(b);
        let b2 = a * rel;
        assert!(b2.translation_distance(b) < 1e-12);
        assert!(b2.rotation_distance(b) < 1e-12);
    }

    #[test]
    fn local_perturbation_is_first_order_additive() {
        let p = sample_pose();
        let d = 1e-6;
        let perturbed = p.perturb_local(Vec3::new(d, 0.0, 0.0), Vec3::zero());
        assert!((p.rotation_distance(perturbed) - d).abs() < 1e-9);
    }

    #[test]
    fn error_to_self_is_zero() {
        let p = sample_pose();
        let e = p.error_to(p);
        assert!(e.iter().all(|v| v.abs() < 1e-12));
    }
}
