//! Unit quaternions for attitude representation.
//!
//! The MSCKF state vector stores attitude as a unit quaternion while the
//! error state uses a minimal 3-parameter rotation vector (paper's filtering
//! block follows \[64\]); this module provides both views plus conversions to
//! rotation matrices and Euler angles (yaw/pitch/roll of paper Fig. 1).

use crate::mat3::Mat3;
use crate::vec::Vec3;
use std::ops::Mul;

/// A unit quaternion `w + xi + yj + zk` representing a 3-D rotation.
///
/// Constructors normalize, so values of this type are always unit length.
///
/// # Example
///
/// ```
/// use eudoxus_geometry::{Quaternion, Vec3};
///
/// let q = Quaternion::from_axis_angle(Vec3::unit_z(), std::f64::consts::FRAC_PI_2);
/// let v = q.rotate(Vec3::unit_x());
/// assert!((v - Vec3::unit_y()).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quaternion {
    /// Scalar part.
    pub w: f64,
    /// Vector part, i component.
    pub x: f64,
    /// Vector part, j component.
    pub y: f64,
    /// Vector part, k component.
    pub z: f64,
}

impl Quaternion {
    /// The identity rotation.
    pub const fn identity() -> Self {
        Quaternion {
            w: 1.0,
            x: 0.0,
            y: 0.0,
            z: 0.0,
        }
    }

    /// Builds from components, normalizing to unit length.
    ///
    /// # Panics
    ///
    /// Panics if all components are zero.
    pub fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        let n = (w * w + x * x + y * y + z * z).sqrt();
        assert!(n > 1e-15, "cannot normalize a zero quaternion");
        Quaternion {
            w: w / n,
            x: x / n,
            y: y / n,
            z: z / n,
        }
    }

    /// Rotation of `angle` radians about `axis`.
    ///
    /// A zero axis yields the identity rotation.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        match axis.normalized() {
            Some(a) => {
                let half = 0.5 * angle;
                let s = half.sin();
                Quaternion::new(half.cos(), a.x * s, a.y * s, a.z * s)
            }
            None => Quaternion::identity(),
        }
    }

    /// Exponential map: rotation vector (axis × angle) to quaternion.
    pub fn from_rotation_vector(rv: Vec3) -> Self {
        let angle = rv.norm();
        if angle < 1e-12 {
            // First-order expansion keeps the map smooth near zero.
            Quaternion::new(1.0, 0.5 * rv.x, 0.5 * rv.y, 0.5 * rv.z)
        } else {
            Quaternion::from_axis_angle(rv, angle)
        }
    }

    /// Logarithm map: quaternion to rotation vector.
    pub fn to_rotation_vector(self) -> Vec3 {
        let q = if self.w < 0.0 { self.conjugate_neg() } else { self };
        let vn = (q.x * q.x + q.y * q.y + q.z * q.z).sqrt();
        if vn < 1e-12 {
            Vec3::new(2.0 * q.x, 2.0 * q.y, 2.0 * q.z)
        } else {
            let angle = 2.0 * vn.atan2(q.w);
            Vec3::new(q.x, q.y, q.z) * (angle / vn)
        }
    }

    /// Negates all components (same rotation, other double cover).
    fn conjugate_neg(self) -> Quaternion {
        Quaternion {
            w: -self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// The inverse rotation.
    pub fn conjugate(self) -> Quaternion {
        Quaternion {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Rotates a vector.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2 q_v × (q_v × v + w v)
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// Equivalent rotation matrix.
    pub fn to_matrix(self) -> Mat3 {
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        Mat3::from_rows(
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        )
    }

    /// Builds from a rotation matrix (Shepperd's method).
    pub fn from_matrix(m: Mat3) -> Self {
        let t = m.m[0][0] + m.m[1][1] + m.m[2][2];
        if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Quaternion::new(
                0.25 * s,
                (m.m[2][1] - m.m[1][2]) / s,
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[1][0] - m.m[0][1]) / s,
            )
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Quaternion::new(
                (m.m[2][1] - m.m[1][2]) / s,
                0.25 * s,
                (m.m[0][1] + m.m[1][0]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
            )
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Quaternion::new(
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[0][1] + m.m[1][0]) / s,
                0.25 * s,
                (m.m[1][2] + m.m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Quaternion::new(
                (m.m[1][0] - m.m[0][1]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
                (m.m[1][2] + m.m[2][1]) / s,
                0.25 * s,
            )
        }
    }

    /// Yaw (α), pitch (β), roll (γ) — the rotational DoF of paper Fig. 1 —
    /// using the Z-Y-X convention.
    pub fn to_euler(self) -> (f64, f64, f64) {
        let m = self.to_matrix();
        let pitch = (-m.m[2][0]).clamp(-1.0, 1.0).asin();
        let yaw = m.m[1][0].atan2(m.m[0][0]);
        let roll = m.m[2][1].atan2(m.m[2][2]);
        (yaw, pitch, roll)
    }

    /// Angle of the relative rotation to `other`, in radians.
    pub fn angle_to(self, other: Quaternion) -> f64 {
        (self.conjugate() * other).to_rotation_vector().norm()
    }

    /// Renormalizes in place to counter floating-point drift (used after
    /// long integration chains).
    pub fn renormalize(&mut self) {
        let n = (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt();
        self.w /= n;
        self.x /= n;
        self.y /= n;
        self.z /= n;
    }
}

impl Default for Quaternion {
    fn default() -> Self {
        Quaternion::identity()
    }
}

impl Mul for Quaternion {
    type Output = Quaternion;
    fn mul(self, r: Quaternion) -> Quaternion {
        // Hamilton product; the result of multiplying two unit quaternions
        // is unit up to rounding, renormalized by `new`.
        Quaternion::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn rotation_matches_matrix() {
        let q = Quaternion::from_axis_angle(Vec3::new(1.0, 1.0, 0.3), 0.73);
        let v = Vec3::new(0.2, -1.0, 0.5);
        let via_q = q.rotate(v);
        let via_m = q.to_matrix() * v;
        assert!((via_q - via_m).norm() < 1e-12);
    }

    #[test]
    fn exp_log_roundtrip() {
        for rv in [
            Vec3::new(0.1, -0.2, 0.3),
            Vec3::new(1e-14, 0.0, 0.0),
            Vec3::new(2.0, 1.0, -0.5),
        ] {
            let q = Quaternion::from_rotation_vector(rv);
            let back = q.to_rotation_vector();
            assert!((back - rv).norm() < 1e-9, "rv={rv:?} back={back:?}");
        }
    }

    #[test]
    fn matrix_roundtrip() {
        let q = Quaternion::from_axis_angle(Vec3::new(-0.3, 0.8, 0.52), 2.7);
        let q2 = Quaternion::from_matrix(q.to_matrix());
        // Compare up to double cover.
        assert!(q.angle_to(q2) < 1e-9);
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let q1 = Quaternion::from_axis_angle(Vec3::unit_z(), FRAC_PI_2);
        let q2 = Quaternion::from_axis_angle(Vec3::unit_x(), FRAC_PI_2);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let seq = q2.rotate(q1.rotate(v));
        let comp = (q2 * q1).rotate(v);
        assert!((seq - comp).norm() < 1e-12);
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quaternion::from_axis_angle(Vec3::new(0.2, 0.5, -1.0), 1.1);
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert!((q.conjugate().rotate(q.rotate(v)) - v).norm() < 1e-12);
    }

    #[test]
    fn euler_of_pure_yaw() {
        let q = Quaternion::from_axis_angle(Vec3::unit_z(), 0.4);
        let (yaw, pitch, roll) = q.to_euler();
        assert!((yaw - 0.4).abs() < 1e-12);
        assert!(pitch.abs() < 1e-12);
        assert!(roll.abs() < 1e-12);
    }

    #[test]
    fn angle_to_antipodal_is_zero() {
        let q = Quaternion::from_axis_angle(Vec3::unit_y(), PI / 3.0);
        let anti = Quaternion {
            w: -q.w,
            x: -q.x,
            y: -q.y,
            z: -q.z,
        };
        assert!(q.angle_to(anti) < 1e-9);
    }
}
